# Empty compiler generated dependencies file for offramps_plant.
# This may be replaced when dependencies are built.
