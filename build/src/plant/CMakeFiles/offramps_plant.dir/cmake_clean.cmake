file(REMOVE_RECURSE
  "CMakeFiles/offramps_plant.dir/deposition.cpp.o"
  "CMakeFiles/offramps_plant.dir/deposition.cpp.o.d"
  "CMakeFiles/offramps_plant.dir/printer.cpp.o"
  "CMakeFiles/offramps_plant.dir/printer.cpp.o.d"
  "CMakeFiles/offramps_plant.dir/side_channel.cpp.o"
  "CMakeFiles/offramps_plant.dir/side_channel.cpp.o.d"
  "libofframps_plant.a"
  "libofframps_plant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offramps_plant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
