file(REMOVE_RECURSE
  "libofframps_plant.a"
)
