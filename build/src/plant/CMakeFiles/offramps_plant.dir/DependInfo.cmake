
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plant/deposition.cpp" "src/plant/CMakeFiles/offramps_plant.dir/deposition.cpp.o" "gcc" "src/plant/CMakeFiles/offramps_plant.dir/deposition.cpp.o.d"
  "/root/repo/src/plant/printer.cpp" "src/plant/CMakeFiles/offramps_plant.dir/printer.cpp.o" "gcc" "src/plant/CMakeFiles/offramps_plant.dir/printer.cpp.o.d"
  "/root/repo/src/plant/side_channel.cpp" "src/plant/CMakeFiles/offramps_plant.dir/side_channel.cpp.o" "gcc" "src/plant/CMakeFiles/offramps_plant.dir/side_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/offramps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
