
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/align.cpp" "src/detect/CMakeFiles/offramps_detect.dir/align.cpp.o" "gcc" "src/detect/CMakeFiles/offramps_detect.dir/align.cpp.o.d"
  "/root/repo/src/detect/compare.cpp" "src/detect/CMakeFiles/offramps_detect.dir/compare.cpp.o" "gcc" "src/detect/CMakeFiles/offramps_detect.dir/compare.cpp.o.d"
  "/root/repo/src/detect/golden_free.cpp" "src/detect/CMakeFiles/offramps_detect.dir/golden_free.cpp.o" "gcc" "src/detect/CMakeFiles/offramps_detect.dir/golden_free.cpp.o.d"
  "/root/repo/src/detect/monitor.cpp" "src/detect/CMakeFiles/offramps_detect.dir/monitor.cpp.o" "gcc" "src/detect/CMakeFiles/offramps_detect.dir/monitor.cpp.o.d"
  "/root/repo/src/detect/reconstruct.cpp" "src/detect/CMakeFiles/offramps_detect.dir/reconstruct.cpp.o" "gcc" "src/detect/CMakeFiles/offramps_detect.dir/reconstruct.cpp.o.d"
  "/root/repo/src/detect/side_channel.cpp" "src/detect/CMakeFiles/offramps_detect.dir/side_channel.cpp.o" "gcc" "src/detect/CMakeFiles/offramps_detect.dir/side_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/offramps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/offramps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
