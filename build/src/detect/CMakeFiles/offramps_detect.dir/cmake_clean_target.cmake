file(REMOVE_RECURSE
  "libofframps_detect.a"
)
