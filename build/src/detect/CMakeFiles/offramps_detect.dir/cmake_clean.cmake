file(REMOVE_RECURSE
  "CMakeFiles/offramps_detect.dir/align.cpp.o"
  "CMakeFiles/offramps_detect.dir/align.cpp.o.d"
  "CMakeFiles/offramps_detect.dir/compare.cpp.o"
  "CMakeFiles/offramps_detect.dir/compare.cpp.o.d"
  "CMakeFiles/offramps_detect.dir/golden_free.cpp.o"
  "CMakeFiles/offramps_detect.dir/golden_free.cpp.o.d"
  "CMakeFiles/offramps_detect.dir/monitor.cpp.o"
  "CMakeFiles/offramps_detect.dir/monitor.cpp.o.d"
  "CMakeFiles/offramps_detect.dir/reconstruct.cpp.o"
  "CMakeFiles/offramps_detect.dir/reconstruct.cpp.o.d"
  "CMakeFiles/offramps_detect.dir/side_channel.cpp.o"
  "CMakeFiles/offramps_detect.dir/side_channel.cpp.o.d"
  "libofframps_detect.a"
  "libofframps_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offramps_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
