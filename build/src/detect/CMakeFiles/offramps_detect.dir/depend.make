# Empty dependencies file for offramps_detect.
# This may be replaced when dependencies are built.
