file(REMOVE_RECURSE
  "libofframps_fw.a"
)
