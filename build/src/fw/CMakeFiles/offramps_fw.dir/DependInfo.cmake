
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fw/firmware.cpp" "src/fw/CMakeFiles/offramps_fw.dir/firmware.cpp.o" "gcc" "src/fw/CMakeFiles/offramps_fw.dir/firmware.cpp.o.d"
  "/root/repo/src/fw/planner.cpp" "src/fw/CMakeFiles/offramps_fw.dir/planner.cpp.o" "gcc" "src/fw/CMakeFiles/offramps_fw.dir/planner.cpp.o.d"
  "/root/repo/src/fw/serial_protocol.cpp" "src/fw/CMakeFiles/offramps_fw.dir/serial_protocol.cpp.o" "gcc" "src/fw/CMakeFiles/offramps_fw.dir/serial_protocol.cpp.o.d"
  "/root/repo/src/fw/stepper.cpp" "src/fw/CMakeFiles/offramps_fw.dir/stepper.cpp.o" "gcc" "src/fw/CMakeFiles/offramps_fw.dir/stepper.cpp.o.d"
  "/root/repo/src/fw/thermal.cpp" "src/fw/CMakeFiles/offramps_fw.dir/thermal.cpp.o" "gcc" "src/fw/CMakeFiles/offramps_fw.dir/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/offramps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gcode/CMakeFiles/offramps_gcode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
