# Empty compiler generated dependencies file for offramps_fw.
# This may be replaced when dependencies are built.
