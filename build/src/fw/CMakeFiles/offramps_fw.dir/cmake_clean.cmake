file(REMOVE_RECURSE
  "CMakeFiles/offramps_fw.dir/firmware.cpp.o"
  "CMakeFiles/offramps_fw.dir/firmware.cpp.o.d"
  "CMakeFiles/offramps_fw.dir/planner.cpp.o"
  "CMakeFiles/offramps_fw.dir/planner.cpp.o.d"
  "CMakeFiles/offramps_fw.dir/serial_protocol.cpp.o"
  "CMakeFiles/offramps_fw.dir/serial_protocol.cpp.o.d"
  "CMakeFiles/offramps_fw.dir/stepper.cpp.o"
  "CMakeFiles/offramps_fw.dir/stepper.cpp.o.d"
  "CMakeFiles/offramps_fw.dir/thermal.cpp.o"
  "CMakeFiles/offramps_fw.dir/thermal.cpp.o.d"
  "libofframps_fw.a"
  "libofframps_fw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offramps_fw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
