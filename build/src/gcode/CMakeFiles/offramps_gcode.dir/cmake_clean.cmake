file(REMOVE_RECURSE
  "CMakeFiles/offramps_gcode.dir/command.cpp.o"
  "CMakeFiles/offramps_gcode.dir/command.cpp.o.d"
  "CMakeFiles/offramps_gcode.dir/flaw3d.cpp.o"
  "CMakeFiles/offramps_gcode.dir/flaw3d.cpp.o.d"
  "CMakeFiles/offramps_gcode.dir/modal.cpp.o"
  "CMakeFiles/offramps_gcode.dir/modal.cpp.o.d"
  "CMakeFiles/offramps_gcode.dir/parser.cpp.o"
  "CMakeFiles/offramps_gcode.dir/parser.cpp.o.d"
  "CMakeFiles/offramps_gcode.dir/stats.cpp.o"
  "CMakeFiles/offramps_gcode.dir/stats.cpp.o.d"
  "CMakeFiles/offramps_gcode.dir/writer.cpp.o"
  "CMakeFiles/offramps_gcode.dir/writer.cpp.o.d"
  "libofframps_gcode.a"
  "libofframps_gcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offramps_gcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
