# Empty compiler generated dependencies file for offramps_gcode.
# This may be replaced when dependencies are built.
