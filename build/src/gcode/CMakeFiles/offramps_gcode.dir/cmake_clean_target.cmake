file(REMOVE_RECURSE
  "libofframps_gcode.a"
)
