
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcode/command.cpp" "src/gcode/CMakeFiles/offramps_gcode.dir/command.cpp.o" "gcc" "src/gcode/CMakeFiles/offramps_gcode.dir/command.cpp.o.d"
  "/root/repo/src/gcode/flaw3d.cpp" "src/gcode/CMakeFiles/offramps_gcode.dir/flaw3d.cpp.o" "gcc" "src/gcode/CMakeFiles/offramps_gcode.dir/flaw3d.cpp.o.d"
  "/root/repo/src/gcode/modal.cpp" "src/gcode/CMakeFiles/offramps_gcode.dir/modal.cpp.o" "gcc" "src/gcode/CMakeFiles/offramps_gcode.dir/modal.cpp.o.d"
  "/root/repo/src/gcode/parser.cpp" "src/gcode/CMakeFiles/offramps_gcode.dir/parser.cpp.o" "gcc" "src/gcode/CMakeFiles/offramps_gcode.dir/parser.cpp.o.d"
  "/root/repo/src/gcode/stats.cpp" "src/gcode/CMakeFiles/offramps_gcode.dir/stats.cpp.o" "gcc" "src/gcode/CMakeFiles/offramps_gcode.dir/stats.cpp.o.d"
  "/root/repo/src/gcode/writer.cpp" "src/gcode/CMakeFiles/offramps_gcode.dir/writer.cpp.o" "gcc" "src/gcode/CMakeFiles/offramps_gcode.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/offramps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
