file(REMOVE_RECURSE
  "CMakeFiles/offramps_core.dir/board.cpp.o"
  "CMakeFiles/offramps_core.dir/board.cpp.o.d"
  "CMakeFiles/offramps_core.dir/capture.cpp.o"
  "CMakeFiles/offramps_core.dir/capture.cpp.o.d"
  "CMakeFiles/offramps_core.dir/fabric_guard.cpp.o"
  "CMakeFiles/offramps_core.dir/fabric_guard.cpp.o.d"
  "CMakeFiles/offramps_core.dir/fpga.cpp.o"
  "CMakeFiles/offramps_core.dir/fpga.cpp.o.d"
  "CMakeFiles/offramps_core.dir/monitor.cpp.o"
  "CMakeFiles/offramps_core.dir/monitor.cpp.o.d"
  "CMakeFiles/offramps_core.dir/pulse_generator.cpp.o"
  "CMakeFiles/offramps_core.dir/pulse_generator.cpp.o.d"
  "CMakeFiles/offramps_core.dir/serial.cpp.o"
  "CMakeFiles/offramps_core.dir/serial.cpp.o.d"
  "CMakeFiles/offramps_core.dir/signal_path.cpp.o"
  "CMakeFiles/offramps_core.dir/signal_path.cpp.o.d"
  "CMakeFiles/offramps_core.dir/trojans.cpp.o"
  "CMakeFiles/offramps_core.dir/trojans.cpp.o.d"
  "CMakeFiles/offramps_core.dir/uart.cpp.o"
  "CMakeFiles/offramps_core.dir/uart.cpp.o.d"
  "libofframps_core.a"
  "libofframps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offramps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
