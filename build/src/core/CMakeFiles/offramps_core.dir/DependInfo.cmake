
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/board.cpp" "src/core/CMakeFiles/offramps_core.dir/board.cpp.o" "gcc" "src/core/CMakeFiles/offramps_core.dir/board.cpp.o.d"
  "/root/repo/src/core/capture.cpp" "src/core/CMakeFiles/offramps_core.dir/capture.cpp.o" "gcc" "src/core/CMakeFiles/offramps_core.dir/capture.cpp.o.d"
  "/root/repo/src/core/fabric_guard.cpp" "src/core/CMakeFiles/offramps_core.dir/fabric_guard.cpp.o" "gcc" "src/core/CMakeFiles/offramps_core.dir/fabric_guard.cpp.o.d"
  "/root/repo/src/core/fpga.cpp" "src/core/CMakeFiles/offramps_core.dir/fpga.cpp.o" "gcc" "src/core/CMakeFiles/offramps_core.dir/fpga.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/offramps_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/offramps_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/pulse_generator.cpp" "src/core/CMakeFiles/offramps_core.dir/pulse_generator.cpp.o" "gcc" "src/core/CMakeFiles/offramps_core.dir/pulse_generator.cpp.o.d"
  "/root/repo/src/core/serial.cpp" "src/core/CMakeFiles/offramps_core.dir/serial.cpp.o" "gcc" "src/core/CMakeFiles/offramps_core.dir/serial.cpp.o.d"
  "/root/repo/src/core/signal_path.cpp" "src/core/CMakeFiles/offramps_core.dir/signal_path.cpp.o" "gcc" "src/core/CMakeFiles/offramps_core.dir/signal_path.cpp.o.d"
  "/root/repo/src/core/trojans.cpp" "src/core/CMakeFiles/offramps_core.dir/trojans.cpp.o" "gcc" "src/core/CMakeFiles/offramps_core.dir/trojans.cpp.o.d"
  "/root/repo/src/core/uart.cpp" "src/core/CMakeFiles/offramps_core.dir/uart.cpp.o" "gcc" "src/core/CMakeFiles/offramps_core.dir/uart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/offramps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
