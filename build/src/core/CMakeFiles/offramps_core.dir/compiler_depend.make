# Empty compiler generated dependencies file for offramps_core.
# This may be replaced when dependencies are built.
