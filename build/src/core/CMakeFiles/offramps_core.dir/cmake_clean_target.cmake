file(REMOVE_RECURSE
  "libofframps_core.a"
)
