file(REMOVE_RECURSE
  "libofframps_sim.a"
)
