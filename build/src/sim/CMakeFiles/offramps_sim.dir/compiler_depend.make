# Empty compiler generated dependencies file for offramps_sim.
# This may be replaced when dependencies are built.
