file(REMOVE_RECURSE
  "CMakeFiles/offramps_sim.dir/fault.cpp.o"
  "CMakeFiles/offramps_sim.dir/fault.cpp.o.d"
  "CMakeFiles/offramps_sim.dir/pins.cpp.o"
  "CMakeFiles/offramps_sim.dir/pins.cpp.o.d"
  "CMakeFiles/offramps_sim.dir/vcd.cpp.o"
  "CMakeFiles/offramps_sim.dir/vcd.cpp.o.d"
  "libofframps_sim.a"
  "libofframps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offramps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
