file(REMOVE_RECURSE
  "libofframps_host.a"
)
