# Empty compiler generated dependencies file for offramps_host.
# This may be replaced when dependencies are built.
