
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/fault_campaign.cpp" "src/host/CMakeFiles/offramps_host.dir/fault_campaign.cpp.o" "gcc" "src/host/CMakeFiles/offramps_host.dir/fault_campaign.cpp.o.d"
  "/root/repo/src/host/reliable_streamer.cpp" "src/host/CMakeFiles/offramps_host.dir/reliable_streamer.cpp.o" "gcc" "src/host/CMakeFiles/offramps_host.dir/reliable_streamer.cpp.o.d"
  "/root/repo/src/host/rig.cpp" "src/host/CMakeFiles/offramps_host.dir/rig.cpp.o" "gcc" "src/host/CMakeFiles/offramps_host.dir/rig.cpp.o.d"
  "/root/repo/src/host/slicer.cpp" "src/host/CMakeFiles/offramps_host.dir/slicer.cpp.o" "gcc" "src/host/CMakeFiles/offramps_host.dir/slicer.cpp.o.d"
  "/root/repo/src/host/streamer.cpp" "src/host/CMakeFiles/offramps_host.dir/streamer.cpp.o" "gcc" "src/host/CMakeFiles/offramps_host.dir/streamer.cpp.o.d"
  "/root/repo/src/host/time_estimator.cpp" "src/host/CMakeFiles/offramps_host.dir/time_estimator.cpp.o" "gcc" "src/host/CMakeFiles/offramps_host.dir/time_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/offramps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/offramps_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/fw/CMakeFiles/offramps_fw.dir/DependInfo.cmake"
  "/root/repo/build/src/plant/CMakeFiles/offramps_plant.dir/DependInfo.cmake"
  "/root/repo/build/src/gcode/CMakeFiles/offramps_gcode.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/offramps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
