file(REMOVE_RECURSE
  "CMakeFiles/offramps_host.dir/fault_campaign.cpp.o"
  "CMakeFiles/offramps_host.dir/fault_campaign.cpp.o.d"
  "CMakeFiles/offramps_host.dir/reliable_streamer.cpp.o"
  "CMakeFiles/offramps_host.dir/reliable_streamer.cpp.o.d"
  "CMakeFiles/offramps_host.dir/rig.cpp.o"
  "CMakeFiles/offramps_host.dir/rig.cpp.o.d"
  "CMakeFiles/offramps_host.dir/slicer.cpp.o"
  "CMakeFiles/offramps_host.dir/slicer.cpp.o.d"
  "CMakeFiles/offramps_host.dir/streamer.cpp.o"
  "CMakeFiles/offramps_host.dir/streamer.cpp.o.d"
  "CMakeFiles/offramps_host.dir/time_estimator.cpp.o"
  "CMakeFiles/offramps_host.dir/time_estimator.cpp.o.d"
  "libofframps_host.a"
  "libofframps_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offramps_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
