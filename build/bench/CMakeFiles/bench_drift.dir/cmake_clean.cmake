file(REMOVE_RECURSE
  "CMakeFiles/bench_drift.dir/bench_drift.cpp.o"
  "CMakeFiles/bench_drift.dir/bench_drift.cpp.o.d"
  "bench_drift"
  "bench_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
