file(REMOVE_RECURSE
  "CMakeFiles/flaw3d_detect.dir/flaw3d_detect.cpp.o"
  "CMakeFiles/flaw3d_detect.dir/flaw3d_detect.cpp.o.d"
  "flaw3d_detect"
  "flaw3d_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flaw3d_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
