# Empty dependencies file for flaw3d_detect.
# This may be replaced when dependencies are built.
