file(REMOVE_RECURSE
  "CMakeFiles/gcode_tool.dir/gcode_tool.cpp.o"
  "CMakeFiles/gcode_tool.dir/gcode_tool.cpp.o.d"
  "gcode_tool"
  "gcode_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcode_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
