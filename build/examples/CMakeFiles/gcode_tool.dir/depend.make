# Empty dependencies file for gcode_tool.
# This may be replaced when dependencies are built.
