file(REMOVE_RECURSE
  "CMakeFiles/standalone_guard.dir/standalone_guard.cpp.o"
  "CMakeFiles/standalone_guard.dir/standalone_guard.cpp.o.d"
  "standalone_guard"
  "standalone_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standalone_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
