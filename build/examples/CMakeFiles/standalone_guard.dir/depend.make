# Empty dependencies file for standalone_guard.
# This may be replaced when dependencies are built.
