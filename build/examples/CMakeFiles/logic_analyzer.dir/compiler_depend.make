# Empty compiler generated dependencies file for logic_analyzer.
# This may be replaced when dependencies are built.
