file(REMOVE_RECURSE
  "CMakeFiles/logic_analyzer.dir/logic_analyzer.cpp.o"
  "CMakeFiles/logic_analyzer.dir/logic_analyzer.cpp.o.d"
  "logic_analyzer"
  "logic_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
