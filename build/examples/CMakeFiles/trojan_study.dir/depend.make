# Empty dependencies file for trojan_study.
# This may be replaced when dependencies are built.
