file(REMOVE_RECURSE
  "CMakeFiles/trojan_study.dir/trojan_study.cpp.o"
  "CMakeFiles/trojan_study.dir/trojan_study.cpp.o.d"
  "trojan_study"
  "trojan_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trojan_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
