# Empty compiler generated dependencies file for print_monitor.
# This may be replaced when dependencies are built.
