file(REMOVE_RECURSE
  "CMakeFiles/print_monitor.dir/print_monitor.cpp.o"
  "CMakeFiles/print_monitor.dir/print_monitor.cpp.o.d"
  "print_monitor"
  "print_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/print_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
