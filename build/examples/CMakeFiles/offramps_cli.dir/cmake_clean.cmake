file(REMOVE_RECURSE
  "CMakeFiles/offramps_cli.dir/offramps_cli.cpp.o"
  "CMakeFiles/offramps_cli.dir/offramps_cli.cpp.o.d"
  "offramps_cli"
  "offramps_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offramps_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
