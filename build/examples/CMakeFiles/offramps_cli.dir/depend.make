# Empty dependencies file for offramps_cli.
# This may be replaced when dependencies are built.
