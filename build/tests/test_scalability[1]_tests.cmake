add_test([=[Scalability.TwentyMillimetreCubePrintsInSeconds]=]  /root/repo/build/tests/test_scalability [==[--gtest_filter=Scalability.TwentyMillimetreCubePrintsInSeconds]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Scalability.TwentyMillimetreCubePrintsInSeconds]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_scalability_TESTS Scalability.TwentyMillimetreCubePrintsInSeconds)
