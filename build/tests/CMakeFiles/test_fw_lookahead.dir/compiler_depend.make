# Empty compiler generated dependencies file for test_fw_lookahead.
# This may be replaced when dependencies are built.
