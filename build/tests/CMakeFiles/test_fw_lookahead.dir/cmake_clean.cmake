file(REMOVE_RECURSE
  "CMakeFiles/test_fw_lookahead.dir/test_fw_lookahead.cpp.o"
  "CMakeFiles/test_fw_lookahead.dir/test_fw_lookahead.cpp.o.d"
  "test_fw_lookahead"
  "test_fw_lookahead.pdb"
  "test_fw_lookahead[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fw_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
