file(REMOVE_RECURSE
  "CMakeFiles/test_detect_align.dir/test_detect_align.cpp.o"
  "CMakeFiles/test_detect_align.dir/test_detect_align.cpp.o.d"
  "test_detect_align"
  "test_detect_align.pdb"
  "test_detect_align[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
