# Empty compiler generated dependencies file for test_detect_align.
# This may be replaced when dependencies are built.
