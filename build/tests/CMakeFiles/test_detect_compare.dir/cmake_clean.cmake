file(REMOVE_RECURSE
  "CMakeFiles/test_detect_compare.dir/test_detect_compare.cpp.o"
  "CMakeFiles/test_detect_compare.dir/test_detect_compare.cpp.o.d"
  "test_detect_compare"
  "test_detect_compare.pdb"
  "test_detect_compare[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
