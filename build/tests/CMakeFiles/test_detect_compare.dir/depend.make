# Empty dependencies file for test_detect_compare.
# This may be replaced when dependencies are built.
