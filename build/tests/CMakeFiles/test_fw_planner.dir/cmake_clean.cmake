file(REMOVE_RECURSE
  "CMakeFiles/test_fw_planner.dir/test_fw_planner.cpp.o"
  "CMakeFiles/test_fw_planner.dir/test_fw_planner.cpp.o.d"
  "test_fw_planner"
  "test_fw_planner.pdb"
  "test_fw_planner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fw_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
