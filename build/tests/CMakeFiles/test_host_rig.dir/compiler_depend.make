# Empty compiler generated dependencies file for test_host_rig.
# This may be replaced when dependencies are built.
