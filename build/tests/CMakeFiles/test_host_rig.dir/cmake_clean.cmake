file(REMOVE_RECURSE
  "CMakeFiles/test_host_rig.dir/test_host_rig.cpp.o"
  "CMakeFiles/test_host_rig.dir/test_host_rig.cpp.o.d"
  "test_host_rig"
  "test_host_rig.pdb"
  "test_host_rig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_rig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
