file(REMOVE_RECURSE
  "CMakeFiles/test_core_uart_capture.dir/test_core_uart_capture.cpp.o"
  "CMakeFiles/test_core_uart_capture.dir/test_core_uart_capture.cpp.o.d"
  "test_core_uart_capture"
  "test_core_uart_capture.pdb"
  "test_core_uart_capture[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_uart_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
