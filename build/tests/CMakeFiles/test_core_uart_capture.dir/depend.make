# Empty dependencies file for test_core_uart_capture.
# This may be replaced when dependencies are built.
