# Empty dependencies file for test_sim_fault.
# This may be replaced when dependencies are built.
