file(REMOVE_RECURSE
  "CMakeFiles/test_sim_fault.dir/test_sim_fault.cpp.o"
  "CMakeFiles/test_sim_fault.dir/test_sim_fault.cpp.o.d"
  "test_sim_fault"
  "test_sim_fault.pdb"
  "test_sim_fault[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
