file(REMOVE_RECURSE
  "CMakeFiles/test_core_board.dir/test_core_board.cpp.o"
  "CMakeFiles/test_core_board.dir/test_core_board.cpp.o.d"
  "test_core_board"
  "test_core_board.pdb"
  "test_core_board[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
