# Empty dependencies file for test_core_board.
# This may be replaced when dependencies are built.
