file(REMOVE_RECURSE
  "CMakeFiles/test_sim_thermistor.dir/test_sim_thermistor.cpp.o"
  "CMakeFiles/test_sim_thermistor.dir/test_sim_thermistor.cpp.o.d"
  "test_sim_thermistor"
  "test_sim_thermistor.pdb"
  "test_sim_thermistor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_thermistor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
