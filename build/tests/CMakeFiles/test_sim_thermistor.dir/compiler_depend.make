# Empty compiler generated dependencies file for test_sim_thermistor.
# This may be replaced when dependencies are built.
