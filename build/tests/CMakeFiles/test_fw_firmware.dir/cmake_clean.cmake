file(REMOVE_RECURSE
  "CMakeFiles/test_fw_firmware.dir/test_fw_firmware.cpp.o"
  "CMakeFiles/test_fw_firmware.dir/test_fw_firmware.cpp.o.d"
  "test_fw_firmware"
  "test_fw_firmware.pdb"
  "test_fw_firmware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fw_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
