file(REMOVE_RECURSE
  "CMakeFiles/test_core_pulse_generator.dir/test_core_pulse_generator.cpp.o"
  "CMakeFiles/test_core_pulse_generator.dir/test_core_pulse_generator.cpp.o.d"
  "test_core_pulse_generator"
  "test_core_pulse_generator.pdb"
  "test_core_pulse_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_pulse_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
