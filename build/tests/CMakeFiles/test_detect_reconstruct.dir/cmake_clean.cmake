file(REMOVE_RECURSE
  "CMakeFiles/test_detect_reconstruct.dir/test_detect_reconstruct.cpp.o"
  "CMakeFiles/test_detect_reconstruct.dir/test_detect_reconstruct.cpp.o.d"
  "test_detect_reconstruct"
  "test_detect_reconstruct.pdb"
  "test_detect_reconstruct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_reconstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
