# Empty compiler generated dependencies file for test_detect_reconstruct.
# This may be replaced when dependencies are built.
