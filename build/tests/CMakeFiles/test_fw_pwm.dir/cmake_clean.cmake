file(REMOVE_RECURSE
  "CMakeFiles/test_fw_pwm.dir/test_fw_pwm.cpp.o"
  "CMakeFiles/test_fw_pwm.dir/test_fw_pwm.cpp.o.d"
  "test_fw_pwm"
  "test_fw_pwm.pdb"
  "test_fw_pwm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fw_pwm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
