file(REMOVE_RECURSE
  "CMakeFiles/test_host_time_estimator.dir/test_host_time_estimator.cpp.o"
  "CMakeFiles/test_host_time_estimator.dir/test_host_time_estimator.cpp.o.d"
  "test_host_time_estimator"
  "test_host_time_estimator.pdb"
  "test_host_time_estimator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_time_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
