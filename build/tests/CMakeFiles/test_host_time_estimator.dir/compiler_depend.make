# Empty compiler generated dependencies file for test_host_time_estimator.
# This may be replaced when dependencies are built.
