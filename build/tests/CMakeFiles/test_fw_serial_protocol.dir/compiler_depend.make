# Empty compiler generated dependencies file for test_fw_serial_protocol.
# This may be replaced when dependencies are built.
