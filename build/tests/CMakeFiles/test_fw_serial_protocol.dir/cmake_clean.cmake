file(REMOVE_RECURSE
  "CMakeFiles/test_fw_serial_protocol.dir/test_fw_serial_protocol.cpp.o"
  "CMakeFiles/test_fw_serial_protocol.dir/test_fw_serial_protocol.cpp.o.d"
  "test_fw_serial_protocol"
  "test_fw_serial_protocol.pdb"
  "test_fw_serial_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fw_serial_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
