# Empty compiler generated dependencies file for test_sim_vcd.
# This may be replaced when dependencies are built.
