file(REMOVE_RECURSE
  "CMakeFiles/test_fault_campaign.dir/test_fault_campaign.cpp.o"
  "CMakeFiles/test_fault_campaign.dir/test_fault_campaign.cpp.o.d"
  "test_fault_campaign"
  "test_fault_campaign.pdb"
  "test_fault_campaign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
