# Empty dependencies file for test_integration_flaw3d.
# This may be replaced when dependencies are built.
