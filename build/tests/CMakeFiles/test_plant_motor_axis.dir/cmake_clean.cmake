file(REMOVE_RECURSE
  "CMakeFiles/test_plant_motor_axis.dir/test_plant_motor_axis.cpp.o"
  "CMakeFiles/test_plant_motor_axis.dir/test_plant_motor_axis.cpp.o.d"
  "test_plant_motor_axis"
  "test_plant_motor_axis.pdb"
  "test_plant_motor_axis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plant_motor_axis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
