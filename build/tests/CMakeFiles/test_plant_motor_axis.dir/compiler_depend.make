# Empty compiler generated dependencies file for test_plant_motor_axis.
# This may be replaced when dependencies are built.
