# Empty compiler generated dependencies file for test_gcode_writer.
# This may be replaced when dependencies are built.
