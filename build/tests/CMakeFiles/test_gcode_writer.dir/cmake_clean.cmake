file(REMOVE_RECURSE
  "CMakeFiles/test_gcode_writer.dir/test_gcode_writer.cpp.o"
  "CMakeFiles/test_gcode_writer.dir/test_gcode_writer.cpp.o.d"
  "test_gcode_writer"
  "test_gcode_writer.pdb"
  "test_gcode_writer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcode_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
