file(REMOVE_RECURSE
  "CMakeFiles/test_plant_deposition.dir/test_plant_deposition.cpp.o"
  "CMakeFiles/test_plant_deposition.dir/test_plant_deposition.cpp.o.d"
  "test_plant_deposition"
  "test_plant_deposition.pdb"
  "test_plant_deposition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plant_deposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
