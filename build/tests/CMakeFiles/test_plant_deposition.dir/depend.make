# Empty dependencies file for test_plant_deposition.
# This may be replaced when dependencies are built.
