# Empty compiler generated dependencies file for test_core_signal_path.
# This may be replaced when dependencies are built.
