file(REMOVE_RECURSE
  "CMakeFiles/test_core_signal_path.dir/test_core_signal_path.cpp.o"
  "CMakeFiles/test_core_signal_path.dir/test_core_signal_path.cpp.o.d"
  "test_core_signal_path"
  "test_core_signal_path.pdb"
  "test_core_signal_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_signal_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
