# Empty compiler generated dependencies file for test_core_trojans.
# This may be replaced when dependencies are built.
