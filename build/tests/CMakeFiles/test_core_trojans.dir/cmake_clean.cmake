file(REMOVE_RECURSE
  "CMakeFiles/test_core_trojans.dir/test_core_trojans.cpp.o"
  "CMakeFiles/test_core_trojans.dir/test_core_trojans.cpp.o.d"
  "test_core_trojans"
  "test_core_trojans.pdb"
  "test_core_trojans[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_trojans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
