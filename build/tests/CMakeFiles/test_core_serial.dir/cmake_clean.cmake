file(REMOVE_RECURSE
  "CMakeFiles/test_core_serial.dir/test_core_serial.cpp.o"
  "CMakeFiles/test_core_serial.dir/test_core_serial.cpp.o.d"
  "test_core_serial"
  "test_core_serial.pdb"
  "test_core_serial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
