# Empty dependencies file for test_detect_golden_free.
# This may be replaced when dependencies are built.
