file(REMOVE_RECURSE
  "CMakeFiles/test_detect_golden_free.dir/test_detect_golden_free.cpp.o"
  "CMakeFiles/test_detect_golden_free.dir/test_detect_golden_free.cpp.o.d"
  "test_detect_golden_free"
  "test_detect_golden_free.pdb"
  "test_detect_golden_free[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_golden_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
