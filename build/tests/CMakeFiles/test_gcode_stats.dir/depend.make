# Empty dependencies file for test_gcode_stats.
# This may be replaced when dependencies are built.
