file(REMOVE_RECURSE
  "CMakeFiles/test_gcode_stats.dir/test_gcode_stats.cpp.o"
  "CMakeFiles/test_gcode_stats.dir/test_gcode_stats.cpp.o.d"
  "test_gcode_stats"
  "test_gcode_stats.pdb"
  "test_gcode_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcode_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
