file(REMOVE_RECURSE
  "CMakeFiles/test_core_fabric_guard.dir/test_core_fabric_guard.cpp.o"
  "CMakeFiles/test_core_fabric_guard.dir/test_core_fabric_guard.cpp.o.d"
  "test_core_fabric_guard"
  "test_core_fabric_guard.pdb"
  "test_core_fabric_guard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_fabric_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
