# Empty dependencies file for test_core_fabric_guard.
# This may be replaced when dependencies are built.
