file(REMOVE_RECURSE
  "CMakeFiles/test_sim_pins.dir/test_sim_pins.cpp.o"
  "CMakeFiles/test_sim_pins.dir/test_sim_pins.cpp.o.d"
  "test_sim_pins"
  "test_sim_pins.pdb"
  "test_sim_pins[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_pins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
