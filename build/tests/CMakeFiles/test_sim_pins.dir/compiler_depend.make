# Empty compiler generated dependencies file for test_sim_pins.
# This may be replaced when dependencies are built.
