file(REMOVE_RECURSE
  "CMakeFiles/test_host_slicer.dir/test_host_slicer.cpp.o"
  "CMakeFiles/test_host_slicer.dir/test_host_slicer.cpp.o.d"
  "test_host_slicer"
  "test_host_slicer.pdb"
  "test_host_slicer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_slicer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
