# Empty compiler generated dependencies file for test_host_slicer.
# This may be replaced when dependencies are built.
