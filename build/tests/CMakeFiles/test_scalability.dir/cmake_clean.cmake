file(REMOVE_RECURSE
  "CMakeFiles/test_scalability.dir/test_scalability.cpp.o"
  "CMakeFiles/test_scalability.dir/test_scalability.cpp.o.d"
  "test_scalability"
  "test_scalability.pdb"
  "test_scalability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
