# Empty dependencies file for test_fw_stepper.
# This may be replaced when dependencies are built.
