file(REMOVE_RECURSE
  "CMakeFiles/test_fw_stepper.dir/test_fw_stepper.cpp.o"
  "CMakeFiles/test_fw_stepper.dir/test_fw_stepper.cpp.o.d"
  "test_fw_stepper"
  "test_fw_stepper.pdb"
  "test_fw_stepper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fw_stepper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
