file(REMOVE_RECURSE
  "CMakeFiles/test_integration_trojans.dir/test_integration_trojans.cpp.o"
  "CMakeFiles/test_integration_trojans.dir/test_integration_trojans.cpp.o.d"
  "test_integration_trojans"
  "test_integration_trojans.pdb"
  "test_integration_trojans[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_trojans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
