# Empty compiler generated dependencies file for test_integration_trojans.
# This may be replaced when dependencies are built.
