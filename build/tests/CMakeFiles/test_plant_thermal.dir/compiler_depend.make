# Empty compiler generated dependencies file for test_plant_thermal.
# This may be replaced when dependencies are built.
