file(REMOVE_RECURSE
  "CMakeFiles/test_plant_thermal.dir/test_plant_thermal.cpp.o"
  "CMakeFiles/test_plant_thermal.dir/test_plant_thermal.cpp.o.d"
  "test_plant_thermal"
  "test_plant_thermal.pdb"
  "test_plant_thermal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plant_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
