file(REMOVE_RECURSE
  "CMakeFiles/test_gcode_modal.dir/test_gcode_modal.cpp.o"
  "CMakeFiles/test_gcode_modal.dir/test_gcode_modal.cpp.o.d"
  "test_gcode_modal"
  "test_gcode_modal.pdb"
  "test_gcode_modal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcode_modal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
