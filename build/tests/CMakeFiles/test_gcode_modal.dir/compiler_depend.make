# Empty compiler generated dependencies file for test_gcode_modal.
# This may be replaced when dependencies are built.
