# Empty dependencies file for test_gcode_flaw3d.
# This may be replaced when dependencies are built.
