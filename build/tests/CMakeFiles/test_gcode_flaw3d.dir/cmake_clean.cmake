file(REMOVE_RECURSE
  "CMakeFiles/test_gcode_flaw3d.dir/test_gcode_flaw3d.cpp.o"
  "CMakeFiles/test_gcode_flaw3d.dir/test_gcode_flaw3d.cpp.o.d"
  "test_gcode_flaw3d"
  "test_gcode_flaw3d.pdb"
  "test_gcode_flaw3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcode_flaw3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
