file(REMOVE_RECURSE
  "CMakeFiles/test_sim_wire.dir/test_sim_wire.cpp.o"
  "CMakeFiles/test_sim_wire.dir/test_sim_wire.cpp.o.d"
  "test_sim_wire"
  "test_sim_wire.pdb"
  "test_sim_wire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
