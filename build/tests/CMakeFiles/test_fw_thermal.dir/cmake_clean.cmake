file(REMOVE_RECURSE
  "CMakeFiles/test_fw_thermal.dir/test_fw_thermal.cpp.o"
  "CMakeFiles/test_fw_thermal.dir/test_fw_thermal.cpp.o.d"
  "test_fw_thermal"
  "test_fw_thermal.pdb"
  "test_fw_thermal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fw_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
