# Empty compiler generated dependencies file for test_fw_thermal.
# This may be replaced when dependencies are built.
