file(REMOVE_RECURSE
  "CMakeFiles/test_gcode_parser.dir/test_gcode_parser.cpp.o"
  "CMakeFiles/test_gcode_parser.dir/test_gcode_parser.cpp.o.d"
  "test_gcode_parser"
  "test_gcode_parser.pdb"
  "test_gcode_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcode_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
