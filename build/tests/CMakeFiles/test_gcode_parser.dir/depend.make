# Empty dependencies file for test_gcode_parser.
# This may be replaced when dependencies are built.
