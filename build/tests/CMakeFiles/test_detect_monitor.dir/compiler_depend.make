# Empty compiler generated dependencies file for test_detect_monitor.
# This may be replaced when dependencies are built.
