file(REMOVE_RECURSE
  "CMakeFiles/test_detect_monitor.dir/test_detect_monitor.cpp.o"
  "CMakeFiles/test_detect_monitor.dir/test_detect_monitor.cpp.o.d"
  "test_detect_monitor"
  "test_detect_monitor.pdb"
  "test_detect_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
