file(REMOVE_RECURSE
  "CMakeFiles/test_plant_power.dir/test_plant_power.cpp.o"
  "CMakeFiles/test_plant_power.dir/test_plant_power.cpp.o.d"
  "test_plant_power"
  "test_plant_power.pdb"
  "test_plant_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plant_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
