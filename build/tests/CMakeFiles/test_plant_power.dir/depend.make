# Empty dependencies file for test_plant_power.
# This may be replaced when dependencies are built.
