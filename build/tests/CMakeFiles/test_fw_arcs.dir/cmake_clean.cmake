file(REMOVE_RECURSE
  "CMakeFiles/test_fw_arcs.dir/test_fw_arcs.cpp.o"
  "CMakeFiles/test_fw_arcs.dir/test_fw_arcs.cpp.o.d"
  "test_fw_arcs"
  "test_fw_arcs.pdb"
  "test_fw_arcs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fw_arcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
