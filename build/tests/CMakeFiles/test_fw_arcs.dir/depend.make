# Empty dependencies file for test_fw_arcs.
# This may be replaced when dependencies are built.
