// Part reconstruction from a capture - the IP-exfiltration capability the
// paper's Discussion anticipates ("even reverse-engineering printed parts
// from their control signals").
//
// The 10 Hz transaction stream gives the toolhead position and cumulative
// extrusion at every window boundary.  Whenever filament advanced between
// two windows, material was laid along the toolhead's path between those
// positions; collecting those segments per Z level recovers the printed
// geometry to within one window of motion blur.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/capture.hpp"
#include "detect/golden_free.hpp"  // MachineModel

namespace offramps::detect {

/// One deposition segment recovered from consecutive transactions.
struct PathSegment {
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;
  double e_mm = 0.0;  // filament laid along this segment
};

/// One recovered layer.
struct ReconstructedLayer {
  double z_mm = 0.0;
  double min_x = 0.0, max_x = 0.0, min_y = 0.0, max_y = 0.0;
  double path_mm = 0.0;
  double filament_mm = 0.0;
  std::vector<PathSegment> segments;

  [[nodiscard]] double width() const { return max_x - min_x; }
  [[nodiscard]] double depth() const { return max_y - min_y; }
};

/// The recovered part.
struct ReconstructedPart {
  std::vector<ReconstructedLayer> layers;
  double height_mm = 0.0;
  double total_path_mm = 0.0;
  double total_filament_mm = 0.0;
  double bbox_width_mm = 0.0;
  double bbox_depth_mm = 0.0;

  /// Renders one layer as an ASCII occupancy grid, `cols` characters
  /// wide ('#' = material, '.' = empty).  Returns an empty string for an
  /// out-of-range layer.
  [[nodiscard]] std::string ascii_layer(std::size_t layer_index,
                                        std::size_t cols = 40) const;
};

/// Reconstruction tuning.
struct ReconstructOptions {
  /// Layers are grouped by Z quantized to this.
  double z_quantum_mm = 0.05;
  /// Windows mixing mostly-travel with a little residual extrusion smear
  /// long, thin segments across the bed; segments whose implied width is
  /// below this fraction of nominal are discarded as travel blur.
  double min_segment_width_factor = 0.25;
  /// Windows mixing a travel arrival with an un-retract smear short, fat
  /// segments into the part's approach path; implied widths above this
  /// factor of nominal are discarded likewise.
  double max_segment_width_factor = 2.5;
  /// Layers with less filament than this are artifacts (priming blobs).
  double min_layer_filament_mm = 0.3;
};

/// Rebuilds the printed geometry from a transaction capture.
ReconstructedPart reconstruct_part(const core::Capture& capture,
                                   const MachineModel& machine = {},
                                   const ReconstructOptions& options = {});

}  // namespace offramps::detect
