#include "detect/golden_free.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>

#include "detect/compare.hpp"

namespace offramps::detect {
namespace {

constexpr double kDefaultPeriodS = 0.1;

struct WindowDelta {
  std::array<double, 4> mm{};  // per-axis displacement
  double period_s = kDefaultPeriodS;
  double xy_travel() const { return std::hypot(mm[0], mm[1]); }
};

WindowDelta window_delta(const core::Transaction& prev,
                         const core::Transaction& cur,
                         const MachineModel& m) {
  WindowDelta d;
  for (std::size_t a = 0; a < 4; ++a) {
    d.mm[a] = static_cast<double>(cur.counts[a] - prev.counts[a]) /
              m.steps_per_mm[a];
  }
  if (cur.time_ns > prev.time_ns) {
    d.period_s = static_cast<double>(cur.time_ns - prev.time_ns) / 1e9;
  }
  return d;
}

double filament_area(const MachineModel& m) {
  return std::numbers::pi * m.filament_diameter_mm *
         m.filament_diameter_mm / 4.0;
}

/// Implied extrusion width for `e_mm` of filament over `travel_mm` of path
/// at the nominal layer height.
double implied_width(const MachineModel& m, double e_mm, double travel_mm) {
  return e_mm * filament_area(m) /
         (travel_mm * m.nominal_layer_height_mm);
}

}  // namespace

const char* rule_name(Rule r) {
  switch (r) {
    case Rule::kKinematics: return "kinematic limit exceeded";
    case Rule::kBuildVolume: return "position outside build volume";
    case Rule::kNegativeExtrusion: return "net filament went negative";
    case Rule::kDensityLow: return "extrusion density implausibly low";
    case Rule::kDensityHigh: return "extrusion density implausibly high";
    case Rule::kBlobDump: return "stationary filament dump";
    case Rule::kLayerHeight: return "implausible layer advance";
  }
  return "unknown";
}

const char* rule_code(Rule r) {
  switch (r) {
    case Rule::kKinematics: return "kinematics";
    case Rule::kBuildVolume: return "build-volume";
    case Rule::kNegativeExtrusion: return "negative-extrusion";
    case Rule::kDensityLow: return "density-low";
    case Rule::kDensityHigh: return "density-high";
    case Rule::kBlobDump: return "blob-dump";
    case Rule::kLayerHeight: return "layer-height";
  }
  return "unknown";
}

std::size_t GoldenFreeReport::count(Rule r) const {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(),
                    [r](const Violation& v) { return v.rule == r; }));
}

std::string GoldenFreeReport::to_string(std::size_t max_lines) const {
  std::string out;
  char buf[192];
  std::size_t shown = 0;
  for (const auto& v : violations) {
    if (shown++ >= max_lines) {
      out += "...\n";
      break;
    }
    std::snprintf(buf, sizeof(buf),
                  "Index: %u, Rule: %s, value %.3f vs bound %.3f%s%s\n",
                  v.index, rule_name(v.rule), v.value, v.bound,
                  v.detail.empty() ? "" : " - ", v.detail.c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "Windows checked: %zu (printing: %zu); violations: %zu\n",
                windows_checked, printing_windows, violations.size());
  out += buf;
  out += trojan_likely ? "Trojan likely (golden-free)!\n"
                       : "No Trojan suspected (golden-free).\n";
  return out;
}

std::string GoldenFreeReport::to_json() const {
  std::string out = "{\n  \"trojan_likely\": ";
  out += trojan_likely ? "true" : "false";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ",\n  \"windows_checked\": %zu,\n"
                "  \"printing_windows\": %zu",
                windows_checked, printing_windows);
  out += buf;
  out += ",\n  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    out += i == 0 ? "\n" : ",\n";
    std::snprintf(buf, sizeof(buf),
                  "    {\"rule\": \"%s\", \"index\": %u, "
                  "\"value\": %.6f, \"bound\": %.6f, \"detail\": \"",
                  rule_code(v.rule), v.index, v.value, v.bound);
    out += buf;
    for (const char c : v.detail) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"}";
  }
  out += violations.empty() ? "]\n}" : "\n  ]\n}";
  return out;
}

StreamingGoldenFree::StreamingGoldenFree(MachineModel machine)
    : machine_(machine) {}

void StreamingGoldenFree::push(const core::Transaction& txn) {
  if (!have_prev_) {
    have_prev_ = true;
    group_start_index_ = txn.index;
    prev_ = txn;
    return;
  }
  check_window(prev_, txn);
  prev_ = txn;
}

GoldenFreeReport StreamingGoldenFree::report(
    std::size_t min_violations) const {
  GoldenFreeReport rep = report_;
  rep.trojan_likely = rep.windows_checked > 0 &&
                      rep.violations.size() >= min_violations;
  return rep;
}

void StreamingGoldenFree::check_window(const core::Transaction& prev,
                                       const core::Transaction& cur) {
  const MachineModel& machine = machine_;
  GoldenFreeReport& rep = report_;
  const WindowDelta d = window_delta(prev, cur, machine);
  ++rep.windows_checked;

  // R1: kinematic limits.
  for (std::size_t a = 0; a < 4; ++a) {
    const double speed = std::abs(d.mm[a]) / d.period_s;
    const double bound = machine.max_feedrate_mm_s[a] * machine.speed_margin;
    if (speed > bound) {
      rep.violations.push_back({Rule::kKinematics, cur.index, speed, bound,
                                std::string("axis ") + column_name(a)});
    }
  }

  // R2: build volume (positional axes; counts are relative to home).
  for (std::size_t a = 0; a < 3; ++a) {
    const double pos =
        static_cast<double>(cur.counts[a]) / machine.steps_per_mm[a];
    if (pos < -1.0 || pos > machine.axis_length_mm[a] + 1.0) {
      rep.violations.push_back({Rule::kBuildVolume, cur.index, pos,
                                machine.axis_length_mm[a],
                                std::string("axis ") + column_name(a)});
    }
  }

  // R3: net filament must not go meaningfully negative.
  const double net_e =
      static_cast<double>(cur.counts[3]) / machine.steps_per_mm[3];
  if (net_e < -2.0) {
    rep.violations.push_back(
        {Rule::kNegativeExtrusion, cur.index, net_e, -2.0, ""});
  }

  const double travel = d.xy_travel();
  const double de = d.mm[3];

  // R5: stationary filament dump.  A stationary advance is legitimate
  // while it repays earlier retraction (an un-retract); anything beyond
  // that budget is material dumped in place.  Gated until printing has
  // started so the start-of-print nozzle prime is not flagged.
  if (de < 0.0) {
    retract_budget_mm_ = std::min(retract_budget_mm_ - de, 10.0);
  } else if (de > 0.0) {
    const double excess = de - retract_budget_mm_;
    retract_budget_mm_ = std::max(retract_budget_mm_ - de, 0.0);
    if (printing_seen_ && travel < 1.0 && excess > machine.blob_excess_mm) {
      rep.violations.push_back(
          {Rule::kBlobDump, cur.index, excess, machine.blob_excess_mm,
           "filament advanced with the head parked"});
    }
  }

  // R6: layer advances between printing phases must look like layers.
  if (d.mm[2] > 0.0) pending_z_rise_mm_ += d.mm[2];
  const bool printing_window = de > 0.0 && travel >= 0.5;
  if (printing_window) {
    ++rep.printing_windows;
    if (printing_seen_ && pending_z_rise_mm_ > 0.0) {
      if (pending_z_rise_mm_ > machine.max_layer_height_mm ||
          pending_z_rise_mm_ < machine.min_layer_height_mm) {
        rep.violations.push_back({Rule::kLayerHeight, cur.index,
                                  pending_z_rise_mm_,
                                  machine.max_layer_height_mm,
                                  "Z advance between printing phases"});
      }
    }
    printing_seen_ = true;
    pending_z_rise_mm_ = 0.0;
  }

  // R4 accumulation: density judged over batches of PRINTING windows
  // only.  Retraction windows (negative advance) and stationary
  // unretracts are excluded symmetrically, so layer changes cannot
  // skew a batch; window quantization averages out across the batch.
  if (printing_window) {
    group_travel_ += travel;
    group_e_ += de;
    ++group_n_;
  }
  if (group_n_ == 10) {
    if (group_travel_ >= machine.min_window_travel_mm * 5.0 &&
        group_e_ > 0.0) {
      const double width = implied_width(machine, group_e_, group_travel_);
      const double lo =
          machine.nominal_line_width_mm * machine.min_width_factor;
      const double hi =
          machine.nominal_line_width_mm * machine.max_width_factor;
      if (width < lo) {
        rep.violations.push_back({Rule::kDensityLow, group_start_index_,
                                  width, lo,
                                  "implied extrusion width over 1 s"});
      } else if (width > hi) {
        rep.violations.push_back({Rule::kDensityHigh, group_start_index_,
                                  width, hi,
                                  "implied extrusion width over 1 s"});
      }
    }
    group_travel_ = 0.0;
    group_e_ = 0.0;
    group_n_ = 0;
    group_start_index_ = cur.index;
  }
}

GoldenFreeReport analyze_golden_free(const core::Capture& capture,
                                     const MachineModel& machine,
                                     std::size_t min_violations) {
  StreamingGoldenFree checker(machine);
  for (const auto& txn : capture.transactions) checker.push(txn);
  return checker.report(min_violations);
}

}  // namespace offramps::detect
