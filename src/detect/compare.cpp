#include "detect/compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace offramps::detect {

const char* column_name(std::size_t column) {
  switch (column) {
    case 0: return "X";
    case 1: return "Y";
    case 2: return "Z";
    case 3: return "E";
    default: return "?";
  }
}

bool compare_transaction(const core::Transaction& golden,
                         const core::Transaction& observed,
                         const CompareOptions& options,
                         std::vector<Mismatch>& out) {
  bool any = false;
  // Counts where quantization noise alone would break the margin are
  // exempt; the floor scales as margins tighten.
  std::int64_t min_count = options.min_count_for_margin;
  if (options.quantization_steps > 0.0 && options.margin_pct > 0.0) {
    min_count = std::max(
        min_count, static_cast<std::int64_t>(
                       options.quantization_steps * 100.0 /
                       options.margin_pct));
  }
  for (std::size_t c = 0; c < 4; ++c) {
    const auto g = static_cast<std::int64_t>(golden.counts[c]);
    const auto o = static_cast<std::int64_t>(observed.counts[c]);
    if (g == o) continue;
    // Skip percentage judgement on near-zero counts: immediately after
    // homing a single step of drift would register as a huge percentage.
    if (std::llabs(g) < min_count && std::llabs(o) < min_count) {
      continue;
    }
    const double pct = 100.0 * static_cast<double>(std::llabs(g - o)) /
                       static_cast<double>(std::max<std::int64_t>(
                           std::llabs(g), 1));
    if (pct > options.margin_pct) {
      out.push_back({golden.index, c, golden.counts[c], observed.counts[c],
                     pct});
      any = true;
    }
  }
  return any;
}

Report compare(const core::Capture& golden, const core::Capture& observed,
               const CompareOptions& options) {
  Report rep;
  rep.golden_length = golden.transactions.size();
  rep.observed_length = observed.transactions.size();

  const std::size_t n =
      std::min(golden.transactions.size(), observed.transactions.size());
  rep.transactions_compared = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (options.window_slack == 0) {
      compare_transaction(golden.transactions[i], observed.transactions[i],
                          options, rep.mismatches);
      continue;
    }
    // Slack matching: the observed window passes if ANY golden window
    // within +/- slack matches it; otherwise report the mismatches of
    // the best (fewest-violations) candidate.
    const auto slack = static_cast<std::int64_t>(options.window_slack);
    std::vector<Mismatch> best;
    bool matched = false;
    for (std::int64_t s = -slack; s <= slack && !matched; ++s) {
      const std::int64_t gi = static_cast<std::int64_t>(i) + s;
      if (gi < 0 ||
          gi >= static_cast<std::int64_t>(golden.transactions.size())) {
        continue;
      }
      std::vector<Mismatch> candidate;
      if (!compare_transaction(
              golden.transactions[static_cast<std::size_t>(gi)],
              observed.transactions[i], options, candidate)) {
        matched = true;
      } else if (best.empty() || candidate.size() < best.size()) {
        best = std::move(candidate);
      }
    }
    if (!matched) {
      rep.mismatches.insert(rep.mismatches.end(), best.begin(), best.end());
    }
  }
  for (const auto& m : rep.mismatches) {
    rep.largest_percent = std::max(rep.largest_percent, m.percent);
  }

  // Print-length anomaly: a Trojan that adds or removes work changes how
  // long the print runs, hence how many transactions stream out.
  const double longer = static_cast<double>(
      std::max(rep.golden_length, rep.observed_length));
  if (longer > 0.0) {
    const double diff =
        std::abs(static_cast<double>(rep.golden_length) -
                 static_cast<double>(rep.observed_length)) /
        longer;
    rep.length_anomaly = diff > options.length_tolerance;
  }

  // Final 0%-margin totals check.
  rep.golden_final = golden.final_counts;
  rep.observed_final = observed.final_counts;
  if (options.final_check) {
    rep.final_counts_match = golden.final_counts == observed.final_counts;
  }

  rep.trojan_likely = !rep.mismatches.empty() || rep.length_anomaly ||
                      !rep.final_counts_match;
  return rep;
}

std::string Report::to_string(std::size_t max_lines) const {
  std::string out;
  char buf[160];
  std::size_t shown = 0;
  for (const auto& m : mismatches) {
    if (shown++ >= max_lines) {
      out += "...\n";
      break;
    }
    std::snprintf(buf, sizeof(buf),
                  "Index: %u, Column: %s, Values: %d, %d\n", m.index,
                  column_name(m.column), m.golden, m.observed);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "Largest percent difference found: %.2f%%\n",
                largest_percent);
  out += buf;
  std::snprintf(buf, sizeof(buf), "Number of transactions compared: %zu\n",
                transactions_compared);
  out += buf;
  std::snprintf(buf, sizeof(buf), "Number of mismatches: %zu\n",
                mismatch_count());
  out += buf;
  if (length_anomaly) {
    std::snprintf(buf, sizeof(buf),
                  "Print length anomaly: golden %zu vs observed %zu "
                  "transactions\n",
                  golden_length, observed_length);
    out += buf;
  }
  if (!final_counts_match) {
    std::snprintf(buf, sizeof(buf),
                  "Final counts mismatch: golden [%lld, %lld, %lld, %lld] "
                  "vs observed [%lld, %lld, %lld, %lld]\n",
                  static_cast<long long>(golden_final[0]),
                  static_cast<long long>(golden_final[1]),
                  static_cast<long long>(golden_final[2]),
                  static_cast<long long>(golden_final[3]),
                  static_cast<long long>(observed_final[0]),
                  static_cast<long long>(observed_final[1]),
                  static_cast<long long>(observed_final[2]),
                  static_cast<long long>(observed_final[3]));
    out += buf;
  }
  out += trojan_likely ? "Trojan likely!\n" : "No Trojan suspected.\n";
  return out;
}

}  // namespace offramps::detect
