#include "detect/align.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace offramps::detect {
namespace {

/// Mean absolute per-column count difference with `observed` shifted by
/// `shift` windows against `golden`.
double shifted_cost(const core::Capture& golden,
                    const core::Capture& observed, int shift,
                    std::size_t* overlap_out) {
  const auto& g = golden.transactions;
  const auto& o = observed.transactions;
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < o.size(); ++i) {
    const std::int64_t gi = static_cast<std::int64_t>(i) + shift;
    if (gi < 0 || gi >= static_cast<std::int64_t>(g.size())) continue;
    const auto& gt = g[static_cast<std::size_t>(gi)];
    for (std::size_t c = 0; c < 4; ++c) {
      total += std::abs(static_cast<double>(gt.counts[c]) -
                        static_cast<double>(o[i].counts[c]));
    }
    ++n;
  }
  if (overlap_out != nullptr) *overlap_out = n;
  if (n == 0) return std::numeric_limits<double>::infinity();
  return total / (static_cast<double>(n) * 4.0);
}

}  // namespace

AlignmentResult best_alignment(const core::Capture& golden,
                               const core::Capture& observed,
                               int max_shift) {
  AlignmentResult result;
  result.unshifted_cost = shifted_cost(golden, observed, 0, nullptr);
  result.cost = result.unshifted_cost;
  result.shift = 0;
  std::size_t overlap = 0;
  shifted_cost(golden, observed, 0, &overlap);
  result.overlap = overlap;
  for (int s = -max_shift; s <= max_shift; ++s) {
    if (s == 0) continue;
    std::size_t n = 0;
    const double cost = shifted_cost(golden, observed, s, &n);
    // Demand meaningful overlap so extreme shifts cannot "win" by
    // comparing almost nothing.
    if (n * 2 < observed.transactions.size()) continue;
    if (cost < result.cost) {
      result.cost = cost;
      result.shift = s;
      result.overlap = n;
    }
  }
  return result;
}

Report compare_aligned(const core::Capture& golden,
                       const core::Capture& observed,
                       const CompareOptions& options, int max_shift,
                       AlignmentResult* alignment_out) {
  const AlignmentResult alignment =
      best_alignment(golden, observed, max_shift);
  if (alignment_out != nullptr) *alignment_out = alignment;

  Report rep;
  rep.golden_length = golden.transactions.size();
  rep.observed_length = observed.transactions.size();
  for (std::size_t i = 0; i < observed.transactions.size(); ++i) {
    const std::int64_t gi =
        static_cast<std::int64_t>(i) + alignment.shift;
    if (gi < 0 ||
        gi >= static_cast<std::int64_t>(golden.transactions.size())) {
      continue;
    }
    ++rep.transactions_compared;
    compare_transaction(golden.transactions[static_cast<std::size_t>(gi)],
                        observed.transactions[i], options, rep.mismatches);
  }
  for (const auto& m : rep.mismatches) {
    rep.largest_percent = std::max(rep.largest_percent, m.percent);
  }

  const double longer = static_cast<double>(
      std::max(rep.golden_length, rep.observed_length));
  if (longer > 0.0) {
    const double diff =
        std::abs(static_cast<double>(rep.golden_length) -
                 static_cast<double>(rep.observed_length)) /
        longer;
    rep.length_anomaly = diff > options.length_tolerance;
  }
  rep.golden_final = golden.final_counts;
  rep.observed_final = observed.final_counts;
  if (options.final_check) {
    rep.final_counts_match = golden.final_counts == observed.final_counts;
  }
  rep.trojan_likely = !rep.mismatches.empty() || rep.length_anomaly ||
                      !rep.final_counts_match;
  return rep;
}

}  // namespace offramps::detect
