// Trojan detection by golden-capture comparison (paper section V-C).
//
// Strategy: a print's transaction series is compared, index by index and
// column by column, against a known-good ("golden") capture.  Cumulative
// step counts differing by more than the margin of error (5% in the paper,
// to absorb "time noise" drift between asynchronous prints) are mismatches.
// A final check with a 0% margin verifies the end-of-print totals exactly.
// Any mismatch - windowed or final - means interference: "Trojan likely!".
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/capture.hpp"

namespace offramps::detect {

/// Detection tuning.
struct CompareOptions {
  /// Per-transaction margin of error, percent (paper: 5%).
  double margin_pct = 5.0;
  /// Counts smaller than this are ignored in percentage terms (the first
  /// windows after homing hold single-digit counts where one step of
  /// jitter is a huge percentage).
  std::int64_t min_count_for_margin = 20;
  /// Steps of inherent timing-quantization noise per window boundary.
  /// Counts below quantization_steps * 100 / margin_pct are exempt from
  /// the percentage test (below that, this noise alone exceeds the
  /// margin by construction).  0 disables the scaling floor.
  double quantization_steps = 2.0;
  /// Run the end-of-print exact (0% margin) totals check.
  bool final_check = true;
  /// Flag a print whose transaction count differs from golden by more
  /// than this fraction (Trojans that lengthen/shorten the print).
  double length_tolerance = 0.02;
  /// Per-window timing slack: observed window i is compared against
  /// golden windows [i-slack, i+slack] and counts as a mismatch only if
  /// every candidate mismatches.  Absorbs gradual time-noise drift so a
  /// tighter margin becomes usable; 0 = strict positional pairing (the
  /// paper's method).
  std::uint32_t window_slack = 0;
};

/// One transaction/column disagreement.
struct Mismatch {
  std::uint32_t index = 0;       // transaction index
  std::size_t column = 0;        // 0..3 = X, Y, Z, E
  std::int32_t golden = 0;
  std::int32_t observed = 0;
  double percent = 0.0;          // |g - o| / max(|g|, 1) * 100
};

/// Full detection report (the paper's Figure 4c output).
struct Report {
  std::vector<Mismatch> mismatches;
  double largest_percent = 0.0;
  std::size_t transactions_compared = 0;
  std::size_t golden_length = 0;
  std::size_t observed_length = 0;
  bool length_anomaly = false;
  bool final_counts_match = true;
  std::array<std::int64_t, 4> golden_final{};
  std::array<std::int64_t, 4> observed_final{};
  bool trojan_likely = false;

  [[nodiscard]] std::size_t mismatch_count() const {
    return mismatches.size();
  }
  /// Renders the report in the tool-output style of paper Figure 4c.
  [[nodiscard]] std::string to_string(std::size_t max_lines = 8) const;
};

/// Column display name ("X", "Y", "Z", "E").
const char* column_name(std::size_t column);

/// Compares an observed print against the golden capture.
Report compare(const core::Capture& golden, const core::Capture& observed,
               const CompareOptions& options = {});

/// Compares one transaction pair, appending mismatches to `out`.
/// Returns true if any column mismatched.  Exposed for the real-time
/// monitor, which runs the same test as transactions arrive.
bool compare_transaction(const core::Transaction& golden,
                         const core::Transaction& observed,
                         const CompareOptions& options,
                         std::vector<Mismatch>& out);

}  // namespace offramps::detect
