#include "detect/reconstruct.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>

namespace offramps::detect {

ReconstructedPart reconstruct_part(const core::Capture& capture,
                                   const MachineModel& machine,
                                   const ReconstructOptions& options) {
  ReconstructedPart part;
  const auto& txns = capture.transactions;
  if (txns.size() < 2) return part;

  const double filament_area = std::numbers::pi *
                               machine.filament_diameter_mm *
                               machine.filament_diameter_mm / 4.0;

  std::map<std::int64_t, ReconstructedLayer> layers;
  for (std::size_t i = 1; i < txns.size(); ++i) {
    const double de =
        static_cast<double>(txns[i].counts[3] - txns[i - 1].counts[3]) /
        machine.steps_per_mm[3];
    if (de <= 0.0) continue;  // travel / retraction: nothing deposited

    const double x0 =
        static_cast<double>(txns[i - 1].counts[0]) / machine.steps_per_mm[0];
    const double y0 =
        static_cast<double>(txns[i - 1].counts[1]) / machine.steps_per_mm[1];
    const double x1 =
        static_cast<double>(txns[i].counts[0]) / machine.steps_per_mm[0];
    const double y1 =
        static_cast<double>(txns[i].counts[1]) / machine.steps_per_mm[1];
    const double z =
        static_cast<double>(txns[i].counts[2]) / machine.steps_per_mm[2];

    // Stationary extrusion (priming, un-retracts, blob dumps) deposits a
    // pile at the nozzle, not part geometry.
    const double length = std::hypot(x1 - x0, y1 - y0);
    if (length < 0.05) continue;
    // Travel-contamination filters.  A window dominated by travel with
    // residual extrusion implies an unprintably thin line; a window
    // mixing a long travel arrival with an un-retract implies an
    // unprintably wide one.  Both smear geometry outside the part.
    if (length > 2.0) {
      const double implied_width =
          de * filament_area / (length * machine.nominal_layer_height_mm);
      if (implied_width < options.min_segment_width_factor *
                              machine.nominal_line_width_mm ||
          implied_width > options.max_segment_width_factor *
                              machine.nominal_line_width_mm) {
        continue;
      }
    }

    const auto bin =
        static_cast<std::int64_t>(std::llround(z / options.z_quantum_mm));
    auto [it, inserted] = layers.try_emplace(bin);
    ReconstructedLayer& L = it->second;
    if (inserted) {
      L.z_mm = z;
      L.min_x = std::min(x0, x1);
      L.max_x = std::max(x0, x1);
      L.min_y = std::min(y0, y1);
      L.max_y = std::max(y0, y1);
    }
    L.min_x = std::min({L.min_x, x0, x1});
    L.max_x = std::max({L.max_x, x0, x1});
    L.min_y = std::min({L.min_y, y0, y1});
    L.max_y = std::max({L.max_y, y0, y1});
    L.path_mm += std::hypot(x1 - x0, y1 - y0);
    L.filament_mm += de;
    L.segments.push_back({x0, y0, x1, y1, de});
  }

  if (layers.empty()) return part;
  part.layers.reserve(layers.size());
  double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
  for (auto& [bin, L] : layers) {
    if (L.filament_mm < options.min_layer_filament_mm) continue;  // blob
    min_x = std::min(min_x, L.min_x);
    max_x = std::max(max_x, L.max_x);
    min_y = std::min(min_y, L.min_y);
    max_y = std::max(max_y, L.max_y);
    part.total_path_mm += L.path_mm;
    part.total_filament_mm += L.filament_mm;
    part.layers.push_back(std::move(L));
  }
  if (part.layers.empty()) return part;
  part.height_mm = part.layers.back().z_mm;
  part.bbox_width_mm = max_x - min_x;
  part.bbox_depth_mm = max_y - min_y;
  return part;
}

std::string ReconstructedPart::ascii_layer(std::size_t layer_index,
                                           std::size_t cols) const {
  if (layer_index >= layers.size() || cols < 2) return {};
  const ReconstructedLayer& L = layers[layer_index];
  const double w = std::max(L.width(), 1e-6);
  const double h = std::max(L.depth(), 1e-6);
  // Terminal cells are ~2x taller than wide; halve the row count so the
  // rendering keeps the part's aspect ratio.
  const auto rows = std::max<std::size_t>(
      2, static_cast<std::size_t>(static_cast<double>(cols) * h / w / 2.0));
  std::vector<std::string> grid(rows, std::string(cols, '.'));

  auto plot = [&](double x, double y) {
    const auto cx = static_cast<std::size_t>(
        std::min((x - L.min_x) / w, 0.999) * static_cast<double>(cols));
    const auto cy = static_cast<std::size_t>(
        std::min((y - L.min_y) / h, 0.999) * static_cast<double>(rows));
    grid[rows - 1 - cy][cx] = '#';
  };
  for (const auto& seg : L.segments) {
    const double len = std::hypot(seg.x1 - seg.x0, seg.y1 - seg.y0);
    const int steps = std::max(2, static_cast<int>(len / (w /
                                  static_cast<double>(cols))) * 2);
    for (int s = 0; s <= steps; ++s) {
      const double t = static_cast<double>(s) / steps;
      plot(seg.x0 + t * (seg.x1 - seg.x0), seg.y0 + t * (seg.y1 - seg.y0));
    }
  }
  std::string out;
  for (const auto& row : grid) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace offramps::detect
