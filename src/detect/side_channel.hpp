// Side-channel signature detection - reimplementations of the defense
// classes the paper compares itself against, used here as baselines in
// the lossless-vs-lossy ablation:
//
//   * power signatures (Gatlin et al. 2019): golden and observed traces
//     are reduced to per-window mean power; a window disagreeing by more
//     than the tolerance is a mismatch, and sustained mismatches mean
//     sabotage;
//   * multi-modal acoustic/vibration sensing (arXiv:2110.02259): the
//     same windowed-mean machinery over any scalar emission trace;
//   * audio signing (arXiv:1705.06454): the golden acoustic trace is
//     distilled into a compact master signature (windowed levels plus a
//     digest of the recording), and an observed print is verified
//     against that signature rather than the raw golden trace.
//
// Each channel's measurement noise forces a generous tolerance, which is
// exactly the sensitivity gap OFFRAMPS' direct signal taps close.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "plant/side_channel.hpp"

namespace offramps::detect {

/// Power-signature comparison tuning.
struct PowerSignatureOptions {
  double window_s = 1.0;        // averaging window
  double tolerance_w = 3.0;     // allowed mean-power deviation per window
  std::uint32_t consecutive_to_flag = 3;
  /// Ignore windows this close to print start/end (alignment slop).
  std::uint32_t skip_edge_windows = 2;
};

/// One disagreeing window.
struct PowerMismatch {
  std::size_t window = 0;
  double golden_w = 0.0;
  double observed_w = 0.0;
};

/// Power-signature verdict.
struct PowerReport {
  std::vector<PowerMismatch> mismatches;
  std::size_t windows_compared = 0;
  double largest_delta_w = 0.0;
  bool sabotage_likely = false;

  [[nodiscard]] std::string to_string(std::size_t max_lines = 6) const;
  /// Machine-readable rendering, in the static analyzer's JSON
  /// conventions, so the fleet report can embed this channel next to the
  /// step-count ones.
  [[nodiscard]] std::string to_json() const;
};

/// Generic side-channel (acoustic/vibration) comparison tuning.
struct SideSignatureOptions {
  double window_s = 1.0;        // averaging window
  double tolerance = 4.0;       // allowed mean-level deviation per window
  std::uint32_t consecutive_to_flag = 3;
  /// Ignore windows this close to print start/end (alignment slop).
  std::uint32_t skip_edge_windows = 2;
};

/// One disagreeing window of a generic side channel.
struct SideMismatch {
  std::size_t window = 0;
  double golden = 0.0;
  double observed = 0.0;
};

/// Generic side-channel verdict.
struct SideReport {
  std::vector<SideMismatch> mismatches;
  std::size_t windows_compared = 0;
  double largest_delta = 0.0;
  bool sabotage_likely = false;

  [[nodiscard]] std::string to_string(std::size_t max_lines = 6) const;
  [[nodiscard]] std::string to_json() const;
};

/// Audio-signing master signature: the golden recording reduced to its
/// per-window levels plus a digest binding those levels to the window
/// size.  The digest is what a reference cache or a signed release
/// manifest would store and check.
struct MasterSignature {
  double window_s = 1.0;
  std::vector<double> levels;
  std::uint64_t digest = 0;

  [[nodiscard]] bool empty() const { return levels.empty(); }
};

/// Reduces a trace to per-window mean power.
std::vector<double> window_means(const plant::PowerTrace& trace,
                                 double window_s);

/// Reduces a generic side-channel trace to per-window mean levels.
std::vector<double> window_means(const plant::SideTrace& trace,
                                 double window_s);

/// Compares an observed print's power trace against the golden trace.
PowerReport compare_power(const plant::PowerTrace& golden,
                          const plant::PowerTrace& observed,
                          const PowerSignatureOptions& options = {});

/// Compares an observed side-channel trace against the golden trace.
SideReport compare_side(const plant::SideTrace& golden,
                        const plant::SideTrace& observed,
                        const SideSignatureOptions& options = {});

/// FNV-1a over the signature's window size and levels (bit patterns, so
/// the digest is exact and platform-stable).
std::uint64_t signature_digest(const std::vector<double>& levels,
                               double window_s);

/// Distills a golden recording into a master signature.
MasterSignature make_master_signature(const plant::SideTrace& golden,
                                      double window_s);

/// Verifies an observed recording against a master signature (the audio
/// signing check: windowed levels within tolerance, sustained deviation
/// means the print diverged from the signed recording).
SideReport verify_signature(const MasterSignature& signature,
                            const plant::SideTrace& observed,
                            const SideSignatureOptions& options = {});

}  // namespace offramps::detect
