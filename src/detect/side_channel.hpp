// Power-signature detection - a reimplementation of the side-channel
// defense class the paper compares itself against (actuator power
// signatures, Gatlin et al. 2019), used here as the baseline in the
// lossless-vs-lossy ablation.
//
// Method (as in that literature): golden and observed traces are reduced
// to per-window mean power; a window disagreeing by more than the
// tolerance is a mismatch, and sustained mismatches mean sabotage.  The
// channel's measurement noise forces a generous tolerance, which is
// exactly the sensitivity gap OFFRAMPS' direct signal taps close.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "plant/side_channel.hpp"

namespace offramps::detect {

/// Power-signature comparison tuning.
struct PowerSignatureOptions {
  double window_s = 1.0;        // averaging window
  double tolerance_w = 3.0;     // allowed mean-power deviation per window
  std::uint32_t consecutive_to_flag = 3;
  /// Ignore windows this close to print start/end (alignment slop).
  std::uint32_t skip_edge_windows = 2;
};

/// One disagreeing window.
struct PowerMismatch {
  std::size_t window = 0;
  double golden_w = 0.0;
  double observed_w = 0.0;
};

/// Power-signature verdict.
struct PowerReport {
  std::vector<PowerMismatch> mismatches;
  std::size_t windows_compared = 0;
  double largest_delta_w = 0.0;
  bool sabotage_likely = false;

  [[nodiscard]] std::string to_string(std::size_t max_lines = 6) const;
  /// Machine-readable rendering, in the static analyzer's JSON
  /// conventions, so the fleet report can embed this channel next to the
  /// step-count ones.
  [[nodiscard]] std::string to_json() const;
};

/// Reduces a trace to per-window mean power.
std::vector<double> window_means(const plant::PowerTrace& trace,
                                 double window_s);

/// Compares an observed print's power trace against the golden trace.
PowerReport compare_power(const plant::PowerTrace& golden,
                          const plant::PowerTrace& observed,
                          const PowerSignatureOptions& options = {});

}  // namespace offramps::detect
