// Golden-free Trojan detection (the paper's Discussion names "new
// golden-free methods for detection" as the platform's next step).
//
// Instead of comparing against a verified reference capture, the monitor
// checks *physical plausibility invariants* of the transaction stream -
// properties any legitimate FFF print must satisfy regardless of the
// part being printed:
//
//   R1 kinematics   - per-window count deltas cannot exceed the machine's
//                     configured axis speed limits;
//   R2 build volume - cumulative positions must stay inside the machine;
//   R3 E monotone   - net filament cannot go meaningfully negative;
//   R4 density      - while XY moves and E advances, the implied
//                     extrusion width must be physically printable
//                     (catches flow-scaling Trojans like Flaw3D
//                     reduction);
//   R5 blobs        - sustained filament advance with no XY motion is a
//                     blob dump (catches relocation Trojans);
//   R6 layer height - Z advances between printing phases must look like
//                     layers, not arbitrary lifts.
//
// The capture reflects the firmware-side signals, so - like the paper's
// golden comparison - this detects g-code/firmware-level manipulation;
// Trojans downstream of the tap need the golden-free *part* checks
// instead.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/capture.hpp"

namespace offramps::detect {

/// Machine description needed to interpret counts physically.
struct MachineModel {
  std::array<double, 4> steps_per_mm = {100.0, 100.0, 400.0, 280.0};
  std::array<double, 4> max_feedrate_mm_s = {200.0, 200.0, 12.0, 120.0};
  std::array<double, 3> axis_length_mm = {250.0, 210.0, 210.0};
  /// Printable extrusion-width band: implied width outside
  /// [min, max] x nominal is implausible.
  double nominal_line_width_mm = 0.45;
  double nominal_layer_height_mm = 0.25;
  double filament_diameter_mm = 1.75;
  double min_width_factor = 0.55;   // < 55% of nominal = starved
  double max_width_factor = 2.5;    // > 250% of nominal = flooded
  /// Layer heights outside this band are anomalous.
  double min_layer_height_mm = 0.04;
  double max_layer_height_mm = 0.6;
  /// Windows with less XY travel than this are ignored by the density
  /// rule (corner dwells, retraction windows).
  double min_window_travel_mm = 1.0;
  /// Blob rule: stationary filament advance is legitimate only while it
  /// repays earlier retraction (an un-retract); advance exceeding that
  /// budget by more than this is a dump.
  double blob_excess_mm = 0.3;
  /// Kinematics rule headroom over the configured maxima.
  double speed_margin = 1.15;
};

/// Rules a window can violate.
enum class Rule : std::uint8_t {
  kKinematics,
  kBuildVolume,
  kNegativeExtrusion,
  kDensityLow,
  kDensityHigh,
  kBlobDump,
  kLayerHeight,
};

const char* rule_name(Rule r);
/// Stable machine-readable rule code ("blob-dump", ...) for JSON output.
const char* rule_code(Rule r);

/// One violated invariant.
struct Violation {
  Rule rule = Rule::kKinematics;
  std::uint32_t index = 0;  // transaction where it was observed
  double value = 0.0;       // measured quantity
  double bound = 0.0;       // the bound it broke
  std::string detail;
};

/// Golden-free analysis result.
struct GoldenFreeReport {
  std::vector<Violation> violations;
  std::size_t windows_checked = 0;
  std::size_t printing_windows = 0;  // windows with extrusion activity
  bool trojan_likely = false;

  [[nodiscard]] std::size_t count(Rule r) const;
  [[nodiscard]] std::string to_string(std::size_t max_lines = 8) const;
  /// Machine-readable rendering, in the static analyzer's JSON
  /// conventions (snake_case keys, stable rule codes), so the fleet
  /// report can embed this channel next to the others.
  [[nodiscard]] std::string to_json() const;
};

/// Incremental golden-free checker: feed transactions as they arrive and
/// read the violation tally at any point.  This is the engine behind
/// analyze_golden_free() and the golden-free channel of the fleet
/// service's online detector - all rule state (retraction debt, pending
/// Z rise, density batches) advances one window at a time, so cost per
/// transaction is O(1) and no capture history is retained.
class StreamingGoldenFree {
 public:
  explicit StreamingGoldenFree(MachineModel machine = {});

  /// Feeds the next transaction (windows form between consecutive ones).
  void push(const core::Transaction& txn);

  [[nodiscard]] std::size_t violation_count() const {
    return report_.violations.size();
  }
  [[nodiscard]] std::size_t windows_checked() const {
    return report_.windows_checked;
  }

  /// Snapshot of the analysis so far.  `min_violations` debounces
  /// isolated sampling artifacts, exactly as analyze_golden_free().
  [[nodiscard]] GoldenFreeReport report(std::size_t min_violations = 2) const;

 private:
  void check_window(const core::Transaction& prev,
                    const core::Transaction& cur);

  MachineModel machine_;
  GoldenFreeReport report_;
  bool have_prev_ = false;
  core::Transaction prev_{};
  double pending_z_rise_mm_ = 0.0;
  bool printing_seen_ = false;
  double retract_budget_mm_ = 0.0;  // filament owed back by un-retraction
  // Rolling per-second (10-window) accumulation for the density rule.
  double group_travel_ = 0.0;
  double group_e_ = 0.0;
  std::size_t group_n_ = 0;
  std::uint32_t group_start_index_ = 0;
};

/// Analyzes a finished capture against the machine model.
/// `min_violations` debounces isolated sampling artifacts.
GoldenFreeReport analyze_golden_free(const core::Capture& capture,
                                     const MachineModel& machine = {},
                                     std::size_t min_violations = 2);

}  // namespace offramps::detect
