// Capture alignment (extension on paper section V-C).
//
// The paper attributes its 5% margin to "the challenge of synchronizing
// the step counting with the UART transactions": two prints of the same
// g-code drift in time, so transaction i of one run corresponds to
// transaction i +/- a little of the other.  Aligning the two series
// before comparison absorbs that drift and lets the detector run a much
// tighter margin - the quantitative counterpart of the paper's remark
// that better synchronization would shrink the margin.
//
// Method: search integer window shifts s in [-max_shift, +max_shift],
// score each by the mean absolute count difference over the overlap, and
// keep the minimum.  (A discrete cross-correlation, computed the way the
// fabric or host tooling cheaply could.)
#pragma once

#include <cstdint>

#include "core/capture.hpp"
#include "detect/compare.hpp"

namespace offramps::detect {

/// Result of an alignment search.
struct AlignmentResult {
  int shift = 0;          // observed[i] best matches golden[i + shift]
  double cost = 0.0;      // mean |count delta| per column at best shift
  double unshifted_cost = 0.0;  // same metric at shift 0
  std::size_t overlap = 0;      // windows compared at the best shift
};

/// Finds the integer shift aligning `observed` to `golden`.
AlignmentResult best_alignment(const core::Capture& golden,
                               const core::Capture& observed,
                               int max_shift = 10);

/// Runs the standard golden comparison with the observed series aligned
/// by its best shift first.  Alignment only re-pairs windows - final
/// counts (and the exact end-of-print check) are untouched.  When
/// `alignment_out` is non-null the chosen shift is reported.
Report compare_aligned(const core::Capture& golden,
                       const core::Capture& observed,
                       const CompareOptions& options = {},
                       int max_shift = 10,
                       AlignmentResult* alignment_out = nullptr);

}  // namespace offramps::detect
