#include "detect/side_channel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace offramps::detect {

std::vector<double> window_means(const plant::PowerTrace& trace,
                                 double window_s) {
  std::vector<double> means;
  if (trace.empty() || window_s <= 0.0) return means;
  const double t0 = trace.front().t_s;
  double sum = 0.0;
  std::size_t n = 0;
  std::size_t window = 0;
  for (const auto& s : trace) {
    const auto w = static_cast<std::size_t>((s.t_s - t0) / window_s);
    if (w != window) {
      if (n > 0) means.push_back(sum / static_cast<double>(n));
      // Emit empty windows (gaps) as repeats of the last mean.
      while (means.size() < w) {
        means.push_back(means.empty() ? 0.0 : means.back());
      }
      window = w;
      sum = 0.0;
      n = 0;
    }
    sum += s.watts;
    ++n;
  }
  if (n > 0) means.push_back(sum / static_cast<double>(n));
  return means;
}

PowerReport compare_power(const plant::PowerTrace& golden,
                          const plant::PowerTrace& observed,
                          const PowerSignatureOptions& options) {
  PowerReport rep;
  const auto g = window_means(golden, options.window_s);
  const auto o = window_means(observed, options.window_s);
  const std::size_t n = std::min(g.size(), o.size());
  rep.windows_compared = n;

  std::uint32_t consecutive = 0;
  const std::size_t skip = options.skip_edge_windows;
  for (std::size_t i = skip; i + skip < n; ++i) {
    const double delta = std::abs(g[i] - o[i]);
    rep.largest_delta_w = std::max(rep.largest_delta_w, delta);
    if (delta > options.tolerance_w) {
      rep.mismatches.push_back({i, g[i], o[i]});
      ++consecutive;
      if (consecutive >= options.consecutive_to_flag) {
        rep.sabotage_likely = true;
      }
    } else {
      consecutive = 0;
    }
  }
  return rep;
}

std::string PowerReport::to_string(std::size_t max_lines) const {
  std::string out;
  char buf[128];
  std::size_t shown = 0;
  for (const auto& m : mismatches) {
    if (shown++ >= max_lines) {
      out += "...\n";
      break;
    }
    std::snprintf(buf, sizeof(buf),
                  "Window %zu: golden %.1f W, observed %.1f W\n", m.window,
                  m.golden_w, m.observed_w);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "Windows compared: %zu; mismatches: %zu; largest delta "
                "%.1f W\n",
                windows_compared, mismatches.size(), largest_delta_w);
  out += buf;
  out += sabotage_likely ? "Sabotage likely (power signature)!\n"
                         : "No sabotage suspected (power signature).\n";
  return out;
}

std::string PowerReport::to_json() const {
  std::string out = "{\n  \"sabotage_likely\": ";
  out += sabotage_likely ? "true" : "false";
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                ",\n  \"windows_compared\": %zu,\n"
                "  \"largest_delta_w\": %.6f",
                windows_compared, largest_delta_w);
  out += buf;
  out += ",\n  \"mismatches\": [";
  for (std::size_t i = 0; i < mismatches.size(); ++i) {
    const PowerMismatch& m = mismatches[i];
    out += i == 0 ? "\n" : ",\n";
    std::snprintf(buf, sizeof(buf),
                  "    {\"window\": %zu, \"golden_w\": %.6f, "
                  "\"observed_w\": %.6f}",
                  m.window, m.golden_w, m.observed_w);
    out += buf;
  }
  out += mismatches.empty() ? "]\n}" : "\n  ]\n}";
  return out;
}

}  // namespace offramps::detect
