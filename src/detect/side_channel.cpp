#include "detect/side_channel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace offramps::detect {

namespace {

/// Windowed-mean reduction shared by every scalar side channel.  `value`
/// extracts the sample's measurement.
template <typename Trace, typename Value>
std::vector<double> window_means_impl(const Trace& trace, double window_s,
                                      Value value) {
  std::vector<double> means;
  if (trace.empty() || window_s <= 0.0) return means;
  const double t0 = trace.front().t_s;
  double sum = 0.0;
  std::size_t n = 0;
  std::size_t window = 0;
  for (const auto& s : trace) {
    const auto w = static_cast<std::size_t>((s.t_s - t0) / window_s);
    if (w != window) {
      if (n > 0) means.push_back(sum / static_cast<double>(n));
      // Emit empty windows (gaps) as repeats of the last mean.
      while (means.size() < w) {
        means.push_back(means.empty() ? 0.0 : means.back());
      }
      window = w;
      sum = 0.0;
      n = 0;
    }
    sum += value(s);
    ++n;
  }
  if (n > 0) means.push_back(sum / static_cast<double>(n));
  return means;
}

/// Windowed compare shared by compare_side and verify_signature.
SideReport compare_windows(const std::vector<double>& g,
                           const std::vector<double>& o,
                           const SideSignatureOptions& options) {
  SideReport rep;
  const std::size_t n = std::min(g.size(), o.size());
  rep.windows_compared = n;

  std::uint32_t consecutive = 0;
  const std::size_t skip = options.skip_edge_windows;
  for (std::size_t i = skip; i + skip < n; ++i) {
    const double delta = std::abs(g[i] - o[i]);
    rep.largest_delta = std::max(rep.largest_delta, delta);
    if (delta > options.tolerance) {
      rep.mismatches.push_back({i, g[i], o[i]});
      ++consecutive;
      if (consecutive >= options.consecutive_to_flag) {
        rep.sabotage_likely = true;
      }
    } else {
      consecutive = 0;
    }
  }
  return rep;
}

}  // namespace

std::vector<double> window_means(const plant::PowerTrace& trace,
                                 double window_s) {
  return window_means_impl(trace, window_s,
                           [](const plant::PowerSample& s) { return s.watts; });
}

std::vector<double> window_means(const plant::SideTrace& trace,
                                 double window_s) {
  return window_means_impl(trace, window_s,
                           [](const plant::SideSample& s) { return s.value; });
}

PowerReport compare_power(const plant::PowerTrace& golden,
                          const plant::PowerTrace& observed,
                          const PowerSignatureOptions& options) {
  PowerReport rep;
  const auto g = window_means(golden, options.window_s);
  const auto o = window_means(observed, options.window_s);
  const std::size_t n = std::min(g.size(), o.size());
  rep.windows_compared = n;

  std::uint32_t consecutive = 0;
  const std::size_t skip = options.skip_edge_windows;
  for (std::size_t i = skip; i + skip < n; ++i) {
    const double delta = std::abs(g[i] - o[i]);
    rep.largest_delta_w = std::max(rep.largest_delta_w, delta);
    if (delta > options.tolerance_w) {
      rep.mismatches.push_back({i, g[i], o[i]});
      ++consecutive;
      if (consecutive >= options.consecutive_to_flag) {
        rep.sabotage_likely = true;
      }
    } else {
      consecutive = 0;
    }
  }
  return rep;
}

SideReport compare_side(const plant::SideTrace& golden,
                        const plant::SideTrace& observed,
                        const SideSignatureOptions& options) {
  return compare_windows(window_means(golden, options.window_s),
                         window_means(observed, options.window_s), options);
}

std::uint64_t signature_digest(const std::vector<double>& levels,
                               double window_s) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFFull;
      h *= 1099511628211ull;
    }
  };
  const auto mix_f64 = [&mix](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  mix_f64(window_s);
  mix(levels.size());
  for (const double level : levels) mix_f64(level);
  return h;
}

MasterSignature make_master_signature(const plant::SideTrace& golden,
                                      double window_s) {
  MasterSignature sig;
  sig.window_s = window_s;
  sig.levels = window_means(golden, window_s);
  sig.digest = signature_digest(sig.levels, window_s);
  return sig;
}

SideReport verify_signature(const MasterSignature& signature,
                            const plant::SideTrace& observed,
                            const SideSignatureOptions& options) {
  SideSignatureOptions opts = options;
  opts.window_s = signature.window_s;  // the signature fixes the window
  return compare_windows(signature.levels,
                         window_means(observed, opts.window_s), opts);
}

std::string PowerReport::to_string(std::size_t max_lines) const {
  std::string out;
  char buf[128];
  std::size_t shown = 0;
  for (const auto& m : mismatches) {
    if (shown++ >= max_lines) {
      out += "...\n";
      break;
    }
    std::snprintf(buf, sizeof(buf),
                  "Window %zu: golden %.1f W, observed %.1f W\n", m.window,
                  m.golden_w, m.observed_w);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "Windows compared: %zu; mismatches: %zu; largest delta "
                "%.1f W\n",
                windows_compared, mismatches.size(), largest_delta_w);
  out += buf;
  out += sabotage_likely ? "Sabotage likely (power signature)!\n"
                         : "No sabotage suspected (power signature).\n";
  return out;
}

std::string PowerReport::to_json() const {
  std::string out = "{\n  \"sabotage_likely\": ";
  out += sabotage_likely ? "true" : "false";
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                ",\n  \"windows_compared\": %zu,\n"
                "  \"largest_delta_w\": %.6f",
                windows_compared, largest_delta_w);
  out += buf;
  out += ",\n  \"mismatches\": [";
  for (std::size_t i = 0; i < mismatches.size(); ++i) {
    const PowerMismatch& m = mismatches[i];
    out += i == 0 ? "\n" : ",\n";
    std::snprintf(buf, sizeof(buf),
                  "    {\"window\": %zu, \"golden_w\": %.6f, "
                  "\"observed_w\": %.6f}",
                  m.window, m.golden_w, m.observed_w);
    out += buf;
  }
  out += mismatches.empty() ? "]\n}" : "\n  ]\n}";
  return out;
}

std::string SideReport::to_string(std::size_t max_lines) const {
  std::string out;
  char buf[128];
  std::size_t shown = 0;
  for (const auto& m : mismatches) {
    if (shown++ >= max_lines) {
      out += "...\n";
      break;
    }
    std::snprintf(buf, sizeof(buf),
                  "Window %zu: golden %.1f, observed %.1f\n", m.window,
                  m.golden, m.observed);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "Windows compared: %zu; mismatches: %zu; largest delta "
                "%.1f\n",
                windows_compared, mismatches.size(), largest_delta);
  out += buf;
  out += sabotage_likely ? "Sabotage likely (side channel)!\n"
                         : "No sabotage suspected (side channel).\n";
  return out;
}

std::string SideReport::to_json() const {
  std::string out = "{\n  \"sabotage_likely\": ";
  out += sabotage_likely ? "true" : "false";
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                ",\n  \"windows_compared\": %zu,\n"
                "  \"largest_delta\": %.6f",
                windows_compared, largest_delta);
  out += buf;
  out += ",\n  \"mismatches\": [";
  for (std::size_t i = 0; i < mismatches.size(); ++i) {
    const SideMismatch& m = mismatches[i];
    out += i == 0 ? "\n" : ",\n";
    std::snprintf(buf, sizeof(buf),
                  "    {\"window\": %zu, \"golden\": %.6f, "
                  "\"observed\": %.6f}",
                  m.window, m.golden, m.observed);
    out += buf;
  }
  out += mismatches.empty() ? "]\n}" : "\n  ]\n}";
  return out;
}

}  // namespace offramps::detect
