#include "detect/static_check.hpp"

#include <cmath>
#include <cstdio>

namespace offramps::detect {

StaticCheckReport static_check(const analyze::Oracle& oracle,
                               const core::Capture& capture,
                               const StaticCheckOptions& options) {
  StaticCheckReport report;
  report.oracle_armed = oracle.counters_armed;
  report.print_completed = capture.print_completed;
  if (!report.oracle_armed || !report.print_completed) {
    report.trojan_suspected = true;
    return report;
  }
  for (std::size_t axis = 0; axis < 4; ++axis) {
    const std::int64_t expected = oracle.expected_counts[axis];
    const std::int64_t observed = capture.final_counts[axis];
    const std::int64_t diff = std::llabs(expected - observed);
    const auto allowed = static_cast<std::int64_t>(std::ceil(std::max(
        static_cast<double>(options.slack_steps),
        options.margin_pct / 100.0 * std::abs(static_cast<double>(expected)))));
    const double percent =
        static_cast<double>(diff) /
        std::max(std::abs(static_cast<double>(expected)), 1.0) * 100.0;
    report.largest_percent = std::max(report.largest_percent, percent);
    if (diff > allowed) {
      report.mismatches.push_back({axis, expected, observed, percent});
    }
  }
  report.trojan_suspected = !report.mismatches.empty();
  return report;
}

std::string StaticCheckReport::to_string() const {
  std::string out;
  char buf[160];
  if (!oracle_armed) {
    return "static check inconclusive: program never homes all axes "
           "(counters would not arm). Trojan likely!\n";
  }
  if (!print_completed) {
    return "static check inconclusive: capture aborted mid-print. "
           "Trojan likely!\n";
  }
  for (const auto& m : mismatches) {
    std::snprintf(buf, sizeof(buf),
                  "  %c: observed %lld steps vs %lld predicted (%.3f%%)\n",
                  "XYZE"[m.axis], static_cast<long long>(m.observed),
                  static_cast<long long>(m.expected), m.percent);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "static check: %zu axis mismatch(es), largest %.3f%%. %s\n",
                mismatches.size(), largest_percent,
                trojan_suspected ? "Trojan likely!" : "No Trojan detected.");
  out += buf;
  return out;
}

}  // namespace offramps::detect
