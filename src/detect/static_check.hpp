// Static-oracle cross-check: compares a runtime OFFRAMPS capture against
// the *static* step-count oracle computed from the g-code alone
// (analyze::analyze_program), instead of against a golden capture from a
// reference print.
//
// Because firmware step counts are a pure function of the program (timing
// jitter moves pulses in time, never in count), the static prediction
// matches a clean print's final counters to within the homing debounce.
// That lets this check run a far tighter margin than the paper's 5%
// golden-capture comparison - tight enough to catch the stealthiest
// shipped reduction Trojan (2% extrusion loss) without ever printing a
// reference part.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analyze/oracle.hpp"
#include "core/capture.hpp"

namespace offramps::detect {

/// Tuning for the static cross-check.
struct StaticCheckOptions {
  /// Per-axis relative margin, percent.  Static-vs-runtime counts agree
  /// near-exactly on clean prints, so this can be far below the golden
  /// comparison's 5%.
  double margin_pct = 0.5;
  /// Absolute per-axis slack in steps, covering homing-debounce trigger
  /// noise (a couple of steps on Z) regardless of count magnitude.
  std::int64_t slack_steps = 8;
};

/// One axis whose observed final count disagrees with the static oracle.
struct StaticMismatch {
  std::size_t axis = 0;            // 0..3 = X, Y, Z, E
  std::int64_t expected = 0;       // static oracle
  std::int64_t observed = 0;       // capture final count
  double percent = 0.0;            // |diff| / max(|expected|, 1) * 100
};

/// Cross-check verdict.
struct StaticCheckReport {
  std::vector<StaticMismatch> mismatches;
  double largest_percent = 0.0;
  /// False when the oracle's counters never armed (program does not home
  /// all axes) - the check cannot run and the verdict is inconclusive.
  bool oracle_armed = false;
  /// False when the capture was aborted mid-print (counts incomparable).
  bool print_completed = false;
  bool trojan_suspected = false;

  [[nodiscard]] std::string to_string() const;
};

/// Compares the capture's final counters against the static oracle's
/// expected counts.  An aborted print or a never-armed oracle yields
/// trojan_suspected = true with the corresponding flag cleared, so the
/// caller can distinguish "diverged" from "could not compare".
StaticCheckReport static_check(const analyze::Oracle& oracle,
                               const core::Capture& capture,
                               const StaticCheckOptions& options = {});

}  // namespace offramps::detect
