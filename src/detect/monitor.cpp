#include "detect/monitor.hpp"

namespace offramps::detect {

RealtimeMonitor::RealtimeMonitor(core::UartReporter& uart,
                                 core::Capture golden, CompareOptions options,
                                 std::uint32_t consecutive_to_alarm)
    : golden_(std::move(golden)),
      options_(options),
      threshold_(consecutive_to_alarm == 0 ? 1 : consecutive_to_alarm) {
  uart.on_transaction(
      [this](const core::Transaction& txn) { on_transaction(txn); });
}

void RealtimeMonitor::on_transaction(const core::Transaction& txn) {
  ++seen_;
  if (alarmed_) return;
  if (txn.index >= golden_.transactions.size()) {
    // The print has outrun the golden capture: either it is about to end
    // or a Trojan lengthened it.  Treat sustained overrun as suspicious.
    ++consecutive_;
  } else {
    const bool bad = compare_transaction(golden_.transactions[txn.index],
                                         txn, options_, mismatches_);
    consecutive_ = bad ? consecutive_ + 1 : 0;
  }
  if (consecutive_ >= threshold_) {
    alarmed_ = true;
    alarmed_at_index_ = txn.index;
    if (on_alarm_) on_alarm_(mismatches_);
  }
}

}  // namespace offramps::detect
