// Real-time print monitor (paper section V-C: "This analysis can also be
// done in real-time while printing, enabling a user to halt a print as
// soon as a Trojan is suspected").
//
// Subscribes to the OFFRAMPS UART stream and compares each arriving
// transaction against the golden capture at the same index.  After a
// configurable number of consecutive suspicious transactions (debounce),
// the alarm callback fires - the harness typically aborts the print,
// saving machine time and material.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/uart.hpp"
#include "detect/compare.hpp"

namespace offramps::detect {

/// Streaming detector over a live UART transaction feed.
class RealtimeMonitor {
 public:
  /// Alarm callback: fired once, with the mismatches that tripped it.
  using AlarmCallback = std::function<void(const std::vector<Mismatch>&)>;

  /// `consecutive_to_alarm` debounces isolated drift spikes.
  RealtimeMonitor(core::UartReporter& uart, core::Capture golden,
                  CompareOptions options = {},
                  std::uint32_t consecutive_to_alarm = 2);

  RealtimeMonitor(const RealtimeMonitor&) = delete;
  RealtimeMonitor& operator=(const RealtimeMonitor&) = delete;

  void on_alarm(AlarmCallback cb) { on_alarm_ = std::move(cb); }

  [[nodiscard]] bool alarmed() const { return alarmed_; }
  /// Transaction index at which the alarm fired (0 if not alarmed).
  [[nodiscard]] std::uint32_t alarmed_at_index() const {
    return alarmed_at_index_;
  }
  [[nodiscard]] std::uint64_t transactions_seen() const { return seen_; }
  [[nodiscard]] const std::vector<Mismatch>& mismatches() const {
    return mismatches_;
  }

 private:
  void on_transaction(const core::Transaction& txn);

  core::Capture golden_;
  CompareOptions options_;
  std::uint32_t threshold_;
  std::uint32_t consecutive_ = 0;
  bool alarmed_ = false;
  std::uint32_t alarmed_at_index_ = 0;
  std::uint64_t seen_ = 0;
  std::vector<Mismatch> mismatches_;
  AlarmCallback on_alarm_;
};

}  // namespace offramps::detect
