#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace offramps::obs {

namespace detail {
std::atomic<bool> g_enabled{false};

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return idx;
}
}  // namespace detail

namespace {
std::atomic<std::uint32_t> g_latency_sample_every{64};
}  // namespace

void set_latency_sample_every(std::uint32_t n) {
  g_latency_sample_every.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

std::uint32_t latency_sample_every() {
  return g_latency_sample_every.load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
#if OFFRAMPS_OBS_ENABLED
  detail::g_enabled.store(on, std::memory_order_seq_cst);
#else
  (void)on;
#endif
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::observe(double x) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20 but not universally lowered;
  // a CAS loop is portable and this path only runs while enabled.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& latency_buckets_us() {
  static const std::vector<double> kBuckets{
      1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000, 10000, 100000};
  return kBuckets;
}

// std::map keeps names sorted, which is what makes to_json()
// deterministic; unique_ptr keeps handles stable across rehash-free
// inserts.
struct Registry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

Counter& Registry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto& slot = im.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto& slot = im.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto& slot = im.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string Registry::to_json() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : im.counters) {
    out += first ? "" : ", ";
    first = false;
    out += quote(name) + ": " + std::to_string(c->value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : im.gauges) {
    out += first ? "" : ", ";
    first = false;
    out += quote(name) + ": {\"value\": " + std::to_string(g->value()) +
           ", \"max\": " + std::to_string(g->max()) + "}";
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : im.histograms) {
    out += first ? "" : ", ";
    first = false;
    out += quote(name) + ": {\"count\": " + std::to_string(h->count()) +
           ", \"sum\": " + fmt(h->sum()) + ", \"bounds\": [";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      out += i == 0 ? "" : ", ";
      out += fmt(bounds[i]);
    }
    out += "], \"counts\": [";
    const auto counts = h->counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      out += i == 0 ? "" : ", ";
      out += std::to_string(counts[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  for (auto& kv : im.counters) kv.second->reset();
  for (auto& kv : im.gauges) kv.second->reset();
  for (auto& kv : im.histograms) kv.second->reset();
}

}  // namespace offramps::obs
