#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

namespace offramps::obs {

namespace {

struct TraceEvent {
  std::string name;
  std::string cat;
  std::uint32_t tid = 0;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
};

struct State {
  std::mutex mu;
  std::atomic<bool> active{false};
  std::atomic<std::uint32_t> sample_every{1};
  std::atomic<std::uint64_t> span_counter{0};
  std::chrono::steady_clock::time_point t0;
  std::vector<TraceEvent> events;
};

State& state() {
  static State s;
  return s;
}

/// Small dense thread ids (chrome's tid lanes), assigned on first use.
std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // control chars have no place in span names
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

void TraceSession::start() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.events.clear();
  s.t0 = std::chrono::steady_clock::now();
  s.active.store(true, std::memory_order_release);
}

void TraceSession::stop() {
  state().active.store(false, std::memory_order_release);
}

bool TraceSession::active() {
  return state().active.load(std::memory_order_relaxed);
}

void TraceSession::set_sample_every(std::uint32_t n) {
  state().sample_every.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

std::uint32_t TraceSession::sample_every() {
  return state().sample_every.load(std::memory_order_relaxed);
}

bool TraceSession::sample_this_span() {
  State& s = state();
  const std::uint32_t n = s.sample_every.load(std::memory_order_relaxed);
  if (n <= 1) return true;
  return s.span_counter.fetch_add(1, std::memory_order_relaxed) % n == 0;
}

std::size_t TraceSession::event_count() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.events.size();
}

void TraceSession::record(std::string name, std::string cat,
                          std::chrono::steady_clock::time_point t0) {
  State& s = state();
  if (!s.active.load(std::memory_order_relaxed)) return;
  const auto now = std::chrono::steady_clock::now();
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.tid = current_tid();
  std::lock_guard<std::mutex> lk(s.mu);
  ev.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                 t0 - s.t0)
                 .count();
  if (ev.ts_us < 0) ev.ts_us = 0;  // span began before start()
  ev.dur_us =
      std::chrono::duration_cast<std::chrono::microseconds>(now - t0)
          .count();
  s.events.push_back(std::move(ev));
}

std::string TraceSession::to_json() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  std::string out =
      "{\"traceEvents\": [\n"
      "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"args\": {\"name\": \"offramps\"}}";
  char buf[96];
  for (const TraceEvent& ev : s.events) {
    out += ",\n{\"name\": ";
    append_escaped(out, ev.name);
    out += ", \"cat\": ";
    append_escaped(out, ev.cat);
    std::snprintf(buf, sizeof(buf),
                  ", \"ph\": \"X\", \"ts\": %lld, \"dur\": %lld, "
                  "\"pid\": 1, \"tid\": %u}",
                  static_cast<long long>(ev.ts_us),
                  static_cast<long long>(ev.dur_us), ev.tid);
    out += buf;
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool TraceSession::save(const std::string& path) {
  const std::string doc = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(("obs::TraceSession: " + path).c_str());
    return false;
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok;
}

}  // namespace offramps::obs
