// Process-wide metrics registry: counters, gauges, fixed-bucket
// histograms.
//
// The paper evaluates OFFRAMPS as a logic analyzer and quantifies its
// overhead on live signals; this layer is the software analogue for the
// reproduction itself - per-subsystem telemetry (scheduler event rates,
// worker-pool balance, detector window timings) that the fleet tools can
// export without perturbing the thing they measure.
//
// Cost model, in order of increasing spend:
//
//   * compiled out          - OFFRAMPS_OBS_ENABLED=0 removes every
//                             instrumentation site at preprocessing time
//                             (the CMake option OFFRAMPS_OBS=OFF sets it
//                             project-wide);
//   * compiled in, disabled - the everyday path.  Each site is one
//                             relaxed atomic load and an untaken branch;
//                             bench_obs enforces < 2% on the event loop;
//   * enabled               - obs::set_enabled(true).  Hot-path updates
//                             are lock-free atomic ops on pre-registered
//                             handles: no allocation, no registry lock.
//
// Handles returned by Registry are valid for the process lifetime, so
// call sites register once (function-local static or constructor) and
// update through the pointer afterwards.  Instrumentation never feeds
// back into simulation state: enabling metrics cannot change a single
// simulated byte, only record wall-clock facts about producing them.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#ifndef OFFRAMPS_OBS_ENABLED
#define OFFRAMPS_OBS_ENABLED 1
#endif

namespace offramps::obs {

namespace detail {
extern std::atomic<bool> g_enabled;

/// Counter stripe count.  Eight cache-line-sized cells absorb the worker
/// pools this repo runs (typically <= hardware_concurrency workers per
/// pool); threads beyond eight share stripes round-robin, which costs
/// contention but never correctness.
inline constexpr std::size_t kCounterShards = 8;

/// Stable per-thread stripe index, assigned round-robin on a thread's
/// first metered update.
std::size_t shard_index();
}  // namespace detail

/// True when instrumentation sites should record.  One relaxed load -
/// this is the only cost the disabled path pays.
inline bool enabled() {
#if OFFRAMPS_OBS_ENABLED
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Turns recording on/off process-wide.  A no-op (always off) when the
/// layer is compiled out.
void set_enabled(bool on);

/// Microseconds elapsed since `t0` (histogram convenience).
inline double us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Monotonically increasing event count, striped across per-thread
/// cache-line-aligned cells so concurrent workers never contend on one
/// line.  add() is a relaxed fetch_add on the calling thread's stripe;
/// value() aggregates all stripes at read time.  Totals are exact - the
/// sum of relaxed per-stripe adds equals the sum of a single shared
/// atomic, only the write traffic is spread out.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, detail::kCounterShards> cells_;
};

/// Last-written value plus a running maximum (e.g. queue depth: the
/// current level and the high-water mark since the last reset).
class Gauge {
 public:
  void set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket histogram.  Bucket upper bounds are set at registration
/// and never change; observe() is a binary search plus two atomic adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; one more entry than bounds() (the overflow
  /// bucket).
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  void reset();

 private:
  std::vector<double> bounds_;               // ascending upper bounds
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket ladder for latency histograms, in microseconds.
const std::vector<double>& latency_buckets_us();

/// Sampling interval for per-event wall-clock latency observations on
/// the scheduler hot path: 1-in-N events pays the two steady_clock reads
/// and the histogram update.  Default 64.  Set 1 to time every event
/// (exact counts, old behavior); 0 is clamped to 1.  Counters and gauges
/// are never sampled - only the wall-clock histogram, whose values are
/// nondeterministic anyway.
void set_latency_sample_every(std::uint32_t n);
[[nodiscard]] std::uint32_t latency_sample_every();

/// Process-wide name -> instrument map.  Registration (the only locking
/// path) returns a stable reference; the same name always yields the
/// same instrument.  JSON export iterates names in sorted order, so the
/// document layout is deterministic for a given set of registrations.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies on first registration only; later calls return the
  /// existing histogram unchanged.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
  /// sorted by name.  Valid JSON (svc::json can re-read it); values are
  /// snapshots, not atomic across the whole document.
  [[nodiscard]] std::string to_json() const;

  /// Zeroes every registered instrument (handles stay valid).  For
  /// benches and tests that want a clean slate per phase.
  void reset();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace offramps::obs
