// Scoped spans with chrome://tracing export.
//
// A TraceSession collects "complete" events (ph "X" in the Trace Event
// Format) from obs::Span RAII guards anywhere in the process and renders
// them as a JSON document that chrome://tracing and Perfetto open
// directly.  This is the reproduction's answer to the paper's
// logic-analyzer role: instead of eyeballing wire dumps, a fleet
// operator loads one trace file and sees every rig's reference print,
// detection windows, and campaign cells on a per-thread timeline.
//
// Cost contract (mirrors obs::metrics): with no session active a Span
// constructor is one relaxed atomic load and an untaken branch; nothing
// is allocated by the span itself and nothing is recorded.  Recording
// appends to a mutex-guarded vector - spans mark phases (whole prints,
// campaign cells), not per-event work, so contention is structural noise.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#ifndef OFFRAMPS_OBS_ENABLED
#define OFFRAMPS_OBS_ENABLED 1
#endif

namespace offramps::obs {

/// Process-wide span collector.  start() clears any previous events and
/// begins recording; stop() freezes the set; to_json()/save() render the
/// Trace Event Format document ("traceEvents" array of complete events,
/// timestamps in microseconds since start()).
class TraceSession {
 public:
  static void start();
  static void stop();
  [[nodiscard]] static bool active();
  /// Events recorded in the current/most recent session.
  [[nodiscard]] static std::size_t event_count();

  /// The chrome://tracing JSON document for everything recorded so far.
  [[nodiscard]] static std::string to_json();
  /// Writes to_json() to `path`; false (with errno on stderr) on failure.
  static bool save(const std::string& path);

  /// Records one complete event; `t0` is the span's start instant.
  /// Called by ~Span; callable directly for spans that cannot be scoped.
  static void record(std::string name, std::string cat,
                     std::chrono::steady_clock::time_point t0);

  /// Span sampling interval: 1-in-N spans record (process-wide modulo
  /// over span constructions).  Default 1 = record every span; 0 is
  /// clamped to 1.  For fleets whose span volume would otherwise swamp
  /// the trace file.
  static void set_sample_every(std::uint32_t n);
  [[nodiscard]] static std::uint32_t sample_every();
  /// True when the next span should record (applies the sampling
  /// interval; advances the sample counter when the interval > 1).
  [[nodiscard]] static bool sample_this_span();
};

/// RAII span: records a complete event covering its own lifetime, tagged
/// with the calling thread.  Inert (and allocation-free beyond the name
/// strings the caller built) when no session is active at construction.
class Span {
 public:
  explicit Span(std::string name, std::string cat = "offramps")
      : armed_(TraceSession::active() && TraceSession::sample_this_span()) {
    if (!armed_) return;
    name_ = std::move(name);
    cat_ = std::move(cat);
    t0_ = std::chrono::steady_clock::now();
  }

  ~Span() {
    if (armed_) TraceSession::record(std::move(name_), std::move(cat_), t0_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool armed_;
  std::string name_;
  std::string cat_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace offramps::obs
