// Stepper motor model: the electrical consumer of one driver channel on
// the RAMPS board.  Integrates STEP rising edges, signed by the DIR level,
// while the driver is enabled (/EN low on the A4988).  Steps arriving with
// the driver disabled are lost - exactly the mechanism Trojan T8 exploits.
#pragma once

#include <cstdint>
#include <functional>

#include "plant/power.hpp"
#include "sim/pins.hpp"
#include "sim/wire.hpp"

namespace offramps::plant {

/// One stepper motor driven by STEP/DIR//EN signals.
class StepperMotor {
 public:
  /// Fired after each accepted step with the new signed position.
  using StepCallback = std::function<void(std::int64_t position, bool forward)>;

  /// `power` (optional) derates the motor under rail sag: steps are lost
  /// probabilistically below the skip threshold.
  StepperMotor(sim::Wire& step, sim::Wire& dir, sim::Wire& enable,
               PowerIntegrity* power = nullptr)
      : dir_(dir), enable_(enable), power_(power) {
    step.on_rising([this](sim::Tick) { on_step(); });
  }

  StepperMotor(const StepperMotor&) = delete;
  StepperMotor& operator=(const StepperMotor&) = delete;

  /// Net signed steps accepted since power-on.
  [[nodiscard]] std::int64_t position() const { return position_; }
  /// Steps that arrived while the driver was disabled.
  [[nodiscard]] std::uint64_t dropped_steps() const { return dropped_; }
  /// Steps lost to motor-rail undervoltage (torque skip).
  [[nodiscard]] std::uint64_t undervolt_skips() const { return skips_; }
  /// Total accepted steps regardless of direction.
  [[nodiscard]] std::uint64_t accepted_steps() const { return accepted_; }
  /// True when the driver is enabled (/EN low).
  [[nodiscard]] bool enabled() const { return !enable_.level(); }

  void on_step_accepted(StepCallback cb) { callback_ = std::move(cb); }

 private:
  void on_step() {
    if (enable_.level()) {  // /EN high: driver off, step lost
      ++dropped_;
      return;
    }
    if (power_ != nullptr && power_->step_lost()) {  // rail sag: no torque
      ++skips_;
      return;
    }
    const bool forward = dir_.level();
    position_ += forward ? 1 : -1;
    ++accepted_;
    if (callback_) callback_(position_, forward);
  }

  sim::Wire& dir_;
  sim::Wire& enable_;
  PowerIntegrity* power_;
  std::int64_t position_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t skips_ = 0;
  StepCallback callback_;
};

}  // namespace offramps::plant
