#include "plant/deposition.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace offramps::plant {

DepositionRecorder::DepositionRecorder(StepperMotor& e_motor,
                                       const CarriageAxis& x,
                                       const CarriageAxis& y,
                                       const CarriageAxis& z,
                                       double e_steps_per_mm,
                                       std::uint32_t sample_every,
                                       double z_ignore_mm)
    : x_(x),
      y_(y),
      z_(z),
      e_steps_per_mm_(e_steps_per_mm),
      sample_every_(sample_every == 0 ? 1 : sample_every),
      z_ignore_mm_(z_ignore_mm) {
  e_motor.on_step_accepted([this](std::int64_t position, bool forward) {
    if (!forward) return;  // retraction deposits nothing
    const double step_mm = 1.0 / e_steps_per_mm_;
    if (z_.position_mm() <= z_ignore_mm_) {
      prime_mm_ += step_mm;  // bed-level priming never joins the part
      return;
    }
    const double x_mm = x_.position_mm();
    const double y_mm = y_.position_mm();
    // Material extruded with the carriage parked in XY piles up at the
    // nozzle as a blob; it does not become part geometry.
    if (std::abs(x_mm - last_x_) < 1e-9 && std::abs(y_mm - last_y_) < 1e-9) {
      blob_mm_ += step_mm;
      return;
    }
    last_x_ = x_mm;
    last_y_ = y_mm;
    if (++forward_steps_ % sample_every_ != 0) return;
    samples_.push_back({x_mm, y_mm, z_.position_mm(),
                        static_cast<double>(position) / e_steps_per_mm_});
  });
}

PartReport DepositionRecorder::report(double z_quantum_mm) const {
  PartReport rep;
  if (samples_.empty()) return rep;
  rep.any_material = true;

  // Group samples into layers by quantized Z.
  std::map<std::int64_t, LayerSummary> layers;
  double prev_e = samples_.front().e_mm;
  bool first = true;
  for (const auto& s : samples_) {
    const auto bin =
        static_cast<std::int64_t>(std::llround(s.z_mm / z_quantum_mm));
    auto [it, inserted] = layers.try_emplace(bin);
    LayerSummary& L = it->second;
    if (inserted) {
      L.z_mm = s.z_mm;
      L.min_x = L.max_x = s.x_mm;
      L.min_y = L.max_y = s.y_mm;
    }
    L.centroid_x += s.x_mm;
    L.centroid_y += s.y_mm;
    L.min_x = std::min(L.min_x, s.x_mm);
    L.max_x = std::max(L.max_x, s.x_mm);
    L.min_y = std::min(L.min_y, s.y_mm);
    L.max_y = std::max(L.max_y, s.y_mm);
    const double de = first ? 0.0 : s.e_mm - prev_e;
    if (de > 0.0) L.filament_mm += de;
    prev_e = s.e_mm;
    first = false;
    ++L.samples;
  }

  rep.layers.reserve(layers.size());
  for (auto& [bin, L] : layers) {
    L.centroid_x /= static_cast<double>(L.samples);
    L.centroid_y /= static_cast<double>(L.samples);
    rep.layers.push_back(L);
  }
  rep.layer_count = rep.layers.size();
  rep.first_layer_z_mm = rep.layers.front().z_mm;
  rep.total_filament_mm =
      samples_.back().e_mm - samples_.front().e_mm;

  // Layer shift: centroid and bbox-center offsets relative to layer 0.
  const LayerSummary& base = rep.layers.front();
  const double base_cx = base.centroid_x;
  const double base_cy = base.centroid_y;
  const double base_bx = (base.min_x + base.max_x) / 2.0;
  const double base_by = (base.min_y + base.max_y) / 2.0;
  double shift_sum = 0.0;
  double overall_min_x = base.min_x, overall_max_x = base.max_x;
  double overall_min_y = base.min_y, overall_max_y = base.max_y;
  for (const auto& L : rep.layers) {
    const double ds = std::hypot(L.centroid_x - base_cx,
                                 L.centroid_y - base_cy);
    rep.max_layer_shift_mm = std::max(rep.max_layer_shift_mm, ds);
    shift_sum += ds;
    const double bx = (L.min_x + L.max_x) / 2.0;
    const double by = (L.min_y + L.max_y) / 2.0;
    rep.footprint_drift_mm = std::max(
        rep.footprint_drift_mm, std::hypot(bx - base_bx, by - base_by));
    overall_min_x = std::min(overall_min_x, L.min_x);
    overall_max_x = std::max(overall_max_x, L.max_x);
    overall_min_y = std::min(overall_min_y, L.min_y);
    overall_max_y = std::max(overall_max_y, L.max_y);
  }
  rep.mean_layer_shift_mm =
      shift_sum / static_cast<double>(rep.layers.size());
  rep.bbox_width_mm = overall_max_x - overall_min_x;
  rep.bbox_depth_mm = overall_max_y - overall_min_y;

  // Z spacing between consecutive layers.
  if (rep.layers.size() >= 2) {
    rep.min_z_spacing_mm = rep.layers[1].z_mm - rep.layers[0].z_mm;
    for (std::size_t i = 1; i < rep.layers.size(); ++i) {
      const double dz = rep.layers[i].z_mm - rep.layers[i - 1].z_mm;
      rep.max_z_spacing_mm = std::max(rep.max_z_spacing_mm, dz);
      rep.min_z_spacing_mm = std::min(rep.min_z_spacing_mm, dz);
    }
  }
  return rep;
}

std::string top_view_ascii(const std::vector<DepositionSample>& samples,
                           std::size_t cols) {
  if (samples.empty() || cols < 2) return {};
  double min_x = samples.front().x_mm, max_x = min_x;
  double min_y = samples.front().y_mm, max_y = min_y;
  for (const auto& s : samples) {
    min_x = std::min(min_x, s.x_mm);
    max_x = std::max(max_x, s.x_mm);
    min_y = std::min(min_y, s.y_mm);
    max_y = std::max(max_y, s.y_mm);
  }
  const double w = std::max(max_x - min_x, 1e-6);
  const double h = std::max(max_y - min_y, 1e-6);
  // Terminal cells are ~2x taller than wide; halve the rows to keep the
  // part's aspect ratio on screen.
  const auto rows = std::max<std::size_t>(
      2, static_cast<std::size_t>(static_cast<double>(cols) * h / w / 2.0));
  std::vector<std::string> grid(rows, std::string(cols, '.'));
  for (const auto& s : samples) {
    const auto cx = static_cast<std::size_t>(
        std::min((s.x_mm - min_x) / w, 0.999) * static_cast<double>(cols));
    const auto cy = static_cast<std::size_t>(
        std::min((s.y_mm - min_y) / h, 0.999) * static_cast<double>(rows));
    grid[rows - 1 - cy][cx] = '#';
  }
  std::string out;
  for (const auto& row : grid) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace offramps::plant
