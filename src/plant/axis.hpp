// Carriage axis: converts motor motion into physical carriage position
// with hard frame limits, and closes the homing loop by driving the
// mechanical min-endstop switch.
//
// When the firmware commands motion past a frame end the carriage stays
// put and the motor skips ("grinds") - that is what makes sensorless-free
// homing work: the firmware over-commands toward the switch and relies on
// the endstop edge, while the plant clamps position at zero.
#pragma once

#include <algorithm>
#include <cstdint>

#include "plant/motor.hpp"
#include "sim/wire.hpp"

namespace offramps::plant {

/// One positional axis (X, Y or Z) with a min endstop.
class CarriageAxis {
 public:
  /// `endstop` is the RAMPS-side endstop net this axis drives.
  /// `initial_mm` is the unknown power-on carriage position.
  CarriageAxis(StepperMotor& motor, sim::Wire& endstop, double steps_per_mm,
               double length_mm, double initial_mm,
               double endstop_trigger_mm = 0.1)
      : endstop_(endstop),
        steps_per_mm_(steps_per_mm),
        length_mm_(length_mm),
        trigger_mm_(endstop_trigger_mm),
        position_mm_(std::clamp(initial_mm, 0.0, length_mm)) {
    motor.on_step_accepted([this](std::int64_t, bool forward) {
      on_step(forward);
    });
    update_endstop();
  }

  CarriageAxis(const CarriageAxis&) = delete;
  CarriageAxis& operator=(const CarriageAxis&) = delete;

  /// Physical carriage position from the frame minimum, mm.
  [[nodiscard]] double position_mm() const { return position_mm_; }
  /// Steps lost to grinding against either frame end.
  [[nodiscard]] std::uint64_t ground_steps() const { return ground_; }
  [[nodiscard]] double length_mm() const { return length_mm_; }

 private:
  void on_step(bool forward) {
    const double delta = (forward ? 1.0 : -1.0) / steps_per_mm_;
    const double next = position_mm_ + delta;
    if (next < 0.0) {
      position_mm_ = 0.0;
      ++ground_;
    } else if (next > length_mm_) {
      position_mm_ = length_mm_;
      ++ground_;
    } else {
      position_mm_ = next;
    }
    update_endstop();
  }

  void update_endstop() { endstop_.set(position_mm_ <= trigger_mm_); }

  sim::Wire& endstop_;
  double steps_per_mm_;
  double length_mm_;
  double trigger_mm_;
  double position_mm_;
  std::uint64_t ground_ = 0;
};

/// The extruder "axis": unbounded filament drive.
class ExtruderDrive {
 public:
  ExtruderDrive(StepperMotor& motor, double steps_per_mm)
      : motor_(motor), steps_per_mm_(steps_per_mm) {}

  ExtruderDrive(const ExtruderDrive&) = delete;
  ExtruderDrive& operator=(const ExtruderDrive&) = delete;

  /// Net filament advanced through the drive, mm (can be negative).
  [[nodiscard]] double filament_mm() const {
    return static_cast<double>(motor_.position()) / steps_per_mm_;
  }

 private:
  StepperMotor& motor_;
  double steps_per_mm_;
};

}  // namespace offramps::plant
