// Deposition recorder and part-quality metrics.
//
// The paper demonstrates Trojans T1-T5 with photographs of deformed parts
// (Table I).  In simulation the printed part is the set of filament
// deposition events: whenever the extruder motor advances while the
// carriage moves, material lands at the carriage's true position.  The
// recorder samples these events; `PartReport` then quantifies the defects
// the photographs show - XY layer shifts, flow ratio, Z-spacing anomalies,
// dimensional error - so every Table I row becomes a measurable effect.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "plant/axis.hpp"
#include "plant/motor.hpp"

namespace offramps::plant {

/// One deposition sample: where material landed.
struct DepositionSample {
  double x_mm = 0.0;
  double y_mm = 0.0;
  double z_mm = 0.0;
  double e_mm = 0.0;  // cumulative filament at this event
};

/// Per-layer aggregate of the deposited material.
struct LayerSummary {
  double z_mm = 0.0;
  double centroid_x = 0.0;
  double centroid_y = 0.0;
  double min_x = 0.0, max_x = 0.0, min_y = 0.0, max_y = 0.0;
  double filament_mm = 0.0;  // filament deposited in this layer
  std::uint64_t samples = 0;
};

/// Quantified part quality (the simulated Table I evidence).
struct PartReport {
  bool any_material = false;
  double total_filament_mm = 0.0;     // net filament deposited
  double first_layer_z_mm = 0.0;      // where the first material landed
  double max_layer_shift_mm = 0.0;    // max centroid offset vs first layer
  double mean_layer_shift_mm = 0.0;
  double max_z_spacing_mm = 0.0;      // largest gap between layers
  double min_z_spacing_mm = 0.0;
  double footprint_drift_mm = 0.0;    // max bbox-center offset vs first layer
  double bbox_width_mm = 0.0;         // overall deposited width (X)
  double bbox_depth_mm = 0.0;         // overall deposited depth (Y)
  std::size_t layer_count = 0;
  std::vector<LayerSummary> layers;
};

/// Renders deposition samples as an ASCII occupancy map, top view
/// ('#' = material).  The simulated counterpart of the paper's Table I
/// part photographs: Trojan-induced layer shifts, smears, and gaps are
/// directly visible.  Returns an empty string when nothing was printed.
std::string top_view_ascii(const std::vector<DepositionSample>& samples,
                           std::size_t cols = 40);

/// Records deposition events from the true (RAMPS-side) motor positions.
class DepositionRecorder {
 public:
  /// Samples every `sample_every` accepted forward E steps (keeps memory
  /// bounded on long prints while preserving layer geometry).  Material
  /// extruded with the nozzle at or below `z_ignore_mm` (priming against
  /// the bed before the print starts) never adheres as part of the part
  /// and is not recorded.
  DepositionRecorder(StepperMotor& e_motor, const CarriageAxis& x,
                     const CarriageAxis& y, const CarriageAxis& z,
                     double e_steps_per_mm, std::uint32_t sample_every = 8,
                     double z_ignore_mm = 0.2);

  DepositionRecorder(const DepositionRecorder&) = delete;
  DepositionRecorder& operator=(const DepositionRecorder&) = delete;

  [[nodiscard]] const std::vector<DepositionSample>& samples() const {
    return samples_;
  }

  /// Filament extruded against the bed during priming (below z_ignore).
  [[nodiscard]] double prime_filament_mm() const { return prime_mm_; }
  /// Filament extruded with the carriage stationary in XY: it piles up at
  /// the nozzle as a blob instead of forming part geometry (e.g. the
  /// Flaw3D relocation Trojan's in-place dumps).
  [[nodiscard]] double blob_filament_mm() const { return blob_mm_; }

  /// Builds the quality report.  `z_quantum_mm` groups samples into layers
  /// (should be well below the layer height; default 50 um bins).
  [[nodiscard]] PartReport report(double z_quantum_mm = 0.05) const;

 private:
  const CarriageAxis& x_;
  const CarriageAxis& y_;
  const CarriageAxis& z_;
  double e_steps_per_mm_;
  std::uint32_t sample_every_;
  double z_ignore_mm_;
  std::uint64_t forward_steps_ = 0;
  double prime_mm_ = 0.0;
  double blob_mm_ = 0.0;
  double last_x_ = -1e9;
  double last_y_ = -1e9;
  std::vector<DepositionSample> samples_;
};

}  // namespace offramps::plant
