// The assembled physical printer: everything downstream of the RAMPS
// board.  Consumes the RAMPS-side pin bank (whatever signals actually
// arrive there, post-OFFRAMPS) and produces the feedback signals the
// firmware needs (endstops, thermistor ADC values).
#pragma once

#include <array>
#include <memory>

#include "plant/axis.hpp"
#include "plant/deposition.hpp"
#include "plant/motor.hpp"
#include "plant/power.hpp"
#include "plant/thermal.hpp"
#include "sim/pins.hpp"
#include "sim/rng.hpp"

namespace offramps::plant {

/// Mechanical/electrical parameters of the machine.
struct PrinterParams {
  /// Steps per mm as configured by the A4988 microstep jumpers + mechanics;
  /// must match the firmware's belief for dimensionally correct parts.
  std::array<double, 4> steps_per_mm = {100.0, 100.0, 400.0, 280.0};
  std::array<double, 3> axis_length_mm = {250.0, 210.0, 210.0};
  /// Unknown carriage positions at power-on.
  std::array<double, 3> initial_position_mm = {60.0, 55.0, 10.0};
  HeaterParams hotend = hotend_params();
  HeaterParams bed = bed_params();
  double fan_max_rpm = 5000.0;
  std::uint32_t deposition_sample_every = 8;
  std::uint64_t noise_seed = 0x9a57;
  /// Electrical thresholds for under-voltage behaviour.
  PowerModel power{};
};

/// The full plant, wired to a RAMPS-side pin bank.
class Printer {
 public:
  Printer(sim::Scheduler& sched, sim::PinBank& ramps, PrinterParams params);

  Printer(const Printer&) = delete;
  Printer& operator=(const Printer&) = delete;

  [[nodiscard]] StepperMotor& motor(sim::Axis a) {
    return *motors_[static_cast<std::size_t>(a)];
  }
  [[nodiscard]] const StepperMotor& motor(sim::Axis a) const {
    return *motors_[static_cast<std::size_t>(a)];
  }
  [[nodiscard]] CarriageAxis& axis(sim::Axis a);
  [[nodiscard]] const CarriageAxis& axis(sim::Axis a) const;
  [[nodiscard]] ExtruderDrive& extruder() { return *extruder_; }
  [[nodiscard]] HeaterPlant& hotend() { return *hotend_; }
  [[nodiscard]] HeaterPlant& bed() { return *bed_; }
  [[nodiscard]] FanPlant& fan() { return *fan_; }
  [[nodiscard]] DepositionRecorder& deposition() { return *deposition_; }
  [[nodiscard]] const DepositionRecorder& deposition() const {
    return *deposition_;
  }
  [[nodiscard]] const PrinterParams& params() const { return params_; }

  /// The printer's 24 V supply (motors + heaters).
  [[nodiscard]] PowerRail& motor_rail() { return motor_rail_; }
  /// The controller's 5 V logic supply.
  [[nodiscard]] PowerRail& logic_rail() { return logic_rail_; }
  [[nodiscard]] PowerIntegrity& power() { return *power_; }

 private:
  PrinterParams params_;
  sim::Rng noise_;
  PowerRail motor_rail_{"24V", 24.0};
  PowerRail logic_rail_{"5V", 5.0};
  std::unique_ptr<PowerIntegrity> power_;
  std::array<std::unique_ptr<StepperMotor>, 4> motors_;
  std::array<std::unique_ptr<CarriageAxis>, 3> axes_;
  std::unique_ptr<ExtruderDrive> extruder_;
  std::unique_ptr<HeaterPlant> hotend_;
  std::unique_ptr<HeaterPlant> bed_;
  std::unique_ptr<FanPlant> fan_;
  std::unique_ptr<DepositionRecorder> deposition_;
};

}  // namespace offramps::plant
