// Power delivery model (paper sections III-C-5 and VI "Limitations").
//
// The OFFRAMPS board deliberately separates three supplies: the printer's
// 24 V rail (RAMPS: motors + heaters), the Arduino's 5 V, and the FPGA's
// own supply - and the paper notes the platform "can also support
// undervolting and brown-out attacks", left unexplored there.  This
// module models the electrical consequences so that exploration is
// possible here:
//
//   * heater power scales with V^2 (resistive elements),
//   * stepper drivers lose torque as the motor rail sags and start
//     skipping steps below a threshold, stalling entirely further down,
//   * the logic rail resets the MCU (firmware kill) under deep sag.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace offramps::plant {

/// One supply rail with a nominal voltage.
class PowerRail {
 public:
  using SagCallback = std::function<void(double volts)>;

  PowerRail(std::string name, double nominal_v)
      : name_(std::move(name)), nominal_v_(nominal_v), volts_(nominal_v) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double nominal_v() const { return nominal_v_; }
  [[nodiscard]] double volts() const { return volts_; }
  /// Fraction of nominal (1.0 = healthy).
  [[nodiscard]] double level() const { return volts_ / nominal_v_; }
  [[nodiscard]] double min_seen_v() const { return min_seen_; }

  void set_volts(double v) {
    volts_ = v;
    min_seen_ = std::min(min_seen_, v);
    for (const auto& cb : listeners_) cb(v);
  }
  void restore() { set_volts(nominal_v_); }
  void on_change(SagCallback cb) { listeners_.push_back(std::move(cb)); }

 private:
  std::string name_;
  double nominal_v_;
  double volts_;
  double min_seen_ = 1e9;
  std::vector<SagCallback> listeners_;
};

/// Electrical behaviour thresholds for the machine.
struct PowerModel {
  /// Below this fraction of nominal motor-rail voltage, drivers begin to
  /// skip: each step is lost with probability growing linearly toward
  /// `stall_level`, where motion stops entirely.
  double skip_level = 0.75;
  double stall_level = 0.5;
  /// Heater output scales as (V / nominal)^2.
  /// Logic brown-out: below this fraction the MCU resets.
  double mcu_brownout_level = 0.7;
};

/// Derating calculator shared by the plant components.
class PowerIntegrity {
 public:
  PowerIntegrity(PowerRail& motor_rail, PowerRail& logic_rail,
                 PowerModel model = {}, std::uint64_t seed = 0xB0B0)
      : motor_rail_(motor_rail),
        logic_rail_(logic_rail),
        model_(model),
        rng_(seed) {}

  PowerIntegrity(const PowerIntegrity&) = delete;
  PowerIntegrity& operator=(const PowerIntegrity&) = delete;

  /// Heater power multiplier at the present motor-rail voltage.
  [[nodiscard]] double heater_derate() const {
    const double l = motor_rail_.level();
    return l * l;
  }

  /// Draws whether one motor step is lost to undervoltage right now.
  [[nodiscard]] bool step_lost() {
    const double l = motor_rail_.level();
    if (l >= model_.skip_level) return false;
    if (l <= model_.stall_level) return true;
    const double p = (model_.skip_level - l) /
                     (model_.skip_level - model_.stall_level);
    return rng_.chance(p);
  }

  /// True when the logic rail is too low for the MCU.
  [[nodiscard]] bool mcu_brownout() const {
    return logic_rail_.level() < model_.mcu_brownout_level;
  }

  [[nodiscard]] PowerRail& motor_rail() { return motor_rail_; }
  [[nodiscard]] PowerRail& logic_rail() { return logic_rail_; }
  [[nodiscard]] const PowerModel& model() const { return model_; }

 private:
  PowerRail& motor_rail_;
  PowerRail& logic_rail_;
  PowerModel model_;
  sim::Rng rng_;
};

}  // namespace offramps::plant
