// Side-channel probes (paper section II-B / VI "Related platforms").
//
// The defenses OFFRAMPS is compared against are mostly side-channel
// based - actuator power signatures (Gatlin et al., IEEE Access 2019),
// multi-modal acoustic/vibration sensing (arXiv:2110.02259), and
// master-recording audio verification (arXiv:1705.06454).  To quantify
// the paper's claim that direct signal access is "uniquely able to ...
// analyze prints with no loss of data", these probes produce what such
// defenses would see: a physical emission of the machine, sampled at a
// fixed rate, through measurement noise.
//
// Power model (A4988/24 V class):
//   * each enabled stepper draws a hold current (~4 W) plus a
//     rate-dependent switching term (up to ~4 W more near 10 kHz),
//   * heaters draw gate-duty x element power (x rail derate),
//   * the part fan and base electronics add small constant-ish terms,
//   * the current clamp adds zero-mean gaussian noise - the "lossy"
//     part of a side channel.
//
// Acoustic model (microphone near the frame, arbitrary level units):
//   * an enabled stepper emits a small coil-whine floor plus a tone
//     whose level tracks its step rate (motion axes ring the frame
//     hardest, the extruder least),
//   * the part fan contributes broadband noise at its duty,
//   * room ambience and microphone noise round it out.
//
// Vibration model (frame-mounted accelerometer, milli-g):
//   * only actual motion shakes the frame: per-axis level tracks step
//     rate, with the gantry axes dominating,
//   * a sensor floor plus gaussian noise.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "plant/printer.hpp"
#include "sim/pins.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace offramps::plant {

/// Probe configuration.
struct PowerProbeOptions {
  sim::Tick sample_period = sim::ms(50);
  double motor_hold_w = 4.0;
  double motor_switching_w = 4.0;     // additional at full step rate
  double full_step_rate_hz = 10'000.0;
  double fan_w = 2.0;                 // at 100% duty
  double base_electronics_w = 5.0;
  double noise_stddev_w = 1.5;        // clamp measurement noise
  std::uint64_t noise_seed = 0x50C4;
};

/// One power measurement.
struct PowerSample {
  double t_s = 0.0;
  double watts = 0.0;
};

/// A whole print's power trace.
using PowerTrace = std::vector<PowerSample>;

/// One generic side-channel measurement (acoustic level, vibration
/// magnitude, ...).
struct SideSample {
  double t_s = 0.0;
  double value = 0.0;
};

/// A whole print's worth of one side channel.
using SideTrace = std::vector<SideSample>;

/// Acoustic probe configuration (microphone, arbitrary level units).
struct AcousticProbeOptions {
  sim::Tick sample_period = sim::ms(50);
  double ambient_level = 30.0;          // room + electronics ambience
  double idle_whine_per_motor = 0.5;    // enabled-but-still coil whine
  /// Per-axis tone level at full step rate (X, Y, Z, E).
  std::array<double, 4> tone_level{10.0, 10.0, 6.0, 4.0};
  double fan_level = 4.0;               // at 100% duty
  double full_step_rate_hz = 10'000.0;
  double noise_stddev = 1.0;            // microphone noise
  std::uint64_t noise_seed = 0xAC05;
};

/// Vibration probe configuration (frame accelerometer, milli-g).
struct VibrationProbeOptions {
  sim::Tick sample_period = sim::ms(50);
  double floor_mg = 2.0;                // sensor/idle floor
  /// Per-axis magnitude at full step rate (X, Y, Z, E).  The gantry
  /// axes swing real mass; the extruder barely registers.
  std::array<double, 4> axis_level_mg{25.0, 25.0, 10.0, 6.0};
  double full_step_rate_hz = 10'000.0;
  double noise_stddev_mg = 1.5;
  std::uint64_t noise_seed = 0x51B8;
};

/// Derives a per-rig measurement-noise seed from the rig's seed and a
/// per-channel tag (use the channel's default noise_seed as the tag).
/// Every physical probe has its own sensor, so two rigs - and two
/// channels on one rig - must never share a noise stream; mixing with
/// splitmix64 (the Supervisor backoff recipe) guarantees that even for
/// adjacent rig seeds.
std::uint64_t probe_noise_seed(std::uint64_t rig_seed,
                               std::uint64_t channel_tag);

/// Samples the machine's aggregate power draw during a print.
class PowerTraceProbe {
 public:
  /// `ramps` is the RAMPS-side bank (the supply side of the machine).
  PowerTraceProbe(sim::Scheduler& sched, Printer& printer,
                  sim::PinBank& ramps, PowerProbeOptions options = {});

  PowerTraceProbe(const PowerTraceProbe&) = delete;
  PowerTraceProbe& operator=(const PowerTraceProbe&) = delete;

  [[nodiscard]] const PowerTrace& trace() const { return trace_; }
  [[nodiscard]] PowerTrace take_trace() { return std::move(trace_); }

 private:
  void sample();
  [[nodiscard]] double motor_power(sim::Axis axis, double dt_s);

  sim::Scheduler& sched_;
  Printer& printer_;
  sim::PinBank& ramps_;
  PowerProbeOptions options_;
  sim::Rng noise_;
  std::array<std::uint64_t, 4> last_step_counts_{};
  std::array<std::unique_ptr<sim::DutyMeter>, 3> duty_;  // hotend, bed, fan
  PowerTrace trace_;
};

/// Samples the machine's acoustic emission during a print.
class AcousticTraceProbe {
 public:
  AcousticTraceProbe(sim::Scheduler& sched, Printer& printer,
                     sim::PinBank& ramps, AcousticProbeOptions options = {});

  AcousticTraceProbe(const AcousticTraceProbe&) = delete;
  AcousticTraceProbe& operator=(const AcousticTraceProbe&) = delete;

  [[nodiscard]] const SideTrace& trace() const { return trace_; }
  [[nodiscard]] SideTrace take_trace() { return std::move(trace_); }

 private:
  void sample();

  sim::Scheduler& sched_;
  Printer& printer_;
  AcousticProbeOptions options_;
  sim::Rng noise_;
  std::array<std::uint64_t, 4> last_step_counts_{};
  std::unique_ptr<sim::DutyMeter> fan_duty_;
  SideTrace trace_;
};

/// Samples the frame vibration magnitude during a print.
class VibrationTraceProbe {
 public:
  VibrationTraceProbe(sim::Scheduler& sched, Printer& printer,
                      VibrationProbeOptions options = {});

  VibrationTraceProbe(const VibrationTraceProbe&) = delete;
  VibrationTraceProbe& operator=(const VibrationTraceProbe&) = delete;

  [[nodiscard]] const SideTrace& trace() const { return trace_; }
  [[nodiscard]] SideTrace take_trace() { return std::move(trace_); }

 private:
  void sample();

  sim::Scheduler& sched_;
  Printer& printer_;
  VibrationProbeOptions options_;
  sim::Rng noise_;
  std::array<std::uint64_t, 4> last_step_counts_{};
  SideTrace trace_;
};

}  // namespace offramps::plant
