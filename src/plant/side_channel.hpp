// Power side-channel probe (paper section II-B / VI "Related platforms").
//
// The defenses OFFRAMPS is compared against are mostly side-channel
// based - notably actuator power signatures (Gatlin et al., IEEE Access
// 2019).  To quantify the paper's claim that direct signal access is
// "uniquely able to ... analyze prints with no loss of data", this probe
// produces what such a defense would see: the machine's aggregate
// electrical power, sampled at a fixed rate, through measurement noise.
//
// Electrical model (A4988/24 V class):
//   * each enabled stepper draws a hold current (~4 W) plus a
//     rate-dependent switching term (up to ~4 W more near 10 kHz),
//   * heaters draw gate-duty x element power (x rail derate),
//   * the part fan and base electronics add small constant-ish terms,
//   * the current clamp adds zero-mean gaussian noise - the "lossy"
//     part of a side channel.
#pragma once

#include <cstdint>
#include <vector>

#include "plant/printer.hpp"
#include "sim/pins.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace offramps::plant {

/// Probe configuration.
struct PowerProbeOptions {
  sim::Tick sample_period = sim::ms(50);
  double motor_hold_w = 4.0;
  double motor_switching_w = 4.0;     // additional at full step rate
  double full_step_rate_hz = 10'000.0;
  double fan_w = 2.0;                 // at 100% duty
  double base_electronics_w = 5.0;
  double noise_stddev_w = 1.5;        // clamp measurement noise
  std::uint64_t noise_seed = 0x50C4;
};

/// One power measurement.
struct PowerSample {
  double t_s = 0.0;
  double watts = 0.0;
};

/// A whole print's power trace.
using PowerTrace = std::vector<PowerSample>;

/// Samples the machine's aggregate power draw during a print.
class PowerTraceProbe {
 public:
  /// `ramps` is the RAMPS-side bank (the supply side of the machine).
  PowerTraceProbe(sim::Scheduler& sched, Printer& printer,
                  sim::PinBank& ramps, PowerProbeOptions options = {});

  PowerTraceProbe(const PowerTraceProbe&) = delete;
  PowerTraceProbe& operator=(const PowerTraceProbe&) = delete;

  [[nodiscard]] const PowerTrace& trace() const { return trace_; }
  [[nodiscard]] PowerTrace take_trace() { return std::move(trace_); }

 private:
  void sample();
  [[nodiscard]] double motor_power(sim::Axis axis, double dt_s);

  sim::Scheduler& sched_;
  Printer& printer_;
  sim::PinBank& ramps_;
  PowerProbeOptions options_;
  sim::Rng noise_;
  std::array<std::uint64_t, 4> last_step_counts_{};
  std::array<std::unique_ptr<sim::DutyMeter>, 3> duty_;  // hotend, bed, fan
  PowerTrace trace_;
};

}  // namespace offramps::plant
