#include "plant/side_channel.hpp"

#include <algorithm>

namespace offramps::plant {

namespace {

// splitmix64: the usual strong 64-bit finalizer (same recipe as the
// Supervisor's backoff jitter - duplicated here because plant:: sits
// below svc:: and cannot reach up a layer).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Fraction of the full step rate axis `axis` moved at since the last
/// sample.  Updates `last` even for disabled motors so a re-enable does
/// not see a step burst that never happened.
double step_rate_fraction(Printer& printer, sim::Axis axis, double dt_s,
                          double full_rate_hz,
                          std::array<std::uint64_t, 4>& last) {
  const auto i = static_cast<std::size_t>(axis);
  const StepperMotor& motor = printer.motor(axis);
  const std::uint64_t steps = motor.accepted_steps();
  const double rate = static_cast<double>(steps - last[i]) / dt_s;
  last[i] = steps;
  if (!motor.enabled()) return 0.0;
  return std::min(rate / full_rate_hz, 1.0);
}

}  // namespace

std::uint64_t probe_noise_seed(std::uint64_t rig_seed,
                               std::uint64_t channel_tag) {
  return mix64(rig_seed ^ mix64(channel_tag));
}

PowerTraceProbe::PowerTraceProbe(sim::Scheduler& sched, Printer& printer,
                                 sim::PinBank& ramps,
                                 PowerProbeOptions options)
    : sched_(sched),
      printer_(printer),
      ramps_(ramps),
      options_(options),
      noise_(options.noise_seed) {
  duty_[0] =
      std::make_unique<sim::DutyMeter>(ramps.wire(sim::Pin::kHotendHeat));
  duty_[1] =
      std::make_unique<sim::DutyMeter>(ramps.wire(sim::Pin::kBedHeat));
  duty_[2] = std::make_unique<sim::DutyMeter>(ramps.wire(sim::Pin::kFan));
  sched_.schedule_in(options_.sample_period, [this] { sample(); });
}

double PowerTraceProbe::motor_power(sim::Axis axis, double dt_s) {
  const auto i = static_cast<std::size_t>(axis);
  const StepperMotor& motor = printer_.motor(axis);
  if (!motor.enabled()) return 0.0;
  const std::uint64_t steps = motor.accepted_steps();
  const double rate =
      static_cast<double>(steps - last_step_counts_[i]) / dt_s;
  last_step_counts_[i] = steps;
  const double rate_fraction =
      std::min(rate / options_.full_step_rate_hz, 1.0);
  return options_.motor_hold_w + options_.motor_switching_w * rate_fraction;
}

void PowerTraceProbe::sample() {
  const double dt_s = sim::to_seconds(options_.sample_period);
  double watts = options_.base_electronics_w;
  for (const auto axis : sim::kAllAxes) watts += motor_power(axis, dt_s);
  const double derate = printer_.power().heater_derate();
  watts += duty_[0]->sample() * printer_.params().hotend.power_w * derate;
  watts += duty_[1]->sample() * printer_.params().bed.power_w * derate;
  watts += duty_[2]->sample() * options_.fan_w;
  watts += noise_.normal(0.0, options_.noise_stddev_w);

  trace_.push_back({sim::to_seconds(sched_.now()), std::max(watts, 0.0)});
  sched_.schedule_in(options_.sample_period, [this] { sample(); });
}

AcousticTraceProbe::AcousticTraceProbe(sim::Scheduler& sched,
                                       Printer& printer, sim::PinBank& ramps,
                                       AcousticProbeOptions options)
    : sched_(sched),
      printer_(printer),
      options_(options),
      noise_(options.noise_seed) {
  fan_duty_ =
      std::make_unique<sim::DutyMeter>(ramps.wire(sim::Pin::kFan));
  sched_.schedule_in(options_.sample_period, [this] { sample(); });
}

void AcousticTraceProbe::sample() {
  const double dt_s = sim::to_seconds(options_.sample_period);
  double level = options_.ambient_level;
  for (const auto axis : sim::kAllAxes) {
    const auto i = static_cast<std::size_t>(axis);
    const double fraction =
        step_rate_fraction(printer_, axis, dt_s, options_.full_step_rate_hz,
                           last_step_counts_);
    if (printer_.motor(axis).enabled()) {
      level += options_.idle_whine_per_motor;
    }
    level += options_.tone_level[i] * fraction;
  }
  level += fan_duty_->sample() * options_.fan_level;
  level += noise_.normal(0.0, options_.noise_stddev);

  trace_.push_back({sim::to_seconds(sched_.now()), std::max(level, 0.0)});
  sched_.schedule_in(options_.sample_period, [this] { sample(); });
}

VibrationTraceProbe::VibrationTraceProbe(sim::Scheduler& sched,
                                         Printer& printer,
                                         VibrationProbeOptions options)
    : sched_(sched),
      printer_(printer),
      options_(options),
      noise_(options.noise_seed) {
  sched_.schedule_in(options_.sample_period, [this] { sample(); });
}

void VibrationTraceProbe::sample() {
  const double dt_s = sim::to_seconds(options_.sample_period);
  double mg = options_.floor_mg;
  for (const auto axis : sim::kAllAxes) {
    const auto i = static_cast<std::size_t>(axis);
    const double fraction =
        step_rate_fraction(printer_, axis, dt_s, options_.full_step_rate_hz,
                           last_step_counts_);
    mg += options_.axis_level_mg[i] * fraction;
  }
  mg += noise_.normal(0.0, options_.noise_stddev_mg);

  trace_.push_back({sim::to_seconds(sched_.now()), std::max(mg, 0.0)});
  sched_.schedule_in(options_.sample_period, [this] { sample(); });
}

}  // namespace offramps::plant
