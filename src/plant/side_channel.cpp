#include "plant/side_channel.hpp"

#include <algorithm>

namespace offramps::plant {

PowerTraceProbe::PowerTraceProbe(sim::Scheduler& sched, Printer& printer,
                                 sim::PinBank& ramps,
                                 PowerProbeOptions options)
    : sched_(sched),
      printer_(printer),
      ramps_(ramps),
      options_(options),
      noise_(options.noise_seed) {
  duty_[0] =
      std::make_unique<sim::DutyMeter>(ramps.wire(sim::Pin::kHotendHeat));
  duty_[1] =
      std::make_unique<sim::DutyMeter>(ramps.wire(sim::Pin::kBedHeat));
  duty_[2] = std::make_unique<sim::DutyMeter>(ramps.wire(sim::Pin::kFan));
  sched_.schedule_in(options_.sample_period, [this] { sample(); });
}

double PowerTraceProbe::motor_power(sim::Axis axis, double dt_s) {
  const auto i = static_cast<std::size_t>(axis);
  const StepperMotor& motor = printer_.motor(axis);
  if (!motor.enabled()) return 0.0;
  const std::uint64_t steps = motor.accepted_steps();
  const double rate =
      static_cast<double>(steps - last_step_counts_[i]) / dt_s;
  last_step_counts_[i] = steps;
  const double rate_fraction =
      std::min(rate / options_.full_step_rate_hz, 1.0);
  return options_.motor_hold_w + options_.motor_switching_w * rate_fraction;
}

void PowerTraceProbe::sample() {
  const double dt_s = sim::to_seconds(options_.sample_period);
  double watts = options_.base_electronics_w;
  for (const auto axis : sim::kAllAxes) watts += motor_power(axis, dt_s);
  const double derate = printer_.power().heater_derate();
  watts += duty_[0]->sample() * printer_.params().hotend.power_w * derate;
  watts += duty_[1]->sample() * printer_.params().bed.power_w * derate;
  watts += duty_[2]->sample() * options_.fan_w;
  watts += noise_.normal(0.0, options_.noise_stddev_w);

  trace_.push_back({sim::to_seconds(sched_.now()), std::max(watts, 0.0)});
  sched_.schedule_in(options_.sample_period, [this] { sample(); });
}

}  // namespace offramps::plant
