// Thermal plant: lumped first-order heat models for the hotend and heated
// bed, plus the NTC thermistor divider feeding the firmware's ADC input.
//
//   C * dT/dt = P * duty - k * (T - T_ambient)
//
// `duty` is measured from the actual MOSFET gate waveform on the RAMPS
// side, so anything the OFFRAMPS fabric does to the heater signals (T6
// forcing them off, T7 forcing them on) feeds straight into the physics.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>

#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/thermistor.hpp"
#include "sim/trace.hpp"
#include "sim/wire.hpp"

namespace offramps::plant {

/// Physical parameters of one heat zone.
struct HeaterParams {
  double power_w = 40.0;           // heater power at 100% duty
  double capacity_j_per_k = 9.0;   // lumped thermal mass
  double loss_w_per_k = 0.085;     // convective/conductive loss
  double ambient_c = 25.0;
  double adc_noise_counts = 0.0;   // gaussian noise on the ADC reading
};

/// Prusa-class hotend (40 W cartridge in a ~9 J/K block): reaches 210 C in
/// under a minute, steady-state duty ~35%.
inline HeaterParams hotend_params() { return {}; }

/// Heated bed (24 V, ~220 W, large thermal mass).
inline HeaterParams bed_params() {
  return {.power_w = 220.0,
          .capacity_j_per_k = 600.0,
          .loss_w_per_k = 2.6,
          .ambient_c = 25.0,
          .adc_noise_counts = 0.0};
}

/// One heat zone: integrates the ODE and drives the thermistor ADC net.
class HeaterPlant {
 public:
  /// `power_derate` (optional) multiplies heater output, e.g. the
  /// (V/V_nom)^2 derating of a sagging supply rail.
  HeaterPlant(sim::Scheduler& sched, sim::Wire& gate,
              sim::AnalogChannel& adc_out, HeaterParams params,
              sim::Rng* noise_rng = nullptr,
              sim::Tick update_period = sim::ms(10),
              std::function<double()> power_derate = nullptr)
      : sched_(sched),
        duty_(gate),
        adc_out_(adc_out),
        params_(params),
        noise_rng_(noise_rng),
        period_(update_period),
        derate_(std::move(power_derate)),
        temp_c_(params.ambient_c) {
    publish();
    tick();
  }

  HeaterPlant(const HeaterPlant&) = delete;
  HeaterPlant& operator=(const HeaterPlant&) = delete;

  /// True physical temperature (what a reference probe would read).
  [[nodiscard]] double temperature_c() const { return temp_c_; }
  /// Highest temperature ever reached (Trojan T7's destructive evidence).
  [[nodiscard]] double peak_c() const { return peak_c_; }
  /// Energy delivered by the heater so far, joules.
  [[nodiscard]] double energy_j() const { return energy_j_; }

  const HeaterParams& params() const { return params_; }

 private:
  void tick() {
    sched_.schedule_in(period_, [this] {
      const double dt = sim::to_seconds(period_);
      const double duty = duty_.sample();
      const double p_in =
          params_.power_w * duty * (derate_ ? derate_() : 1.0);
      energy_j_ += p_in * dt;
      temp_c_ += dt *
                 (p_in - params_.loss_w_per_k * (temp_c_ - params_.ambient_c)) /
                 params_.capacity_j_per_k;
      if (temp_c_ > peak_c_) peak_c_ = temp_c_;
      publish();
      tick();
    });
  }

  void publish() {
    double counts = therm_.adc_counts(temp_c_);
    if (noise_rng_ != nullptr && params_.adc_noise_counts > 0.0) {
      counts += noise_rng_->normal(0.0, params_.adc_noise_counts);
    }
    adc_out_.set(counts);
  }

  sim::Scheduler& sched_;
  sim::DutyMeter duty_;
  sim::AnalogChannel& adc_out_;
  HeaterParams params_;
  sim::Rng* noise_rng_;
  sim::Tick period_;
  std::function<double()> derate_;
  sim::Thermistor therm_{};
  double temp_c_;
  double peak_c_ = 0.0;
  double energy_j_ = 0.0;
};

/// Part-cooling fan: PWM duty -> RPM with a first-order spin-up lag.
class FanPlant {
 public:
  FanPlant(sim::Scheduler& sched, sim::Wire& gate, double max_rpm = 5000.0,
           double time_constant_s = 0.5,
           sim::Tick update_period = sim::ms(50))
      : sched_(sched),
        duty_(gate),
        max_rpm_(max_rpm),
        tau_s_(time_constant_s),
        period_(update_period) {
    tick();
  }

  FanPlant(const FanPlant&) = delete;
  FanPlant& operator=(const FanPlant&) = delete;

  [[nodiscard]] double rpm() const { return rpm_; }
  /// Time-averaged RPM over the whole run (cooling delivered to the part).
  [[nodiscard]] double mean_rpm() const {
    return samples_ == 0 ? 0.0 : rpm_sum_ / static_cast<double>(samples_);
  }
  /// Most recent measured gate duty.
  [[nodiscard]] double last_duty() const { return last_duty_; }

 private:
  void tick() {
    sched_.schedule_in(period_, [this] {
      const double dt = sim::to_seconds(period_);
      last_duty_ = duty_.sample();
      const double target = last_duty_ * max_rpm_;
      rpm_ += (target - rpm_) * (1.0 - std::exp(-dt / tau_s_));
      rpm_sum_ += rpm_;
      ++samples_;
      tick();
    });
  }

  sim::Scheduler& sched_;
  sim::DutyMeter duty_;
  double max_rpm_;
  double tau_s_;
  sim::Tick period_;
  double rpm_ = 0.0;
  double rpm_sum_ = 0.0;
  std::uint64_t samples_ = 0;
  double last_duty_ = 0.0;
};

}  // namespace offramps::plant
