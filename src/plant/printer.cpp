#include "plant/printer.hpp"

#include "sim/error.hpp"

namespace offramps::plant {

Printer::Printer(sim::Scheduler& sched, sim::PinBank& ramps,
                 PrinterParams params)
    : params_(params), noise_(params.noise_seed) {
  power_ = std::make_unique<PowerIntegrity>(motor_rail_, logic_rail_,
                                            params_.power,
                                            params_.noise_seed ^ 0xB0B0);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto axis = static_cast<sim::Axis>(i);
    motors_[i] = std::make_unique<StepperMotor>(
        ramps.step(axis), ramps.dir(axis), ramps.enable(axis),
        power_.get());
  }
  for (std::size_t i = 0; i < 3; ++i) {
    const auto axis = static_cast<sim::Axis>(i);
    axes_[i] = std::make_unique<CarriageAxis>(
        *motors_[i], ramps.min_endstop(axis), params_.steps_per_mm[i],
        params_.axis_length_mm[i], params_.initial_position_mm[i]);
  }
  extruder_ = std::make_unique<ExtruderDrive>(*motors_[3],
                                              params_.steps_per_mm[3]);
  const auto derate = [this] { return power_->heater_derate(); };
  hotend_ = std::make_unique<HeaterPlant>(
      sched, ramps.wire(sim::Pin::kHotendHeat),
      ramps.analog(sim::APin::kThermHotend), params_.hotend, &noise_,
      sim::ms(10), derate);
  bed_ = std::make_unique<HeaterPlant>(sched, ramps.wire(sim::Pin::kBedHeat),
                                       ramps.analog(sim::APin::kThermBed),
                                       params_.bed, &noise_, sim::ms(10),
                                       derate);
  fan_ = std::make_unique<FanPlant>(sched, ramps.wire(sim::Pin::kFan),
                                    params_.fan_max_rpm);
  deposition_ = std::make_unique<DepositionRecorder>(
      *motors_[3], *axes_[0], *axes_[1], *axes_[2], params_.steps_per_mm[3],
      params_.deposition_sample_every);
}

CarriageAxis& Printer::axis(sim::Axis a) {
  if (a == sim::Axis::kE) throw Error("Printer::axis: E is not positional");
  return *axes_[static_cast<std::size_t>(a)];
}

const CarriageAxis& Printer::axis(sim::Axis a) const {
  if (a == sim::Axis::kE) throw Error("Printer::axis: E is not positional");
  return *axes_[static_cast<std::size_t>(a)];
}

}  // namespace offramps::plant
