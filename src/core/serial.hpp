// Wire-level UART (8N1) between the FPGA and the host.
//
// The paper's monitoring design streams 16-byte transactions over a UART;
// its Limitations section calls out the lack of a faster interface as the
// bound on capture rate.  Modelling the link at bit level makes that
// bound a measurable property: a transaction occupies 16 frames x 10 bits
// at the configured baud rate, and the transmitter queues (then visibly
// saturates) when transactions arrive faster than the line drains.
//
//   UartTx  - drives a TX net with start/8xdata(LSB first)/stop frames,
//             back to back, from a byte queue.
//   UartRx  - samples the net like a hardware UART: arms on the falling
//             start edge, samples each bit at its midpoint, validates the
//             stop bit (framing errors are counted, the byte dropped).
//   TransactionDecoder - reassembles framed transactions (sync magic +
//             index + counts + CRC, `Transaction::kFrameSize` bytes) with
//             three recovery mechanisms: magic hunting re-acquires byte
//             alignment after drops/duplications, CRC validation discards
//             bit-flipped frames, and a long inter-byte gap resets the
//             accumulator outright.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>

#include "core/capture.hpp"
#include "sim/scheduler.hpp"
#include "sim/wire.hpp"

namespace offramps::core {

/// Serial transmitter driving `line` (idle high).
class UartTx {
 public:
  UartTx(sim::Scheduler& sched, sim::Wire& line, std::uint32_t baud);

  UartTx(const UartTx&) = delete;
  UartTx& operator=(const UartTx&) = delete;

  /// Queues bytes for transmission.  Transmission starts immediately when
  /// the line is idle.
  void send(std::span<const std::uint8_t> bytes);

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  /// High-water mark of the byte queue (link saturation evidence).
  [[nodiscard]] std::size_t max_queue_depth() const { return max_queue_; }
  /// Duration of one bit on the line.
  [[nodiscard]] sim::Tick bit_time() const { return bit_time_; }
  /// Time to serialize `n` bytes (10 bits per 8N1 frame).
  [[nodiscard]] sim::Tick frame_time(std::size_t n) const {
    return bit_time_ * 10 * static_cast<sim::Tick>(n);
  }
  /// Fraction of elapsed time the line spent transmitting.
  [[nodiscard]] double utilization() const;

 private:
  void start_frame();
  void emit_bit(std::uint32_t bit_index, std::uint64_t gen);

  sim::Scheduler& sched_;
  sim::Wire& line_;
  sim::Tick bit_time_;
  std::deque<std::uint8_t> queue_;
  bool busy_ = false;
  std::uint8_t current_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::size_t max_queue_ = 0;
  sim::Tick busy_time_ = 0;
  sim::Tick created_at_ = 0;
};

/// Serial receiver sampling `line`.
class UartRx {
 public:
  using ByteCallback = std::function<void(std::uint8_t, sim::Tick)>;

  UartRx(sim::Scheduler& sched, sim::Wire& line, std::uint32_t baud);
  ~UartRx();

  UartRx(const UartRx&) = delete;
  UartRx& operator=(const UartRx&) = delete;

  void on_byte(ByteCallback cb) { on_byte_ = std::move(cb); }

  [[nodiscard]] std::uint64_t bytes_received() const { return received_; }
  [[nodiscard]] std::uint64_t framing_errors() const { return errors_; }

 private:
  void arm();
  void sample_bit(std::uint32_t bit_index, std::uint64_t gen);

  sim::Scheduler& sched_;
  sim::Wire& line_;
  sim::Tick bit_time_;
  sim::Wire::ListenerId listener_ = 0;
  bool receiving_ = false;
  std::uint8_t shift_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t errors_ = 0;
  ByteCallback on_byte_;
};

/// Reassembles framed step-count transactions from a byte stream.
///
/// Degradation behaviour (what the fault campaigns exercise):
///  - a byte that cannot start a frame is discarded while hunting for the
///    two-byte sync magic, so dropped/duplicated bytes cost at most one
///    frame before alignment is re-acquired;
///  - a complete frame whose CRC fails is discarded (counted in
///    crc_errors()), never delivered as a bogus count sample;
///  - frames repeating the previous frame's embedded index are dropped as
///    wire-level duplicates;
///  - a gap longer than `resync_gap` between bytes resets the accumulator.
class TransactionDecoder {
 public:
  using TransactionCallback = std::function<void(const Transaction&)>;

  explicit TransactionDecoder(sim::Tick resync_gap = sim::ms(20))
      : resync_gap_(resync_gap) {}

  /// Feeds one received byte (wire time `t`).
  void feed(std::uint8_t byte, sim::Tick t);

  void on_transaction(TransactionCallback cb) { on_txn_ = std::move(cb); }

  [[nodiscard]] const Capture& capture() const { return capture_; }
  [[nodiscard]] Capture take_capture() { return std::move(capture_); }
  /// Accumulator resets from inter-byte gaps or mid-frame magic loss.
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }
  /// Complete frames discarded for a CRC mismatch.
  [[nodiscard]] std::uint64_t crc_errors() const { return crc_errors_; }
  /// Bytes discarded while hunting for the sync magic.
  [[nodiscard]] std::uint64_t hunted_bytes() const { return hunted_bytes_; }
  /// Valid frames dropped because they repeated the previous index.
  [[nodiscard]] std::uint64_t duplicates_dropped() const {
    return duplicates_dropped_;
  }

 private:
  void resync_within_buffer();

  sim::Tick resync_gap_;
  std::array<std::uint8_t, Transaction::kFrameSize> buffer_{};
  std::size_t fill_ = 0;
  sim::Tick last_byte_at_ = 0;
  bool have_last_index_ = false;
  std::uint32_t last_index_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t crc_errors_ = 0;
  std::uint64_t hunted_bytes_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
  Capture capture_;
  TransactionCallback on_txn_;
};

}  // namespace offramps::core
