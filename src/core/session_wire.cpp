#include "core/session_wire.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "sim/error.hpp"

namespace offramps::core::wire {
namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Emits the 7-byte frame header for a payload of known final size.
void put_frame_header(std::vector<std::uint8_t>& out, FrameType type,
                      std::size_t payload_len) {
  put_u16(out, kFrameMagic);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload_len));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double get_f64(const std::uint8_t* p) {
  const std::uint64_t bits = get_u64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Bounded cursor over one frame payload.  Returns false instead of
/// throwing: payload damage is a resync event, not a stream abort.
struct PayloadReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  [[nodiscard]] bool need(std::size_t n) const { return size - pos >= n; }
  [[nodiscard]] bool exhausted() const { return pos == size; }

  bool u8(std::uint8_t& out) {
    if (!need(1)) return false;
    out = data[pos++];
    return true;
  }
  bool u32(std::uint32_t& out) {
    if (!need(4)) return false;
    out = get_u32(data + pos);
    pos += 4;
    return true;
  }
  bool u64(std::uint64_t& out) {
    if (!need(8)) return false;
    out = get_u64(data + pos);
    pos += 8;
    return true;
  }
  bool f64(double& out) {
    if (!need(8)) return false;
    out = get_f64(data + pos);
    pos += 8;
    return true;
  }
  bool str(std::string& out, std::size_t cap) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (len > cap || !need(len)) return false;
    out.assign(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return true;
  }
};

constexpr std::size_t kMaxHelloString = 1024;

bool decode_hello(const std::uint8_t* payload, std::size_t len,
                  SessionHello& out) {
  PayloadReader r{payload, len};
  if (!r.u32(out.rig_index) || !r.u64(out.seed) || !r.f64(out.cube_mm) ||
      !r.f64(out.height_mm) || !r.str(out.name, kMaxHelloString) ||
      !r.str(out.sabotage, kMaxHelloString) ||
      !r.str(out.chaos, kMaxHelloString)) {
    return false;
  }
  return r.exhausted();
}

bool decode_end(const std::uint8_t* payload, std::size_t len,
                SessionMeta& out) {
  PayloadReader r{payload, len};
  std::uint8_t finished = 0;
  std::uint8_t stopped = 0;
  if (!r.u8(finished) || !r.u8(stopped) || finished > 1 || stopped > 1) {
    return false;
  }
  out.print_finished = finished != 0;
  out.safe_stopped = stopped != 0;
  if (!r.f64(out.sim_seconds)) return false;
  for (auto& c : out.final_counts) {
    std::uint64_t raw = 0;
    if (!r.u64(raw)) return false;
    c = static_cast<std::int64_t>(raw);
  }
  return r.exhausted();
}

/// Validates a candidate frame header's type and length bounds.  A header
/// that fails here is treated as a coincidental magic inside garbage.
bool plausible_frame(std::uint8_t type, std::uint32_t len) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
      return len <= kMaxHelloPayload;
    case FrameType::kTxn:
      return len == kTxnPayloadSize;
    case FrameType::kPower:
      return len == kPowerPayloadSize;
    case FrameType::kSample:
      return len == kSamplePayloadSize;
    case FrameType::kSlot:
      return len == 0;
    case FrameType::kFinish:
      return len <= kMaxFinishPayload;
    case FrameType::kEnd:
      return len == kEndPayloadSize;
  }
  return false;
}

}  // namespace

void append_stream_header(std::vector<std::uint8_t>& out) {
  out.insert(out.end(), kStreamMagic.begin(), kStreamMagic.end());
  put_u16(out, kStreamVersion);
  put_u16(out, 0);  // reserved
}

void append_hello(std::vector<std::uint8_t>& out, const SessionHello& hello) {
  std::vector<std::uint8_t> payload;
  put_u32(payload, hello.rig_index);
  put_u64(payload, hello.seed);
  put_f64(payload, hello.cube_mm);
  put_f64(payload, hello.height_mm);
  put_str(payload, hello.name);
  put_str(payload, hello.sabotage);
  put_str(payload, hello.chaos);
  if (payload.size() > kMaxHelloPayload) {
    throw Error("session_wire: hello payload exceeds cap");
  }
  put_frame_header(out, FrameType::kHello, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
}

void append_txn(std::vector<std::uint8_t>& out, const Transaction& txn) {
  put_frame_header(out, FrameType::kTxn, kTxnPayloadSize);
  const auto frame = txn.to_frame();
  out.insert(out.end(), frame.begin(), frame.end());
  put_u64(out, txn.time_ns);
}

void append_power(std::vector<std::uint8_t>& out, double t_s, double watts) {
  put_frame_header(out, FrameType::kPower, kPowerPayloadSize);
  put_f64(out, t_s);
  put_f64(out, watts);
}

void append_sample(std::vector<std::uint8_t>& out, std::uint8_t kind,
                   double t_s, double value) {
  put_frame_header(out, FrameType::kSample, kSamplePayloadSize);
  put_u8(out, kind);
  put_f64(out, t_s);
  put_f64(out, value);
}

void append_slot(std::vector<std::uint8_t>& out) {
  put_frame_header(out, FrameType::kSlot, 0);
}

void append_finish(std::vector<std::uint8_t>& out, const Capture& capture) {
  const auto blob = capture.to_binary();
  if (blob.size() > kMaxFinishPayload) {
    throw Error("session_wire: capture blob exceeds cap");
  }
  put_frame_header(out, FrameType::kFinish, blob.size());
  out.insert(out.end(), blob.begin(), blob.end());
}

void append_end(std::vector<std::uint8_t>& out, const SessionMeta& meta) {
  put_frame_header(out, FrameType::kEnd, kEndPayloadSize);
  put_u8(out, meta.print_finished ? 1 : 0);
  put_u8(out, meta.safe_stopped ? 1 : 0);
  put_f64(out, meta.sim_seconds);
  for (const auto c : meta.final_counts) {
    put_u64(out, static_cast<std::uint64_t>(c));
  }
}

void SessionRecorder::save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("SessionRecorder::save: cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(bytes_.data()),
              static_cast<std::streamsize>(bytes_.size()));
    if (!out) throw Error("SessionRecorder::save: write failed for " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw Error("SessionRecorder::save: rename to " + path + " failed: " +
                ec.message());
  }
}

void FrameReader::fail(const std::string& why) {
  failed_ = true;
  error_ = why;
  buffer_.clear();
}

std::size_t FrameReader::drain_buffer(const Callback& cb) {
  std::size_t pos = 0;
  if (!header_seen_) {
    if (buffer_.size() < kStreamHeaderSize) return 0;
    if (!std::equal(kStreamMagic.begin(), kStreamMagic.end(),
                    buffer_.begin())) {
      fail("bad stream magic (not an OFSS session)");
      return 0;
    }
    const std::uint16_t version = get_u16(buffer_.data() + 4);
    if (version != kStreamVersion) {
      fail("unsupported session version " + std::to_string(version));
      return 0;
    }
    header_seen_ = true;
    pos = kStreamHeaderSize;
  }

  const auto note_resync = [&] {
    if (!in_resync_gap_) {
      ++resyncs_;
      in_resync_gap_ = true;
    }
  };

  while (!ended_ && buffer_.size() - pos >= kFrameHeaderSize) {
    if (get_u16(buffer_.data() + pos) != kFrameMagic) {
      // Hunt for the next frame boundary, UART-receiver style.
      note_resync();
      const std::uint8_t lo = static_cast<std::uint8_t>(kFrameMagic & 0xFF);
      std::size_t next = pos + 1;
      while (next + 1 < buffer_.size() &&
             !(buffer_[next] == lo &&
               buffer_[next + 1] == (kFrameMagic >> 8))) {
        ++next;
      }
      if (next + 1 >= buffer_.size()) {
        // Keep the final byte: it may be the first half of a magic.
        pos = buffer_.size() - 1;
        break;
      }
      pos = next;
      continue;
    }
    const std::uint8_t type = buffer_[pos + 2];
    const std::uint32_t len = get_u32(buffer_.data() + pos + 3);
    if (!plausible_frame(type, len)) {
      // Coincidental magic inside a damaged region: step past it.
      note_resync();
      pos += 2;
      continue;
    }
    if (buffer_.size() - pos - kFrameHeaderSize < len) break;  // wait

    const std::uint8_t* payload = buffer_.data() + pos + kFrameHeaderSize;
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    bool emit = true;
    switch (frame.type) {
      case FrameType::kHello:
        if (!decode_hello(payload, len, frame.hello)) {
          note_resync();
          emit = false;
        }
        break;
      case FrameType::kTxn: {
        std::array<std::uint8_t, Transaction::kFrameSize> inner{};
        std::memcpy(inner.data(), payload, inner.size());
        const std::uint64_t time_ns = get_u64(payload + inner.size());
        const auto txn = Transaction::from_frame(inner, time_ns);
        if (!txn) {
          ++corrupt_txns_;
          emit = false;
        } else {
          frame.txn = *txn;
        }
        break;
      }
      case FrameType::kPower:
        frame.power_t_s = get_f64(payload);
        frame.power_watts = get_f64(payload + 8);
        break;
      case FrameType::kSample:
        frame.sample_kind = payload[0];
        if (frame.sample_kind < kSampleKindMin ||
            frame.sample_kind > kSampleKindMax) {
          // An unknown kind is a future channel (or damage): skip the
          // frame, keep the session.
          note_resync();
          emit = false;
          break;
        }
        frame.sample_t_s = get_f64(payload + 1);
        frame.sample_value = get_f64(payload + 9);
        break;
      case FrameType::kSlot:
        break;
      case FrameType::kFinish:
        frame.finish.assign(payload, payload + len);
        break;
      case FrameType::kEnd:
        if (!decode_end(payload, len, frame.end)) {
          note_resync();
          emit = false;
        } else {
          ended_ = true;
        }
        break;
    }
    pos += kFrameHeaderSize + len;
    if (emit) {
      in_resync_gap_ = false;
      cb(frame);
    }
  }
  return pos;
}

std::size_t FrameReader::feed(const std::uint8_t* data, std::size_t n,
                              const Callback& cb) {
  if (ended_) return 0;
  if (failed_) return n;  // discard: the session is already dead
  buffer_.insert(buffer_.end(), data, data + n);
  const std::size_t consumed = drain_buffer(cb);
  if (failed_) return n;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(consumed));
  if (ended_) {
    // Leftover bytes belong to the next concatenated stream; they all
    // arrived in this chunk (earlier chunks ended inside the kEnd frame).
    const std::size_t leftover = buffer_.size();
    buffer_.clear();
    return n - leftover;
  }
  return n;
}

void FrameReader::close() {
  if (ended_ || failed_) return;
  if (!header_seen_ && buffer_.empty()) {
    fail("empty session stream");
    return;
  }
  fail(buffer_.empty() ? "disconnected before session end"
                       : "disconnected mid-frame before session end");
}

std::vector<std::string> list_corpus_files(const std::string& dir,
                                           const std::string& extension) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    throw Error("list_corpus_files: not a directory: " + dir);
  }
  std::vector<std::string> files;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (it->path().extension() != extension) continue;
    files.push_back(it->path().string());
  }
  if (ec) {
    throw Error("list_corpus_files: cannot read " + dir + ": " +
                ec.message());
  }
  std::sort(files.begin(), files.end(),
            [](const std::string& a, const std::string& b) {
              return fs::path(a).filename().string() <
                     fs::path(b).filename().string();
            });
  return files;
}

}  // namespace offramps::core::wire
