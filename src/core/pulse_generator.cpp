#include "core/pulse_generator.hpp"

#include <cmath>

#include "sim/error.hpp"

namespace offramps::core {

void PulseGenerator::burst(const PulseTrain& train) {
  if (train.width == 0 || train.period <= train.width) {
    throw Error("PulseGenerator: period must exceed pulse width");
  }
  const std::uint64_t gen = generation_;
  for (std::uint32_t i = 0; i < train.count; ++i) {
    const sim::Tick at = sim::align_to_fpga_clock(
        sched_.now() + static_cast<sim::Tick>(i) * train.period);
    sched_.schedule_at(at, [this, gen, width = train.width] {
      if (gen != generation_) return;
      path_.inject_pulse(width);
      ++emitted_;
    });
  }
}

std::uint32_t PulseGenerator::burst_mm(double mm, double frequency_hz) {
  if (frequency_hz <= 0.0) {
    throw Error("PulseGenerator: frequency must be positive");
  }
  const auto count = static_cast<std::uint32_t>(
      std::llround(std::abs(mm) * steps_per_mm_));
  PulseTrain train;
  train.count = count;
  train.period = static_cast<sim::Tick>(
      static_cast<double>(sim::kTicksPerSecond) / frequency_hz);
  burst(train);
  return count;
}

}  // namespace offramps::core
