// Capture data model: what the OFFRAMPS streams to the host during print
// monitoring (paper section V-B).
//
// Every 0.1 s the FPGA's UART control unit sends one 16-byte transaction:
// the four signed 32-bit step counters (X, Y, Z, E) accumulated since
// homing.  A `Capture` is the host-side log of one print: the transaction
// series plus the final counter values at print end (used by the paper's
// final 0%-margin check).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace offramps::core {

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over `len` bytes.  This is
/// the checksum the UART frame format carries so receivers can discard
/// transactions corrupted on the wire instead of mis-counting.
[[nodiscard]] std::uint16_t crc16_ccitt(const std::uint8_t* data,
                                        std::size_t len);

/// One UART transaction: cumulative step counts per motor.
struct Transaction {
  std::uint32_t index = 0;                 // transaction sequence number
  std::array<std::int32_t, 4> counts{};    // X, Y, Z, E
  std::uint64_t time_ns = 0;               // capture-side timestamp

  /// On-the-wire frame layout:
  ///   [0]     0xA5   sync magic, byte 0
  ///   [1]     0x5A   sync magic, byte 1
  ///   [2..5]  index, u32 little endian
  ///   [6..21] counts, 4 x i32 little endian
  ///   [22..23] CRC-16/CCITT over bytes [2..21], little endian
  /// The magic lets a receiver that lost byte alignment (dropped or
  /// duplicated bytes) hunt for the next frame boundary; the CRC catches
  /// bit flips; the embedded index keeps golden-model comparison aligned
  /// even when whole frames are discarded.
  static constexpr std::size_t kFrameSize = 24;
  static constexpr std::uint8_t kMagic0 = 0xA5;
  static constexpr std::uint8_t kMagic1 = 0x5A;

  /// Serializes the bare counts payload (4 x int32, little endian) -- the
  /// paper's original unframed 16-byte transaction body.
  [[nodiscard]] std::array<std::uint8_t, 16> to_bytes() const;
  /// Decodes a bare counts payload.
  static Transaction from_bytes(const std::array<std::uint8_t, 16>& bytes,
                                std::uint32_t index, std::uint64_t time_ns);

  /// Serializes the full framed transaction (magic + index + counts + CRC).
  [[nodiscard]] std::array<std::uint8_t, kFrameSize> to_frame() const;
  /// Validates and decodes a frame.  Returns nullopt when the magic or the
  /// CRC does not check out.
  static std::optional<Transaction> from_frame(
      const std::array<std::uint8_t, kFrameSize>& frame,
      std::uint64_t time_ns);
};

/// A full print capture.
struct Capture {
  std::string label;
  std::vector<Transaction> transactions;
  /// Counter values at the very end of the print (0%-margin final check).
  std::array<std::int64_t, 4> final_counts{};
  bool print_completed = false;  // false when the print was killed/aborted

  [[nodiscard]] std::size_t size() const { return transactions.size(); }
  [[nodiscard]] bool empty() const { return transactions.empty(); }

  /// Renders the "Index, X, Y, Z, E" CSV shown in the paper's Figure 4.
  [[nodiscard]] std::string to_csv() const;
  /// Parses a CSV produced by to_csv().  Throws offramps::Error on
  /// malformed input.
  static Capture from_csv(const std::string& text, std::string label = {});

  /// Binary serialization, for fleet runs that persist/replay captures.
  /// Layout (all little endian): "OFRC" magic, u16 format version, u16
  /// flags (bit 0 = print_completed), u32 label length + label bytes,
  /// u64 transaction count, then per transaction u32 index + 4 x i32
  /// counts + u64 time_ns, then 4 x i64 final counts.  The two length
  /// prefixes make truncation detectable without a trailing checksum.
  static constexpr std::uint16_t kBinaryVersion = 1;
  [[nodiscard]] std::vector<std::uint8_t> to_binary() const;
  /// Decodes to_binary() output.  Throws offramps::Error on a bad magic,
  /// an unknown version, or a buffer shorter than its length prefixes
  /// promise (truncated file).
  static Capture from_binary(const std::uint8_t* data, std::size_t size);
  static Capture from_binary(const std::vector<std::uint8_t>& bytes) {
    return from_binary(bytes.data(), bytes.size());
  }

  /// File round trip via to_binary()/from_binary().  Throws
  /// offramps::Error on I/O failure.
  void save_binary(const std::string& path) const;
  static Capture load_binary(const std::string& path);
};

}  // namespace offramps::core
