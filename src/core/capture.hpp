// Capture data model: what the OFFRAMPS streams to the host during print
// monitoring (paper section V-B).
//
// Every 0.1 s the FPGA's UART control unit sends one 16-byte transaction:
// the four signed 32-bit step counters (X, Y, Z, E) accumulated since
// homing.  A `Capture` is the host-side log of one print: the transaction
// series plus the final counter values at print end (used by the paper's
// final 0%-margin check).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace offramps::core {

/// One 16-byte UART transaction: cumulative step counts per motor.
struct Transaction {
  std::uint32_t index = 0;                 // transaction sequence number
  std::array<std::int32_t, 4> counts{};    // X, Y, Z, E
  std::uint64_t time_ns = 0;               // capture-side timestamp

  /// Serializes the on-the-wire payload (4 x int32, little endian).
  [[nodiscard]] std::array<std::uint8_t, 16> to_bytes() const;
  /// Decodes a payload.
  static Transaction from_bytes(const std::array<std::uint8_t, 16>& bytes,
                                std::uint32_t index, std::uint64_t time_ns);
};

/// A full print capture.
struct Capture {
  std::string label;
  std::vector<Transaction> transactions;
  /// Counter values at the very end of the print (0%-margin final check).
  std::array<std::int64_t, 4> final_counts{};
  bool print_completed = false;  // false when the print was killed/aborted

  [[nodiscard]] std::size_t size() const { return transactions.size(); }
  [[nodiscard]] bool empty() const { return transactions.empty(); }

  /// Renders the "Index, X, Y, Z, E" CSV shown in the paper's Figure 4.
  [[nodiscard]] std::string to_csv() const;
  /// Parses a CSV produced by to_csv().  Throws offramps::Error on
  /// malformed input.
  static Capture from_csv(const std::string& text, std::string label = {});
};

}  // namespace offramps::core
