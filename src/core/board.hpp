// The OFFRAMPS board itself (paper section III).
//
// Physically the board is three headers and two jumper banks: the Arduino
// Mega plugs into one side, the RAMPS 1.4 into the other, and the jumpers
// select - per signal group - whether nets connect straight through or
// detour via the Cmod-A7.  This class owns both pin banks, the fabric, and
// the jumper state, and implements the three routing configurations of
// paper Figure 3:
//
//   kDirect     (3a) straight jumpers; the FPGA is out of circuit
//   kFpgaMitm   (3b) all nets routed through the fabric (modifiable)
//   kFpgaRecord (3c) straight jumpers + FPGA taps for lossless recording
#pragma once

#include <vector>

#include "core/fpga.hpp"
#include "core/trojans.hpp"
#include "sim/pins.hpp"
#include "sim/scheduler.hpp"

namespace offramps::core {

/// Jumper-selected signal path configuration (paper Figure 3).
enum class RouteMode { kDirect, kFpgaMitm, kFpgaRecord };

const char* route_mode_name(RouteMode m);

/// Board construction parameters.
struct BoardOptions {
  FpgaOptions fpga{};
  /// Straight-jumper propagation delay (a trace, effectively instant).
  sim::Tick jumper_delay = sim::ns(1);
  /// Analog (thermistor) pass-through delay via the XADC+DAC path in MITM
  /// mode.
  sim::Tick analog_mitm_delay = sim::us(2);
};

/// The assembled OFFRAMPS board.
class Board {
 public:
  explicit Board(sim::Scheduler& sched, BoardOptions options = {},
                 RouteMode initial = RouteMode::kFpgaMitm);

  Board(const Board&) = delete;
  Board& operator=(const Board&) = delete;

  /// The header the firmware (Arduino) drives and reads.
  [[nodiscard]] sim::PinBank& arduino_side() { return arduino_; }
  /// The header the printer electronics (RAMPS) drive and read.
  [[nodiscard]] sim::PinBank& ramps_side() { return ramps_; }

  [[nodiscard]] Fpga& fpga() { return fpga_; }
  [[nodiscard]] TrojanController& trojans() { return trojans_; }

  /// Moves the jumpers.  Normally done before power-on; switching while
  /// signals are live re-synchronizes every net to its driver's level.
  void set_route(RouteMode mode);
  [[nodiscard]] RouteMode route() const { return mode_; }

 private:
  void connect_direct();

  sim::Scheduler& sched_;
  BoardOptions options_;
  sim::PinBank arduino_;
  sim::PinBank ramps_;
  Fpga fpga_;
  TrojanController trojans_;
  RouteMode mode_ = RouteMode::kDirect;
  std::vector<sim::Connection> direct_;
};

}  // namespace offramps::core
