#include "core/signal_path.hpp"

namespace offramps::core {

SignalPath::SignalPath(sim::Scheduler& sched, sim::Wire& in, sim::Wire& out,
                       sim::Tick prop_delay)
    : sched_(sched), in_(in), out_(out), delay_(prop_delay) {
  listener_ = in_.on_edge([this](sim::Edge e, sim::Tick) {
    if (active_) on_input_edge(e);
  });
}

SignalPath::~SignalPath() { in_.remove_listener(listener_); }

void SignalPath::set_active(bool active) {
  if (active_ == active) return;
  active_ = active;
  if (active_) {
    pass_level_ = in_.level();
    suppressing_pulse_ = false;
    update_output();
  }
  // On deactivation the direct jumpers take over the net; we simply stop
  // driving (the board re-syncs the output when it re-routes).
}

void SignalPath::force(std::optional<bool> level) {
  forced_ = level;
  if (active_) update_output();
}

void SignalPath::set_pulse_filter(PulseFilter filter) {
  filter_ = std::move(filter);
  suppressing_pulse_ = false;
}

void SignalPath::inject_pulse(sim::Tick width) {
  if (!active_ || forced_.has_value()) return;
  if (out_.level() || inj_level_) {
    // Wait for a gap between original pulses, then retry.
    sched_.schedule_in(width, [this, width] { inject_pulse(width); });
    return;
  }
  inj_level_ = true;
  ++injected_;
  update_output();
  sched_.schedule_in(width, [this] {
    inj_level_ = false;
    update_output();
  });
}

void SignalPath::on_input_edge(sim::Edge e) {
  if (e == sim::Edge::kRising) {
    if (filter_ && !filter_()) {
      suppressing_pulse_ = true;
      ++dropped_;
      return;
    }
    ++passed_;
    sched_.schedule_in(delay_, [this] {
      pass_level_ = true;
      update_output();
    });
  } else {
    if (suppressing_pulse_) {
      suppressing_pulse_ = false;
      return;
    }
    sched_.schedule_in(delay_, [this] {
      pass_level_ = false;
      update_output();
    });
  }
}

void SignalPath::update_output() {
  if (!active_) return;
  const bool level =
      forced_.has_value() ? *forced_ : (pass_level_ || inj_level_);
  out_.set(level);
}

}  // namespace offramps::core
