#include "core/monitor.hpp"

#include <memory>

namespace offramps::core {

HomingDetector::HomingDetector(sim::Scheduler& sched, sim::Wire& x_min,
                               sim::Wire& y_min, sim::Wire& z_min) {
  sim::Wire* wires[3] = {&x_min, &y_min, &z_min};
  for (std::size_t i = 0; i < 3; ++i) {
    detectors_[i] = std::make_unique<EdgeDetector>(
        sched, *wires[i], [this, i](sim::Edge e, sim::Tick t) {
          on_endstop_edge(i, e, t);
        });
  }
}

void HomingDetector::reset() {
  current_axis_ = 0;
  sub_state_ = 0;
  homed_ = false;
  homed_at_ = 0;
}

void HomingDetector::on_endstop_edge(std::size_t axis, sim::Edge e,
                                     sim::Tick t) {
  if (!enabled_) return;
  if (homed_) {
    // Any endstop activity after homing is unexpected during a print.
    ++anomalies_;
    return;
  }
  if (axis != current_axis_) {
    // A completed axis re-triggering is tolerated (mechanical bounce);
    // a *future* axis firing early is out of order.
    if (axis > current_axis_) ++anomalies_;
    return;
  }
  switch (sub_state_) {
    case 0:  // awaiting first (fast) hit
      if (e == sim::Edge::kRising) sub_state_ = 1;
      break;
    case 1:  // awaiting back-off release
      if (e == sim::Edge::kFalling) sub_state_ = 2;
      break;
    case 2:  // awaiting slow re-bump
      if (e == sim::Edge::kRising) {
        sub_state_ = 0;
        ++current_axis_;
        if (current_axis_ == 3) {
          homed_ = true;
          homed_at_ = t;
          for (const auto& cb : on_homed_) cb(t);
        }
      }
      break;
    default:
      break;
  }
}

AxisTracker::AxisTracker(sim::Scheduler& sched, sim::Wire& step,
                         sim::Wire& dir)
    : detector_(sched, step,
                [this](sim::Edge e, sim::Tick t) {
                  if (e != sim::Edge::kRising || !armed_ || !connected_) {
                    return;
                  }
                  count_ += dir_.level() ? 1 : -1;
                  if (!saw_step_) {
                    saw_step_ = true;
                    first_step_at_ = t;
                    if (on_first_step_) on_first_step_(t);
                  }
                }),
      dir_(dir) {}

void AxisTracker::arm() {
  armed_ = true;
  count_ = 0;
  saw_step_ = false;
}

void AxisTracker::disarm() { armed_ = false; }

LayerMonitor::LayerMonitor(sim::Scheduler& sched, sim::Wire& z_step,
                           sim::Tick quiet_gap)
    : detector_(sched, z_step,
                [this](sim::Edge e, sim::Tick t) {
                  if (e != sim::Edge::kRising) return;
                  if (last_z_step_ == 0 || t - last_z_step_ > quiet_gap_) {
                    ++layers_;
                    for (const auto& cb : on_layer_) cb(layers_);
                  }
                  last_z_step_ = t;
                }),
      quiet_gap_(quiet_gap) {}

}  // namespace offramps::core
