#include "core/serial.hpp"

#include "sim/error.hpp"

namespace offramps::core {

// --- UartTx -------------------------------------------------------------------

UartTx::UartTx(sim::Scheduler& sched, sim::Wire& line, std::uint32_t baud)
    : sched_(sched), line_(line), created_at_(sched.now()) {
  if (baud == 0) throw Error("UartTx: baud rate must be positive");
  bit_time_ = sim::kTicksPerSecond / baud;
  line_.set(true);  // idle high
}

void UartTx::send(std::span<const std::uint8_t> bytes) {
  for (const auto b : bytes) queue_.push_back(b);
  max_queue_ = std::max(max_queue_, queue_.size());
  if (!busy_) start_frame();
}

void UartTx::start_frame() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  current_ = queue_.front();
  queue_.pop_front();
  const auto gen = ++generation_;
  line_.set(false);  // start bit
  emit_bit(0, gen);
}

void UartTx::emit_bit(std::uint32_t bit_index, std::uint64_t gen) {
  sched_.schedule_in(bit_time_, [this, bit_index, gen] {
    if (gen != generation_) return;
    if (bit_index < 8) {
      line_.set((current_ >> bit_index) & 1);
      emit_bit(bit_index + 1, gen);
      return;
    }
    if (bit_index == 8) {
      line_.set(true);  // stop bit
      emit_bit(9, gen);
      return;
    }
    // Stop bit complete: frame done.
    ++bytes_sent_;
    busy_time_ += bit_time_ * 10;
    start_frame();
  });
}

double UartTx::utilization() const {
  const sim::Tick elapsed = sched_.now() - created_at_;
  if (elapsed == 0) return 0.0;
  return static_cast<double>(busy_time_) / static_cast<double>(elapsed);
}

// --- UartRx -------------------------------------------------------------------

UartRx::UartRx(sim::Scheduler& sched, sim::Wire& line, std::uint32_t baud)
    : sched_(sched), line_(line) {
  if (baud == 0) throw Error("UartRx: baud rate must be positive");
  bit_time_ = sim::kTicksPerSecond / baud;
  arm();
}

UartRx::~UartRx() { line_.remove_listener(listener_); }

void UartRx::arm() {
  listener_ = line_.on_falling([this](sim::Tick) {
    if (receiving_) return;
    receiving_ = true;
    shift_ = 0;
    const auto gen = ++generation_;
    // First data bit midpoint: 1.5 bit times after the start edge.
    sched_.schedule_in(bit_time_ + bit_time_ / 2,
                       [this, gen] { sample_bit(0, gen); });
  });
}

void UartRx::sample_bit(std::uint32_t bit_index, std::uint64_t gen) {
  if (gen != generation_) return;
  if (bit_index < 8) {
    if (line_.level()) shift_ |= static_cast<std::uint8_t>(1u << bit_index);
    sched_.schedule_in(bit_time_, [this, gen, bit_index] {
      sample_bit(bit_index + 1, gen);
    });
    return;
  }
  // Stop bit sample.
  receiving_ = false;
  if (!line_.level()) {
    ++errors_;  // framing error: byte discarded
    return;
  }
  ++received_;
  if (on_byte_) on_byte_(shift_, sched_.now());
}

// --- TransactionDecoder ---------------------------------------------------------

void TransactionDecoder::feed(std::uint8_t byte, sim::Tick t) {
  if (fill_ > 0 && last_byte_at_ != 0 && t - last_byte_at_ > resync_gap_) {
    // Mid-frame silence: we lost bytes somewhere; realign on this one.
    fill_ = 0;
    ++resyncs_;
  }
  last_byte_at_ = t;
  // Hunt for the frame boundary: a frame must open with the sync magic.
  if (fill_ == 0 && byte != Transaction::kMagic0) {
    ++hunted_bytes_;
    return;
  }
  if (fill_ == 1 && byte != Transaction::kMagic1) {
    fill_ = 0;
    ++resyncs_;
    if (byte == Transaction::kMagic0) {
      buffer_[fill_++] = byte;  // this byte may itself open the real frame
    } else {
      ++hunted_bytes_;
    }
    return;
  }
  buffer_[fill_++] = byte;
  if (fill_ < buffer_.size()) return;
  fill_ = 0;
  const auto txn = Transaction::from_frame(buffer_, t);
  if (!txn.has_value()) {
    // CRC mismatch.  A dropped byte mid-frame means the next frame's
    // opening magic is sitting somewhere inside this buffer; re-hunting
    // within it recovers a frame earlier than waiting for fresh bytes.
    ++crc_errors_;
    resync_within_buffer();
    return;
  }
  if (have_last_index_ && txn->index == last_index_) {
    ++duplicates_dropped_;  // wire-level duplicate of the previous frame
    return;
  }
  have_last_index_ = true;
  last_index_ = txn->index;
  capture_.transactions.push_back(*txn);
  for (std::size_t i = 0; i < 4; ++i) {
    capture_.final_counts[i] = txn->counts[i];
  }
  if (on_txn_) on_txn_(*txn);
}

void TransactionDecoder::resync_within_buffer() {
  // Find the next magic pair past the failed frame's first byte and keep
  // the tail as the start of the next accumulation.
  for (std::size_t i = 1; i + 1 < buffer_.size(); ++i) {
    if (buffer_[i] == Transaction::kMagic0 &&
        buffer_[i + 1] == Transaction::kMagic1) {
      const std::size_t tail = buffer_.size() - i;
      for (std::size_t j = 0; j < tail; ++j) buffer_[j] = buffer_[i + j];
      fill_ = tail;
      ++resyncs_;
      return;
    }
  }
  // A trailing magic byte alone might pair with the next incoming byte.
  if (buffer_.back() == Transaction::kMagic0) {
    buffer_[0] = Transaction::kMagic0;
    fill_ = 1;
    ++resyncs_;
  }
}

}  // namespace offramps::core
