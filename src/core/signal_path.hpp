// One FPGA-routed signal path of the OFFRAMPS board.
//
// In MITM mode every intercepted net passes through the fabric as:
//
//     in (5V) -> level shifter -> FPGA routing -> shifter -> out (5V)
//
// modelled as a fixed per-net propagation delay (the paper measures a
// 12.923 ns worst case).  On top of the combinational pass-through, the
// Trojan control module can:
//   * force the output to a constant level (T6 heater-off, T7 heater-on,
//     T8 driver disable, T9 fan re-modulation),
//   * drop selected input pulses (T2 extrusion masking, T3 retraction
//     tampering), and
//   * inject extra pulses between the original ones (T1 axis shifts,
//     T4 layer shifts, T5 Z shifts).
// The output is the OR of the (possibly filtered) pass-through level and
// the injection level, overridden entirely while forced - i.e. the
// multiplexer structure of the paper's Trojan Control Module.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "sim/scheduler.hpp"
#include "sim/wire.hpp"

namespace offramps::core {

/// FPGA-mediated connection from `in` to `out`.
class SignalPath {
 public:
  /// Predicate consulted on each input rising edge while pass-through is
  /// live; returning false drops that entire pulse (rising + falling).
  using PulseFilter = std::function<bool()>;

  SignalPath(sim::Scheduler& sched, sim::Wire& in, sim::Wire& out,
             sim::Tick prop_delay);
  ~SignalPath();

  SignalPath(const SignalPath&) = delete;
  SignalPath& operator=(const SignalPath&) = delete;

  /// Routes (true) or isolates (false) this path.  While inactive the
  /// output is not driven by this path at all (the board's direct jumpers
  /// own the net instead).
  void set_active(bool active);
  [[nodiscard]] bool active() const { return active_; }

  /// Forces the output to a constant level, or releases the force
  /// (nullopt) so the pass-through level shows through again.
  void force(std::optional<bool> level);
  [[nodiscard]] std::optional<bool> forced() const { return forced_; }

  /// Installs (or clears, with nullptr) the pulse filter.
  void set_pulse_filter(PulseFilter filter);

  /// Injects one positive pulse of `width` onto the output.  If the output
  /// is currently high, the injection retries after `width` so distinct
  /// pulses never merge (the paper's pulse generator waits for a gap
  /// "in between the original control pulses").
  void inject_pulse(sim::Tick width);

  /// Pulses forwarded, dropped by the filter, and injected.
  [[nodiscard]] std::uint64_t passed_pulses() const { return passed_; }
  [[nodiscard]] std::uint64_t dropped_pulses() const { return dropped_; }
  [[nodiscard]] std::uint64_t injected_pulses() const { return injected_; }

  [[nodiscard]] sim::Tick prop_delay() const { return delay_; }
  [[nodiscard]] sim::Wire& input() { return in_; }
  [[nodiscard]] sim::Wire& output() { return out_; }

 private:
  void on_input_edge(sim::Edge e);
  void update_output();

  sim::Scheduler& sched_;
  sim::Wire& in_;
  sim::Wire& out_;
  sim::Tick delay_;
  sim::Wire::ListenerId listener_ = 0;

  bool active_ = false;
  std::optional<bool> forced_;
  PulseFilter filter_;
  bool suppressing_pulse_ = false;  // current input pulse is being dropped

  bool pass_level_ = false;  // pass-through contribution (post delay)
  bool inj_level_ = false;   // injection contribution

  std::uint64_t passed_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t injected_ = 0;
};

}  // namespace offramps::core
