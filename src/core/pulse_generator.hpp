// Pulse Generation Module (paper section IV-B).
//
// "handles the generation of pulses for the stepper motor drivers, and
// allows for the customization of both frequency and pulse width, along
// with input parameters for micro stepping determined by the printer
// configuration."
//
// The generator emits bursts of injection pulses onto a SignalPath,
// FPGA-clock aligned, expressing distance in millimeters through the
// microstepping-derived steps/mm - so Trojan authors ask for "shift X by
// 0.4 mm" rather than raw pulse counts.
#pragma once

#include <cstdint>

#include "core/signal_path.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace offramps::core {

/// Burst parameters.
struct PulseTrain {
  std::uint32_t count = 0;            // pulses to emit
  sim::Tick period = sim::us(50);     // pulse-to-pulse spacing
  sim::Tick width = sim::us(1);       // high time per pulse
};

/// Configurable stepper-pulse generator bound to one signal path.
class PulseGenerator {
 public:
  /// `steps_per_mm` reflects the driver's microstep jumpers and the
  /// axis mechanics (the "input parameters for micro stepping").
  PulseGenerator(sim::Scheduler& sched, SignalPath& path,
                 double steps_per_mm)
      : sched_(sched), path_(path), steps_per_mm_(steps_per_mm) {}

  PulseGenerator(const PulseGenerator&) = delete;
  PulseGenerator& operator=(const PulseGenerator&) = delete;

  /// Emits `train.count` pulses starting now.  Bursts may overlap; each
  /// pulse defers independently if the line is busy (SignalPath
  /// semantics).  All start times are aligned to the fabric clock.
  void burst(const PulseTrain& train);

  /// Convenience: emits enough pulses to move `mm` at the given pulse
  /// `frequency_hz`.  Returns the number of pulses scheduled.
  std::uint32_t burst_mm(double mm, double frequency_hz);

  /// Cancels pulses not yet emitted.
  void cancel() { ++generation_; }

  [[nodiscard]] std::uint64_t pulses_emitted() const { return emitted_; }
  [[nodiscard]] double steps_per_mm() const { return steps_per_mm_; }

 private:
  sim::Scheduler& sched_;
  SignalPath& path_;
  double steps_per_mm_;
  std::uint64_t generation_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace offramps::core
