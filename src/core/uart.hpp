// UART capture reporter (paper section V-B, "UART").
//
// Once the homing detector reports the head has homed AND the first STEP
// edge has been observed (the paper's synchronization fix that "
// significantly increased accuracy"), the control unit emits one 16-byte
// transaction - the four signed step counters - every 0.1 s.  The stream
// accumulates into a `Capture` and is also delivered per-transaction to an
// optional listener, which is how the real-time detection monitor halts a
// print early.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/capture.hpp"
#include "core/monitor.hpp"
#include "sim/scheduler.hpp"

namespace offramps::core {

/// Periodic step-count transaction generator.
class UartReporter {
 public:
  using TransactionCallback = std::function<void(const Transaction&)>;
  /// Raw framed bytes as they leave the control unit (post any injected
  /// wire fault) -- what the serial PHY transmits.
  using FrameCallback = std::function<void(const std::vector<std::uint8_t>&)>;
  /// In-place corruptor for the framed bytes (`sim::FaultInjector`).
  using FrameFault = std::function<void(std::vector<std::uint8_t>&)>;

  static constexpr sim::Tick kDefaultPeriod = sim::ms(100);

  UartReporter(sim::Scheduler& sched,
               std::array<AxisTracker*, 4> trackers,
               HomingDetector& homing, sim::Tick period = kDefaultPeriod);

  UartReporter(const UartReporter&) = delete;
  UartReporter& operator=(const UartReporter&) = delete;

  /// Adds a per-transaction listener (real-time monitoring, the fabric
  /// guard, ...).  Multiple consumers may subscribe.  Listeners receive
  /// only CRC-valid transactions: when a frame fault is active, corrupted
  /// frames are dropped here (counted in crc_rejected()) exactly as a
  /// receiver would drop them.
  void on_transaction(TransactionCallback cb) {
    on_txn_.push_back(std::move(cb));
  }

  /// Adds a raw-frame listener (the serial PHY).  Frames are delivered
  /// after any injected fault, so the wire carries the corrupted bytes.
  void on_frame(FrameCallback cb) { on_frame_.push_back(std::move(cb)); }

  /// End-of-stream tap: fired once from finalize(), after the final
  /// counter values are frozen into the capture.  This is how a streaming
  /// consumer (the fleet service's online detector) learns the print
  /// ended and runs its end-of-print checks without polling.
  using FinalizeCallback = std::function<void(const Capture&)>;
  void on_finalize(FinalizeCallback cb) {
    on_finalize_.push_back(std::move(cb));
  }

  /// Installs (or clears, with nullptr) a byte-stream fault between the
  /// counters and every consumer.  With no fault installed the reporter
  /// takes a fast path that skips the encode/decode round trip entirely.
  void set_frame_fault(FrameFault fault) { frame_fault_ = std::move(fault); }

  /// Stops the periodic stream and freezes the capture, recording the
  /// final counter values (the paper's end-of-print 0%-margin check data).
  void finalize(bool print_completed);

  [[nodiscard]] const Capture& capture() const { return capture_; }
  [[nodiscard]] Capture take_capture() { return std::move(capture_); }
  [[nodiscard]] bool streaming() const { return streaming_; }
  [[nodiscard]] sim::Tick period() const { return period_; }
  /// Frames handed to raw-frame listeners.
  [[nodiscard]] std::uint64_t frames_emitted() const {
    return frames_emitted_;
  }
  /// Transactions withheld from on_transaction() listeners because the
  /// (faulted) frame failed CRC/size validation.
  [[nodiscard]] std::uint64_t crc_rejected() const { return crc_rejected_; }

 private:
  void arm_on_first_step();
  void start_stream(sim::Tick t);
  void tick(std::uint64_t gen);
  void emit();

  sim::Scheduler& sched_;
  std::array<AxisTracker*, 4> trackers_;
  sim::Tick period_;
  Capture capture_;
  bool streaming_ = false;
  bool finalized_ = false;
  std::uint32_t next_index_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t frames_emitted_ = 0;
  std::uint64_t crc_rejected_ = 0;
  std::vector<TransactionCallback> on_txn_;
  std::vector<FrameCallback> on_frame_;
  std::vector<FinalizeCallback> on_finalize_;
  FrameFault frame_fault_;
};

}  // namespace offramps::core
