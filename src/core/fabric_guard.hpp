// In-fabric golden-model guard (extension).
//
// The paper's Limitations note that detection requires a connected host
// PC (the comparison script runs there), while "many 3D printers are
// intended to be run while not actively connected to a host computer".
// This module closes that gap: the golden step-count series is loaded
// into the fabric itself (block RAM on the real part), a hardware-style
// integer comparator checks each transaction as the reporter emits it,
// and on sustained mismatch the guard acts *through the MITM paths* -
// raising an alarm net and, optionally, safe-stopping the machine by
// releasing every stepper driver and forcing both heater gates off.
// No host, no serial link, no Python: the board defends the printer by
// itself.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/capture.hpp"
#include "core/fpga.hpp"

namespace offramps::core {

/// Guard configuration.
struct FabricGuardOptions {
  /// Margin of error, percent (integer math, as the fabric would do it).
  std::uint32_t margin_pct = 5;
  /// Counts below this are exempt from the percentage test.
  std::int32_t min_count = 20;
  /// Consecutive mismatching transactions required to alarm.
  std::uint32_t consecutive_to_alarm = 2;
  /// On alarm: force /EN high (motors free) and heater gates low.
  bool safe_stop = true;
};

/// Hardware-resident golden-model comparator with autonomous response.
/// The guard subscribes to the fabric's transaction stream at
/// construction and must outlive the print it monitors (on the real
/// board it is gateware - it cannot be "destroyed" mid-run).
class FabricGuard {
 public:
  /// Loads `golden` into the guard's memory and arms it on `fpga`.
  /// Safe-stop needs the MITM route; in record mode the guard can only
  /// raise the alarm net.
  FabricGuard(Fpga& fpga, Capture golden, FabricGuardOptions options = {});

  FabricGuard(const FabricGuard&) = delete;
  FabricGuard& operator=(const FabricGuard&) = delete;

  [[nodiscard]] bool alarmed() const { return alarmed_; }
  [[nodiscard]] std::uint32_t alarm_at_index() const { return alarm_index_; }
  [[nodiscard]] std::uint64_t mismatched_transactions() const {
    return mismatches_;
  }
  /// The alarm output net (would drive a buzzer/relay on the real board).
  [[nodiscard]] sim::Wire& alarm_line() { return *alarm_line_; }
  [[nodiscard]] bool safe_stop_engaged() const { return safe_stopped_; }

 private:
  void on_transaction(const Transaction& txn);
  [[nodiscard]] bool transaction_mismatches(const Transaction& txn) const;
  void engage_safe_stop();

  Fpga& fpga_;
  std::vector<Transaction> golden_;
  FabricGuardOptions options_;
  std::unique_ptr<sim::Wire> alarm_line_;
  std::uint32_t consecutive_ = 0;
  bool alarmed_ = false;
  bool safe_stopped_ = false;
  std::uint32_t alarm_index_ = 0;
  std::uint64_t mismatches_ = 0;
};

}  // namespace offramps::core
