// Rig-session wire format: how a rig (or a saved capture corpus) streams
// one print's worth of detector input to the fleet daemon.
//
// A session is the stream header followed by framed events, in the exact
// order the live rig drove its `svc::OnlineDetector`:
//
//   stream  := "OFSS" u16 version u16 reserved  frame*
//   frame   := u16 magic(0xF5A7) u8 type u32 payload_len payload
//
//   kHello   rig identity: index, seed, object dims, sabotage/chaos specs
//   kTxn     one UART transaction (Transaction::to_frame + u64 time_ns);
//            the embedded frame CRC makes wire corruption detectable
//   kPower   one power-trace sample (t_s, watts)
//   kSample  one generic side-channel sample (kind byte + t_s + value);
//            power keeps its dedicated kPower frame so pre-multi-modal
//            corpora stay replayable, new channels ride this one
//   kSlot    one consumer service slot (the pump's poll budget); these
//            markers let a replay reproduce ring occupancy - and thus
//            `ring_high_water` / `backpressure_stalls` - byte for byte
//   kFinish  the finalized Capture blob (Capture::to_binary)
//   kEnd     session epilogue: rig-level facts the capture alone cannot
//            carry (print_finished, safe_stopped, sim_seconds, counts)
//
// Everything is little endian.  The reader is bounded (every length is
// validated against a per-type cap before allocation) and incremental: a
// corrupted frame header makes it hunt for the next magic instead of
// dying, mirroring the UART receiver's own resync behavior, and the skip
// is counted so a session that needed resyncs can be reported as
// "recovered" rather than silently clean.  A stream that ends before
// kEnd is a mid-stream disconnect.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/capture.hpp"

namespace offramps::core::wire {

inline constexpr std::array<std::uint8_t, 4> kStreamMagic{'O', 'F', 'S', 'S'};
inline constexpr std::uint16_t kStreamVersion = 1;
inline constexpr std::size_t kStreamHeaderSize = 8;

inline constexpr std::uint16_t kFrameMagic = 0xF5A7;  // bytes A7 F5 on wire
inline constexpr std::size_t kFrameHeaderSize = 7;    // magic + type + len

enum class FrameType : std::uint8_t {
  kHello = 1,
  kTxn = 2,
  kPower = 3,
  kSlot = 4,
  kFinish = 5,
  kEnd = 6,
  kSample = 7,
};

/// Side-channel sample taxonomy of kSample frames (matches
/// svc::SampleKind - append only).
inline constexpr std::uint8_t kSampleKindMin = 1;  // power
inline constexpr std::uint8_t kSampleKindMax = 3;  // vibration

/// Per-type payload bounds, enforced before any allocation.  kTxn, kPower,
/// kSlot and kEnd are fixed-size; kHello and kFinish are capped.
inline constexpr std::size_t kTxnPayloadSize = Transaction::kFrameSize + 8;
inline constexpr std::size_t kPowerPayloadSize = 16;
inline constexpr std::size_t kSamplePayloadSize = 17;  // kind + t_s + value
inline constexpr std::size_t kEndPayloadSize = 1 + 1 + 8 + 4 * 8;
inline constexpr std::size_t kMaxHelloPayload = 4096;
inline constexpr std::size_t kMaxFinishPayload = 1u << 26;  // 64 MiB

/// Session identity, sent first.  Sabotage/chaos travel as their CLI spec
/// strings (`svc::parse_sabotage` / `host::parse_chaos` grammar) so the
/// report renders them exactly as the live campaign would.
struct SessionHello {
  std::uint32_t rig_index = 0;   // position in the campaign (report order)
  std::uint64_t seed = 0;
  double cube_mm = 0.0;
  double height_mm = 0.0;
  std::string name;
  std::string sabotage;  // "clean", "reduce:0.50", ...
  std::string chaos;     // "none", "crash:0.5", ...
};

/// Session epilogue: outcome facts beyond the detector's own report.
struct SessionMeta {
  bool print_finished = false;
  bool safe_stopped = false;
  double sim_seconds = 0.0;
  std::array<std::int64_t, 4> final_counts{};
};

// ---- writers ----------------------------------------------------------

void append_stream_header(std::vector<std::uint8_t>& out);
void append_hello(std::vector<std::uint8_t>& out, const SessionHello& hello);
void append_txn(std::vector<std::uint8_t>& out, const Transaction& txn);
void append_power(std::vector<std::uint8_t>& out, double t_s, double watts);
void append_sample(std::vector<std::uint8_t>& out, std::uint8_t kind,
                   double t_s, double value);
void append_slot(std::vector<std::uint8_t>& out);
void append_finish(std::vector<std::uint8_t>& out, const Capture& capture);
void append_end(std::vector<std::uint8_t>& out, const SessionMeta& meta);

/// Accumulates one session's event stream in order and persists it with
/// the repo's usual write-to-temp + atomic-rename discipline.  Throws
/// offramps::Error on I/O failure.
class SessionRecorder {
 public:
  SessionRecorder() { append_stream_header(bytes_); }

  void hello(const SessionHello& h) { append_hello(bytes_, h); }
  void txn(const Transaction& t) { append_txn(bytes_, t); }
  void power(double t_s, double watts) { append_power(bytes_, t_s, watts); }
  void sample(std::uint8_t kind, double t_s, double value) {
    append_sample(bytes_, kind, t_s, value);
  }
  void slot() { append_slot(bytes_); }
  void finish(const Capture& c) { append_finish(bytes_, c); }
  void end(const SessionMeta& m) { append_end(bytes_, m); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  void save(const std::string& path) const;

 private:
  std::vector<std::uint8_t> bytes_;
};

// ---- reader -----------------------------------------------------------

/// One decoded frame.  For kTxn the transaction is pre-validated (inner
/// magic + CRC); frames whose inner check fails are dropped and counted.
struct Frame {
  FrameType type = FrameType::kSlot;
  Transaction txn;                    // kTxn
  double power_t_s = 0.0;             // kPower
  double power_watts = 0.0;           // kPower
  std::uint8_t sample_kind = 0;       // kSample
  double sample_t_s = 0.0;            // kSample
  double sample_value = 0.0;          // kSample
  SessionHello hello;                 // kHello
  std::vector<std::uint8_t> finish;   // kFinish: Capture::to_binary blob
  SessionMeta end;                    // kEnd
};

/// Incremental, bounded session parser.  Feed arbitrary byte chunks; it
/// emits well-formed frames through the callback and stops consuming at
/// the first kEnd frame (so concatenated sessions on one pipe split
/// cleanly).  Framing damage is survived by hunting for the next frame
/// magic; the hunt distance is irrelevant, only the count of resync gaps
/// and dropped transactions is kept.
class FrameReader {
 public:
  using Callback = std::function<void(const Frame&)>;

  /// Feeds `n` bytes.  Returns how many were consumed; short only when
  /// the session ended (kEnd seen) or failed - leftover bytes belong to
  /// the next stream.  Invokes `cb` once per decoded frame.
  std::size_t feed(const std::uint8_t* data, std::size_t n,
                   const Callback& cb);

  /// Signals end of input.  A session that never reached kEnd is a
  /// mid-stream disconnect and is marked failed.
  void close();

  [[nodiscard]] bool ended() const { return ended_; }
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Count of resync gaps (corrupted outer framing skipped over).
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }
  /// Count of kTxn frames dropped by the inner magic/CRC check.
  [[nodiscard]] std::uint64_t corrupt_txns() const { return corrupt_txns_; }

 private:
  void fail(const std::string& why);
  /// Parses complete frames out of buffer_; returns bytes consumed.
  std::size_t drain_buffer(const Callback& cb);

  std::vector<std::uint8_t> buffer_;
  bool header_seen_ = false;
  bool ended_ = false;
  bool failed_ = false;
  bool in_resync_gap_ = false;
  std::string error_;
  std::uint64_t resyncs_ = 0;
  std::uint64_t corrupt_txns_ = 0;
};

// ---- corpus iteration -------------------------------------------------

/// Lists regular files under `dir` with the given extension, sorted by
/// filename so corpus iteration order is deterministic across platforms
/// and directory-entry orderings.  Throws offramps::Error when `dir` is
/// not a readable directory.
std::vector<std::string> list_corpus_files(const std::string& dir,
                                           const std::string& extension);

/// The session-corpus flavor: `*.ofs` files written next to the fleet's
/// `--captures` output.
inline std::vector<std::string> list_session_corpus(const std::string& dir) {
  return list_corpus_files(dir, ".ofs");
}

}  // namespace offramps::core::wire
