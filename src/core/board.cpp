#include "core/board.hpp"

namespace offramps::core {

const char* route_mode_name(RouteMode m) {
  switch (m) {
    case RouteMode::kDirect: return "direct (FPGA bypassed)";
    case RouteMode::kFpgaMitm: return "FPGA machine-in-the-middle";
    case RouteMode::kFpgaRecord: return "FPGA recording tap";
  }
  return "unknown";
}

Board::Board(sim::Scheduler& sched, BoardOptions options, RouteMode initial)
    : sched_(sched),
      options_(options),
      arduino_(sched, "ard."),
      ramps_(sched, "rmp."),
      fpga_(sched, arduino_, ramps_, options.fpga),
      trojans_(fpga_) {
  // Analog thermistor nets: always forwarded RAMPS -> Arduino; the only
  // mode difference is the conversion latency of the XADC+DAC detour.
  for (std::size_t i = 0; i < sim::kAPinCount; ++i) {
    const auto apin = static_cast<sim::APin>(i);
    ramps_.analog(apin).on_change([this, apin](double v, sim::Tick) {
      if (mode_ == RouteMode::kFpgaMitm) {
        // XADC sampling + fabric transform + DAC output: the firmware
        // reads whatever the FPGA chooses to synthesize.
        const double out = fpga_.apply_analog(apin, v);
        sched_.schedule_in(options_.analog_mitm_delay, [this, apin, out] {
          arduino_.analog(apin).set(out);
        });
      } else {
        arduino_.analog(apin).set(v);
      }
    });
  }
  set_route(initial);
}

void Board::connect_direct() {
  direct_.clear();
  direct_.reserve(sim::kPinCount);
  for (std::size_t i = 0; i < sim::kPinCount; ++i) {
    const auto pin = static_cast<sim::Pin>(i);
    const bool fw_drives =
        sim::pin_direction(pin) == sim::PinDirection::kFirmwareToPrinter;
    sim::Wire& src = fw_drives ? arduino_.wire(pin) : ramps_.wire(pin);
    sim::Wire& dst = fw_drives ? ramps_.wire(pin) : arduino_.wire(pin);
    direct_.push_back(sim::connect(src, dst, options_.jumper_delay));
  }
}

void Board::set_route(RouteMode mode) {
  mode_ = mode;
  switch (mode) {
    case RouteMode::kDirect:
      fpga_.set_mitm_active(false);
      fpga_.set_monitors_enabled(false);
      connect_direct();
      break;
    case RouteMode::kFpgaRecord:
      fpga_.set_mitm_active(false);
      fpga_.set_monitors_enabled(true);
      connect_direct();
      break;
    case RouteMode::kFpgaMitm:
      direct_.clear();
      fpga_.set_mitm_active(true);
      fpga_.set_monitors_enabled(true);
      break;
  }
}

}  // namespace offramps::core
