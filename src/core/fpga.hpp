// Emulated Cmod-A7 fabric: the reconfigurable heart of the OFFRAMPS board.
//
// Owns one `SignalPath` per intercepted net (firmware->printer control
// signals and printer->firmware endstops), the monitoring modules of
// section V (homing detector, axis trackers, UART reporter, layer
// monitor), and exposes the hooks the Trojan control module uses.
//
// Per-net propagation delays model the level shifters plus fabric routing;
// the worst case lands on Y_DIR at 13 ns, the 1 ns-grid rounding of the
// paper's reported 12.923 ns maximum.
#pragma once

#include <array>
#include <memory>

#include "core/monitor.hpp"
#include "core/serial.hpp"
#include "core/signal_path.hpp"
#include "core/uart.hpp"
#include "sim/pins.hpp"
#include "sim/scheduler.hpp"

namespace offramps::core {

/// Fabric construction parameters.
struct FpgaOptions {
  /// UART transaction period (paper: 0.1 s).
  sim::Tick uart_period = UartReporter::kDefaultPeriod;
  /// Quiet gap used by the layer monitor to split Z bursts into layers.
  sim::Tick layer_quiet_gap = sim::ms(500);
  /// Baud rate of the host serial link carrying the 16-byte transactions.
  std::uint32_t serial_baud = 115'200;
};

/// Default propagation delay (level shift + routing) for a net.
sim::Tick default_prop_delay(sim::Pin pin);

/// The FPGA and its gateware.
class Fpga {
 public:
  /// `fw_side` is the Arduino-facing bank, `printer_side` the RAMPS-facing
  /// bank.  Paths are created for every digital net, oriented per the
  /// net's natural direction.
  Fpga(sim::Scheduler& sched, sim::PinBank& fw_side,
       sim::PinBank& printer_side, FpgaOptions options = {});

  Fpga(const Fpga&) = delete;
  Fpga& operator=(const Fpga&) = delete;

  /// Routes all nets through the fabric (MITM mode) or isolates the
  /// outputs (bypass/record modes, where the board's jumpers own the nets).
  void set_mitm_active(bool active);
  [[nodiscard]] bool mitm_active() const { return mitm_active_; }

  /// Enables or disables the monitoring gateware (disabled when the
  /// jumpers bypass the FPGA entirely and it sees no signals).
  void set_monitors_enabled(bool enabled);
  [[nodiscard]] bool monitors_enabled() const { return monitors_enabled_; }

  /// The routed path for a net.
  [[nodiscard]] SignalPath& path(sim::Pin pin) {
    return *paths_[static_cast<std::size_t>(pin)];
  }
  [[nodiscard]] const SignalPath& path(sim::Pin pin) const {
    return *paths_[static_cast<std::size_t>(pin)];
  }

  [[nodiscard]] AxisTracker& tracker(sim::Axis a) {
    return *trackers_[static_cast<std::size_t>(a)];
  }
  [[nodiscard]] HomingDetector& homing() { return *homing_; }
  [[nodiscard]] LayerMonitor& layers() { return *layers_; }
  [[nodiscard]] UartReporter& uart() { return *uart_; }

  /// The physical TX net carrying transactions to the host (idle high).
  [[nodiscard]] sim::Wire& uart_tx_line() { return *uart_tx_line_; }
  /// The serial transmitter feeding that net.
  [[nodiscard]] UartTx& uart_phy() { return *uart_phy_; }

  /// Installs (or clears, with nullptr) a transform on an analog net
  /// routed through the XADC->DAC path (board section III-C-1): in MITM
  /// mode the firmware reads transform(adc_counts) instead of the real
  /// divider voltage.  This is the hook Trojan T10 uses.
  using AnalogTransform = std::function<double(double)>;
  void set_analog_transform(sim::APin pin, AnalogTransform transform) {
    analog_transforms_[static_cast<std::size_t>(pin)] =
        std::move(transform);
  }
  /// Applies the installed transform (identity when none).
  [[nodiscard]] double apply_analog(sim::APin pin, double adc_counts) const {
    const auto& t = analog_transforms_[static_cast<std::size_t>(pin)];
    return t ? t(adc_counts) : adc_counts;
  }

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] sim::PinBank& fw_side() { return fw_side_; }
  [[nodiscard]] sim::PinBank& printer_side() { return printer_side_; }

  /// Largest configured propagation delay across all nets, and its net -
  /// the overhead evaluation's headline number (paper section V-B).
  [[nodiscard]] sim::Tick max_prop_delay() const;
  [[nodiscard]] sim::Pin max_prop_delay_pin() const;

 private:
  sim::Scheduler& sched_;
  sim::PinBank& fw_side_;
  sim::PinBank& printer_side_;
  bool mitm_active_ = false;
  bool monitors_enabled_ = false;

  std::array<std::unique_ptr<SignalPath>, sim::kPinCount> paths_;
  std::array<std::unique_ptr<AxisTracker>, 4> trackers_;
  std::unique_ptr<HomingDetector> homing_;
  std::unique_ptr<LayerMonitor> layers_;
  std::unique_ptr<UartReporter> uart_;
  std::unique_ptr<sim::Wire> uart_tx_line_;
  std::unique_ptr<UartTx> uart_phy_;
  std::array<AnalogTransform, sim::kAPinCount> analog_transforms_{};
};

}  // namespace offramps::core
