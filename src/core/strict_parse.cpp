#include "core/strict_parse.hpp"

#include <charconv>
#include <cmath>

namespace offramps::core {

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  // from_chars accepts "inf"/"nan" spellings; no CLI quantity wants
  // them, and NaN would sail through range checks (every comparison is
  // false).
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

std::optional<long long> parse_long(std::string_view text) {
  if (text.empty()) return std::nullopt;
  long long value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace offramps::core
