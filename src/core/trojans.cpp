#include "core/trojans.hpp"

#include <algorithm>

#include "sim/error.hpp"
#include "sim/thermistor.hpp"
#include "sim/trace.hpp"

namespace offramps::core {
namespace {

constexpr sim::Tick kInjectedPulseWidth = sim::us(1);

/// Builds the pulse generator a Trojan drives into one step path.
std::unique_ptr<PulseGenerator> make_generator(Fpga& fpga, sim::Pin pin) {
  return std::make_unique<PulseGenerator>(fpga.scheduler(), fpga.path(pin),
                                          /*steps_per_mm=*/100.0);
}

// --- T1: loose belt (random X/Y step injection) -----------------------------

class T1AxisShift final : public Trojan {
 public:
  T1AxisShift(Fpga& fpga, T1Config cfg)
      : Trojan(fpga),
        cfg_(cfg),
        rng_(0x71aa),
        gen_x_(make_generator(fpga, sim::Pin::kXStep)),
        gen_y_(make_generator(fpga, sim::Pin::kYStep)) {}

  [[nodiscard]] TrojanId id() const override { return TrojanId::kT1; }

 private:
  void activate() override {
    const auto gen = ++generation_;
    schedule_next(gen);
  }
  void deactivate() override { ++generation_; }

  void schedule_next(std::uint64_t gen) {
    fpga_.scheduler().schedule_in(cfg_.period, [this, gen] {
      if (gen != generation_ || !enabled()) return;
      fire();
      schedule_next(gen);
    });
  }

  void fire() {
    bool use_x;
    if (cfg_.alternate_axes) {
      use_x = next_x_;
      next_x_ = !next_x_;
    } else {
      use_x = rng_.chance(0.5);
    }
    (use_x ? *gen_x_ : *gen_y_)
        .burst({.count = cfg_.pulses_per_burst,
                .period = cfg_.pulse_spacing,
                .width = kInjectedPulseWidth});
    note_activation();
  }

  T1Config cfg_;
  sim::Rng rng_;
  std::unique_ptr<PulseGenerator> gen_x_;
  std::unique_ptr<PulseGenerator> gen_y_;
  bool next_x_ = true;
  std::uint64_t generation_ = 0;
};

// --- T2: constant extrusion masking ------------------------------------------

class T2ExtrusionMask final : public Trojan {
 public:
  T2ExtrusionMask(Fpga& fpga, T2Config cfg) : Trojan(fpga), cfg_(cfg) {}

  [[nodiscard]] TrojanId id() const override { return TrojanId::kT2; }

 private:
  void activate() override {
    accumulator_ = 0.0;
    fpga_.path(sim::Pin::kEStep).set_pulse_filter([this] {
      accumulator_ += cfg_.keep_ratio;
      if (accumulator_ >= 1.0) {
        accumulator_ -= 1.0;
        return true;
      }
      note_activation();
      return false;
    });
  }
  void deactivate() override {
    fpga_.path(sim::Pin::kEStep).set_pulse_filter(nullptr);
  }

  T2Config cfg_;
  double accumulator_ = 0.0;
};

// --- T3: retraction/extrusion tamper during Y motion --------------------------

class T3RetractionTamper final : public Trojan {
 public:
  T3RetractionTamper(Fpga& fpga, T3Config cfg) : Trojan(fpga), cfg_(cfg) {
    // Watch Y stepping continuously; the handler checks enabled().
    fpga_.fw_side().step(sim::Axis::kY).on_rising([this](sim::Tick t) {
      last_y_step_ = t;
      if (!enabled() || !cfg_.over_extrude) return;
      if (++y_steps_ % cfg_.y_steps_per_injection == 0) {
        fpga_.path(sim::Pin::kEStep).inject_pulse(kInjectedPulseWidth);
        note_activation();
      }
    });
  }

  [[nodiscard]] TrojanId id() const override { return TrojanId::kT3; }

 private:
  void activate() override {
    if (cfg_.over_extrude) return;  // injection handled by the Y listener
    fpga_.path(sim::Pin::kEStep).set_pulse_filter([this] {
      const sim::Tick now = fpga_.scheduler().now();
      if (last_y_step_ == 0 || now - last_y_step_ > cfg_.y_active_window) {
        return true;  // Y idle: leave extrusion alone
      }
      accumulator_ += cfg_.drop_fraction;
      if (accumulator_ >= 1.0) {
        accumulator_ -= 1.0;
        note_activation();
        return false;
      }
      return true;
    });
  }
  void deactivate() override {
    if (!cfg_.over_extrude) {
      fpga_.path(sim::Pin::kEStep).set_pulse_filter(nullptr);
    }
  }

  T3Config cfg_;
  sim::Tick last_y_step_ = 0;
  std::uint64_t y_steps_ = 0;
  double accumulator_ = 0.0;
};

// --- T4: Z-wobble (XY shift on random layer increments) -----------------------

class T4ZWobble final : public Trojan {
 public:
  T4ZWobble(Fpga& fpga, T4Config cfg)
      : Trojan(fpga),
        cfg_(cfg),
        rng_(cfg.seed),
        gen_x_(make_generator(fpga, sim::Pin::kXStep)),
        gen_y_(make_generator(fpga, sim::Pin::kYStep)) {
    fpga_.layers().on_layer([this](std::uint64_t) {
      if (!enabled()) return;
      if (!rng_.chance(cfg_.layer_probability)) return;
      const PulseTrain train{.count = cfg_.shift_steps,
                             .period = cfg_.pulse_spacing,
                             .width = kInjectedPulseWidth};
      gen_x_->burst(train);
      gen_y_->burst(train);
      note_activation();
    });
  }

  [[nodiscard]] TrojanId id() const override { return TrojanId::kT4; }

 private:
  void activate() override {}
  void deactivate() override {}

  T4Config cfg_;
  sim::Rng rng_;
  std::unique_ptr<PulseGenerator> gen_x_;
  std::unique_ptr<PulseGenerator> gen_y_;
};

// --- T5: Z shift (delamination / adhesion failure) ----------------------------

class T5ZShift final : public Trojan {
 public:
  T5ZShift(Fpga& fpga, T5Config cfg)
      : Trojan(fpga),
        cfg_(cfg),
        gen_z_(make_generator(fpga, sim::Pin::kZStep)) {
    fpga_.layers().on_layer([this](std::uint64_t layer) {
      if (!enabled() || cfg_.mode != T5Config::Mode::kEveryNLayers) return;
      if (cfg_.every_n_layers == 0 || layer % cfg_.every_n_layers != 0) {
        return;
      }
      lift();
    });
  }

  [[nodiscard]] TrojanId id() const override { return TrojanId::kT5; }

 private:
  void activate() override {
    if (cfg_.mode == T5Config::Mode::kAtStart) lift();
  }
  void deactivate() override {}

  void lift() {
    // Force DIR up so the shift always opens a gap (delaminates) rather
    // than crashing into the part; release once the burst has drained.
    auto& dir = fpga_.path(sim::Pin::kZDir);
    dir.force(true);
    gen_z_->burst({.count = cfg_.shift_steps,
                   .period = cfg_.pulse_spacing,
                   .width = kInjectedPulseWidth});
    const sim::Tick tail =
        static_cast<sim::Tick>(cfg_.shift_steps) * cfg_.pulse_spacing +
        sim::us(10);
    fpga_.scheduler().schedule_in(tail,
                                  [&dir] { dir.force(std::nullopt); });
    note_activation();
  }

  T5Config cfg_;
  std::unique_ptr<PulseGenerator> gen_z_;
};

// --- T6: heater denial of service ---------------------------------------------

class T6HeaterDos final : public Trojan {
 public:
  T6HeaterDos(Fpga& fpga, T6Config cfg) : Trojan(fpga), cfg_(cfg) {}

  [[nodiscard]] TrojanId id() const override { return TrojanId::kT6; }

 private:
  void activate() override {
    if (cfg_.hotend) fpga_.path(sim::Pin::kHotendHeat).force(false);
    if (cfg_.bed) fpga_.path(sim::Pin::kBedHeat).force(false);
    note_activation();
  }
  void deactivate() override {
    if (cfg_.hotend) fpga_.path(sim::Pin::kHotendHeat).force(std::nullopt);
    if (cfg_.bed) fpga_.path(sim::Pin::kBedHeat).force(std::nullopt);
  }

  T6Config cfg_;
};

// --- T7: forced thermal runaway -------------------------------------------------

class T7ThermalRunaway final : public Trojan {
 public:
  T7ThermalRunaway(Fpga& fpga, T7Config cfg) : Trojan(fpga), cfg_(cfg) {}

  [[nodiscard]] TrojanId id() const override { return TrojanId::kT7; }

 private:
  void activate() override {
    // 100% duty, ignoring everything the firmware does - including its
    // thermal-runaway panic, which only turns off *its own* gate drive.
    if (cfg_.hotend) fpga_.path(sim::Pin::kHotendHeat).force(true);
    if (cfg_.bed) fpga_.path(sim::Pin::kBedHeat).force(true);
    note_activation();
  }
  void deactivate() override {
    if (cfg_.hotend) fpga_.path(sim::Pin::kHotendHeat).force(std::nullopt);
    if (cfg_.bed) fpga_.path(sim::Pin::kBedHeat).force(std::nullopt);
  }

  T7Config cfg_;
};

// --- T8: stepper driver deactivation --------------------------------------------

class T8StepperDisable final : public Trojan {
 public:
  T8StepperDisable(Fpga& fpga, T8Config cfg) : Trojan(fpga), cfg_(cfg) {}

  [[nodiscard]] TrojanId id() const override { return TrojanId::kT8; }

 private:
  void activate() override {
    const auto gen = ++generation_;
    schedule_cycle(gen);
  }
  void deactivate() override {
    ++generation_;
    release();
  }

  void schedule_cycle(std::uint64_t gen) {
    fpga_.scheduler().schedule_in(
        sim::from_seconds(cfg_.period_s), [this, gen] {
          if (gen != generation_ || !enabled()) return;
          // /EN forced high = drivers off; commanded steps are lost.
          for (std::size_t i = 0; i < 4; ++i) {
            if (cfg_.axes[i]) {
              fpga_.path(sim::enable_pin(static_cast<sim::Axis>(i)))
                  .force(true);
            }
          }
          note_activation();
          fpga_.scheduler().schedule_in(
              sim::from_seconds(cfg_.off_duration_s), [this, gen] {
                if (gen != generation_) return;
                release();
                schedule_cycle(gen);
              });
        });
  }

  void release() {
    for (std::size_t i = 0; i < 4; ++i) {
      if (cfg_.axes[i]) {
        fpga_.path(sim::enable_pin(static_cast<sim::Axis>(i)))
            .force(std::nullopt);
      }
    }
  }

  T8Config cfg_;
  std::uint64_t generation_ = 0;
};

// --- T9: part-fan tamper ----------------------------------------------------------

class T9FanTamper final : public Trojan {
 public:
  T9FanTamper(Fpga& fpga, T9Config cfg) : Trojan(fpga), cfg_(cfg) {}

  [[nodiscard]] TrojanId id() const override { return TrojanId::kT9; }

 private:
  void activate() override {
    meter_ = std::make_unique<sim::DutyMeter>(
        fpga_.fw_side().wire(sim::Pin::kFan));
    (void)meter_->sample();  // discard history before the Trojan engaged
    const auto gen = ++generation_;
    window(gen);
    note_activation();
  }
  void deactivate() override {
    ++generation_;
    meter_.reset();
    fpga_.path(sim::Pin::kFan).force(std::nullopt);
  }

  void window(std::uint64_t gen) {
    if (gen != generation_ || !enabled()) return;
    auto& path = fpga_.path(sim::Pin::kFan);
    const double duty_in = meter_->sample();
    const double duty_out =
        std::clamp(duty_in * cfg_.duty_scale + cfg_.duty_offset, 0.0, 1.0);
    // Re-modulate: drive the output gate with our own PWM for this window.
    path.force(duty_out > 0.0);
    if (duty_out > 0.0 && duty_out < 1.0) {
      const auto high = static_cast<sim::Tick>(
          duty_out * static_cast<double>(cfg_.window));
      fpga_.scheduler().schedule_in(high, [this, gen, &path] {
        if (gen != generation_) return;
        path.force(false);
      });
    }
    fpga_.scheduler().schedule_in(cfg_.window,
                                  [this, gen] { window(gen); });
  }

  T9Config cfg_;
  std::unique_ptr<sim::DutyMeter> meter_;
  std::uint64_t generation_ = 0;
};

// --- T10: analog thermistor spoof (extension) -----------------------------------

class T10ThermistorSpoof final : public Trojan {
 public:
  T10ThermistorSpoof(Fpga& fpga, T10Config cfg) : Trojan(fpga), cfg_(cfg) {}

  [[nodiscard]] TrojanId id() const override { return TrojanId::kT10; }

 private:
  void activate() override {
    const auto spoof = [this](double adc_counts) {
      // Reported temperature = actual - understate: re-synthesize the
      // divider voltage a cooler thermistor would produce.
      const double actual = therm_.temperature(adc_counts);
      return therm_.adc_counts(actual - cfg_.understate_c);
    };
    if (cfg_.hotend) {
      fpga_.set_analog_transform(sim::APin::kThermHotend, spoof);
    }
    if (cfg_.bed) fpga_.set_analog_transform(sim::APin::kThermBed, spoof);
    note_activation();
  }
  void deactivate() override {
    if (cfg_.hotend) {
      fpga_.set_analog_transform(sim::APin::kThermHotend, nullptr);
    }
    if (cfg_.bed) fpga_.set_analog_transform(sim::APin::kThermBed, nullptr);
  }

  T10Config cfg_;
  sim::Thermistor therm_{};
};

}  // namespace

// --- Base / controller ---------------------------------------------------------

const char* trojan_name(TrojanId id) {
  switch (id) {
    case TrojanId::kT1: return "T1 loose-belt XY shift";
    case TrojanId::kT2: return "T2 extrusion masking";
    case TrojanId::kT3: return "T3 retraction tamper";
    case TrojanId::kT4: return "T4 Z-wobble";
    case TrojanId::kT5: return "T5 Z-layer shift";
    case TrojanId::kT6: return "T6 heater disable";
    case TrojanId::kT7: return "T7 forced thermal runaway";
    case TrojanId::kT8: return "T8 stepper disable";
    case TrojanId::kT9: return "T9 fan tamper";
    case TrojanId::kT10: return "T10 thermistor spoof (extension)";
  }
  return "unknown";
}

void Trojan::set_enabled(bool enabled) {
  if (enabled == enabled_) return;
  enabled_ = enabled;
  if (enabled_) {
    activate();
  } else {
    deactivate();
  }
}

TrojanController::TrojanController(Fpga& fpga) : fpga_(fpga) {}

void TrojanController::arm(const TrojanSuiteConfig& config) {
  if (armed_) throw Error("TrojanController::arm: already armed");
  armed_ = true;
  if (config.t1) {
    add(std::make_unique<T1AxisShift>(fpga_, *config.t1),
        config.t1->delay_after_homing_s);
  }
  if (config.t2) {
    add(std::make_unique<T2ExtrusionMask>(fpga_, *config.t2),
        config.t2->delay_after_homing_s);
  }
  if (config.t3) {
    add(std::make_unique<T3RetractionTamper>(fpga_, *config.t3),
        config.t3->delay_after_homing_s);
  }
  if (config.t4) {
    add(std::make_unique<T4ZWobble>(fpga_, *config.t4),
        config.t4->delay_after_homing_s);
  }
  if (config.t5) {
    add(std::make_unique<T5ZShift>(fpga_, *config.t5),
        config.t5->delay_after_homing_s);
  }
  if (config.t6) {
    add(std::make_unique<T6HeaterDos>(fpga_, *config.t6),
        config.t6->delay_after_homing_s);
  }
  if (config.t7) {
    add(std::make_unique<T7ThermalRunaway>(fpga_, *config.t7),
        config.t7->delay_after_homing_s);
  }
  if (config.t8) {
    add(std::make_unique<T8StepperDisable>(fpga_, *config.t8),
        config.t8->delay_after_homing_s);
  }
  if (config.t9) {
    add(std::make_unique<T9FanTamper>(fpga_, *config.t9),
        config.t9->delay_after_homing_s);
  }
  if (config.t10) {
    add(std::make_unique<T10ThermistorSpoof>(fpga_, *config.t10),
        config.t10->delay_after_homing_s);
  }
}

void TrojanController::add(std::unique_ptr<Trojan> trojan,
                           double delay_after_homing_s) {
  Trojan* raw = trojan.get();
  trojans_.push_back(std::move(trojan));
  fpga_.homing().on_homed([this, raw, delay_after_homing_s](sim::Tick) {
    fpga_.scheduler().schedule_in(
        sim::from_seconds(std::max(delay_after_homing_s, 0.0)),
        [raw] { raw->set_enabled(true); });
  });
}

void TrojanController::disarm_all() {
  for (auto& t : trojans_) t->set_enabled(false);
}

Trojan* TrojanController::find(TrojanId id) {
  for (auto& t : trojans_) {
    if (t->id() == id) return t.get();
  }
  return nullptr;
}

}  // namespace offramps::core
