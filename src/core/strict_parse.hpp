// Strict, locale-independent number parsing for the CLI surface.
//
// The tools historically leaned on atof/atoi/strtod, which silently
// accept trailing garbage ("reduce:0.5junk" -> 0.5) and read the
// LC_NUMERIC decimal separator (under a comma-decimal locale
// "reduce:0.5" parses as 0).  These helpers are the one shared fix:
// std::from_chars (locale-blind by specification, like svc::json's
// number scanner) over the ENTIRE input - no leading whitespace, no
// trailing bytes, no locale.  Parse failure is a nullopt, never a
// sentinel value, so callers must decide what malformed input means
// (the tool-suite contract: usage error, exit 2).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace offramps::core {

/// Parses `text` as a finite double.  The whole string must be a number
/// ("0.5", "-1e-3"); empty input, surrounding whitespace, trailing
/// garbage, inf and nan all yield nullopt.
std::optional<double> parse_double(std::string_view text);

/// Parses `text` as a base-10 signed integer, whole-string, no locale.
std::optional<long long> parse_long(std::string_view text);

}  // namespace offramps::core
