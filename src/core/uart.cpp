#include "core/uart.hpp"

#include <algorithm>

namespace offramps::core {

UartReporter::UartReporter(sim::Scheduler& sched,
                           std::array<AxisTracker*, 4> trackers,
                           HomingDetector& homing, sim::Tick period)
    : sched_(sched), trackers_(trackers), period_(period) {
  homing.on_homed([this](sim::Tick) {
    // Zero the counters at the homing datum, then wait for the first
    // step edge before starting the transaction clock.
    for (auto* t : trackers_) t->arm();
    arm_on_first_step();
  });
}

void UartReporter::arm_on_first_step() {
  for (auto* t : trackers_) {
    t->on_first_step([this](sim::Tick at) {
      if (!streaming_ && !finalized_) start_stream(at);
    });
  }
}

void UartReporter::start_stream(sim::Tick) {
  streaming_ = true;
  const auto gen = ++generation_;
  sched_.schedule_in(period_, [this, gen] { tick(gen); });
}

void UartReporter::tick(std::uint64_t gen) {
  if (gen != generation_ || !streaming_) return;
  emit();
  sched_.schedule_in(period_, [this, gen] { tick(gen); });
}

void UartReporter::emit() {
  Transaction t;
  t.index = next_index_++;
  t.time_ns = sched_.now();
  for (std::size_t i = 0; i < 4; ++i) {
    t.counts[i] = static_cast<std::int32_t>(trackers_[i]->count());
  }
  // The capture is the fabric-side ground truth, recorded before the wire
  // can corrupt anything: it is what the counters actually held.
  capture_.transactions.push_back(t);

  if (!on_frame_.empty() || frame_fault_) {
    const auto f = t.to_frame();
    std::vector<std::uint8_t> bytes(f.begin(), f.end());
    if (frame_fault_) frame_fault_(bytes);
    ++frames_emitted_;
    for (const auto& cb : on_frame_) cb(bytes);
    if (frame_fault_) {
      // Validated delivery: transaction listeners model receivers, so they
      // only see frames that still check out after the fault.
      if (bytes.size() == Transaction::kFrameSize) {
        std::array<std::uint8_t, Transaction::kFrameSize> frame{};
        std::copy(bytes.begin(), bytes.end(), frame.begin());
        if (const auto rx = Transaction::from_frame(frame, sched_.now())) {
          for (const auto& cb : on_txn_) cb(*rx);
          return;
        }
      }
      ++crc_rejected_;
      return;
    }
  }
  // Fast path (no fault installed): no encode/decode round trip.
  for (const auto& cb : on_txn_) cb(t);
}

void UartReporter::finalize(bool print_completed) {
  if (finalized_) return;
  finalized_ = true;
  streaming_ = false;
  ++generation_;
  for (std::size_t i = 0; i < 4; ++i) {
    capture_.final_counts[i] = trackers_[i]->count();
  }
  capture_.print_completed = print_completed;
  for (const auto& cb : on_finalize_) cb(capture_);
}

}  // namespace offramps::core
