#include "core/fpga.hpp"

namespace offramps::core {

sim::Tick default_prop_delay(sim::Pin pin) {
  // Level shifter pair plus fabric routing: 8-13 ns depending on the route
  // the net takes across the die.  Y_DIR carries the longest route; its
  // 13 ns is the 1 ns-grid rounding of the paper's measured 12.923 ns
  // worst case.
  if (pin == sim::Pin::kYDir) return sim::ns(13);
  const auto idx = static_cast<std::size_t>(pin);
  return sim::ns(8 + (idx * 37) % 5);  // deterministic 8..12 ns spread
}

Fpga::Fpga(sim::Scheduler& sched, sim::PinBank& fw_side,
           sim::PinBank& printer_side, FpgaOptions options)
    : sched_(sched), fw_side_(fw_side), printer_side_(printer_side) {
  for (std::size_t i = 0; i < sim::kPinCount; ++i) {
    const auto pin = static_cast<sim::Pin>(i);
    const bool fw_drives =
        sim::pin_direction(pin) == sim::PinDirection::kFirmwareToPrinter;
    sim::Wire& in = fw_drives ? fw_side.wire(pin) : printer_side.wire(pin);
    sim::Wire& out = fw_drives ? printer_side.wire(pin) : fw_side.wire(pin);
    paths_[i] =
        std::make_unique<SignalPath>(sched, in, out, default_prop_delay(pin));
  }

  // Monitoring gateware observes the FPGA's *input* side of each net: the
  // firmware bank for control signals, the printer bank for endstops.
  for (const auto axis : sim::kAllAxes) {
    trackers_[static_cast<std::size_t>(axis)] = std::make_unique<AxisTracker>(
        sched, fw_side.step(axis), fw_side.dir(axis));
  }
  homing_ = std::make_unique<HomingDetector>(
      sched, printer_side.min_endstop(sim::Axis::kX),
      printer_side.min_endstop(sim::Axis::kY),
      printer_side.min_endstop(sim::Axis::kZ));
  homing_->set_enabled(false);
  layers_ = std::make_unique<LayerMonitor>(
      sched, fw_side.step(sim::Axis::kZ), options.layer_quiet_gap);
  uart_ = std::make_unique<UartReporter>(
      sched,
      std::array<AxisTracker*, 4>{&tracker(sim::Axis::kX),
                                  &tracker(sim::Axis::kY),
                                  &tracker(sim::Axis::kZ),
                                  &tracker(sim::Axis::kE)},
      *homing_, options.uart_period);

  // The host link: every emitted transaction is serialized onto the TX
  // net at the configured baud rate, as a framed (magic + CRC) burst so
  // the host side can survive wire corruption.
  uart_tx_line_ = std::make_unique<sim::Wire>(sched, "fpga.UART_TX", true);
  uart_phy_ =
      std::make_unique<UartTx>(sched, *uart_tx_line_, options.serial_baud);
  uart_->on_frame([this](const std::vector<std::uint8_t>& bytes) {
    uart_phy_->send(bytes);
  });
}

void Fpga::set_mitm_active(bool active) {
  mitm_active_ = active;
  for (auto& p : paths_) p->set_active(active);
}

void Fpga::set_monitors_enabled(bool enabled) {
  monitors_enabled_ = enabled;
  homing_->set_enabled(enabled);
  for (auto& t : trackers_) t->set_connected(enabled);
}

sim::Tick Fpga::max_prop_delay() const {
  sim::Tick best = 0;
  for (const auto& p : paths_) best = std::max(best, p->prop_delay());
  return best;
}

sim::Pin Fpga::max_prop_delay_pin() const {
  sim::Tick best = 0;
  sim::Pin pin = sim::Pin::kXStep;
  for (std::size_t i = 0; i < sim::kPinCount; ++i) {
    if (paths_[i]->prop_delay() > best) {
      best = paths_[i]->prop_delay();
      pin = static_cast<sim::Pin>(i);
    }
  }
  return pin;
}

}  // namespace offramps::core
