// Trojan control module and the nine Trojans of paper Table I.
//
// Each Trojan manipulates the MITM signal paths only - masking, injecting,
// or forcing pin-level waveforms - never any simulated machine state, so
// the downstream physics sees exactly what a compromised fabric would
// produce.  Trojans arm when the homing-detection FSM reports the start of
// a print (the paper's activation trigger) plus a per-Trojan delay, and
// can be enabled/disabled dynamically (the paper's multiplexed control).
//
//  T1  PM   loose belt        random X/Y step injection every period
//  T2  PM   under-extrusion   mask a fraction of E STEP pulses (Flaw3D-like)
//  T3  PM   retraction tamper over/under extrusion tied to Y activity
//  T4  PM   z-wobble          XY shift on random Z layer increments
//  T5  PM   layer shift       extra Z steps (delamination / adhesion fail)
//  T6  DoS  heater disable    force D8/D10 MOSFET gates off
//  T7  D    thermal runaway   force heater gates on, ignoring firmware
//  T8  DoS  driver disable    periodically deassert stepper /EN lines
//  T9  PM   fan tamper        re-modulate the part-fan PWM
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/fpga.hpp"
#include "core/pulse_generator.hpp"
#include "sim/rng.hpp"

namespace offramps::core {

/// Identifiers for the Trojan suite (T0 is the golden pass-through).
/// T1-T9 reproduce the paper's Table I; T10 is this library's extension
/// using the board's analog XADC->DAC interception path (the paper notes
/// the Trojan list "is not exhaustive of all possibilities").
enum class TrojanId : std::uint8_t {
  kT1, kT2, kT3, kT4, kT5, kT6, kT7, kT8, kT9, kT10
};

const char* trojan_name(TrojanId id);

// --- Per-Trojan configuration ------------------------------------------------

/// T1: arbitrary X/Y shifts every `period` (paper: every ten seconds).
struct T1Config {
  sim::Tick period = sim::seconds(10);
  std::uint32_t pulses_per_burst = 100;   // 1 mm at 100 steps/mm
  sim::Tick pulse_spacing = sim::us(50);
  bool alternate_axes = true;             // X, Y, X, ... vs random choice
  double delay_after_homing_s = 0.0;
};

/// T2: constant under/over-extrusion by masking E STEP pulses (a 0.5 keep
/// ratio reproduces the paper's 50% flow reduction).
struct T2Config {
  double keep_ratio = 0.5;  // fraction of extruder pulses passed through
  double delay_after_homing_s = 0.0;
};

/// T3: extrusion tampering tied to Y-axis stepping.
struct T3Config {
  bool over_extrude = true;       // inject E pulses; false = mask E pulses
  std::uint32_t y_steps_per_injection = 12;  // over mode: 1 E pulse per N Y
  double drop_fraction = 0.5;     // under mode: E pulses dropped while Y live
  sim::Tick y_active_window = sim::ms(5);
  double delay_after_homing_s = 0.0;
};

/// T4: Z-wobble - small XY shift on random Z layer increments.
struct T4Config {
  double layer_probability = 0.4;        // chance a layer gets shifted
  std::uint32_t shift_steps = 40;        // 0.4 mm at 100 steps/mm
  sim::Tick pulse_spacing = sim::us(100);
  std::uint64_t seed = 0x7404;
  double delay_after_homing_s = 0.0;
};

/// T5: Z-layer shift - delamination (mid-print) or adhesion failure
/// (at-start) via injected Z steps.
struct T5Config {
  enum class Mode { kAtStart, kEveryNLayers };
  Mode mode = Mode::kEveryNLayers;
  std::uint32_t every_n_layers = 4;
  std::uint32_t shift_steps = 120;  // 0.3 mm at 400 steps/mm
  sim::Tick pulse_spacing = sim::us(200);
  double delay_after_homing_s = 0.0;
};

/// T6: denial of service by disabling heating element power.
struct T6Config {
  bool hotend = true;
  bool bed = true;
  double delay_after_homing_s = 20.0;  // drop power mid-print
};

/// T7: destructive thermal runaway - heater gates forced permanently on.
struct T7Config {
  bool hotend = true;
  bool bed = false;
  double delay_after_homing_s = 10.0;
};

/// T8: arbitrary stepper deactivation via the /EN lines.
struct T8Config {
  std::array<bool, 4> axes = {true, true, false, true};  // X, Y, Z, E
  double period_s = 15.0;        // between deactivations
  double off_duration_s = 0.4;   // how long drivers stay dead
  double delay_after_homing_s = 5.0;
};

/// T9: part-fan tampering - rescale the firmware-commanded duty.
struct T9Config {
  double duty_scale = 0.2;   // < 1 under-cooling, > 1 over-cooling
  double duty_offset = 0.0;
  sim::Tick window = sim::ms(100);  // re-modulation measurement window
  double delay_after_homing_s = 0.0;
};

/// T10 (extension): thermistor spoofing through the analog XADC->DAC
/// path.  The firmware reads `understate_c` degrees LESS than the true
/// temperature, so its own control loop silently overheats the zone by
/// that amount - no thermal fault ever fires, because every reading the
/// protection logic sees looks nominal.  A stealthier relative of T7.
struct T10Config {
  bool hotend = true;
  bool bed = false;
  double understate_c = 20.0;
  double delay_after_homing_s = 0.0;
};

/// Which Trojans a run arms, and how.  Empty = T0 golden behaviour.
struct TrojanSuiteConfig {
  std::optional<T1Config> t1;
  std::optional<T2Config> t2;
  std::optional<T3Config> t3;
  std::optional<T4Config> t4;
  std::optional<T5Config> t5;
  std::optional<T6Config> t6;
  std::optional<T7Config> t7;
  std::optional<T8Config> t8;
  std::optional<T9Config> t9;
  std::optional<T10Config> t10;

  [[nodiscard]] bool any() const {
    return t1 || t2 || t3 || t4 || t5 || t6 || t7 || t8 || t9 || t10;
  }
};

// --- Trojan base -------------------------------------------------------------

/// One deployable Trojan.  Concrete Trojans install their logic in
/// activate() and must undo every path manipulation in deactivate().
class Trojan {
 public:
  virtual ~Trojan() = default;
  Trojan(const Trojan&) = delete;
  Trojan& operator=(const Trojan&) = delete;

  [[nodiscard]] virtual TrojanId id() const = 0;
  [[nodiscard]] const char* name() const { return trojan_name(id()); }

  /// Dynamically enables/disables the Trojan's effect (the multiplexer
  /// select of the paper's Trojan Control Module).
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Times the Trojan took a malicious action (bursts, masks, forces).
  [[nodiscard]] std::uint64_t activations() const { return activations_; }

 protected:
  explicit Trojan(Fpga& fpga) : fpga_(fpga) {}
  virtual void activate() = 0;
  virtual void deactivate() = 0;
  void note_activation() { ++activations_; }

  Fpga& fpga_;

 private:
  bool enabled_ = false;
  std::uint64_t activations_ = 0;
};

// --- Controller ---------------------------------------------------------------

/// Owns the armed Trojans and wires their homing-based triggers.
class TrojanController {
 public:
  explicit TrojanController(Fpga& fpga);

  TrojanController(const TrojanController&) = delete;
  TrojanController& operator=(const TrojanController&) = delete;

  /// Instantiates every configured Trojan.  Each enables itself
  /// `delay_after_homing_s` after the homing detector fires.  Call before
  /// the print starts; calling twice throws.
  void arm(const TrojanSuiteConfig& config);

  /// Immediately disables every armed Trojan.
  void disarm_all();

  [[nodiscard]] const std::vector<std::unique_ptr<Trojan>>& trojans() const {
    return trojans_;
  }
  /// Finds an armed Trojan by id (nullptr when not armed).
  [[nodiscard]] Trojan* find(TrojanId id);

 private:
  void add(std::unique_ptr<Trojan> trojan, double delay_after_homing_s);

  Fpga& fpga_;
  std::vector<std::unique_ptr<Trojan>> trojans_;
  bool armed_ = false;
};

}  // namespace offramps::core
