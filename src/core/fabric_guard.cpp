#include "core/fabric_guard.hpp"

#include <cstdlib>

namespace offramps::core {

FabricGuard::FabricGuard(Fpga& fpga, Capture golden,
                         FabricGuardOptions options)
    : fpga_(fpga),
      golden_(std::move(golden.transactions)),
      options_(options),
      alarm_line_(std::make_unique<sim::Wire>(fpga.scheduler(),
                                              "fpga.GUARD_ALARM")) {
  fpga_.uart().on_transaction(
      [this](const Transaction& txn) { on_transaction(txn); });
}

bool FabricGuard::transaction_mismatches(const Transaction& txn) const {
  if (txn.index >= golden_.size()) {
    // Outrunning the stored golden series is itself anomalous.
    return true;
  }
  const Transaction& g = golden_[txn.index];
  for (std::size_t c = 0; c < 4; ++c) {
    // Pure integer comparison, as the fabric comparator would compute:
    // |g - o| * 100 > margin * |g|.
    const std::int64_t gv = g.counts[c];
    const std::int64_t ov = txn.counts[c];
    if (gv == ov) continue;
    if (std::llabs(gv) < options_.min_count &&
        std::llabs(ov) < options_.min_count) {
      continue;
    }
    const std::int64_t diff = std::llabs(gv - ov);
    if (diff * 100 >
        static_cast<std::int64_t>(options_.margin_pct) * std::llabs(gv)) {
      return true;
    }
  }
  return false;
}

void FabricGuard::on_transaction(const Transaction& txn) {
  if (alarmed_) return;
  if (transaction_mismatches(txn)) {
    ++mismatches_;
    ++consecutive_;
  } else {
    consecutive_ = 0;
  }
  if (consecutive_ >= options_.consecutive_to_alarm) {
    alarmed_ = true;
    alarm_index_ = txn.index;
    alarm_line_->set(true);
    if (options_.safe_stop) engage_safe_stop();
  }
}

void FabricGuard::engage_safe_stop() {
  if (!fpga_.mitm_active()) return;  // record mode: alarm only
  safe_stopped_ = true;
  // Release every driver and kill both heaters, downstream of the
  // firmware: whatever the compromised controller does next, the
  // machine no longer moves or heats.
  for (const auto axis : sim::kAllAxes) {
    fpga_.path(sim::enable_pin(axis)).force(true);  // /EN high = free
  }
  fpga_.path(sim::Pin::kHotendHeat).force(false);
  fpga_.path(sim::Pin::kBedHeat).force(false);
  fpga_.path(sim::Pin::kFan).force(false);
}

}  // namespace offramps::core
