#include "core/capture.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>

#include "sim/error.hpp"

namespace offramps::core {

std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t len) {
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= static_cast<std::uint16_t>(data[i]) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

std::array<std::uint8_t, 16> Transaction::to_bytes() const {
  std::array<std::uint8_t, 16> out{};
  for (std::size_t i = 0; i < 4; ++i) {
    const auto v = static_cast<std::uint32_t>(counts[i]);
    out[i * 4 + 0] = static_cast<std::uint8_t>(v & 0xFF);
    out[i * 4 + 1] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
    out[i * 4 + 2] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
    out[i * 4 + 3] = static_cast<std::uint8_t>((v >> 24) & 0xFF);
  }
  return out;
}

Transaction Transaction::from_bytes(const std::array<std::uint8_t, 16>& bytes,
                                    std::uint32_t index,
                                    std::uint64_t time_ns) {
  Transaction t;
  t.index = index;
  t.time_ns = time_ns;
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint32_t v = 0;
    v |= static_cast<std::uint32_t>(bytes[i * 4 + 0]);
    v |= static_cast<std::uint32_t>(bytes[i * 4 + 1]) << 8;
    v |= static_cast<std::uint32_t>(bytes[i * 4 + 2]) << 16;
    v |= static_cast<std::uint32_t>(bytes[i * 4 + 3]) << 24;
    t.counts[i] = static_cast<std::int32_t>(v);
  }
  return t;
}

std::array<std::uint8_t, Transaction::kFrameSize> Transaction::to_frame()
    const {
  std::array<std::uint8_t, kFrameSize> f{};
  f[0] = kMagic0;
  f[1] = kMagic1;
  f[2] = static_cast<std::uint8_t>(index & 0xFF);
  f[3] = static_cast<std::uint8_t>((index >> 8) & 0xFF);
  f[4] = static_cast<std::uint8_t>((index >> 16) & 0xFF);
  f[5] = static_cast<std::uint8_t>((index >> 24) & 0xFF);
  const auto payload = to_bytes();
  for (std::size_t i = 0; i < payload.size(); ++i) f[6 + i] = payload[i];
  const std::uint16_t crc = crc16_ccitt(f.data() + 2, 20);
  f[22] = static_cast<std::uint8_t>(crc & 0xFF);
  f[23] = static_cast<std::uint8_t>((crc >> 8) & 0xFF);
  return f;
}

std::optional<Transaction> Transaction::from_frame(
    const std::array<std::uint8_t, kFrameSize>& frame,
    std::uint64_t time_ns) {
  if (frame[0] != kMagic0 || frame[1] != kMagic1) return std::nullopt;
  const std::uint16_t want = static_cast<std::uint16_t>(
      frame[22] | (static_cast<std::uint16_t>(frame[23]) << 8));
  if (crc16_ccitt(frame.data() + 2, 20) != want) return std::nullopt;
  std::uint32_t index = 0;
  index |= static_cast<std::uint32_t>(frame[2]);
  index |= static_cast<std::uint32_t>(frame[3]) << 8;
  index |= static_cast<std::uint32_t>(frame[4]) << 16;
  index |= static_cast<std::uint32_t>(frame[5]) << 24;
  std::array<std::uint8_t, 16> payload{};
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = frame[6 + i];
  return from_bytes(payload, index, time_ns);
}

std::string Capture::to_csv() const {
  std::string out = "Index, X, Y, Z, E\n";
  char buf[160];
  for (const auto& t : transactions) {
    std::snprintf(buf, sizeof(buf), "%u, %d, %d, %d, %d\n", t.index,
                  t.counts[0], t.counts[1], t.counts[2], t.counts[3]);
    out += buf;
  }
  // Footer: the exact end-of-print totals (captured at finalize, which
  // can postdate the last periodic transaction) and completion status,
  // so the 0%-margin final check survives the file round trip.
  std::snprintf(buf, sizeof(buf), "# final, %lld, %lld, %lld, %lld, %d\n",
                static_cast<long long>(final_counts[0]),
                static_cast<long long>(final_counts[1]),
                static_cast<long long>(final_counts[2]),
                static_cast<long long>(final_counts[3]),
                print_completed ? 1 : 0);
  out += buf;
  return out;
}

Capture Capture::from_csv(const std::string& text, std::string label) {
  Capture cap;
  cap.label = std::move(label);
  std::size_t pos = 0;
  bool header_skipped = false;
  bool has_footer = false;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string_view line(text.data() + pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (line.front() == '#') {
      // Footer: "# final, x, y, z, e, completed".
      if (line.find("final") != std::string_view::npos) {
        long long vals[5] = {0, 0, 0, 0, 0};
        std::size_t cursor = line.find(',');
        for (auto& val : vals) {
          if (cursor == std::string_view::npos) break;
          ++cursor;
          while (cursor < line.size() && line[cursor] == ' ') ++cursor;
          const auto [ptr, ec] = std::from_chars(
              line.data() + cursor, line.data() + line.size(), val);
          if (ec != std::errc{}) {
            throw Error("Capture::from_csv: malformed footer: " +
                        std::string(line));
          }
          cursor = line.find(',', static_cast<std::size_t>(
                                      ptr - line.data()));
        }
        for (std::size_t i = 0; i < 4; ++i) cap.final_counts[i] = vals[i];
        cap.print_completed = vals[4] != 0;
        has_footer = true;
      }
      continue;
    }
    if (!header_skipped) {
      header_skipped = true;
      if (line.find("Index") != std::string_view::npos) continue;
    }
    Transaction t;
    long long fields[5] = {0, 0, 0, 0, 0};
    std::size_t field = 0;
    std::size_t cursor = 0;
    while (field < 5 && cursor < line.size()) {
      while (cursor < line.size() &&
             (line[cursor] == ' ' || line[cursor] == ',')) {
        ++cursor;
      }
      const char* begin = line.data() + cursor;
      const char* end = line.data() + line.size();
      long long v = 0;
      const auto [ptr, ec] = std::from_chars(begin, end, v);
      if (ec != std::errc{}) {
        throw Error("Capture::from_csv: malformed line: " +
                    std::string(line));
      }
      fields[field++] = v;
      cursor = static_cast<std::size_t>(ptr - line.data());
    }
    if (field != 5) {
      throw Error("Capture::from_csv: expected 5 fields in line: " +
                  std::string(line));
    }
    t.index = static_cast<std::uint32_t>(fields[0]);
    for (std::size_t i = 0; i < 4; ++i) {
      t.counts[i] = static_cast<std::int32_t>(fields[i + 1]);
    }
    cap.transactions.push_back(t);
  }
  // Legacy files without a footer: fall back to the last row's counts.
  if (!has_footer && !cap.transactions.empty()) {
    for (std::size_t i = 0; i < 4; ++i) {
      cap.final_counts[i] = cap.transactions.back().counts[i];
    }
    cap.print_completed = true;
  }
  return cap;
}

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

/// Bounds-checked little-endian reader over the input buffer.
struct BinReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (size - pos < n) {
      throw Error("Capture::from_binary: truncated input (need " +
                  std::to_string(n) + " bytes at offset " +
                  std::to_string(pos) + ", have " +
                  std::to_string(size - pos) + ")");
    }
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        data[pos] | (static_cast<std::uint16_t>(data[pos + 1]) << 8));
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    }
    pos += 8;
    return v;
  }
};

constexpr std::uint8_t kBinMagic[4] = {'O', 'F', 'R', 'C'};

/// Serialized size of one transaction record: u32 index + 4 x i32
/// counts + u64 time_ns.  The count-prefix bound below divides by this,
/// so it must track the writer loop in to_binary().
constexpr std::size_t kBinRecordBytes = 28;

}  // namespace

std::vector<std::uint8_t> Capture::to_binary() const {
  std::vector<std::uint8_t> out;
  out.reserve(24 + label.size() + transactions.size() * kBinRecordBytes + 32);
  for (const std::uint8_t b : kBinMagic) out.push_back(b);
  put_u16(out, kBinaryVersion);
  put_u16(out, print_completed ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(label.size()));
  out.insert(out.end(), label.begin(), label.end());
  put_u64(out, transactions.size());
  for (const Transaction& t : transactions) {
    put_u32(out, t.index);
    for (const std::int32_t c : t.counts) {
      put_u32(out, static_cast<std::uint32_t>(c));
    }
    put_u64(out, t.time_ns);
  }
  for (const std::int64_t c : final_counts) {
    put_u64(out, static_cast<std::uint64_t>(c));
  }
  return out;
}

Capture Capture::from_binary(const std::uint8_t* data, std::size_t size) {
  BinReader r{data, size};
  r.need(4);
  for (std::size_t i = 0; i < 4; ++i) {
    if (data[i] != kBinMagic[i]) {
      throw Error("Capture::from_binary: bad magic (not a capture file)");
    }
  }
  r.pos = 4;
  const std::uint16_t version = r.u16();
  if (version != kBinaryVersion) {
    throw Error("Capture::from_binary: unsupported format version " +
                std::to_string(version));
  }
  Capture cap;
  cap.print_completed = (r.u16() & 1) != 0;
  const std::uint32_t label_len = r.u32();
  r.need(label_len);
  cap.label.assign(reinterpret_cast<const char*>(data + r.pos), label_len);
  r.pos += label_len;
  const std::uint64_t count = r.u64();
  // Reject a count the remaining bytes cannot possibly hold before
  // reserving storage for it (a corrupt prefix must not OOM the host).
  if ((r.size - r.pos) / kBinRecordBytes < count) {
    throw Error("Capture::from_binary: truncated input (transaction count "
                "exceeds remaining bytes)");
  }
  cap.transactions.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Transaction t;
    t.index = r.u32();
    for (std::size_t a = 0; a < 4; ++a) {
      t.counts[a] = static_cast<std::int32_t>(r.u32());
    }
    t.time_ns = r.u64();
    cap.transactions.push_back(t);
  }
  for (std::size_t a = 0; a < 4; ++a) {
    cap.final_counts[a] = static_cast<std::int64_t>(r.u64());
  }
  return cap;
}

void Capture::save_binary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("Capture::save_binary: cannot open " + path);
  const std::vector<std::uint8_t> bytes = to_binary();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw Error("Capture::save_binary: write failed for " + path);
}

Capture Capture::load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("Capture::load_binary: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return from_binary(bytes.data(), bytes.size());
}

}  // namespace offramps::core
