// FPGA monitoring modules (paper sections IV-B and V-B).
//
//  * EdgeDetector    - clock-synchronized edge events: the fabric samples
//                      at 100 MHz, so an input edge is observed at the next
//                      clock boundary.
//  * HomingDetector  - FSM tracking endstop actuation in the homing order
//                      (X, then Y, then Z; each axis triggers, releases on
//                      the back-off, and re-triggers on the slow bump).
//                      Fires once when the print head has homed - the
//                      activation point for Trojans and step counting.
//  * AxisTracker     - signed step counter per axis (STEP edges signed by
//                      the DIR level), armed after homing.
//  * LayerMonitor    - detects Z "layer increment" events from Z_STEP
//                      activity bursts (used by Trojan T4's trigger).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/pins.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "sim/wire.hpp"

namespace offramps::core {

/// Clock-synchronized edge detector: callbacks fire on the first FPGA
/// clock edge at or after the signal transition.
class EdgeDetector {
 public:
  using Callback = std::function<void(sim::Edge, sim::Tick)>;

  EdgeDetector(sim::Scheduler& sched, sim::Wire& wire, Callback cb)
      : sched_(sched), wire_(wire), cb_(std::move(cb)) {
    id_ = wire.on_edge([this](sim::Edge e, sim::Tick t) {
      const sim::Tick sampled = sim::align_to_fpga_clock(t);
      if (sampled == t) {
        cb_(e, t);
      } else {
        sched_.schedule_at(sampled, [this, e, sampled] { cb_(e, sampled); });
      }
    });
  }

  EdgeDetector(const EdgeDetector&) = delete;
  EdgeDetector& operator=(const EdgeDetector&) = delete;
  ~EdgeDetector() { wire_.remove_listener(id_); }

 private:
  sim::Scheduler& sched_;
  sim::Wire& wire_;
  Callback cb_;
  sim::Wire::ListenerId id_ = 0;
};

/// Homing-detection FSM over the three min-endstop nets.
class HomingDetector {
 public:
  using HomedCallback = std::function<void(sim::Tick)>;

  HomingDetector(sim::Scheduler& sched, sim::Wire& x_min, sim::Wire& y_min,
                 sim::Wire& z_min);

  HomingDetector(const HomingDetector&) = delete;
  HomingDetector& operator=(const HomingDetector&) = delete;

  /// Adds a listener fired once when the full X->Y->Z sequence (trigger,
  /// release, re-trigger per axis) completes.  Multiple consumers (the
  /// UART reporter, the Trojan control module) can subscribe.
  void on_homed(HomedCallback cb) { on_homed_.push_back(std::move(cb)); }

  [[nodiscard]] bool homed() const { return homed_; }
  [[nodiscard]] sim::Tick homed_at() const { return homed_at_; }
  /// Endstop edges that did not fit the expected sequence (a simple
  /// anomaly signal: mid-print endstop chatter or out-of-order homing).
  [[nodiscard]] std::uint64_t out_of_order_events() const {
    return anomalies_;
  }

  /// Re-arms the FSM for another print.
  void reset();

  /// True when the monitor is attached to live signals (board routing).
  void set_enabled(bool enabled) { enabled_ = enabled; }

 private:
  // Per-axis progression: rising (fast hit), falling (back-off), rising
  // (slow re-bump) = 3 sub-states; axes complete in X, Y, Z order.
  void on_endstop_edge(std::size_t axis, sim::Edge e, sim::Tick t);

  std::array<std::unique_ptr<EdgeDetector>, 3> detectors_;
  std::size_t current_axis_ = 0;
  int sub_state_ = 0;  // 0: await hit, 1: await release, 2: await re-hit
  bool homed_ = false;
  bool enabled_ = true;
  sim::Tick homed_at_ = 0;
  std::uint64_t anomalies_ = 0;
  std::vector<HomedCallback> on_homed_;
};

/// Signed step counter for one axis, Marlin-convention (DIR high = +).
class AxisTracker {
 public:
  AxisTracker(sim::Scheduler& sched, sim::Wire& step, sim::Wire& dir);

  AxisTracker(const AxisTracker&) = delete;
  AxisTracker& operator=(const AxisTracker&) = delete;

  /// Begins counting from zero.
  void arm();
  /// Stops counting (count is frozen).
  void disarm();
  void reset() { count_ = 0; saw_step_ = false; }

  /// Hardware gate: when the board's jumpers take the FPGA out of
  /// circuit it receives no signals at all, so the tracker sees nothing
  /// regardless of its armed state.
  void set_connected(bool connected) { connected_ = connected; }

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] std::int64_t count() const { return count_; }
  /// True once at least one step was counted since arm().
  [[nodiscard]] bool saw_step() const { return saw_step_; }
  /// Time of the first counted step.
  [[nodiscard]] sim::Tick first_step_at() const { return first_step_at_; }

  /// Fired on the first counted step after arm().
  void on_first_step(std::function<void(sim::Tick)> cb) {
    on_first_step_ = std::move(cb);
  }

 private:
  EdgeDetector detector_;
  sim::Wire& dir_;
  bool armed_ = false;
  bool connected_ = true;
  bool saw_step_ = false;
  std::int64_t count_ = 0;
  sim::Tick first_step_at_ = 0;
  std::function<void(sim::Tick)> on_first_step_;
};

/// Detects layer-increment events: a Z_STEP burst after a quiet period.
class LayerMonitor {
 public:
  using LayerCallback = std::function<void(std::uint64_t layer_index)>;

  LayerMonitor(sim::Scheduler& sched, sim::Wire& z_step,
               sim::Tick quiet_gap = sim::ms(500));

  LayerMonitor(const LayerMonitor&) = delete;
  LayerMonitor& operator=(const LayerMonitor&) = delete;

  /// Adds a layer-event listener (multiple Trojans may subscribe).
  void on_layer(LayerCallback cb) { on_layer_.push_back(std::move(cb)); }
  [[nodiscard]] std::uint64_t layers_seen() const { return layers_; }
  void reset() { layers_ = 0; last_z_step_ = 0; }

 private:
  EdgeDetector detector_;
  sim::Tick quiet_gap_;
  sim::Tick last_z_step_ = 0;
  std::uint64_t layers_ = 0;
  std::vector<LayerCallback> on_layer_;
};

}  // namespace offramps::core
