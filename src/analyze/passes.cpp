// The builtin analysis passes.  Registration order here is finding
// emission order within one command - it reproduces the exact report the
// pre-pass-manager analyzer emitted (the Flaw3D acceptance corpus pins
// the --json output byte-for-byte modulo the added "pass" field).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "analyze/pass.hpp"

namespace offramps::analyze {
namespace {

constexpr double kTinyPath = 1e-9;

// --- thermal -----------------------------------------------------------------
// cold-extrusion, cold-extrusion-risk, thermal-overtemp, temp-override.

class ThermalPass final : public Pass {
 public:
  [[nodiscard]] PassInfo info() const override {
    return {"thermal",
            "cold-extrusion, cold-extrusion-risk, thermal-overtemp, "
            "temp-override (heater setpoint model)"};
  }

  void on_command(PassContext& ctx, const gcode::Command& cmd,
                  std::size_t index, CommandClass cls) override {
    if (cls != CommandClass::kThermal) return;
    const double target = pass_thermal_target(cmd);
    const bool bed = cmd.code == 140 || cmd.code == 190;
    const auto& heater = bed ? ctx.config().bed : ctx.config().hotend;
    if (target > heater.max_temp_c) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "%s setpoint %.0f C exceeds the %.0f C kill limit",
                    bed ? "bed" : "hotend", target, heater.max_temp_c);
      ctx.emit(FindingCode::kThermalOvertemp, Severity::kError, index,
               target, heater.max_temp_c, buf);
    }
    if (bed) return;
    const ProgramState& st = ctx.state();
    // A live, never-used nonzero setpoint replaced by a different nonzero
    // value is the M104-override Trojan signature.
    if (st.hotend_set_c > 0.0 && target > 0.0 && !st.hotend_used &&
        std::abs(target - st.hotend_set_c) > 1e-9) {
      char buf[112];
      std::snprintf(buf, sizeof(buf),
                    "hotend setpoint %.0f C overridden to %.0f C before "
                    "any extrusion used it",
                    st.hotend_set_c, target);
      ctx.emit(FindingCode::kTempOverride, Severity::kWarning, index,
               target, st.hotend_set_c, buf);
    }
    if (std::abs(target - st.hotend_set_c) > 1e-9) {
      cold_risk_reported_ = false;
    }
  }

  void on_move(PassContext& ctx, const gcode::Command& cmd,
               const fw::ResolvedMove& mv, std::size_t index) override {
    (void)cmd;
    const ProgramState& st = ctx.state();
    if (mv.cold_extrusion_blocked) {
      ctx.emit(FindingCode::kColdExtrusion, Severity::kError, index,
               st.hotend_set_c, ctx.config().min_extrude_temp_c,
               "filament advance while the hotend setpoint is below the "
               "cold-extrusion threshold (heaters off?)");
    } else if (mv.e_advance_mm > 0.0 && !st.hotend_waited &&
               !cold_risk_reported_) {
      cold_risk_reported_ = true;
      ctx.emit(FindingCode::kColdExtrusionRisk, Severity::kNote, index,
               st.hotend_set_c, ctx.config().min_extrude_temp_c,
               "extrusion before any M109/M190 wait; the first moves may "
               "be cold-blocked at runtime");
    }
  }

 private:
  bool cold_risk_reported_ = false;
};

// --- kinematics-limits -------------------------------------------------------
// axis-limit, feedrate-limit.

class KinematicsLimitsPass final : public Pass {
 public:
  [[nodiscard]] PassInfo info() const override {
    return {"kinematics-limits",
            "axis-limit, feedrate-limit (machine envelope)"};
  }

  void on_move(PassContext& ctx, const gcode::Command& cmd,
               const fw::ResolvedMove& mv, std::size_t index) override {
    (void)cmd;
    const fw::Config& config = ctx.config();
    for (std::size_t i = 0; i < 3; ++i) {
      if (!mv.clamped[i]) continue;
      char buf[112];
      std::snprintf(buf, sizeof(buf),
                    "%c target outside [0, %.0f] mm; runtime clamps it and "
                    "prints different geometry",
                    "XYZ"[i], config.axis_length_mm[i]);
      ctx.emit(FindingCode::kAxisLimit, Severity::kError, index,
               mv.target_mm[i], config.axis_length_mm[i], buf);
    }

    std::array<double, 4> delta_mm{};
    for (std::size_t i = 0; i < 4; ++i) {
      delta_mm[i] =
          static_cast<double>(mv.delta_steps[i]) / config.steps_per_mm[i];
    }
    const double ref_mm =
        mv.path_mm > kTinyPath ? mv.path_mm : std::abs(delta_mm[3]);
    if (ref_mm <= kTinyPath) return;
    for (std::size_t i = 0; i < 4; ++i) {
      const double axis_speed =
          mv.feed_mm_s * std::abs(delta_mm[i]) / ref_mm;
      if (axis_speed <= config.max_feedrate_mm_s[i] * (1.0 + 1e-9)) {
        continue;
      }
      char buf[128];
      std::snprintf(
          buf, sizeof(buf),
          "%c would run at %.1f mm/s (%.0f steps/s), above its %.1f mm/s "
          "maximum; runtime scales the whole move down",
          "XYZE"[i], axis_speed, axis_speed * config.steps_per_mm[i],
          config.max_feedrate_mm_s[i]);
      ctx.emit(FindingCode::kFeedrateLimit, Severity::kWarning, index,
               axis_speed, config.max_feedrate_mm_s[i], buf);
      return;  // one finding per move: the worst offender is enough
    }
  }
};

// --- extrusion ---------------------------------------------------------------
// inplace-extrusion (relocation blob dumps vs. the retraction debt).

class ExtrusionPass final : public Pass {
 public:
  [[nodiscard]] PassInfo info() const override {
    return {"extrusion",
            "inplace-extrusion (stationary advance beyond the retraction "
            "debt: relocation blob dumps)"};
  }

  void on_move(PassContext& ctx, const gcode::Command& cmd,
               const fw::ResolvedMove& mv, std::size_t index) override {
    (void)cmd;
    const ProgramState& st = ctx.state();
    const double de = mv.e_advance_mm;
    if (de <= 0.0 || mv.path_mm > kTinyPath) return;
    // Stationary positive advance: legitimate only as un-retract (or the
    // pre-print prime); anything beyond the debt is a blob dump.
    if (!st.printing_started) return;
    const double excess = de - st.retract_debt_mm;
    if (excess > ctx.options().blob_excess_mm) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "in-place extrusion of %.2f mm filament, %.2f mm "
                    "beyond the retraction debt (relocation blob dump?)",
                    de, excess);
      ctx.emit(FindingCode::kInplaceExtrusion, Severity::kError, index, de,
               st.retract_debt_mm, buf);
    }
  }
};

// --- structure ---------------------------------------------------------------
// unknown-command.

class StructurePass final : public Pass {
 public:
  [[nodiscard]] PassInfo info() const override {
    return {"structure",
            "unknown-command (words the firmware would ignore)"};
  }

  void on_command(PassContext& ctx, const gcode::Command& cmd,
                  std::size_t index, CommandClass cls) override {
    if (cls != CommandClass::kUnknown) return;
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  "command %c%d is not understood by the firmware",
                  cmd.letter, cmd.code);
    ctx.emit(FindingCode::kUnknownCommand, Severity::kWarning, index,
             static_cast<double>(cmd.code), 0.0, buf);
  }
};

// --- reachability ------------------------------------------------------------
// unreachable-commands + post-abort-motion: flow-sensitive scan of the
// program tail after an M112 emergency stop.  The old analyzer stopped at
// the first dead command; the pass keeps scanning and flags *effectual*
// commands (motion, heater) hiding in the dead tail - the signature of a
// program truncated or re-ordered by a compromised host (an attacker who
// inserts an early M112 silently voids everything after it).

class ReachabilityPass final : public Pass {
 public:
  [[nodiscard]] PassInfo info() const override {
    return {"reachability",
            "unreachable-commands, post-abort-motion (flow-sensitive "
            "dead-code scan after M112)"};
  }

  void on_dead(PassContext& ctx, const gcode::Command& cmd,
               std::size_t index) override {
    if (!note_emitted_) {
      note_emitted_ = true;
      const std::size_t total =
          ctx.program() != nullptr ? ctx.program()->size() : index + 1;
      ctx.emit(FindingCode::kUnreachableCommands, Severity::kNote, index,
               static_cast<double>(total - index), 0.0,
               "commands after M112 emergency stop never execute");
    }
    if (!effectual_reported_ && is_effectual(cmd)) {
      effectual_reported_ = true;
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "%c%d after the M112 emergency stop would move or heat "
                    "but never executes (tampered or truncated program?)",
                    cmd.letter, cmd.code);
      ctx.emit(FindingCode::kPostAbortMotion, Severity::kWarning, index,
               static_cast<double>(cmd.code), 0.0, buf);
    }
  }

 private:
  static bool is_effectual(const gcode::Command& cmd) {
    if (cmd.letter == 'G') {
      return cmd.code == 0 || cmd.code == 1 || cmd.code == 2 ||
             cmd.code == 3 || cmd.code == 28;
    }
    if (cmd.letter == 'M') {
      return (cmd.code == 104 || cmd.code == 109 || cmd.code == 140 ||
              cmd.code == 190) &&
             pass_thermal_target(cmd) > 0.0;
    }
    return false;
  }

  bool note_emitted_ = false;
  bool effectual_reported_ = false;
};

// --- taint -------------------------------------------------------------------
// feedrate-override-taint, flow-override-taint, temp-override-taint:
// flow-sensitive tracking of the modal M220/M221/M104 overrides.  A
// mid-print M221 S50 halves every later extrusion without touching a
// single E word - the modal spelling of the FLAW3D reduction Trojan,
// invisible to a textual diff of the move commands; a mid-print M220
// re-scales feedrates the same way, and an unwaited M104 re-targets the
// hotend under live extrusion.  Each override site is reported once, at
// the first move it actually taints.

class TaintPass final : public Pass {
 public:
  [[nodiscard]] PassInfo info() const override {
    return {"taint",
            "feedrate-override-taint, flow-override-taint, "
            "temp-override-taint (mid-print M220/M221/M104 overrides)"};
  }

  void on_move(PassContext& ctx, const gcode::Command& cmd,
               const fw::ResolvedMove& mv, std::size_t index) override {
    (void)cmd;
    const ProgramState& st = ctx.state();
    constexpr std::size_t kNone = ProgramState::kNoCommand;

    if (st.feed_override_cmd != kNone &&
        st.feed_override_cmd != feed_reported_ && mv.path_mm > kTinyPath) {
      feed_reported_ = st.feed_override_cmd;
      char buf[144];
      std::snprintf(buf, sizeof(buf),
                    "move feedrate scaled to %.0f%% by the mid-print M220 "
                    "at command %zu (untrusted override taints every "
                    "following move)",
                    st.motion.feedrate_pct, st.feed_override_cmd);
      ctx.emit(FindingCode::kFeedrateOverrideTaint, Severity::kWarning,
               index, st.motion.feedrate_pct, 100.0, buf);
    }

    if (st.flow_override_cmd != kNone &&
        st.flow_override_cmd != flow_reported_ && mv.e_advance_mm != 0.0) {
      flow_reported_ = st.flow_override_cmd;
      char buf[144];
      std::snprintf(buf, sizeof(buf),
                    "extrusion scaled to %.0f%% by the mid-print M221 at "
                    "command %zu (modal spelling of a reduction Trojan)",
                    st.motion.flow_pct, st.flow_override_cmd);
      ctx.emit(FindingCode::kFlowOverrideTaint, Severity::kWarning, index,
               st.motion.flow_pct, 100.0, buf);
    }

    if (st.temp_override_cmd != kNone &&
        st.temp_override_cmd != temp_reported_ && mv.e_advance_mm > 0.0) {
      temp_reported_ = st.temp_override_cmd;
      char buf[144];
      std::snprintf(buf, sizeof(buf),
                    "extrusion at a hotend setpoint re-targeted to %.0f C "
                    "by the mid-print M104 at command %zu without an M109 "
                    "wait",
                    st.hotend_set_c, st.temp_override_cmd);
      ctx.emit(FindingCode::kTempOverrideTaint, Severity::kWarning, index,
               st.hotend_set_c, 0.0, buf);
    }
  }

 private:
  std::size_t feed_reported_ = ProgramState::kNoCommand;
  std::size_t flow_reported_ = ProgramState::kNoCommand;
  std::size_t temp_reported_ = ProgramState::kNoCommand;
};

// --- oracle ------------------------------------------------------------------
// Builds the static Oracle (segments, counts, totals) and owns the
// counter-alignment caveats: rehome-uncertainty, counters-not-armed.

class OraclePass final : public Pass {
 public:
  [[nodiscard]] PassInfo info() const override {
    return {"oracle",
            "step-count oracle (segments, expected counts), "
            "rehome-uncertainty, counters-not-armed"};
  }

  void on_command(PassContext& ctx, const gcode::Command& cmd,
                  std::size_t index, CommandClass cls) override {
    (void)cmd;
    if (cls == CommandClass::kHome && ctx.state().armed) {
      ctx.emit(FindingCode::kRehomeUncertainty, Severity::kNote, index, 0.0,
               0.0,
               "program re-homes after the counters armed; expected counts "
               "carry a few steps of trigger uncertainty");
    }
  }

  void on_move(PassContext& ctx, const gcode::Command& cmd,
               const fw::ResolvedMove& mv, std::size_t index) override {
    (void)cmd;
    const ProgramState& st = ctx.state();
    SegmentRecord seg;
    seg.command_index = index;
    seg.delta_steps = mv.delta_steps;
    seg.path_mm = mv.path_mm;
    seg.e_mm = mv.e_advance_mm;
    seg.feed_mm_s = mv.feed_mm_s;
    seg.counted = st.armed;
    if (mv.e_advance_mm > 0.0) {
      seg.kind = mv.path_mm > kTinyPath ? SegmentKind::kExtrusion
                                        : SegmentKind::kEOnly;
    } else if (mv.e_advance_mm < 0.0) {
      seg.kind = SegmentKind::kRetraction;
    } else {
      seg.kind = SegmentKind::kTravel;
    }

    Oracle& o = ctx.result().oracle;
    ++o.move_count;
    if (seg.kind == SegmentKind::kExtrusion) {
      ++o.extrusion_move_count;
      o.extrusion_path_mm += mv.path_mm;
    }
    if (mv.e_advance_mm > 0.0) o.extruded_mm += mv.e_advance_mm;
    if (mv.e_advance_mm < 0.0) o.retracted_mm += -mv.e_advance_mm;

    // The legitimate stationary-advance budget (un-retract / prime): any
    // stationary positive advance not classified as a blob dump.
    const double de = mv.e_advance_mm;
    if (de > 0.0 && mv.path_mm <= kTinyPath) {
      const double excess = de - st.retract_debt_mm;
      if (!st.printing_started || excess <= ctx.options().blob_excess_mm) {
        o.max_stationary_e_mm = std::max(o.max_stationary_e_mm, de);
      }
    }
    o.segments.push_back(seg);
  }

  void on_end(PassContext& ctx) override {
    const ProgramState& st = ctx.state();
    Oracle& o = ctx.result().oracle;
    o.expected_counts = st.counts;
    o.total_pulses = st.pulses;
    o.final_state = st.motion;
    o.counters_armed = st.armed;
    o.armed_at_command = st.armed ? st.armed_at : 0;
    if (!o.counters_armed) {
      ctx.emit(FindingCode::kCountersNotArmed, Severity::kNote, 0, 0.0, 0.0,
               "program never homes all three axes; the OFFRAMPS step "
               "counters would not arm");
    }
  }
};

// --- baseline-compare --------------------------------------------------------
// The exact static-vs-static diff against a known-good program.

class BaselineComparePass final : public Pass {
 public:
  [[nodiscard]] PassInfo info() const override {
    return {"baseline-compare",
            "move-count/segment/step-count/extrusion-total/ratio "
            "mismatches against a known-good baseline"};
  }

  void compare(PassContext& ctx, const AnalysisResult& baseline) override {
    const AnalyzeOptions& options = ctx.options();
    const Oracle& b = baseline.oracle;
    const Oracle& s = ctx.result().oracle;
    char buf[192];

    if (b.segments.size() != s.segments.size()) {
      std::snprintf(buf, sizeof(buf),
                    "program resolves to %zu motion segments, baseline has "
                    "%zu (commands inserted or removed)",
                    s.segments.size(), b.segments.size());
      ctx.emit(FindingCode::kMoveCountMismatch, Severity::kError, 0,
               static_cast<double>(s.segments.size()),
               static_cast<double>(b.segments.size()), buf);
    }

    const std::size_t n = std::min(b.segments.size(), s.segments.size());
    std::size_t step_diverged = 0;
    std::size_t ratio_diverged = 0;
    std::size_t reported = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const SegmentRecord& sb = b.segments[i];
      const SegmentRecord& ss = s.segments[i];
      const bool steps_differ = sb.delta_steps != ss.delta_steps;
      const bool ratio_differs =
          std::abs(sb.e_mm - ss.e_mm) > options.ratio_tol;
      if (steps_differ) ++step_diverged;
      if (ratio_differs && !steps_differ) ++ratio_diverged;
      if ((steps_differ || ratio_differs) &&
          reported < options.max_segment_findings) {
        ++reported;
        std::snprintf(
            buf, sizeof(buf),
            "segment %zu diverges from baseline: steps X%+lld Y%+lld "
            "Z%+lld E%+lld vs X%+lld Y%+lld Z%+lld E%+lld",
            i, static_cast<long long>(ss.delta_steps[0]),
            static_cast<long long>(ss.delta_steps[1]),
            static_cast<long long>(ss.delta_steps[2]),
            static_cast<long long>(ss.delta_steps[3]),
            static_cast<long long>(sb.delta_steps[0]),
            static_cast<long long>(sb.delta_steps[1]),
            static_cast<long long>(sb.delta_steps[2]),
            static_cast<long long>(sb.delta_steps[3]));
        ctx.emit(steps_differ ? FindingCode::kSegmentMismatch
                              : FindingCode::kRatioMismatch,
                 Severity::kError, ss.command_index,
                 static_cast<double>(ss.delta_steps[3]),
                 static_cast<double>(sb.delta_steps[3]), buf);
      }
    }
    if (step_diverged + ratio_diverged > reported) {
      std::snprintf(buf, sizeof(buf),
                    "%zu of %zu compared segments diverge from baseline",
                    step_diverged + ratio_diverged, n);
      ctx.emit(FindingCode::kSegmentMismatch, Severity::kError, 0,
               static_cast<double>(step_diverged + ratio_diverged),
               static_cast<double>(n), buf);
    }

    for (std::size_t axis = 0; axis < 4; ++axis) {
      if (b.expected_counts[axis] == s.expected_counts[axis]) continue;
      std::snprintf(buf, sizeof(buf),
                    "expected %c steps %lld differ from baseline %lld",
                    "XYZE"[axis],
                    static_cast<long long>(s.expected_counts[axis]),
                    static_cast<long long>(b.expected_counts[axis]));
      ctx.emit(FindingCode::kStepCountMismatch, Severity::kError, 0,
               static_cast<double>(s.expected_counts[axis]),
               static_cast<double>(b.expected_counts[axis]), buf);
    }

    const double denom = std::max(std::abs(b.extruded_mm), 1e-12);
    if (std::abs(b.extruded_mm - s.extruded_mm) / denom >
        options.extrusion_total_rel_tol) {
      std::snprintf(buf, sizeof(buf),
                    "total extrusion %.3f mm differs from baseline %.3f mm "
                    "(%+.2f%%)",
                    s.extruded_mm, b.extruded_mm,
                    (s.extruded_mm - b.extruded_mm) / denom * 100.0);
      ctx.emit(FindingCode::kExtrusionTotalMismatch, Severity::kError, 0,
               s.extruded_mm, b.extruded_mm, buf);
    }
  }
};

template <typename P>
void add(PassRegistry& registry) {
  const PassInfo info = P{}.info();
  registry.add(info, [] { return std::make_unique<P>(); });
}

}  // namespace

namespace detail {

void register_builtin_passes(PassRegistry& registry) {
  // Order = emission order within one command (and the --list-passes
  // order): thermal findings precede envelope findings precede blob
  // findings on the same move, matching the historical report layout.
  add<ThermalPass>(registry);
  add<KinematicsLimitsPass>(registry);
  add<ExtrusionPass>(registry);
  add<StructurePass>(registry);
  add<ReachabilityPass>(registry);
  add<TaintPass>(registry);
  add<OraclePass>(registry);
  add<BaselineComparePass>(registry);
}

}  // namespace detail
}  // namespace offramps::analyze
