// Finding model of the static analyzer: severities, the stable
// machine-readable finding codes (the CLI's contract), and the Finding
// record every analysis pass emits.
//
// Split out of analyzer.hpp so the pass framework (pass.hpp) and the
// public entry points (analyzer.hpp) can share the types without a
// circular include.
#pragma once

#include <cstdint>
#include <string>

namespace offramps::analyze {

enum class Severity : std::uint8_t {
  kNote,     // informational; does not fail the lint
  kWarning,  // suspicious; fails the lint
  kError,    // definite violation; fails the lint
};

const char* severity_name(Severity s);

/// Parses "note" / "warning" / "error" (the CLI's --severity grammar).
/// Returns false on anything else.
bool severity_from_name(const std::string& name, Severity& out);

/// Stable machine-readable finding codes (the CLI's contract).
enum class FindingCode : std::uint8_t {
  kColdExtrusion,
  kColdExtrusionRisk,
  kThermalOvertemp,
  kAxisLimit,
  kFeedrateLimit,
  kTempOverride,
  kInplaceExtrusion,
  kUnknownCommand,
  kRehomeUncertainty,
  kCountersNotArmed,
  kUnreachableCommands,
  // Flow-sensitive checks new with the pass framework:
  kPostAbortMotion,       // motion/heater command after an M112 abort
  kFeedrateOverrideTaint, // mid-print M220 taints later feedrates
  kFlowOverrideTaint,     // mid-print M221 taints later extrusion
  kTempOverrideTaint,     // mid-print unwaited M104 taints later extrusion
  // Baseline-comparison findings:
  kMoveCountMismatch,
  kSegmentMismatch,
  kStepCountMismatch,
  kExtrusionTotalMismatch,
  kRatioMismatch,
};

const char* finding_code_name(FindingCode c);

/// One diagnostic.
struct Finding {
  FindingCode code = FindingCode::kUnknownCommand;
  Severity severity = Severity::kWarning;
  /// Index of the offending command in the analyzed program (or the
  /// first diverging segment's command index for baseline findings).
  std::size_t command_index = 0;
  double value = 0.0;  // measured quantity (mm, mm/s, deg C, steps...)
  double bound = 0.0;  // the bound it broke, when meaningful
  std::string message;
  /// Id of the pass that emitted the finding (see pass.hpp).  Filled by
  /// the pass manager; stable ids are part of the --json schema.
  std::string pass;
};

}  // namespace offramps::analyze
