#include "analyze/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analyze/pass.hpp"

namespace offramps::analyze {
namespace {

void json_escape(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

const char* segment_kind_name(SegmentKind k) {
  switch (k) {
    case SegmentKind::kTravel: return "travel";
    case SegmentKind::kExtrusion: return "extrusion";
    case SegmentKind::kRetraction: return "retraction";
    case SegmentKind::kEOnly: return "e-only";
  }
  return "unknown";
}

bool AnalysisResult::clean() const {
  return std::none_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.severity != Severity::kNote;
  });
}

std::size_t AnalysisResult::count(FindingCode c) const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [c](const Finding& f) { return f.code == c; }));
}

std::string AnalysisResult::to_string(std::size_t max_findings) const {
  std::string out;
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "oracle: steps X %lld Y %lld Z %lld E %lld (%s), %.2f mm extruded, "
      "%.2f mm retracted, %llu moves (%llu extruding)\n",
      static_cast<long long>(oracle.expected_counts[0]),
      static_cast<long long>(oracle.expected_counts[1]),
      static_cast<long long>(oracle.expected_counts[2]),
      static_cast<long long>(oracle.expected_counts[3]),
      oracle.counters_armed ? "armed" : "never armed", oracle.extruded_mm,
      oracle.retracted_mm,
      static_cast<unsigned long long>(oracle.move_count),
      static_cast<unsigned long long>(oracle.extrusion_move_count));
  out += buf;
  std::size_t shown = 0;
  for (const auto& f : findings) {
    if (shown++ >= max_findings) {
      std::snprintf(buf, sizeof(buf), "  ... %zu more finding(s)\n",
                    findings.size() - max_findings);
      out += buf;
      break;
    }
    std::snprintf(buf, sizeof(buf), "  [%s] %s at command %zu: %s\n",
                  severity_name(f.severity), finding_code_name(f.code),
                  f.command_index, f.message.c_str());
    out += buf;
  }
  if (findings.empty()) out += "  no findings\n";
  return out;
}

std::string AnalysisResult::to_json() const {
  std::string out = "{\n  \"clean\": ";
  out += clean() ? "true" : "false";
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      ",\n  \"oracle\": {\n    \"counters_armed\": %s,\n"
      "    \"expected_counts\": [%lld, %lld, %lld, %lld],\n"
      "    \"total_pulses\": [%llu, %llu, %llu, %llu],\n"
      "    \"extruded_mm\": %.6f,\n    \"retracted_mm\": %.6f,\n"
      "    \"extrusion_path_mm\": %.6f,\n    \"moves\": %llu,\n"
      "    \"extrusion_moves\": %llu,\n"
      "    \"max_stationary_e_mm\": %.6f\n  }",
      oracle.counters_armed ? "true" : "false",
      static_cast<long long>(oracle.expected_counts[0]),
      static_cast<long long>(oracle.expected_counts[1]),
      static_cast<long long>(oracle.expected_counts[2]),
      static_cast<long long>(oracle.expected_counts[3]),
      static_cast<unsigned long long>(oracle.total_pulses[0]),
      static_cast<unsigned long long>(oracle.total_pulses[1]),
      static_cast<unsigned long long>(oracle.total_pulses[2]),
      static_cast<unsigned long long>(oracle.total_pulses[3]),
      oracle.extruded_mm, oracle.retracted_mm, oracle.extrusion_path_mm,
      static_cast<unsigned long long>(oracle.move_count),
      static_cast<unsigned long long>(oracle.extrusion_move_count),
      oracle.max_stationary_e_mm);
  out += buf;
  out += ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    std::snprintf(buf, sizeof(buf),
                  "    {\"code\": \"%s\", \"pass\": \"%s\", "
                  "\"severity\": \"%s\", "
                  "\"command\": %zu, \"value\": %.6f, \"bound\": %.6f, "
                  "\"message\": \"",
                  finding_code_name(f.code), f.pass.c_str(),
                  severity_name(f.severity), f.command_index, f.value,
                  f.bound);
    out += buf;
    json_escape(out, f.message);
    out += "\"}";
  }
  out += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

AnalysisResult analyze_program(const gcode::Program& program,
                               const fw::Config& config,
                               const AnalyzeOptions& options) {
  AnalysisResult result;
  PassManager manager(config, options);
  manager.run(program, result);
  return result;
}

std::size_t compare_with_baseline(const AnalysisResult& baseline,
                                  AnalysisResult& suspect,
                                  const AnalyzeOptions& options) {
  // The comparison phase never touches machine geometry, but the manager
  // API threads a config through uniformly; the default-constructed one
  // is fine (and building it once avoids re-parsing defaults per call).
  static const fw::Config kConfig{};
  PassManager manager(kConfig, options);
  return manager.compare(baseline, suspect);
}

}  // namespace offramps::analyze
