#include "analyze/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace offramps::analyze {
namespace {

constexpr double kTinyPath = 1e-9;

/// The abstract machine: fw::kinematics state plus the thermal-setpoint
/// and counter-arming model the static analysis needs on top.
class Machine {
 public:
  Machine(const fw::Config& config, const AnalyzeOptions& options,
          AnalysisResult& out)
      : config_(config), options_(options), out_(out) {}

  void run(const gcode::Program& program) {
    for (std::size_t i = 0; i < program.size(); ++i) {
      if (halted_) {
        note(FindingCode::kUnreachableCommands, i,
             static_cast<double>(program.size() - i), 0.0,
             "commands after M112 emergency stop never execute");
        break;
      }
      execute(program[i], i);
    }
    finish();
  }

 private:
  void finding(FindingCode code, Severity sev, std::size_t index,
               double value, double bound, std::string message) {
    out_.findings.push_back(
        {code, sev, index, value, bound, std::move(message)});
  }
  void note(FindingCode code, std::size_t index, double value, double bound,
            std::string message) {
    finding(code, Severity::kNote, index, value, bound, std::move(message));
  }

  void execute(const gcode::Command& cmd, std::size_t index) {
    if (cmd.letter == 'G') {
      switch (cmd.code) {
        case 0:
        case 1:
          handle_move(cmd, index);
          return;
        case 2:
        case 3:
          handle_arc(cmd, index, /*clockwise=*/cmd.code == 2);
          return;
        case 4:
        case 21:
          return;
        case 28:
          handle_home(cmd, index);
          return;
        case 90:
        case 91:
          fw::apply_modal(state_, cmd);
          return;
        case 92:
          fw::apply_set_position(config_, state_, cmd);
          return;
        default:
          unknown(cmd, index);
          return;
      }
    }
    if (cmd.letter == 'M') {
      switch (cmd.code) {
        case 17:
        case 84:
        case 105:
        case 106:
        case 107:
        case 114:
          return;
        case 82:
        case 83:
        case 220:
        case 221:
          fw::apply_modal(state_, cmd);
          return;
        case 104:
          set_hotend(cmd.value_or('S', 0.0), index, /*waited=*/false);
          return;
        case 109:
          set_hotend(cmd.has('R') ? cmd.value_or('R', 0.0)
                                  : cmd.value_or('S', 0.0),
                     index, /*waited=*/true);
          return;
        case 112:
          halted_ = true;
          return;
        case 140:
          set_bed(cmd.value_or('S', 0.0), index);
          return;
        case 190:
          set_bed(cmd.has('R') ? cmd.value_or('R', 0.0)
                               : cmd.value_or('S', 0.0),
                  index);
          return;
        default:
          unknown(cmd, index);
          return;
      }
    }
    unknown(cmd, index);
  }

  void unknown(const gcode::Command& cmd, std::size_t index) {
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  "command %c%d is not understood by the firmware",
                  cmd.letter, cmd.code);
    finding(FindingCode::kUnknownCommand, Severity::kWarning, index,
            static_cast<double>(cmd.code), 0.0, buf);
  }

  void set_hotend(double target, std::size_t index, bool waited) {
    if (target > config_.hotend.max_temp_c) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "hotend setpoint %.0f C exceeds the %.0f C kill limit",
                    target, config_.hotend.max_temp_c);
      finding(FindingCode::kThermalOvertemp, Severity::kError, index,
              target, config_.hotend.max_temp_c, buf);
    }
    // A live, never-used nonzero setpoint replaced by a different nonzero
    // value is the M104-override Trojan signature.
    if (hotend_set_ > 0.0 && target > 0.0 && !hotend_used_ &&
        std::abs(target - hotend_set_) > 1e-9) {
      char buf[112];
      std::snprintf(buf, sizeof(buf),
                    "hotend setpoint %.0f C overridden to %.0f C before "
                    "any extrusion used it",
                    hotend_set_, target);
      finding(FindingCode::kTempOverride, Severity::kWarning, index, target,
              hotend_set_, buf);
    }
    if (std::abs(target - hotend_set_) > 1e-9) {
      hotend_used_ = false;
      hotend_waited_ = waited;
      cold_risk_reported_ = false;
    } else {
      hotend_waited_ = hotend_waited_ || waited;
    }
    hotend_set_ = target;
  }

  void set_bed(double target, std::size_t index) {
    if (target > config_.bed.max_temp_c) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "bed setpoint %.0f C exceeds the %.0f C kill limit",
                    target, config_.bed.max_temp_c);
      finding(FindingCode::kThermalOvertemp, Severity::kError, index,
              target, config_.bed.max_temp_c, buf);
    }
  }

  void handle_home(const gcode::Command& cmd, std::size_t index) {
    const bool all = !cmd.has('X') && !cmd.has('Y') && !cmd.has('Z');
    const bool was_armed = armed_;
    for (std::size_t i = 0; i < 3; ++i) {
      if (!all && !cmd.has("XYZ"[i])) continue;
      if (was_armed) {
        // A re-home after the counters armed: the tracker accumulates the
        // net travel back to the datum (plus trigger-edge noise the
        // static model cannot see).
        counts_[i] -= state_.position_steps[i];
        pulses_[i] += static_cast<std::uint64_t>(
            std::llabs(state_.position_steps[i]));
      }
      state_.homed[i] = true;
      state_.position_steps[i] = 0;
      state_.origin_steps[i] = 0;
    }
    if (was_armed) {
      note(FindingCode::kRehomeUncertainty, index, 0.0, 0.0,
           "program re-homes after the counters armed; expected counts "
           "carry a few steps of trigger uncertainty");
    } else if (state_.homed[0] && state_.homed[1] && state_.homed[2]) {
      armed_ = true;
      out_.oracle.counters_armed = true;
      out_.oracle.armed_at_command = index;
    }
  }

  void handle_arc(const gcode::Command& cmd, std::size_t index,
                  bool clockwise) {
    const fw::ArcExpansion arc =
        fw::expand_arc(config_, state_, cmd, clockwise);
    if (arc.degenerate) {
      unknown(cmd, index);
      return;
    }
    for (const auto& chord : arc.chords) handle_move(chord, index);
  }

  void handle_move(const gcode::Command& cmd, std::size_t index) {
    const bool hot = hotend_set_ >= config_.min_extrude_temp_c;
    const fw::ResolvedMove mv =
        fw::resolve_move(config_, state_, cmd, hot);

    if (mv.cold_extrusion_blocked) {
      finding(FindingCode::kColdExtrusion, Severity::kError, index,
              hotend_set_, config_.min_extrude_temp_c,
              "filament advance while the hotend setpoint is below the "
              "cold-extrusion threshold (heaters off?)");
    } else if (mv.e_advance_mm > 0.0 && !hotend_waited_ &&
               !cold_risk_reported_) {
      cold_risk_reported_ = true;
      note(FindingCode::kColdExtrusionRisk, index, hotend_set_,
           config_.min_extrude_temp_c,
           "extrusion before any M109/M190 wait; the first moves may be "
           "cold-blocked at runtime");
    }
    if (mv.e_advance_mm > 0.0) hotend_used_ = true;

    for (std::size_t i = 0; i < 3; ++i) {
      if (!mv.clamped[i]) continue;
      char buf[112];
      std::snprintf(buf, sizeof(buf),
                    "%c target outside [0, %.0f] mm; runtime clamps it and "
                    "prints different geometry",
                    "XYZ"[i], config_.axis_length_mm[i]);
      finding(FindingCode::kAxisLimit, Severity::kError, index,
              mv.target_mm[i], config_.axis_length_mm[i], buf);
    }

    check_feedrate(mv, index);
    track_blobs(mv, index);
    record_segment(mv, index);
    fw::commit_move(config_, state_, cmd, mv, /*executed=*/true);
  }

  void check_feedrate(const fw::ResolvedMove& mv, std::size_t index) {
    std::array<double, 4> delta_mm{};
    for (std::size_t i = 0; i < 4; ++i) {
      delta_mm[i] = static_cast<double>(mv.delta_steps[i]) /
                    config_.steps_per_mm[i];
    }
    const double ref_mm =
        mv.path_mm > kTinyPath ? mv.path_mm : std::abs(delta_mm[3]);
    if (ref_mm <= kTinyPath) return;
    for (std::size_t i = 0; i < 4; ++i) {
      const double axis_speed =
          mv.feed_mm_s * std::abs(delta_mm[i]) / ref_mm;
      if (axis_speed <= config_.max_feedrate_mm_s[i] * (1.0 + 1e-9)) {
        continue;
      }
      char buf[128];
      std::snprintf(
          buf, sizeof(buf),
          "%c would run at %.1f mm/s (%.0f steps/s), above its %.1f mm/s "
          "maximum; runtime scales the whole move down",
          "XYZE"[i], axis_speed, axis_speed * config_.steps_per_mm[i],
          config_.max_feedrate_mm_s[i]);
      finding(FindingCode::kFeedrateLimit, Severity::kWarning, index,
              axis_speed, config_.max_feedrate_mm_s[i], buf);
      return;  // one finding per move: the worst offender is enough
    }
  }

  void track_blobs(const fw::ResolvedMove& mv, std::size_t index) {
    const double de = mv.e_advance_mm;
    const bool stationary = mv.path_mm <= kTinyPath;
    if (de < 0.0) {
      retract_debt_ += -de;
      return;
    }
    if (de <= 0.0) return;
    if (!stationary) {
      printing_started_ = true;
      return;
    }
    // Stationary positive advance: legitimate only as un-retract (or the
    // pre-print prime); anything beyond the debt is a blob dump.
    if (printing_started_) {
      const double excess = de - retract_debt_;
      if (excess > options_.blob_excess_mm) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "in-place extrusion of %.2f mm filament, %.2f mm "
                      "beyond the retraction debt (relocation blob dump?)",
                      de, excess);
        finding(FindingCode::kInplaceExtrusion, Severity::kError, index, de,
                retract_debt_, buf);
      } else {
        out_.oracle.max_stationary_e_mm =
            std::max(out_.oracle.max_stationary_e_mm, de);
      }
    } else {
      out_.oracle.max_stationary_e_mm =
          std::max(out_.oracle.max_stationary_e_mm, de);
    }
    retract_debt_ = std::max(0.0, retract_debt_ - de);
  }

  void record_segment(const fw::ResolvedMove& mv, std::size_t index) {
    SegmentRecord seg;
    seg.command_index = index;
    seg.delta_steps = mv.delta_steps;
    seg.path_mm = mv.path_mm;
    seg.e_mm = mv.e_advance_mm;
    seg.feed_mm_s = mv.feed_mm_s;
    seg.counted = armed_;
    if (mv.e_advance_mm > 0.0) {
      seg.kind = mv.path_mm > kTinyPath ? SegmentKind::kExtrusion
                                        : SegmentKind::kEOnly;
    } else if (mv.e_advance_mm < 0.0) {
      seg.kind = SegmentKind::kRetraction;
    } else {
      seg.kind = SegmentKind::kTravel;
    }

    auto& o = out_.oracle;
    ++o.move_count;
    if (seg.kind == SegmentKind::kExtrusion) {
      ++o.extrusion_move_count;
      o.extrusion_path_mm += mv.path_mm;
    }
    if (mv.e_advance_mm > 0.0) o.extruded_mm += mv.e_advance_mm;
    if (mv.e_advance_mm < 0.0) o.retracted_mm += -mv.e_advance_mm;
    if (armed_) {
      for (std::size_t i = 0; i < 4; ++i) {
        counts_[i] += mv.delta_steps[i];
        pulses_[i] +=
            static_cast<std::uint64_t>(std::llabs(mv.delta_steps[i]));
      }
    }
    o.segments.push_back(seg);
  }

  void finish() {
    auto& o = out_.oracle;
    o.expected_counts = counts_;
    o.total_pulses = pulses_;
    o.final_state = state_;
    if (!o.counters_armed) {
      note(FindingCode::kCountersNotArmed, 0, 0.0, 0.0,
           "program never homes all three axes; the OFFRAMPS step "
           "counters would not arm");
    }
  }

  const fw::Config& config_;
  const AnalyzeOptions& options_;
  AnalysisResult& out_;

  fw::MotionState state_{};
  std::array<std::int64_t, 4> counts_{};
  std::array<std::uint64_t, 4> pulses_{};
  bool armed_ = false;
  bool halted_ = false;

  double hotend_set_ = 0.0;
  bool hotend_waited_ = false;
  bool hotend_used_ = false;
  bool cold_risk_reported_ = false;

  double retract_debt_ = 0.0;
  bool printing_started_ = false;
};

void json_escape(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

const char* segment_kind_name(SegmentKind k) {
  switch (k) {
    case SegmentKind::kTravel: return "travel";
    case SegmentKind::kExtrusion: return "extrusion";
    case SegmentKind::kRetraction: return "retraction";
    case SegmentKind::kEOnly: return "e-only";
  }
  return "unknown";
}

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

const char* finding_code_name(FindingCode c) {
  switch (c) {
    case FindingCode::kColdExtrusion: return "cold-extrusion";
    case FindingCode::kColdExtrusionRisk: return "cold-extrusion-risk";
    case FindingCode::kThermalOvertemp: return "thermal-overtemp";
    case FindingCode::kAxisLimit: return "axis-limit";
    case FindingCode::kFeedrateLimit: return "feedrate-limit";
    case FindingCode::kTempOverride: return "temp-override";
    case FindingCode::kInplaceExtrusion: return "inplace-extrusion";
    case FindingCode::kUnknownCommand: return "unknown-command";
    case FindingCode::kRehomeUncertainty: return "rehome-uncertainty";
    case FindingCode::kCountersNotArmed: return "counters-not-armed";
    case FindingCode::kUnreachableCommands: return "unreachable-commands";
    case FindingCode::kMoveCountMismatch: return "move-count-mismatch";
    case FindingCode::kSegmentMismatch: return "segment-mismatch";
    case FindingCode::kStepCountMismatch: return "step-count-mismatch";
    case FindingCode::kExtrusionTotalMismatch:
      return "extrusion-total-mismatch";
    case FindingCode::kRatioMismatch: return "ratio-mismatch";
  }
  return "unknown";
}

bool AnalysisResult::clean() const {
  return std::none_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.severity != Severity::kNote;
  });
}

std::size_t AnalysisResult::count(FindingCode c) const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [c](const Finding& f) { return f.code == c; }));
}

std::string AnalysisResult::to_string(std::size_t max_findings) const {
  std::string out;
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "oracle: steps X %lld Y %lld Z %lld E %lld (%s), %.2f mm extruded, "
      "%.2f mm retracted, %llu moves (%llu extruding)\n",
      static_cast<long long>(oracle.expected_counts[0]),
      static_cast<long long>(oracle.expected_counts[1]),
      static_cast<long long>(oracle.expected_counts[2]),
      static_cast<long long>(oracle.expected_counts[3]),
      oracle.counters_armed ? "armed" : "never armed", oracle.extruded_mm,
      oracle.retracted_mm,
      static_cast<unsigned long long>(oracle.move_count),
      static_cast<unsigned long long>(oracle.extrusion_move_count));
  out += buf;
  std::size_t shown = 0;
  for (const auto& f : findings) {
    if (shown++ >= max_findings) {
      std::snprintf(buf, sizeof(buf), "  ... %zu more finding(s)\n",
                    findings.size() - max_findings);
      out += buf;
      break;
    }
    std::snprintf(buf, sizeof(buf), "  [%s] %s at command %zu: %s\n",
                  severity_name(f.severity), finding_code_name(f.code),
                  f.command_index, f.message.c_str());
    out += buf;
  }
  if (findings.empty()) out += "  no findings\n";
  return out;
}

std::string AnalysisResult::to_json() const {
  std::string out = "{\n  \"clean\": ";
  out += clean() ? "true" : "false";
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      ",\n  \"oracle\": {\n    \"counters_armed\": %s,\n"
      "    \"expected_counts\": [%lld, %lld, %lld, %lld],\n"
      "    \"total_pulses\": [%llu, %llu, %llu, %llu],\n"
      "    \"extruded_mm\": %.6f,\n    \"retracted_mm\": %.6f,\n"
      "    \"extrusion_path_mm\": %.6f,\n    \"moves\": %llu,\n"
      "    \"extrusion_moves\": %llu,\n"
      "    \"max_stationary_e_mm\": %.6f\n  }",
      oracle.counters_armed ? "true" : "false",
      static_cast<long long>(oracle.expected_counts[0]),
      static_cast<long long>(oracle.expected_counts[1]),
      static_cast<long long>(oracle.expected_counts[2]),
      static_cast<long long>(oracle.expected_counts[3]),
      static_cast<unsigned long long>(oracle.total_pulses[0]),
      static_cast<unsigned long long>(oracle.total_pulses[1]),
      static_cast<unsigned long long>(oracle.total_pulses[2]),
      static_cast<unsigned long long>(oracle.total_pulses[3]),
      oracle.extruded_mm, oracle.retracted_mm, oracle.extrusion_path_mm,
      static_cast<unsigned long long>(oracle.move_count),
      static_cast<unsigned long long>(oracle.extrusion_move_count),
      oracle.max_stationary_e_mm);
  out += buf;
  out += ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    std::snprintf(buf, sizeof(buf),
                  "    {\"code\": \"%s\", \"severity\": \"%s\", "
                  "\"command\": %zu, \"value\": %.6f, \"bound\": %.6f, "
                  "\"message\": \"",
                  finding_code_name(f.code), severity_name(f.severity),
                  f.command_index, f.value, f.bound);
    out += buf;
    json_escape(out, f.message);
    out += "\"}";
  }
  out += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

AnalysisResult analyze_program(const gcode::Program& program,
                               const fw::Config& config,
                               const AnalyzeOptions& options) {
  AnalysisResult result;
  Machine machine(config, options, result);
  machine.run(program);
  return result;
}

std::size_t compare_with_baseline(const AnalysisResult& baseline,
                                  AnalysisResult& suspect,
                                  const AnalyzeOptions& options) {
  const Oracle& b = baseline.oracle;
  const Oracle& s = suspect.oracle;
  const std::size_t before = suspect.findings.size();
  char buf[192];

  if (b.segments.size() != s.segments.size()) {
    std::snprintf(buf, sizeof(buf),
                  "program resolves to %zu motion segments, baseline has "
                  "%zu (commands inserted or removed)",
                  s.segments.size(), b.segments.size());
    suspect.findings.push_back({FindingCode::kMoveCountMismatch,
                                Severity::kError, 0,
                                static_cast<double>(s.segments.size()),
                                static_cast<double>(b.segments.size()),
                                buf});
  }

  const std::size_t n = std::min(b.segments.size(), s.segments.size());
  std::size_t step_diverged = 0;
  std::size_t ratio_diverged = 0;
  std::size_t reported = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const SegmentRecord& sb = b.segments[i];
    const SegmentRecord& ss = s.segments[i];
    const bool steps_differ = sb.delta_steps != ss.delta_steps;
    const bool ratio_differs =
        std::abs(sb.e_mm - ss.e_mm) > options.ratio_tol;
    if (steps_differ) ++step_diverged;
    if (ratio_differs && !steps_differ) ++ratio_diverged;
    if ((steps_differ || ratio_differs) &&
        reported < options.max_segment_findings) {
      ++reported;
      std::snprintf(
          buf, sizeof(buf),
          "segment %zu diverges from baseline: steps X%+lld Y%+lld "
          "Z%+lld E%+lld vs X%+lld Y%+lld Z%+lld E%+lld",
          i, static_cast<long long>(ss.delta_steps[0]),
          static_cast<long long>(ss.delta_steps[1]),
          static_cast<long long>(ss.delta_steps[2]),
          static_cast<long long>(ss.delta_steps[3]),
          static_cast<long long>(sb.delta_steps[0]),
          static_cast<long long>(sb.delta_steps[1]),
          static_cast<long long>(sb.delta_steps[2]),
          static_cast<long long>(sb.delta_steps[3]));
      suspect.findings.push_back(
          {steps_differ ? FindingCode::kSegmentMismatch
                        : FindingCode::kRatioMismatch,
           Severity::kError, ss.command_index,
           static_cast<double>(ss.delta_steps[3]),
           static_cast<double>(sb.delta_steps[3]), buf});
    }
  }
  if (step_diverged + ratio_diverged > reported) {
    std::snprintf(buf, sizeof(buf),
                  "%zu of %zu compared segments diverge from baseline",
                  step_diverged + ratio_diverged, n);
    suspect.findings.push_back({FindingCode::kSegmentMismatch,
                                Severity::kError, 0,
                                static_cast<double>(step_diverged +
                                                    ratio_diverged),
                                static_cast<double>(n), buf});
  }

  for (std::size_t axis = 0; axis < 4; ++axis) {
    if (b.expected_counts[axis] == s.expected_counts[axis]) continue;
    std::snprintf(buf, sizeof(buf),
                  "expected %c steps %lld differ from baseline %lld",
                  "XYZE"[axis],
                  static_cast<long long>(s.expected_counts[axis]),
                  static_cast<long long>(b.expected_counts[axis]));
    suspect.findings.push_back(
        {FindingCode::kStepCountMismatch, Severity::kError, 0,
         static_cast<double>(s.expected_counts[axis]),
         static_cast<double>(b.expected_counts[axis]), buf});
  }

  const double denom = std::max(std::abs(b.extruded_mm), 1e-12);
  if (std::abs(b.extruded_mm - s.extruded_mm) / denom >
      options.extrusion_total_rel_tol) {
    std::snprintf(buf, sizeof(buf),
                  "total extrusion %.3f mm differs from baseline %.3f mm "
                  "(%+.2f%%)",
                  s.extruded_mm, b.extruded_mm,
                  (s.extruded_mm - b.extruded_mm) / denom * 100.0);
    suspect.findings.push_back({FindingCode::kExtrusionTotalMismatch,
                                Severity::kError, 0, s.extruded_mm,
                                b.extruded_mm, buf});
  }
  return suspect.findings.size() - before;
}

}  // namespace offramps::analyze
