// Static g-code analyzer ("offramps_lint"): an offline detection modality
// for the attack surface FLAW3D exploits (the g-code -> motion
// translation), complementing the paper's runtime step-count comparison.
//
// The analysis is organized as a *pass manager* (see pass.hpp): one walk
// over the parsed program computes the static `Oracle` (expected step
// counts and extrusion profile; see oracle.hpp) while the registered
// passes emit `Finding`s.  The builtin passes and the finding codes they
// own:
//
//   thermal            - cold-extrusion, cold-extrusion-risk,
//                        thermal-overtemp, temp-override
//   kinematics-limits  - axis-limit, feedrate-limit
//   extrusion          - inplace-extrusion (relocation blob dumps,
//                        tracked against the retraction debt)
//   structure          - unknown-command
//   reachability       - unreachable-commands, post-abort-motion
//                        (flow-sensitive: commands after an M112 abort,
//                        and effectual motion/heater commands hiding in
//                        the dead tail)
//   taint              - feedrate-override-taint, flow-override-taint,
//                        temp-override-taint (flow-sensitive: mid-print
//                        M220/M221/M104 overrides that re-scale later
//                        motion or extrusion without touching any G1
//                        word - the modal way to smuggle a FLAW3D-style
//                        reduction past a textual diff)
//   oracle             - rehome-uncertainty, counters-not-armed, plus
//                        the Oracle itself (segments, counts, totals)
//   baseline-compare   - move-count/segment/step-count/extrusion-total/
//                        ratio mismatches against a known-good program
//
// With a *baseline* (the known-good program), `compare_with_baseline`
// flags any divergence of the two oracles.  Static-vs-static comparison
// is exact, so even the paper's stealthiest 2% reduction Trojan is a
// guaranteed catch.
//
// Pass selection (`AnalyzeOptions::passes`) and per-pass severity
// overrides (`AnalyzeOptions::pass_severity`) are honored by both entry
// points; the CLI exposes them as --passes / --severity.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analyze/finding.hpp"
#include "analyze/oracle.hpp"
#include "gcode/command.hpp"

namespace offramps::analyze {

/// Analyzer tuning.
struct AnalyzeOptions {
  /// Stationary positive E advance beyond the retraction debt larger
  /// than this is an in-place blob dump (mm of filament).
  double blob_excess_mm = 0.05;
  /// Relative tolerance for baseline extrusion-total comparison.
  double extrusion_total_rel_tol = 1e-9;
  /// Tolerance for baseline per-segment ratio comparison (filament mm
  /// per path mm).
  double ratio_tol = 1e-9;
  /// Cap on reported baseline segment mismatches (the first divergence
  /// is what matters; the rest is bulk).
  std::size_t max_segment_findings = 4;

  /// Pass ids to enable; empty = every registered pass.  Unknown ids
  /// throw offramps::Error from the entry points.
  std::vector<std::string> passes;
  /// Per-pass severity overrides: every finding of the named pass is
  /// forced to the given severity (e.g. demote "thermal" to kNote).
  std::vector<std::pair<std::string, Severity>> pass_severity;
};

/// Full analysis result.
struct AnalysisResult {
  Oracle oracle;
  std::vector<Finding> findings;

  /// True when no finding of Severity >= kWarning is present (the CLI's
  /// exit-0 condition).
  [[nodiscard]] bool clean() const;
  [[nodiscard]] std::size_t count(FindingCode c) const;
  [[nodiscard]] bool has(FindingCode c) const { return count(c) > 0; }

  /// Human-readable rendering (one line per finding + oracle summary).
  [[nodiscard]] std::string to_string(std::size_t max_findings = 16) const;
  /// Machine-readable rendering (stable JSON object; each finding
  /// carries its code, pass id and severity).
  [[nodiscard]] std::string to_json() const;
};

/// Statically analyzes `program` for the given machine configuration.
AnalysisResult analyze_program(const gcode::Program& program,
                               const fw::Config& config = {},
                               const AnalyzeOptions& options = {});

/// Compares a suspect program's oracle against a known-good baseline's,
/// appending divergence findings to `suspect.findings`.  Returns the
/// number of findings appended.  Static-vs-static comparison is exact:
/// zero appended findings means the two programs command identical
/// motion.  Honors the same pass selection/severity options (the check
/// is the "baseline-compare" pass).
std::size_t compare_with_baseline(const AnalysisResult& baseline,
                                  AnalysisResult& suspect,
                                  const AnalyzeOptions& options = {});

}  // namespace offramps::analyze
