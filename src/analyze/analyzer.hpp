// Static g-code analyzer ("offramps_lint"): an offline detection modality
// for the attack surface FLAW3D exploits (the g-code -> motion
// translation), complementing the paper's runtime step-count comparison.
//
// One pass over the parsed program computes the static `Oracle` (expected
// step counts and extrusion profile; see oracle.hpp) and a list of
// `Finding`s - the Trojan signatures and machine-envelope violations that
// can be decided without a reference:
//
//   * cold-extrusion       - filament advance while the hotend setpoint is
//                            below the cold-extrusion threshold (heaters
//                            off; the classic thermal-sabotage signature)
//   * cold-extrusion-risk  - extrusion after M104 but before any M109 wait
//   * thermal-overtemp     - setpoint above the heater's kill limit
//   * axis-limit           - move commanded outside the machine volume
//                            (runtime clamps it: printed geometry differs
//                            from the program text)
//   * feedrate-limit       - requested axis speed above the machine maxima
//                            (runtime scales the whole move down)
//   * temp-override        - a live hotend setpoint replaced by a different
//                            nonzero value before it was ever used
//   * inplace-extrusion    - stationary filament advance beyond the
//                            accumulated retraction debt (a relocation
//                            blob dump)
//   * unknown-command      - command the firmware would ignore
//   * rehome / not-armed   - notes about counter-alignment caveats
//
// With a *baseline* (the known-good program), `compare_with_baseline`
// additionally flags any divergence of the two oracles - segment step
// deltas, extrusion totals, per-segment extrusion ratios, command counts.
// Static-vs-static comparison is exact, so even the paper's stealthiest
// 2% reduction Trojan is a guaranteed catch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/oracle.hpp"
#include "gcode/command.hpp"

namespace offramps::analyze {

enum class Severity : std::uint8_t {
  kNote,     // informational; does not fail the lint
  kWarning,  // suspicious; fails the lint
  kError,    // definite violation; fails the lint
};

const char* severity_name(Severity s);

/// Stable machine-readable finding codes (the CLI's contract).
enum class FindingCode : std::uint8_t {
  kColdExtrusion,
  kColdExtrusionRisk,
  kThermalOvertemp,
  kAxisLimit,
  kFeedrateLimit,
  kTempOverride,
  kInplaceExtrusion,
  kUnknownCommand,
  kRehomeUncertainty,
  kCountersNotArmed,
  kUnreachableCommands,
  // Baseline-comparison findings:
  kMoveCountMismatch,
  kSegmentMismatch,
  kStepCountMismatch,
  kExtrusionTotalMismatch,
  kRatioMismatch,
};

const char* finding_code_name(FindingCode c);

/// One diagnostic.
struct Finding {
  FindingCode code = FindingCode::kUnknownCommand;
  Severity severity = Severity::kWarning;
  /// Index of the offending command in the analyzed program (or the
  /// first diverging segment's command index for baseline findings).
  std::size_t command_index = 0;
  double value = 0.0;  // measured quantity (mm, mm/s, deg C, steps...)
  double bound = 0.0;  // the bound it broke, when meaningful
  std::string message;
};

/// Analyzer tuning.
struct AnalyzeOptions {
  /// Stationary positive E advance beyond the retraction debt larger
  /// than this is an in-place blob dump (mm of filament).
  double blob_excess_mm = 0.05;
  /// Relative tolerance for baseline extrusion-total comparison.
  double extrusion_total_rel_tol = 1e-9;
  /// Tolerance for baseline per-segment ratio comparison (filament mm
  /// per path mm).
  double ratio_tol = 1e-9;
  /// Cap on reported baseline segment mismatches (the first divergence
  /// is what matters; the rest is bulk).
  std::size_t max_segment_findings = 4;
};

/// Full analysis result.
struct AnalysisResult {
  Oracle oracle;
  std::vector<Finding> findings;

  /// True when no finding of Severity >= kWarning is present (the CLI's
  /// exit-0 condition).
  [[nodiscard]] bool clean() const;
  [[nodiscard]] std::size_t count(FindingCode c) const;
  [[nodiscard]] bool has(FindingCode c) const { return count(c) > 0; }

  /// Human-readable rendering (one line per finding + oracle summary).
  [[nodiscard]] std::string to_string(std::size_t max_findings = 16) const;
  /// Machine-readable rendering (stable JSON object).
  [[nodiscard]] std::string to_json() const;
};

/// Statically analyzes `program` for the given machine configuration.
AnalysisResult analyze_program(const gcode::Program& program,
                               const fw::Config& config = {},
                               const AnalyzeOptions& options = {});

/// Compares a suspect program's oracle against a known-good baseline's,
/// appending divergence findings to `suspect.findings`.  Returns the
/// number of findings appended.  Static-vs-static comparison is exact:
/// zero appended findings means the two programs command identical
/// motion.
std::size_t compare_with_baseline(const AnalysisResult& baseline,
                                  AnalysisResult& suspect,
                                  const AnalyzeOptions& options = {});

}  // namespace offramps::analyze
