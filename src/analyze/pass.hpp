// Pass framework of the static g-code analyzer.
//
// `analyze_program` used to be one hard-coded walk; it is now a *pass
// manager*: the manager interprets the program exactly once - modal
// resolution, arc expansion, software-endstop clamping, thermal
// setpoints, counter arming, retraction debt - maintaining one shared
// flow-sensitive `ProgramState`, and a set of registered `Pass` objects
// observe the walk and emit `Finding`s.  Passes never mutate the
// interpreter state, so any subset of them can be enabled without
// changing what the others see; per-pass severity overrides let a
// deployment demote a whole pass to notes without forking the analyzer.
//
// Third-party checks register through `PassRegistry::global().add(...)`
// and ride the same walk; registration order is emission order within a
// command, which keeps reports deterministic (the fleet reference phase
// runs analyses on parallel workers and hashes the output).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "fw/kinematics.hpp"
#include "gcode/command.hpp"

namespace offramps::analyze {

/// Identity card of one pass (also the --list-passes output).
struct PassInfo {
  std::string id;           // stable kebab-case id ("thermal", ...)
  std::string description;  // one line, with the finding codes it owns
};

/// What the manager decided one command is, before applying it.
enum class CommandClass : std::uint8_t {
  kMove,         // G0/G1
  kArc,          // G2/G3 with a valid I/J geometry
  kHome,         // G28
  kSetPosition,  // G92
  kModal,        // G90/G91/M82/M83/M220/M221
  kThermal,      // M104/M109/M140/M190
  kHalt,         // M112
  kIgnored,      // G4/G21/M17/M84/M105/M106/M107/M114
  kUnknown,      // anything the firmware would ignore (incl. bad arcs)
};

/// The shared flow-sensitive interpreter state, updated only by the
/// manager.  Hooks always observe the state *before* the current command
/// is applied.
struct ProgramState {
  static constexpr std::size_t kNoCommand = static_cast<std::size_t>(-1);

  fw::MotionState motion{};

  // Thermal model.
  double hotend_set_c = 0.0;
  double bed_set_c = 0.0;
  bool hotend_waited = false;  // an M109/M190 wait covered the setpoint
  bool hotend_used = false;    // the live setpoint backed real extrusion

  // Step-counter arming (mirrors the FPGA AxisTracker activation).
  bool armed = false;
  std::size_t armed_at = 0;
  std::array<std::int64_t, 4> counts{};
  std::array<std::uint64_t, 4> pulses{};

  // Extrusion flow.
  double retract_debt_mm = 0.0;
  bool printing_started = false;  // first moving extrusion seen

  // Abort reachability.
  bool halted = false;
  std::size_t halted_at = 0;

  // Taint provenance: command index of the live mid-print override, or
  // kNoCommand when the factor is back at its trusted value.
  std::size_t feed_override_cmd = kNoCommand;   // M220 != 100%
  std::size_t flow_override_cmd = kNoCommand;   // M221 != 100%
  std::size_t temp_override_cmd = kNoCommand;   // unwaited M104 change
};

/// What a pass sees: read-only interpreter state plus the finding sink.
/// `emit` tags the finding with the running pass's id and applies the
/// per-pass severity override before appending it to the result.
class PassContext {
 public:
  PassContext(const fw::Config& config, const AnalyzeOptions& options,
              const ProgramState& state, AnalysisResult& result)
      : config_(config), options_(options), state_(state), result_(result) {}

  [[nodiscard]] const fw::Config& config() const { return config_; }
  [[nodiscard]] const AnalyzeOptions& options() const { return options_; }
  [[nodiscard]] const ProgramState& state() const { return state_; }
  [[nodiscard]] AnalysisResult& result() { return result_; }
  /// The program under analysis (nullptr during the compare phase).
  [[nodiscard]] const gcode::Program* program() const { return program_; }

  void emit(Finding finding);
  void emit(FindingCode code, Severity severity, std::size_t index,
            double value, double bound, std::string message);

 private:
  friend class PassManager;
  const fw::Config& config_;
  const AnalyzeOptions& options_;
  const ProgramState& state_;
  AnalysisResult& result_;
  const gcode::Program* program_ = nullptr;
  const std::string* current_pass_ = nullptr;
  const Severity* severity_override_ = nullptr;
};

/// One analysis pass.  Instances live for one analysis run, so member
/// variables are the place for pass-local flow state.
class Pass {
 public:
  virtual ~Pass() = default;
  Pass() = default;
  Pass(const Pass&) = delete;
  Pass& operator=(const Pass&) = delete;

  [[nodiscard]] virtual PassInfo info() const = 0;

  /// Called once before the walk.
  virtual void begin(PassContext& ctx) { (void)ctx; }
  /// Called for every live command, before it mutates the state.
  virtual void on_command(PassContext& ctx, const gcode::Command& cmd,
                          std::size_t index, CommandClass cls) {
    (void)ctx; (void)cmd; (void)index; (void)cls;
  }
  /// Called for every resolved motion segment (arc chords repeat with
  /// their G2/G3's command index), before the move is committed.
  virtual void on_move(PassContext& ctx, const gcode::Command& cmd,
                       const fw::ResolvedMove& move, std::size_t index) {
    (void)ctx; (void)cmd; (void)move; (void)index;
  }
  /// Called for every command after an M112 abort (never executed).
  virtual void on_dead(PassContext& ctx, const gcode::Command& cmd,
                       std::size_t index) {
    (void)ctx; (void)cmd; (void)index;
  }
  /// Called once after the walk.
  virtual void on_end(PassContext& ctx) { (void)ctx; }
  /// Called by the baseline-comparison phase (only the baseline-compare
  /// pass implements it).
  virtual void compare(PassContext& ctx, const AnalysisResult& baseline) {
    (void)ctx; (void)baseline;
  }
};

using PassFactory = std::function<std::unique_ptr<Pass>()>;

/// Process-wide pass registry.  Builtin passes self-register on first
/// access; third-party passes may `add` more at any time.  Thread-safe
/// (the fleet reference phase analyzes on parallel workers).
class PassRegistry {
 public:
  static PassRegistry& global();

  /// Registers a pass factory.  Returns false (and registers nothing)
  /// when the id is already taken.
  bool add(PassInfo info, PassFactory factory);

  /// Registered passes in registration order (= emission order).
  [[nodiscard]] std::vector<PassInfo> list() const;
  [[nodiscard]] bool has(const std::string& id) const;

  /// Instantiates one pass; nullptr for an unknown id.
  [[nodiscard]] std::unique_ptr<Pass> make(const std::string& id) const;

 private:
  PassRegistry() = default;
  struct Entry {
    PassInfo info;
    PassFactory factory;
  };
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

/// Drives one analysis: instantiates the enabled passes and walks the
/// program once, threading the shared ProgramState through every hook.
/// Throws offramps::Error on an unknown pass id in the options.
class PassManager {
 public:
  PassManager(const fw::Config& config, const AnalyzeOptions& options);
  ~PassManager();
  PassManager(const PassManager&) = delete;
  PassManager& operator=(const PassManager&) = delete;

  /// Full single-program analysis into `out`.
  void run(const gcode::Program& program, AnalysisResult& out);

  /// Baseline-comparison phase; appends to suspect.findings and returns
  /// the number appended.
  std::size_t compare(const AnalysisResult& baseline,
                      AnalysisResult& suspect);

  /// Ids of the passes this manager instantiated, in emission order.
  [[nodiscard]] std::vector<std::string> enabled_passes() const;

 private:
  struct ActivePass {
    std::unique_ptr<Pass> pass;
    std::string id;
    bool has_severity_override = false;
    Severity severity_override = Severity::kNote;
  };

  void dispatch_command(const gcode::Command& cmd, std::size_t index,
                        PassContext& ctx);
  void apply_thermal(const gcode::Command& cmd, std::size_t index);
  void apply_home(const gcode::Command& cmd);
  void apply_move(const gcode::Command& cmd, const fw::ResolvedMove& move);
  void apply_override_bookkeeping(const gcode::Command& cmd,
                                 std::size_t index);

  template <typename Hook>
  void for_each_pass(PassContext& ctx, Hook&& hook);

  const fw::Config& config_;
  const AnalyzeOptions& options_;
  ProgramState state_{};
  std::vector<ActivePass> passes_;
};

/// Target temperature of an M104/M109/M140/M190 command (the S/R-word
/// grammar the firmware uses); shared by the manager and the thermal
/// pass so both model the same setpoint.
double pass_thermal_target(const gcode::Command& cmd);

namespace detail {
/// Registers the builtin passes (passes.cpp); called once from
/// PassRegistry::global().
void register_builtin_passes(PassRegistry& registry);
}  // namespace detail

}  // namespace offramps::analyze
