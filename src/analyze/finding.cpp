#include "analyze/finding.hpp"

namespace offramps::analyze {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

bool severity_from_name(const std::string& name, Severity& out) {
  if (name == "note") {
    out = Severity::kNote;
  } else if (name == "warning") {
    out = Severity::kWarning;
  } else if (name == "error") {
    out = Severity::kError;
  } else {
    return false;
  }
  return true;
}

const char* finding_code_name(FindingCode c) {
  switch (c) {
    case FindingCode::kColdExtrusion: return "cold-extrusion";
    case FindingCode::kColdExtrusionRisk: return "cold-extrusion-risk";
    case FindingCode::kThermalOvertemp: return "thermal-overtemp";
    case FindingCode::kAxisLimit: return "axis-limit";
    case FindingCode::kFeedrateLimit: return "feedrate-limit";
    case FindingCode::kTempOverride: return "temp-override";
    case FindingCode::kInplaceExtrusion: return "inplace-extrusion";
    case FindingCode::kUnknownCommand: return "unknown-command";
    case FindingCode::kRehomeUncertainty: return "rehome-uncertainty";
    case FindingCode::kCountersNotArmed: return "counters-not-armed";
    case FindingCode::kUnreachableCommands: return "unreachable-commands";
    case FindingCode::kPostAbortMotion: return "post-abort-motion";
    case FindingCode::kFeedrateOverrideTaint:
      return "feedrate-override-taint";
    case FindingCode::kFlowOverrideTaint: return "flow-override-taint";
    case FindingCode::kTempOverrideTaint: return "temp-override-taint";
    case FindingCode::kMoveCountMismatch: return "move-count-mismatch";
    case FindingCode::kSegmentMismatch: return "segment-mismatch";
    case FindingCode::kStepCountMismatch: return "step-count-mismatch";
    case FindingCode::kExtrusionTotalMismatch:
      return "extrusion-total-mismatch";
    case FindingCode::kRatioMismatch: return "ratio-mismatch";
  }
  return "unknown";
}

}  // namespace offramps::analyze
