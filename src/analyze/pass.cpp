#include "analyze/pass.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "sim/error.hpp"

namespace offramps::analyze {

namespace {

constexpr double kTinyPath = 1e-9;

/// Target temperature of a thermal command, mirroring the firmware's
/// S/R-word handling (M109/M190 accept R as "wait even when cooling").
double thermal_target(const gcode::Command& cmd) {
  if (cmd.code == 109 || cmd.code == 190) {
    return cmd.has('R') ? cmd.value_or('R', 0.0) : cmd.value_or('S', 0.0);
  }
  return cmd.value_or('S', 0.0);
}

}  // namespace

double pass_thermal_target(const gcode::Command& cmd) {
  return thermal_target(cmd);
}

// --- PassContext -------------------------------------------------------------

void PassContext::emit(Finding finding) {
  if (current_pass_ != nullptr) finding.pass = *current_pass_;
  if (severity_override_ != nullptr) finding.severity = *severity_override_;
  result_.findings.push_back(std::move(finding));
}

void PassContext::emit(FindingCode code, Severity severity, std::size_t index,
                       double value, double bound, std::string message) {
  emit(Finding{code, severity, index, value, bound, std::move(message), {}});
}

// --- PassRegistry ------------------------------------------------------------

PassRegistry& PassRegistry::global() {
  // Leaked singleton: analyses run on parallel workers until process
  // exit; a destructed registry would race them.
  static PassRegistry* registry = [] {
    auto* r = new PassRegistry();
    detail::register_builtin_passes(*r);
    return r;
  }();
  return *registry;
}

bool PassRegistry::add(PassInfo info, PassFactory factory) {
  const std::scoped_lock lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.info.id == info.id) return false;
  }
  entries_.push_back(Entry{std::move(info), std::move(factory)});
  return true;
}

std::vector<PassInfo> PassRegistry::list() const {
  const std::scoped_lock lock(mutex_);
  std::vector<PassInfo> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.info);
  return out;
}

bool PassRegistry::has(const std::string& id) const {
  const std::scoped_lock lock(mutex_);
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.info.id == id; });
}

std::unique_ptr<Pass> PassRegistry::make(const std::string& id) const {
  PassFactory factory;
  {
    const std::scoped_lock lock(mutex_);
    for (const Entry& e : entries_) {
      if (e.info.id == id) {
        factory = e.factory;
        break;
      }
    }
  }
  return factory ? factory() : nullptr;
}

// --- PassManager -------------------------------------------------------------

PassManager::PassManager(const fw::Config& config,
                         const AnalyzeOptions& options)
    : config_(config), options_(options) {
  const PassRegistry& registry = PassRegistry::global();

  for (const auto& [id, severity] : options.pass_severity) {
    (void)severity;
    if (!registry.has(id)) {
      throw Error("analyze: unknown pass '" + id + "' in severity override");
    }
  }
  for (const std::string& id : options.passes) {
    if (!registry.has(id)) {
      throw Error("analyze: unknown pass '" + id + "'");
    }
  }

  // Instantiate in *registry* order regardless of the order the user
  // listed them: emission order is part of the deterministic-output
  // contract (fleet reports are hashed at any worker count).
  for (const PassInfo& info : registry.list()) {
    if (!options.passes.empty() &&
        std::find(options.passes.begin(), options.passes.end(), info.id) ==
            options.passes.end()) {
      continue;
    }
    ActivePass active;
    active.pass = registry.make(info.id);
    active.id = info.id;
    for (const auto& [id, severity] : options.pass_severity) {
      if (id == info.id) {
        active.has_severity_override = true;
        active.severity_override = severity;
      }
    }
    passes_.push_back(std::move(active));
  }
}

PassManager::~PassManager() = default;

std::vector<std::string> PassManager::enabled_passes() const {
  std::vector<std::string> out;
  out.reserve(passes_.size());
  for (const ActivePass& p : passes_) out.push_back(p.id);
  return out;
}

template <typename Hook>
void PassManager::for_each_pass(PassContext& ctx, Hook&& hook) {
  for (ActivePass& active : passes_) {
    ctx.current_pass_ = &active.id;
    ctx.severity_override_ =
        active.has_severity_override ? &active.severity_override : nullptr;
    hook(*active.pass);
  }
  ctx.current_pass_ = nullptr;
  ctx.severity_override_ = nullptr;
}

void PassManager::run(const gcode::Program& program, AnalysisResult& out) {
  state_ = ProgramState{};
  PassContext ctx(config_, options_, state_, out);
  ctx.program_ = &program;

  for_each_pass(ctx, [&](Pass& p) { p.begin(ctx); });
  for (std::size_t i = 0; i < program.size(); ++i) {
    const gcode::Command& cmd = program[i];
    if (state_.halted) {
      for_each_pass(ctx, [&](Pass& p) { p.on_dead(ctx, cmd, i); });
      continue;
    }
    dispatch_command(cmd, i, ctx);
  }
  for_each_pass(ctx, [&](Pass& p) { p.on_end(ctx); });
}

std::size_t PassManager::compare(const AnalysisResult& baseline,
                                 AnalysisResult& suspect) {
  state_ = ProgramState{};
  PassContext ctx(config_, options_, state_, suspect);
  const std::size_t before = suspect.findings.size();
  for_each_pass(ctx, [&](Pass& p) { p.compare(ctx, baseline); });
  return suspect.findings.size() - before;
}

void PassManager::dispatch_command(const gcode::Command& cmd,
                                   std::size_t index, PassContext& ctx) {
  CommandClass cls = CommandClass::kUnknown;
  fw::ArcExpansion arc;

  if (cmd.letter == 'G') {
    switch (cmd.code) {
      case 0:
      case 1: cls = CommandClass::kMove; break;
      case 2:
      case 3:
        arc = fw::expand_arc(config_, state_.motion, cmd,
                             /*clockwise=*/cmd.code == 2);
        cls = arc.degenerate ? CommandClass::kUnknown : CommandClass::kArc;
        break;
      case 4:
      case 21: cls = CommandClass::kIgnored; break;
      case 28: cls = CommandClass::kHome; break;
      case 90:
      case 91: cls = CommandClass::kModal; break;
      case 92: cls = CommandClass::kSetPosition; break;
      default: cls = CommandClass::kUnknown; break;
    }
  } else if (cmd.letter == 'M') {
    switch (cmd.code) {
      case 17:
      case 84:
      case 105:
      case 106:
      case 107:
      case 114: cls = CommandClass::kIgnored; break;
      case 82:
      case 83:
      case 220:
      case 221: cls = CommandClass::kModal; break;
      case 104:
      case 109:
      case 140:
      case 190: cls = CommandClass::kThermal; break;
      case 112: cls = CommandClass::kHalt; break;
      default: cls = CommandClass::kUnknown; break;
    }
  }

  for_each_pass(ctx, [&](Pass& p) { p.on_command(ctx, cmd, index, cls); });

  switch (cls) {
    case CommandClass::kMove: {
      const bool hot = state_.hotend_set_c >= config_.min_extrude_temp_c;
      const fw::ResolvedMove mv =
          fw::resolve_move(config_, state_.motion, cmd, hot);
      for_each_pass(ctx, [&](Pass& p) { p.on_move(ctx, cmd, mv, index); });
      apply_move(cmd, mv);
      break;
    }
    case CommandClass::kArc: {
      for (const gcode::Command& chord : arc.chords) {
        const bool hot = state_.hotend_set_c >= config_.min_extrude_temp_c;
        const fw::ResolvedMove mv =
            fw::resolve_move(config_, state_.motion, chord, hot);
        for_each_pass(ctx,
                      [&](Pass& p) { p.on_move(ctx, chord, mv, index); });
        apply_move(chord, mv);
      }
      break;
    }
    case CommandClass::kHome:
      apply_home(cmd);
      if (!state_.armed && state_.motion.homed[0] && state_.motion.homed[1] &&
          state_.motion.homed[2]) {
        state_.armed = true;
        state_.armed_at = index;
      }
      break;
    case CommandClass::kSetPosition:
      fw::apply_set_position(config_, state_.motion, cmd);
      break;
    case CommandClass::kModal:
      fw::apply_modal(state_.motion, cmd);
      apply_override_bookkeeping(cmd, index);
      break;
    case CommandClass::kThermal:
      apply_thermal(cmd, index);
      break;
    case CommandClass::kHalt:
      state_.halted = true;
      state_.halted_at = index;
      break;
    case CommandClass::kIgnored:
    case CommandClass::kUnknown:
      break;
  }
}

void PassManager::apply_thermal(const gcode::Command& cmd,
                                std::size_t index) {
  const double target = thermal_target(cmd);
  if (cmd.code == 140 || cmd.code == 190) {
    state_.bed_set_c = target;
    return;
  }
  const bool waited = cmd.code == 109;
  const bool changed = std::abs(target - state_.hotend_set_c) > 1e-9;
  if (changed) {
    state_.hotend_used = false;
    state_.hotend_waited = waited;
    if (state_.printing_started && !waited) {
      // Mid-print unwaited setpoint change: taint until a wait covers it.
      state_.temp_override_cmd = index;
    }
  } else {
    state_.hotend_waited = state_.hotend_waited || waited;
  }
  if (waited) state_.temp_override_cmd = ProgramState::kNoCommand;
  state_.hotend_set_c = target;
}

void PassManager::apply_override_bookkeeping(const gcode::Command& cmd,
                                             std::size_t index) {
  if (cmd.letter != 'M') return;
  if (cmd.code == 220) {
    state_.feed_override_cmd =
        (state_.printing_started &&
         std::abs(state_.motion.feedrate_pct - 100.0) > 1e-9)
            ? index
            : ProgramState::kNoCommand;
  } else if (cmd.code == 221) {
    state_.flow_override_cmd =
        (state_.printing_started &&
         std::abs(state_.motion.flow_pct - 100.0) > 1e-9)
            ? index
            : ProgramState::kNoCommand;
  }
}

void PassManager::apply_home(const gcode::Command& cmd) {
  const bool all = !cmd.has('X') && !cmd.has('Y') && !cmd.has('Z');
  const bool was_armed = state_.armed;
  for (std::size_t i = 0; i < 3; ++i) {
    if (!all && !cmd.has("XYZ"[i])) continue;
    if (was_armed) {
      // A re-home after the counters armed: the tracker accumulates the
      // net travel back to the datum (plus trigger-edge noise the
      // static model cannot see).
      state_.counts[i] -= state_.motion.position_steps[i];
      state_.pulses[i] += static_cast<std::uint64_t>(
          std::llabs(state_.motion.position_steps[i]));
    }
    state_.motion.homed[i] = true;
    state_.motion.position_steps[i] = 0;
    state_.motion.origin_steps[i] = 0;
  }
}

void PassManager::apply_move(const gcode::Command& cmd,
                             const fw::ResolvedMove& move) {
  if (move.e_advance_mm > 0.0) state_.hotend_used = true;

  const double de = move.e_advance_mm;
  const bool stationary = move.path_mm <= kTinyPath;
  if (de < 0.0) {
    state_.retract_debt_mm += -de;
  } else if (de > 0.0) {
    if (!stationary) {
      state_.printing_started = true;
    } else {
      state_.retract_debt_mm = std::max(0.0, state_.retract_debt_mm - de);
    }
  }

  if (state_.armed) {
    for (std::size_t i = 0; i < 4; ++i) {
      state_.counts[i] += move.delta_steps[i];
      state_.pulses[i] +=
          static_cast<std::uint64_t>(std::llabs(move.delta_steps[i]));
    }
  }
  fw::commit_move(config_, state_.motion, cmd, move, /*executed=*/true);
}

}  // namespace offramps::analyze
