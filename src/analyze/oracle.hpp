// Static oracle: what an unmodified machine *will* do with a g-code
// program, derived without running the event-loop simulation.
//
// The oracle folds the firmware's pure translation layer
// (`fw::kinematics`) over a parsed program, reproducing exactly the step
// quantization the real dispatch loop performs: modal absolute/relative
// resolution, G92 datum shifts, software-endstop clamping, M220/M221
// percentages, cold-extrusion stripping, and G2/G3 arc-to-chord
// expansion.  Because step counts are a pure function of the program (the
// firmware's timing jitter moves pulses in time, never in count), the
// oracle predicts the OFFRAMPS capture's final per-axis counters to
// within the homing debounce (a couple of steps on Z).
//
// Counter semantics mirror the FPGA's AxisTracker: counts are signed
// (DIR-weighted) and armed once the program has homed all three axes -
// the same activation point the paper's monitoring uses.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fw/config.hpp"
#include "fw/kinematics.hpp"

namespace offramps::analyze {

/// Kind of one resolved motion segment (after arc expansion).
enum class SegmentKind : std::uint8_t {
  kTravel,      // motion without filament advance
  kExtrusion,   // motion with positive filament advance
  kRetraction,  // negative filament advance (with or without motion)
  kEOnly,       // positive filament advance without motion
};

const char* segment_kind_name(SegmentKind k);

/// One resolved motion segment of the program.
struct SegmentRecord {
  /// Index of the originating command in the analyzed program (arc
  /// chords share their G2/G3's index).
  std::size_t command_index = 0;
  std::array<std::int64_t, 4> delta_steps{};
  double path_mm = 0.0;     // XYZ path length
  double e_mm = 0.0;        // filament advance (after flow scaling)
  double feed_mm_s = 0.0;   // requested path feedrate
  SegmentKind kind = SegmentKind::kTravel;
  bool counted = false;     // executed with the step counters armed

  /// Expected extrusion-per-distance ratio (filament mm per path mm);
  /// 0 for segments without XYZ motion.
  [[nodiscard]] double e_per_mm() const {
    return path_mm > 1e-12 ? e_mm / path_mm : 0.0;
  }
};

/// The static oracle for one program.
struct Oracle {
  /// Expected final counter values, as the OFFRAMPS AxisTracker would
  /// accumulate them: signed steps per axis, counting from the moment
  /// the program has homed all three axes.
  std::array<std::int64_t, 4> expected_counts{};
  /// Total step pulses (|delta| summed) per axis over the armed window.
  std::array<std::uint64_t, 4> total_pulses{};
  /// True when the program homes all three axes (counters ever arm).
  bool counters_armed = false;
  /// Command index after which the counters armed.
  std::size_t armed_at_command = 0;

  double extruded_mm = 0.0;        // total positive filament advance
  double retracted_mm = 0.0;       // total negative advance (abs)
  double extrusion_path_mm = 0.0;  // XYZ distance while extruding
  std::uint64_t move_count = 0;          // all motion segments
  std::uint64_t extrusion_move_count = 0;
  /// Largest single stationary positive E advance (mm) observed after
  /// printing started - the legitimate un-retract/prime budget a
  /// dynamic blob check may allow.
  double max_stationary_e_mm = 0.0;

  /// Per-segment trace in execution order (arc chords expanded).
  std::vector<SegmentRecord> segments;

  /// Final interpreter state after the whole program.
  fw::MotionState final_state{};
};

}  // namespace offramps::analyze
