// Host side of the Marlin serial protocol: streams a program as numbered,
// checksummed lines ("N42 G1 X10*97"), reacts to Resend/Busy responses,
// and can inject line corruption to emulate a noisy USB link - proving
// the protocol delivers identical prints over an unreliable channel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fw/serial_protocol.hpp"
#include "gcode/command.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace offramps::host {

/// Streaming options.
struct ReliableStreamerOptions {
  /// Initial Busy poll period.  Consecutive Busy responses grow the wait
  /// exponentially (doubling) up to `max_poll_period`; any accepted line
  /// resets it.
  sim::Tick poll_period = sim::ms(20);
  sim::Tick max_poll_period = sim::seconds(2);
  /// Overall no-progress watchdog: if the firmware accepts nothing for
  /// this long, the streamer gives up and records a failure instead of
  /// polling forever.  Generous by default because a legitimate M109/M190
  /// heat-up blocks the queue for minutes; a *dead* firmware is caught
  /// immediately by the killed() fast path, not this timer.  0 disables.
  sim::Tick no_progress_timeout = sim::seconds(600);
  /// Probability that a transmitted line arrives corrupted.
  double corruption_probability = 0.0;
  std::uint64_t seed = 0xC0FFEE;
};

/// Checksummed, resend-capable g-code streamer.
class ReliableStreamer {
 public:
  ReliableStreamer(sim::Scheduler& sched, fw::Firmware& firmware,
                   fw::SerialProtocol& protocol, gcode::Program program,
                   ReliableStreamerOptions options = {});

  ReliableStreamer(const ReliableStreamer&) = delete;
  ReliableStreamer& operator=(const ReliableStreamer&) = delete;

  /// Begins streaming (opens the firmware stream, sends M110 N0 first).
  void start();

  [[nodiscard]] bool done() const { return cursor_ >= lines_.size(); }
  [[nodiscard]] std::uint64_t lines_transmitted() const {
    return transmitted_;
  }
  [[nodiscard]] std::uint64_t corrupted_lines() const { return corrupted_; }
  [[nodiscard]] std::uint64_t resends_honored() const { return resends_; }
  [[nodiscard]] std::uint64_t busy_backoffs() const { return busy_; }
  /// True when the streamer gave up (no-progress timeout / dead firmware).
  [[nodiscard]] bool failed() const { return failed_; }
  /// Human-readable diagnosis of why streaming failed (empty if it didn't).
  [[nodiscard]] const std::string& failure_reason() const {
    return failure_reason_;
  }
  /// Current Busy backoff delay (for observability/tests).
  [[nodiscard]] sim::Tick current_backoff() const { return backoff_; }

 private:
  void pump();
  void fail(std::string reason);
  [[nodiscard]] std::string wire_line(std::size_t index) const;

  sim::Scheduler& sched_;
  fw::Firmware& firmware_;
  fw::SerialProtocol& protocol_;
  std::vector<std::string> lines_;  // serialized command bodies
  ReliableStreamerOptions options_;
  sim::Rng rng_;
  std::size_t cursor_ = 0;  // next line index (0-based; wire number is +1)
  bool started_ = false;
  bool failed_ = false;
  std::string failure_reason_;
  sim::Tick backoff_ = 0;             // current Busy wait (0 = reset)
  sim::Tick last_progress_at_ = 0;    // when a line was last accepted
  std::uint64_t transmitted_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t resends_ = 0;
  std::uint64_t busy_ = 0;
};

}  // namespace offramps::host
