#include "host/time_estimator.hpp"

#include <array>
#include <cmath>

#include "fw/planner.hpp"
#include "gcode/modal.hpp"

namespace offramps::host {
namespace {

/// XY unit direction of a resolved move, or nullopt when degenerate.
std::optional<std::array<double, 2>> xy_dir(const gcode::MoveInfo& mv) {
  const double len = std::hypot(mv.delta[0], mv.delta[1]);
  if (len < 1e-9) return std::nullopt;
  return std::array<double, 2>{mv.delta[0] / len, mv.delta[1] / len};
}

}  // namespace

TimeEstimate estimate_print_time(const gcode::Program& program,
                                 const fw::Config& config) {
  TimeEstimate est;
  fw::Planner planner(config);
  gcode::ModalState modal;

  // Resolve every move up front so each segment can see its successor
  // (the firmware's one-segment lookahead).
  std::vector<gcode::MoveInfo> moves;
  std::vector<double> dwells;
  for (const auto& cmd : program) {
    if (cmd.is('G', 4)) {
      double s = 0.0;
      if (const auto p = cmd.get('P')) s = *p / 1000.0;
      if (const auto v = cmd.get('S')) s = *v;
      dwells.push_back(std::max(s, 0.0));
    }
    if (cmd.is('G', 28)) continue;  // homing excluded (plant-dependent)
    if (const auto mv = modal.apply(cmd)) {
      bool any = false;
      for (const auto d : mv->delta) any = any || d != 0.0;
      if (any) moves.push_back(*mv);
    }
  }

  double pending_entry = -1.0;
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const gcode::MoveInfo& mv = moves[i];
    std::array<std::int64_t, 4> delta{};
    for (std::size_t a = 0; a < 4; ++a) {
      delta[a] = static_cast<std::int64_t>(
          std::llround(mv.delta[a] * config.steps_per_mm[a]));
    }
    const double feed = std::max(mv.feed_mm_min / 60.0, 0.1);

    double exit = -1.0;
    const auto this_dir = xy_dir(mv);
    if (this_dir && i + 1 < moves.size()) {
      if (const auto next_dir = xy_dir(moves[i + 1])) {
        const double cosine = (*this_dir)[0] * (*next_dir)[0] +
                              (*this_dir)[1] * (*next_dir)[1];
        const double factor = std::clamp((1.0 + cosine) / 2.0, 0.0, 1.0);
        exit = config.junction_speed_mm_s +
               factor * std::max(feed - config.junction_speed_mm_s, 0.0);
      }
    }
    const double entry = this_dir ? pending_entry : -1.0;
    pending_entry = this_dir ? exit : -1.0;

    const fw::Segment seg = planner.plan(delta, feed, entry, exit);
    if (!seg.empty()) {
      est.motion_s += fw::Planner::duration_s(seg);
      ++est.moves;
    }
  }
  for (const double s : dwells) est.dwell_s += s;
  return est;
}

}  // namespace offramps::host
