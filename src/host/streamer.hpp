// Host g-code streamer: models a Repetier-Host-style sender that trickles
// lines to the firmware over serial instead of preloading the whole
// program, keeping the firmware's input queue shallow the way a live USB
// link does.
#pragma once

#include <cstddef>

#include "fw/firmware.hpp"
#include "gcode/command.hpp"
#include "sim/scheduler.hpp"

namespace offramps::host {

/// Feeds a program into a firmware incrementally.
class Streamer {
 public:
  /// Keeps at most `window` commands buffered in the firmware, topping the
  /// queue up every `poll_period`.  Closes the firmware's stream when the
  /// last line has been delivered.
  Streamer(sim::Scheduler& sched, fw::Firmware& firmware,
           gcode::Program program, std::size_t window = 8,
           sim::Tick poll_period = sim::ms(20));

  Streamer(const Streamer&) = delete;
  Streamer& operator=(const Streamer&) = delete;

  /// Begins streaming.  The firmware must have its stream marked open.
  void start();

  [[nodiscard]] bool done() const { return cursor_ >= program_.size(); }
  [[nodiscard]] std::size_t lines_sent() const { return cursor_; }

 private:
  void pump();

  sim::Scheduler& sched_;
  fw::Firmware& firmware_;
  gcode::Program program_;
  std::size_t window_;
  sim::Tick poll_period_;
  std::size_t cursor_ = 0;
  bool started_ = false;
};

}  // namespace offramps::host
