#include "host/chaos.hpp"

#include <algorithm>
#include <filesystem>
#include <limits>

#include "core/session_wire.hpp"
#include "core/strict_parse.hpp"
#include "host/rig.hpp"
#include "obs/metrics.hpp"
#include "sim/error.hpp"

namespace offramps::host {

namespace {

constexpr std::uint32_t kEveryAttempt =
    std::numeric_limits<std::uint32_t>::max();

}  // namespace

const char* chaos_kind_name(ChaosKind k) {
  switch (k) {
    case ChaosKind::kNone: return "none";
    case ChaosKind::kCrash: return "crash";
    case ChaosKind::kStall: return "stall";
    case ChaosKind::kCorrupt: return "corrupt";
    case ChaosKind::kTruncate: return "truncate";
    case ChaosKind::kPowerJam: return "powerjam";
    case ChaosKind::kRingWedge: return "ringwedge";
    case ChaosKind::kDisconnect: return "disconnect";
    case ChaosKind::kFrameCorrupt: return "framecorrupt";
    case ChaosKind::kCacheTear: return "cachetear";
  }
  return "?";
}

std::string ChaosSpec::to_string() const {
  if (kind == ChaosKind::kNone) return "none";
  std::string out = chaos_kind_name(kind);
  if (fires_for != kEveryAttempt) {
    out += ':';
    out += std::to_string(fires_for);
  }
  return out;
}

ChaosSpec parse_chaos(const std::string& text) {
  ChaosSpec spec;
  if (text.empty() || text == "none" || text == "clean") return spec;
  const auto colon = text.find(':');
  const std::string head = text.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : text.substr(colon + 1);

  if (head == "crash") {
    spec.kind = ChaosKind::kCrash;
  } else if (head == "stall") {
    spec.kind = ChaosKind::kStall;
  } else if (head == "corrupt") {
    spec.kind = ChaosKind::kCorrupt;
  } else if (head == "truncate") {
    spec.kind = ChaosKind::kTruncate;
  } else if (head == "powerjam") {
    spec.kind = ChaosKind::kPowerJam;
    spec.fires_for = kEveryAttempt;
  } else if (head == "ringwedge") {
    spec.kind = ChaosKind::kRingWedge;
    spec.fires_for = kEveryAttempt;
  } else if (head == "disconnect") {
    spec.kind = ChaosKind::kDisconnect;
  } else if (head == "framecorrupt") {
    spec.kind = ChaosKind::kFrameCorrupt;
  } else if (head == "cachetear") {
    spec.kind = ChaosKind::kCacheTear;
  } else {
    throw Error(
        "chaos: expected none|crash|stall|corrupt|truncate|powerjam|"
        "ringwedge|disconnect|framecorrupt|cachetear[:attempts], got \"" +
        text + "\"");
  }
  if (colon != std::string::npos) {
    const auto n = core::parse_long(arg);
    if (!n || *n < 1 || *n > 0xFFFFFFFFll) {
      throw Error("chaos: attempt count wants a positive integer: \"" +
                  text + "\"");
    }
    spec.fires_for = static_cast<std::uint32_t>(*n);
  }
  return spec;
}

ChaosInjector::ChaosInjector(const ChaosSpec& spec, std::uint32_t attempt)
    : spec_(spec), active_(spec.enabled() && attempt < spec.fires_for) {
#if OFFRAMPS_OBS_ENABLED
  if (active_ && obs::enabled()) {
    static obs::Counter& injected =
        obs::Registry::instance().counter("host.chaos.injected");
    injected.add(1);
  }
#endif
}

void ChaosInjector::arm(Rig& rig) const {
  if (!active_ || spec_.kind != ChaosKind::kCrash) return;
  rig.scheduler().schedule_in(sim::from_seconds(spec_.crash_at_s), [] {
    throw Error("chaos: injected rig crash");
  });
}

bool ChaosInjector::pass_transaction() {
  if (!active_ || spec_.kind != ChaosKind::kStall) return true;
  if (seen_++ < spec_.after) return true;
  ++suppressed_;
  return false;
}

bool ChaosInjector::wedge_pump(std::size_t slots_run) const {
  return active_ && spec_.kind == ChaosKind::kRingWedge &&
         slots_run >= spec_.after;
}

bool ChaosInjector::jam_power() const {
  return active_ && spec_.kind == ChaosKind::kPowerJam;
}

void ChaosInjector::mangle_capture(std::vector<std::uint8_t>& bytes) const {
  if (!active_) return;
  if (spec_.kind == ChaosKind::kTruncate) {
    bytes.resize(bytes.size() / 2);
    return;
  }
  if (spec_.kind != ChaosKind::kCorrupt) return;
  // Capture binary layout: magic(4) version(2) flags(2) label_len(4)
  // label, then the u64 transaction count.  Overwrite that count with
  // an impossible multi-GB value: the bounded from_binary() must reject
  // it *before* allocating (the satellite hardening this PR tests).
  if (bytes.size() < 12) return;
  std::uint32_t label_len = 0;
  for (int i = 0; i < 4; ++i) {
    label_len |= static_cast<std::uint32_t>(bytes[8 + i]) << (8 * i);
  }
  const std::size_t count_at = 12 + static_cast<std::size_t>(label_len);
  for (std::size_t i = count_at; i < count_at + 8 && i < bytes.size(); ++i) {
    bytes[i] = 0xFF;
  }
}

void ChaosInjector::mangle_session(std::vector<std::uint8_t>& bytes) const {
  if (!active_) return;
  if (spec_.kind == ChaosKind::kDisconnect) {
    // Cut mid-stream, but never inside the stream header: the drill is
    // "rig vanished during its print", not "garbage pipe".
    const std::size_t keep =
        std::max(core::wire::kStreamHeaderSize + 1, bytes.size() / 2);
    if (keep < bytes.size()) bytes.resize(keep);
    return;
  }
  if (spec_.kind != ChaosKind::kFrameCorrupt) return;
  // Walk the frames to the `after`-th kTxn and flip a byte inside its
  // embedded transaction frame (the counts region), so the outer framing
  // stays intact and the inner CRC is what rejects it.
  std::size_t pos = core::wire::kStreamHeaderSize;
  std::uint32_t txns_seen = 0;
  while (bytes.size() - pos >= core::wire::kFrameHeaderSize) {
    if ((bytes[pos] | (bytes[pos + 1] << 8)) != core::wire::kFrameMagic) {
      return;  // not a well-formed stream; nothing to drill
    }
    const std::uint8_t type = bytes[pos + 2];
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(bytes[pos + 3 + i]) << (8 * i);
    }
    if (bytes.size() - pos - core::wire::kFrameHeaderSize < len) return;
    if (type == static_cast<std::uint8_t>(core::wire::FrameType::kTxn)) {
      if (txns_seen++ >= spec_.after) {
        bytes[pos + core::wire::kFrameHeaderSize + 8] ^= 0xFF;
        return;
      }
    }
    pos += core::wire::kFrameHeaderSize + len;
  }
}

void ChaosInjector::tear_cache_entry(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw Error("chaos: tear_cache_entry: cannot stat " + path + ": " +
                ec.message());
  }
  std::filesystem::resize_file(path, size / 2, ec);
  if (ec) {
    throw Error("chaos: tear_cache_entry: cannot truncate " + path + ": " +
                ec.message());
  }
}

}  // namespace offramps::host
