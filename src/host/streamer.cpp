#include "host/streamer.hpp"

namespace offramps::host {

Streamer::Streamer(sim::Scheduler& sched, fw::Firmware& firmware,
                   gcode::Program program, std::size_t window,
                   sim::Tick poll_period)
    : sched_(sched),
      firmware_(firmware),
      program_(std::move(program)),
      window_(window == 0 ? 1 : window),
      poll_period_(poll_period) {}

void Streamer::start() {
  if (started_) return;
  started_ = true;
  firmware_.set_stream_open(true);
  pump();
}

void Streamer::pump() {
  while (cursor_ < program_.size() &&
         firmware_.queue_depth() < window_) {
    firmware_.enqueue(program_[cursor_++]);
  }
  if (done()) {
    firmware_.set_stream_open(false);
    return;
  }
  sched_.schedule_in(poll_period_, [this] { pump(); });
}

}  // namespace offramps::host
