// Host-side serial capture: a UART receiver plus transaction decoder
// listening on the OFFRAMPS TX net - the software that would run on the
// connected PC, receiving what the paper's Python tooling consumed.
#pragma once

#include "core/serial.hpp"
#include "sim/scheduler.hpp"
#include "sim/wire.hpp"

namespace offramps::host {

/// Decodes the OFFRAMPS transaction stream from the physical TX line.
/// Must outlive any traffic on the line it taps (the receiver detaches
/// its listener on destruction).
class SerialTap {
 public:
  SerialTap(sim::Scheduler& sched, sim::Wire& tx_line, std::uint32_t baud)
      : rx_(sched, tx_line, baud) {
    rx_.on_byte([this](std::uint8_t byte, sim::Tick t) {
      decoder_.feed(byte, t);
    });
  }

  SerialTap(const SerialTap&) = delete;
  SerialTap& operator=(const SerialTap&) = delete;

  /// Per-transaction delivery, as decoded off the wire.
  void on_transaction(core::TransactionDecoder::TransactionCallback cb) {
    decoder_.on_transaction(std::move(cb));
  }

  [[nodiscard]] const core::Capture& capture() const {
    return decoder_.capture();
  }
  [[nodiscard]] core::Capture take_capture() {
    return decoder_.take_capture();
  }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return rx_.bytes_received();
  }
  [[nodiscard]] std::uint64_t framing_errors() const {
    return rx_.framing_errors();
  }
  [[nodiscard]] std::uint64_t resyncs() const { return decoder_.resyncs(); }

 private:
  core::UartRx rx_;
  core::TransactionDecoder decoder_;
};

}  // namespace offramps::host
