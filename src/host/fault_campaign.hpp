// Fault-campaign harness.
//
// A campaign answers the robustness question the paper's Section V-C
// leaves qualitative: across a sweep of fault type x intensity, does the
// OFFRAMPS stack fail SAFE (somebody noticed and the run was stopped or
// flagged for a real deviation), fail SILENT (the part deviates and
// nobody noticed), cry WOLF (alarm with a fine part), or shrug the fault
// off entirely?  Every cell is one full print of the same program on a
// fresh rig, classified against a clean reference run, and the whole
// sweep serializes to machine-readable JSON for dashboards/CI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "detect/compare.hpp"
#include "gcode/command.hpp"
#include "host/parallel_runner.hpp"
#include "host/rig.hpp"
#include "sim/fault.hpp"

namespace offramps::host {

/// How one campaign cell ended.
enum class CellOutcome : std::uint8_t {
  kClean,             // no deviation, no alarm: the stack absorbed the fault
  kFailSafe,          // real deviation AND it was detected (kill or alarm)
  kSilentCorruption,  // the part deviates (or the run wedged) unnoticed
  kFalseAlarm,        // alarm fired but the part is fine
};

const char* cell_outcome_name(CellOutcome o);

/// One cell's full outcome.
struct CellResult {
  sim::FaultSpec fault;
  CellOutcome outcome = CellOutcome::kClean;

  bool finished = false;
  bool killed = false;
  bool alarmed = false;
  std::string kill_reason;
  /// Worst relative deviation from the clean reference across the part
  /// metrics (deposited filament, motor steps, layer shift).
  double deviation = 0.0;
  std::size_t capture_transactions = 0;
  std::uint64_t crc_rejected = 0;
  std::uint64_t fault_events = 0;  // injector activity (glitches, flips...)
  double sim_seconds = 0.0;
};

/// A whole sweep plus its clean baseline.
struct CampaignReport {
  std::string program_label;
  std::size_t clean_transactions = 0;
  double clean_filament_mm = 0.0;
  std::vector<CellResult> cells;

  [[nodiscard]] std::size_t count(CellOutcome o) const;
  /// Serializes the report (schema documented in EXPERIMENTS.md,
  /// "Fault campaigns").
  [[nodiscard]] std::string to_json() const;
};

/// Campaign configuration.
struct FaultCampaignOptions {
  /// Base rig configuration reused for the reference and every cell
  /// (per-cell faults are layered on top).
  RigOptions rig{};
  detect::CompareOptions detect{};
  /// Relative deviation beyond which the part counts as corrupted.
  /// Default 3%: above known-good reprint drift, below any real layer
  /// shift or lost-step fault.
  double deviation_threshold = 0.03;
};

/// Runs fault sweeps of one g-code program.
class FaultCampaign {
 public:
  FaultCampaign(gcode::Program program, std::string label,
                FaultCampaignOptions options = {});

  /// Runs the clean reference print (golden capture + part baseline).
  /// Called lazily by run_cell()/run() if not invoked explicitly.
  void run_reference();

  /// Runs and classifies one faulted, monitor-observed print.
  [[nodiscard]] CellResult run_cell(const sim::FaultSpec& spec);

  /// Runs the whole sweep sequentially.
  [[nodiscard]] CampaignReport run(const std::vector<sim::FaultSpec>& specs);

  /// Runs the whole sweep with cells distributed over `pool`.  Each cell
  /// is an independent single-threaded Rig simulation, and results land
  /// in spec order, so the report is bit-identical to the sequential
  /// overload for any worker count.
  [[nodiscard]] CampaignReport run(const std::vector<sim::FaultSpec>& specs,
                                   ParallelRunner& pool);

  /// The default acceptance sweep: every fault family (digital stuck &
  /// glitch, analog drift, UART corruption, timing jitter) at zero, low,
  /// and high intensity -- zero-intensity cells are the built-in
  /// false-positive control.
  [[nodiscard]] static std::vector<sim::FaultSpec> default_sweep();

  [[nodiscard]] const core::Capture& golden() const { return golden_; }
  [[nodiscard]] const RunResult& reference() const { return reference_; }

 private:
  /// run_cell() after the reference exists.  Const (and shared-state
  /// read-only), so the pool may call it concurrently for distinct specs.
  [[nodiscard]] CellResult evaluate_cell(const sim::FaultSpec& spec) const;

  [[nodiscard]] double deviation_from_reference(const RunResult& r) const;

  gcode::Program program_;
  std::string label_;
  FaultCampaignOptions options_;
  bool have_reference_ = false;
  core::Capture golden_;
  RunResult reference_;
};

}  // namespace offramps::host
