// Experiment rig: the full bench-top stack of the paper's test
// environment (section III-D), assembled in simulation:
//
//   host g-code --> Firmware (Arduino/Marlin) --> OFFRAMPS board --> Printer
//                        ^                             |  FPGA fabric
//                        +--- endstops / thermistors --+  (monitors+Trojans)
//
// `Rig::run` executes one print end to end and gathers everything the
// experiments need: the UART capture, part-quality metrics, firmware
// outcome, thermal peaks, and step accounting on both sides of the board.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "core/board.hpp"
#include "detect/compare.hpp"
#include "detect/monitor.hpp"
#include "fw/firmware.hpp"
#include "gcode/command.hpp"
#include "plant/printer.hpp"
#include "plant/side_channel.hpp"
#include "sim/fault.hpp"
#include "sim/scheduler.hpp"

namespace offramps::host {

/// A scheduled supply-voltage excursion (the undervolting/brown-out
/// attack class the paper's Limitations section leaves unexplored).
struct BrownoutScenario {
  enum class Rail { kMotor, kLogic };
  Rail rail = Rail::kMotor;
  double start_s = 30.0;
  double duration_s = 2.0;
  /// Sag target as a fraction of nominal (e.g. 0.6 = 24 V -> 14.4 V).
  double sag_to_fraction = 0.6;
};

/// Everything configurable about one experiment run.
struct RigOptions {
  fw::Config firmware{};
  plant::PrinterParams printer{};
  core::BoardOptions board{};
  core::RouteMode route = core::RouteMode::kFpgaMitm;
  core::TrojanSuiteConfig trojans{};
  std::optional<BrownoutScenario> brownout{};
  /// Attach a power side-channel probe (current clamp on the supply).
  std::optional<plant::PowerProbeOptions> power_probe{};
  /// Attach an acoustic probe (microphone near the gantry).
  std::optional<plant::AcousticProbeOptions> acoustic_probe{};
  /// Attach a vibration probe (frame-mounted accelerometer).
  std::optional<plant::VibrationProbeOptions> vibration_probe{};
  /// Hard wall on simulated print time (safety backstop).
  double max_sim_seconds = 4000.0;
  /// How long to keep simulating after a firmware kill, to observe
  /// runaway physics (Trojan T7 keeps heating after the firmware dies).
  double post_kill_observation_s = 60.0;
  /// Faults to arm before power-on (`sim::FaultInjector`).  Digital and
  /// analog targets are net names ("X_STEP", "X_MIN", "THERM_HOTEND"),
  /// optionally prefixed "arduino." or "ramps." to pick the header side
  /// (default: ramps, the motor/sensor side).  Stream faults corrupt the
  /// UART transaction frames; timing faults jitter the scheduler.
  std::vector<sim::FaultSpec> faults{};
};

/// Outcome of one print.
struct RunResult {
  core::Capture capture;
  bool finished = false;
  bool killed = false;
  std::string kill_reason;
  bool monitor_alarmed = false;     // real-time detection fired
  bool aborted_by_monitor = false;  // ...and halted the print
  std::uint32_t alarm_at_transaction = 0;  // index where the alarm fired

  plant::PartReport part;
  /// Steps the firmware commanded (Arduino side), signed, per axis.
  std::array<std::int64_t, 4> commanded_steps{};
  /// Steps the motors actually executed (RAMPS side), signed, per axis.
  std::array<std::int64_t, 4> motor_steps{};
  /// Steps lost at disabled drivers (Trojan T8's effect).
  std::array<std::uint64_t, 4> motor_dropped_steps{};

  double hotend_peak_c = 0.0;
  double bed_peak_c = 0.0;
  double mean_fan_rpm = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t events_executed = 0;
  /// Steps skipped from motor-rail undervoltage, per axis.
  std::array<std::uint64_t, 4> undervolt_skips{};
  /// Side-channel traces (each empty unless its probe was attached).
  plant::PowerTrace power_trace;
  plant::SideTrace acoustic_trace;
  plant::SideTrace vibration_trace;

  // Fault-injection observability (all zero on a clean run).
  std::uint64_t faults_armed = 0;
  sim::FaultInjector::Stats fault_stats{};
  /// Corrupted UART frames the reporter's receivers discarded via CRC.
  std::uint64_t uart_crc_rejected = 0;
  std::uint64_t uart_frames_emitted = 0;
  /// Events rescheduled by an active timing-jitter fault.
  std::uint64_t scheduler_warped_events = 0;
  /// Homing endstop edges rejected by firmware debounce.
  std::uint64_t endstop_bounces_rejected = 0;

  /// Material actually deposited / material the g-code commanded.
  [[nodiscard]] double flow_ratio() const;
};

/// Assembled firmware + OFFRAMPS + printer stack.
class Rig {
 public:
  explicit Rig(RigOptions options = {});

  Rig(const Rig&) = delete;
  Rig& operator=(const Rig&) = delete;

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] core::Board& board() { return board_; }
  [[nodiscard]] fw::Firmware& firmware() { return firmware_; }
  [[nodiscard]] plant::Printer& printer() { return printer_; }
  /// Attached power probe, or nullptr when options.power_probe is unset.
  /// Live access (the trace grows during the run) lets a streaming
  /// consumer - the fleet service's detector pump - follow the side
  /// channel mid-print instead of waiting for RunResult::power_trace.
  [[nodiscard]] plant::PowerTraceProbe* power_probe() {
    return power_probe_.get();
  }
  /// Attached acoustic / vibration probes, nullptr when unset; live
  /// access for the same streaming reason as power_probe().
  [[nodiscard]] plant::AcousticTraceProbe* acoustic_probe() {
    return acoustic_probe_.get();
  }
  [[nodiscard]] plant::VibrationTraceProbe* vibration_probe() {
    return vibration_probe_.get();
  }

  /// Runs one complete print.  Call once per Rig (the physical analogue:
  /// one part per power cycle).
  RunResult run(const gcode::Program& program);

  /// Runs with the real-time monitor comparing against `golden`;
  /// `abort_on_alarm` halts the print the moment the alarm fires.
  RunResult run_monitored(const gcode::Program& program,
                          const core::Capture& golden,
                          const detect::CompareOptions& detect_options = {},
                          bool abort_on_alarm = true);

 private:
  RunResult execute(const gcode::Program& program,
                    detect::RealtimeMonitor* monitor);
  RunResult collect(bool finished, bool killed, std::string kill_reason,
                    detect::RealtimeMonitor* monitor);
  void bind_faults();

  RigOptions options_;
  sim::Scheduler sched_;
  core::Board board_;
  fw::Firmware firmware_;
  plant::Printer printer_;
  std::unique_ptr<plant::PowerTraceProbe> power_probe_;
  std::unique_ptr<plant::AcousticTraceProbe> acoustic_probe_;
  std::unique_ptr<plant::VibrationTraceProbe> vibration_probe_;
  // Declared after the stack it injects into: destroyed first, which
  // unhooks the scheduler time warp before the scheduler goes away.
  std::unique_ptr<sim::FaultInjector> fault_injector_;
  bool used_ = false;
};

}  // namespace offramps::host
