#include "host/reliable_streamer.hpp"

#include <algorithm>

#include "gcode/parser.hpp"
#include "gcode/writer.hpp"
#include "sim/error.hpp"

namespace offramps::host {

ReliableStreamer::ReliableStreamer(sim::Scheduler& sched,
                                   fw::Firmware& firmware,
                                   fw::SerialProtocol& protocol,
                                   gcode::Program program,
                                   ReliableStreamerOptions options)
    : sched_(sched),
      firmware_(firmware),
      protocol_(protocol),
      options_(options),
      rng_(options.seed) {
  lines_.reserve(program.size());
  for (const auto& cmd : program) {
    gcode::Command bare = cmd;
    bare.comment.clear();  // comments are not sent over the wire
    lines_.push_back(gcode::write_line(bare));
  }
}

std::string ReliableStreamer::wire_line(std::size_t index) const {
  const std::string body =
      "N" + std::to_string(index + 1) + " " + lines_[index] + " ";
  return body + "*" + std::to_string(gcode::reprap_checksum(body));
}

void ReliableStreamer::start() {
  if (started_) return;
  started_ = true;
  last_progress_at_ = sched_.now();
  firmware_.set_stream_open(true);
  // Reset the firmware's line counter, checksummed like any other line.
  const std::string m110_body = "N0 M110 ";
  std::uint32_t resend = 0;
  protocol_.receive(
      m110_body + "*" + std::to_string(gcode::reprap_checksum(m110_body)),
      &resend);
  pump();
}

void ReliableStreamer::pump() {
  if (failed_) return;
  // A killed firmware will never drain its queue: reporting that beats
  // polling a corpse until the watchdog trips.
  if (firmware_.killed()) {
    fail("firmware killed mid-stream (" + firmware_.kill_reason() + ")");
    return;
  }
  // Send until the firmware reports busy or everything is delivered.
  while (!done()) {
    if (transmitted_ > (lines_.size() + 10) * 1000) {
      throw Error(
          "ReliableStreamer: link too lossy, no forward progress");
    }
    std::string line = wire_line(cursor_);
    ++transmitted_;
    if (options_.corruption_probability > 0.0 &&
        rng_.chance(options_.corruption_probability)) {
      // Flip one payload character: the checksum no longer matches.
      const std::size_t pos =
          static_cast<std::size_t>(rng_.uniform_int(
              1, static_cast<std::int64_t>(line.find('*')) - 1));
      line[pos] = line[pos] == 'X' ? 'Y' : 'X';
      ++corrupted_;
    }

    std::uint32_t resend_from = 0;
    const fw::LineStatus status = protocol_.receive(line, &resend_from);
    switch (status) {
      case fw::LineStatus::kOk:
      case fw::LineStatus::kDuplicate:
        ++cursor_;
        backoff_ = 0;  // progress: reset the Busy backoff
        last_progress_at_ = sched_.now();
        continue;
      case fw::LineStatus::kResend:
        // Wire numbers are 1-based; rewind to the requested line.
        ++resends_;
        cursor_ = resend_from == 0 ? 0 : resend_from - 1;
        continue;
      case fw::LineStatus::kBusy: {
        ++busy_;
        if (options_.no_progress_timeout != 0 &&
            sched_.now() - last_progress_at_ >=
                options_.no_progress_timeout) {
          fail("no line accepted for " +
               std::to_string(sim::to_seconds(options_.no_progress_timeout)) +
               " s (firmware wedged or dead) at line " +
               std::to_string(cursor_ + 1) + "/" +
               std::to_string(lines_.size()));
          return;
        }
        // Exponential backoff, capped: a long print legitimately holds
        // the queue full for a while, so the poll quickly settles at the
        // cap instead of hammering the protocol every period.
        backoff_ = backoff_ == 0
                       ? options_.poll_period
                       : std::min(backoff_ * 2, options_.max_poll_period);
        sched_.schedule_in(backoff_, [this] { pump(); });
        return;
      }
    }
  }
  firmware_.set_stream_open(false);
}

void ReliableStreamer::fail(std::string reason) {
  failed_ = true;
  failure_reason_ = std::move(reason);
  firmware_.set_stream_open(false);
}

}  // namespace offramps::host
