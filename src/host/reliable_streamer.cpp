#include "host/reliable_streamer.hpp"

#include "gcode/parser.hpp"
#include "gcode/writer.hpp"
#include "sim/error.hpp"

namespace offramps::host {

ReliableStreamer::ReliableStreamer(sim::Scheduler& sched,
                                   fw::Firmware& firmware,
                                   fw::SerialProtocol& protocol,
                                   gcode::Program program,
                                   ReliableStreamerOptions options)
    : sched_(sched),
      firmware_(firmware),
      protocol_(protocol),
      options_(options),
      rng_(options.seed) {
  lines_.reserve(program.size());
  for (const auto& cmd : program) {
    gcode::Command bare = cmd;
    bare.comment.clear();  // comments are not sent over the wire
    lines_.push_back(gcode::write_line(bare));
  }
}

std::string ReliableStreamer::wire_line(std::size_t index) const {
  const std::string body =
      "N" + std::to_string(index + 1) + " " + lines_[index] + " ";
  return body + "*" + std::to_string(gcode::reprap_checksum(body));
}

void ReliableStreamer::start() {
  if (started_) return;
  started_ = true;
  firmware_.set_stream_open(true);
  // Reset the firmware's line counter, checksummed like any other line.
  const std::string m110_body = "N0 M110 ";
  std::uint32_t resend = 0;
  protocol_.receive(
      m110_body + "*" + std::to_string(gcode::reprap_checksum(m110_body)),
      &resend);
  pump();
}

void ReliableStreamer::pump() {
  // Send until the firmware reports busy or everything is delivered.
  while (!done()) {
    if (transmitted_ > (lines_.size() + 10) * 1000) {
      throw Error(
          "ReliableStreamer: link too lossy, no forward progress");
    }
    std::string line = wire_line(cursor_);
    ++transmitted_;
    if (options_.corruption_probability > 0.0 &&
        rng_.chance(options_.corruption_probability)) {
      // Flip one payload character: the checksum no longer matches.
      const std::size_t pos =
          static_cast<std::size_t>(rng_.uniform_int(
              1, static_cast<std::int64_t>(line.find('*')) - 1));
      line[pos] = line[pos] == 'X' ? 'Y' : 'X';
      ++corrupted_;
    }

    std::uint32_t resend_from = 0;
    const fw::LineStatus status = protocol_.receive(line, &resend_from);
    switch (status) {
      case fw::LineStatus::kOk:
      case fw::LineStatus::kDuplicate:
        ++cursor_;
        continue;
      case fw::LineStatus::kResend:
        // Wire numbers are 1-based; rewind to the requested line.
        ++resends_;
        cursor_ = resend_from == 0 ? 0 : resend_from - 1;
        continue;
      case fw::LineStatus::kBusy:
        ++busy_;
        sched_.schedule_in(options_.poll_period, [this] { pump(); });
        return;
    }
  }
  firmware_.set_stream_open(false);
}

}  // namespace offramps::host
