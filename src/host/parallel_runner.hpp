// Work-stealing batch executor for independent simulations.
//
// Every evaluation workload in this repository -- the fault-campaign
// sweep, the drift study's seeded reprints, Table I/II case matrices,
// ablation grids -- is a batch of *independent, deterministic* `Rig`
// runs: each job builds its own scheduler, firmware, board, and plant,
// and shares no mutable state with its siblings.  `ParallelRunner`
// spreads such a batch over a pool of worker threads.  Each sim stays
// single-threaded and seed-deterministic, and results are stored by job
// index, so a batch's output is bit-identical to sequential execution
// regardless of the worker count or which thread ran which job.
//
// Scheduling is work-stealing: jobs are dealt round-robin onto
// per-worker deques; a worker pops from the front of its own deque and,
// when empty, steals from the back of a sibling's.  Jobs here are whole
// prints (milliseconds to seconds each), so per-pop locking is noise.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace offramps::host {

class ParallelRunner {
 public:
  /// A pool with `workers` threads; 0 resolves via default_workers().
  /// With one worker, jobs run inline on the calling thread.
  explicit ParallelRunner(std::size_t workers = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] std::size_t workers() const { return workers_; }

  /// Executes `body(0) .. body(jobs-1)`, distributed over the pool, and
  /// blocks until every job finished.  `body` must be thread-safe across
  /// distinct indices (independent jobs).  If any job throws, the first
  /// exception (in completion order) is rethrown after the batch drains;
  /// the remaining jobs still run.  Not reentrant: do not call run()
  /// from inside a job.
  void run(std::size_t jobs, const std::function<void(std::size_t)>& body);

  /// Service API for long-lived callers (the fleet daemon): enqueues one
  /// independent job on the pool and returns immediately.  Posted jobs
  /// interleave freely with run() batches on the same workers.  With one
  /// worker the job executes inline on the calling thread (there is no
  /// pool to defer to); its exception, like a pooled job's, surfaces at
  /// the next drain().
  void post(std::function<void()> job);

  /// Blocks until every post()ed job has finished, then rethrows the
  /// first service-job exception (in completion order), if any.
  void drain();

  /// Maps `fn` over [0, jobs) into a vector ordered by job index --
  /// identical to the sequential result whatever the worker count.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> map(std::size_t jobs, Fn&& fn) {
    static_assert(!std::is_same_v<T, bool>,
                  "std::vector<bool> is bit-packed; concurrent writes to "
                  "adjacent indices race.  Map into char/int instead.");
    std::vector<T> out(jobs);
    run(jobs, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Worker count from the environment.  `OFFRAMPS_JOBS` must be a
  /// whole positive base-10 integer ("8"); anything else - trailing
  /// garbage ("8x"), zero, negatives, empty - is rejected with a
  /// one-time stderr warning and the documented default applies:
  /// std::thread::hardware_concurrency() (1 when unknown).
  [[nodiscard]] static std::size_t default_workers();

 private:
  /// One worker's deque.  Items carry the batch generation so a straggler
  /// from a finished batch can never pop (and mis-dispatch) the next
  /// batch's jobs.
  struct Queue {
    std::mutex mu;
    std::deque<std::pair<std::uint64_t, std::size_t>> items;
  };

  /// Per-worker observability handles (obs:: registry counters), fixed
  /// at construction; increments are gated on obs::enabled().
  struct WorkerStats {
    obs::Counter* executed = nullptr;  // jobs this worker ran
    obs::Counter* stolen = nullptr;    // ...of which it stole
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::uint64_t batch, std::size_t& out,
               bool& stole);

  std::size_t workers_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;
  std::vector<WorkerStats> stats_;
#if OFFRAMPS_OBS_ENABLED
  /// Pool-wide park/unpark counters, bound at construction like stats_
  /// so the park path pays no magic-static guard per sleep.
  obs::Counter* parks_ = nullptr;
  obs::Counter* unparks_ = nullptr;
#endif

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::function<void(std::size_t)> body_;
  std::uint64_t batch_ = 0;
  std::size_t unfinished_ = 0;
  std::exception_ptr first_error_;
  bool shutdown_ = false;

  /// Service lane (post()/drain()): one shared FIFO, drained by whichever
  /// worker wakes first.  Kept separate from the batch deques so batch
  /// accounting (unfinished_, first_error_) never mixes with service
  /// jobs.
  std::deque<std::function<void()>> service_jobs_;
  std::size_t service_unfinished_ = 0;
  std::exception_ptr service_first_error_;
};

}  // namespace offramps::host
