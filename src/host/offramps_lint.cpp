// offramps_lint: static g-code analyzer CLI.
//
// Lints a g-code program against the machine envelope and the Flaw3D
// Trojan signatures without running the simulation, and optionally
// compares it against a known-good baseline program (exact static
// comparison - any motion divergence is flagged).
//
//   offramps_lint part.gcode                  lint one file
//   offramps_lint --baseline good.gcode part.gcode
//                                             also diff against a baseline
//   offramps_lint --json part.gcode           machine-readable output
//   offramps_lint --demo clean                self-generated demo input
//   offramps_lint --demo reduce:0.9           ... with a reduction Trojan
//   offramps_lint --demo relocate:20          ... with a relocation Trojan
//                                             (demo Trojans are linted
//                                             against the clean demo
//                                             baseline)
//
// Exit codes: 0 = clean, 1 = findings at warning severity or above,
// 2 = usage or parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/pass.hpp"
#include "gcode/flaw3d.hpp"
#include "gcode/parser.hpp"
#include "host/slicer.hpp"
#include "sim/error.hpp"
#include "svc/fleet.hpp"

namespace {

constexpr const char* kUsage =
    "usage: offramps_lint [--json] [--baseline FILE] [--passes LIST]\n"
    "                     [--severity PASS=LEVEL] [FILE|--demo SPEC]\n"
    "  FILE            g-code file to lint ('-' or absent = stdin)\n"
    "  --baseline FILE known-good program to diff against (exact)\n"
    "  --json          emit a JSON report instead of human diagnostics\n"
    "  --passes LIST   comma-separated pass ids to run (default: all;\n"
    "                  see --list-passes)\n"
    "  --severity P=L  force every finding of pass P to severity L\n"
    "                  (note|warning|error); repeatable\n"
    "  --list-passes   print the registered passes and exit\n"
    "  --demo SPEC     self-generated input: clean | reduce:FACTOR |\n"
    "                  relocate:N (Trojan demos are diffed against the\n"
    "                  clean demo baseline automatically)\n"
    "exit: 0 clean, 1 any alarm/lost/finding, 2 usage or spec error,\n"
    "75 partial campaign (never emitted by lint) - the same contract\n"
    "as offramps_fleetd and fault_campaign\n";

offramps::gcode::Program demo_program() {
  offramps::host::SliceProfile profile;
  offramps::host::CubeSpec cube;
  cube.size_x_mm = 8.0;
  cube.size_y_mm = 8.0;
  cube.height_mm = 2.0;
  return offramps::host::slice_cube(cube, profile);
}

std::optional<offramps::gcode::Program> load_program(const std::string& path,
                                                     std::string& error) {
  std::string text;
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      error = "cannot open '" + path + "'";
      return std::nullopt;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }
  try {
    return offramps::gcode::parse_program(text);
  } catch (const std::exception& e) {
    error = std::string("parse error in '") + path + "': " + e.what();
    return std::nullopt;
  }
}

/// Splits a comma-separated pass list ("thermal,oracle").  Empty items
/// ("a,,b", trailing comma) are usage errors.
bool split_pass_list(const std::string& arg, std::vector<std::string>& out) {
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::size_t end = comma == std::string::npos ? arg.size() : comma;
    if (end == start) return false;
    out.push_back(arg.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out.empty();
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string baseline_path;
  std::string input_path;
  std::string demo_spec;
  offramps::analyze::AnalyzeOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-passes") {
      for (const auto& info :
           offramps::analyze::PassRegistry::global().list()) {
        std::fprintf(stdout, "%-18s %s\n", info.id.c_str(),
                     info.description.c_str());
      }
      return 0;
    } else if (arg == "--passes") {
      if (++i >= argc || !split_pass_list(argv[i], options.passes)) {
        std::fputs(kUsage, stderr);
        return 2;
      }
    } else if (arg == "--severity") {
      if (++i >= argc) {
        std::fputs(kUsage, stderr);
        return 2;
      }
      const std::string spec = argv[i];
      const std::size_t eq = spec.find('=');
      offramps::analyze::Severity severity{};
      if (eq == std::string::npos || eq == 0 ||
          !offramps::analyze::severity_from_name(spec.substr(eq + 1),
                                                 severity)) {
        std::fprintf(stderr,
                     "--severity wants PASS=note|warning|error, got '%s'\n",
                     spec.c_str());
        std::fputs(kUsage, stderr);
        return 2;
      }
      options.pass_severity.emplace_back(spec.substr(0, eq), severity);
    } else if (arg == "--baseline") {
      if (++i >= argc) {
        std::fputs(kUsage, stderr);
        return 2;
      }
      baseline_path = argv[i];
    } else if (arg == "--demo") {
      if (++i >= argc) {
        std::fputs(kUsage, stderr);
        return 2;
      }
      demo_spec = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      std::fputs(kUsage, stderr);
      return 2;
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (!demo_spec.empty() && (!input_path.empty() || !baseline_path.empty())) {
    std::fputs("--demo does not combine with FILE or --baseline\n", stderr);
    return 2;
  }

  offramps::gcode::Program program;
  std::optional<offramps::gcode::Program> baseline;

  if (!demo_spec.empty()) {
    // One grammar for sabotage specs everywhere: svc::parse_sabotage is
    // strict (whole-string, locale-independent numbers), so
    // "reduce:0.5junk" is a usage error here instead of silently linting
    // as 0.5 the way std::atof used to.
    offramps::svc::Sabotage sabotage;
    try {
      sabotage = offramps::svc::parse_sabotage(demo_spec);
    } catch (const offramps::Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::fputs(kUsage, stderr);
      return 2;
    }
    const offramps::gcode::Program clean = demo_program();
    switch (sabotage.kind) {
      case offramps::svc::Sabotage::Kind::kNone:
        program = clean;
        break;
      case offramps::svc::Sabotage::Kind::kReduction:
        program = offramps::gcode::flaw3d::apply_reduction(
            clean, {.factor = sabotage.factor});
        baseline = clean;
        break;
      case offramps::svc::Sabotage::Kind::kRelocation:
        program = offramps::gcode::flaw3d::apply_relocation(
            clean, {.every_n_moves = sabotage.every_n});
        baseline = clean;
        break;
    }
  } else {
    std::string error;
    auto loaded = load_program(input_path.empty() ? "-" : input_path, error);
    if (!loaded) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    program = std::move(*loaded);
    if (!baseline_path.empty()) {
      auto loaded_baseline = load_program(baseline_path, error);
      if (!loaded_baseline) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
      }
      baseline = std::move(*loaded_baseline);
    }
  }

  offramps::analyze::AnalysisResult result;
  try {
    result = offramps::analyze::analyze_program(program, {}, options);
    if (baseline) {
      const offramps::analyze::AnalysisResult base =
          offramps::analyze::analyze_program(*baseline, {}, options);
      offramps::analyze::compare_with_baseline(base, result, options);
    }
  } catch (const offramps::Error& e) {
    // Unknown pass id in --passes / --severity.
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  if (json) {
    std::fputs(result.to_json().c_str(), stdout);
  } else {
    std::fputs(result.to_string().c_str(), stdout);
    std::fprintf(stdout, "verdict: %s\n",
                 result.clean() ? "clean" : "FINDINGS");
  }
  return result.clean() ? 0 : 1;
}
