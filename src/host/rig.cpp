#include "host/rig.hpp"

#include <string_view>

#include "sim/error.hpp"

namespace offramps::host {

double RunResult::flow_ratio() const {
  const double commanded = static_cast<double>(commanded_steps[3]);
  if (commanded <= 0.0) return 0.0;
  return static_cast<double>(motor_steps[3]) / commanded;
}

Rig::Rig(RigOptions options)
    : options_(std::move(options)),
      board_(sched_, options_.board, options_.route),
      firmware_(sched_, options_.firmware, board_.arduino_side()),
      printer_(sched_, board_.ramps_side(), options_.printer) {
  if (options_.trojans.any()) {
    board_.trojans().arm(options_.trojans);
  }
  // Logic-rail brown-out resets the MCU mid-print (modelled as a kill:
  // the job is lost either way).
  printer_.logic_rail().on_change([this](double) {
    if (printer_.power().mcu_brownout() &&
        firmware_.state() == fw::FwState::kRunning) {
      firmware_.kill("MCU brown-out reset (logic rail sag)");
    }
  });
  if (options_.power_probe.has_value()) {
    power_probe_ = std::make_unique<plant::PowerTraceProbe>(
        sched_, printer_, board_.ramps_side(), *options_.power_probe);
  }
  if (options_.acoustic_probe.has_value()) {
    acoustic_probe_ = std::make_unique<plant::AcousticTraceProbe>(
        sched_, printer_, board_.ramps_side(), *options_.acoustic_probe);
  }
  if (options_.vibration_probe.has_value()) {
    vibration_probe_ = std::make_unique<plant::VibrationTraceProbe>(
        sched_, printer_, *options_.vibration_probe);
  }
  if (!options_.faults.empty()) bind_faults();
  if (options_.brownout.has_value()) {
    const BrownoutScenario& b = *options_.brownout;
    plant::PowerRail& rail = b.rail == BrownoutScenario::Rail::kMotor
                                 ? printer_.motor_rail()
                                 : printer_.logic_rail();
    sched_.schedule_at(sim::from_seconds(b.start_s), [&rail, b] {
      rail.set_volts(rail.nominal_v() * b.sag_to_fraction);
    });
    sched_.schedule_at(sim::from_seconds(b.start_s + b.duration_s),
                       [&rail] { rail.restore(); });
  }
}

namespace {

/// Resolves a fault target like "ramps.X_STEP" / "X_MIN" to a header side
/// and bare net name.  The default side is ramps: that is the motor and
/// sensor side, where a stuck STEP is invisible to the monitors (they tap
/// the Arduino side) -- the interesting silent-corruption case.
sim::PinBank& resolve_bank(core::Board& board, std::string& name) {
  constexpr std::string_view kArduino = "arduino.";
  constexpr std::string_view kRamps = "ramps.";
  if (name.rfind(kArduino, 0) == 0) {
    name.erase(0, kArduino.size());
    return board.arduino_side();
  }
  if (name.rfind(kRamps, 0) == 0) name.erase(0, kRamps.size());
  return board.ramps_side();
}

}  // namespace

void Rig::bind_faults() {
  fault_injector_ = std::make_unique<sim::FaultInjector>(sched_);
  std::vector<sim::FaultInjector::StreamFault> stream_faults;
  for (const auto& spec : options_.faults) {
    if (sim::fault_targets_timing(spec.kind)) {
      fault_injector_->inject_timing(spec);
      continue;
    }
    if (sim::fault_targets_stream(spec.kind)) {
      if (auto f = fault_injector_->make_stream_fault(spec)) {
        stream_faults.push_back(std::move(f));
      }
      continue;
    }
    std::string name = spec.target;
    sim::PinBank& bank = resolve_bank(board_, name);
    if (sim::fault_targets_digital(spec.kind)) {
      for (std::size_t i = 0; i < sim::kPinCount; ++i) {
        const auto pin = static_cast<sim::Pin>(i);
        if (name == sim::pin_name(pin)) {
          fault_injector_->inject_digital(spec, bank.wire(pin));
          name.clear();
          break;
        }
      }
    } else {
      for (std::size_t i = 0; i < sim::kAPinCount; ++i) {
        const auto apin = static_cast<sim::APin>(i);
        if (name == sim::apin_name(apin)) {
          fault_injector_->inject_analog(spec, bank.analog(apin));
          name.clear();
          break;
        }
      }
    }
    if (!name.empty()) {
      throw Error("Rig: fault target names no known net: " + spec.describe());
    }
  }
  if (!stream_faults.empty()) {
    board_.fpga().uart().set_frame_fault(
        [faults = std::move(stream_faults)](std::vector<std::uint8_t>& b) {
          for (const auto& f : faults) f(b);
        });
  }
}

RunResult Rig::run(const gcode::Program& program) {
  return execute(program, nullptr);
}

RunResult Rig::run_monitored(const gcode::Program& program,
                             const core::Capture& golden,
                             const detect::CompareOptions& detect_options,
                             bool abort_on_alarm) {
  detect::RealtimeMonitor monitor(board_.fpga().uart(), golden,
                                  detect_options);
  if (abort_on_alarm) {
    monitor.on_alarm([this](const std::vector<detect::Mismatch>&) {
      firmware_.kill("print halted by OFFRAMPS real-time Trojan monitor");
    });
  }
  return execute(program, &monitor);
}

RunResult Rig::execute(const gcode::Program& program,
                       detect::RealtimeMonitor* monitor) {
  if (used_) throw Error("Rig::run: a Rig executes a single print");
  used_ = true;

  bool finished = false;
  bool killed = false;
  std::string kill_reason;

  firmware_.on_finished([&] {
    finished = true;
    sched_.request_stop();
  });
  firmware_.on_killed([&](const std::string& reason) {
    killed = true;
    kill_reason = reason;
    // Keep the world running: destructive Trojans (T7) do their damage
    // after the firmware has given up.
    sched_.schedule_in(sim::from_seconds(options_.post_kill_observation_s),
                       [this] { sched_.request_stop(); });
  });

  firmware_.enqueue_program(program);
  firmware_.start();

  const sim::Tick deadline = sim::from_seconds(options_.max_sim_seconds);
  while (!sched_.stop_requested() && !sched_.idle() &&
         sched_.now() < deadline) {
    sched_.run_until(std::min<sim::Tick>(sched_.now() + sim::seconds(1),
                                         deadline));
  }

  return collect(finished, killed, kill_reason, monitor);
}

RunResult Rig::collect(bool finished, bool killed, std::string kill_reason,
                       detect::RealtimeMonitor* monitor) {
  RunResult r;
  board_.fpga().uart().finalize(finished);
  r.capture = board_.fpga().uart().take_capture();
  r.finished = finished;
  r.killed = killed;
  r.kill_reason = std::move(kill_reason);
  if (monitor != nullptr) {
    r.monitor_alarmed = monitor->alarmed();
    r.alarm_at_transaction = monitor->alarmed_at_index();
    r.aborted_by_monitor =
        monitor->alarmed() &&
        r.kill_reason.find("real-time Trojan monitor") != std::string::npos;
  }

  r.part = printer_.deposition().report();
  r.commanded_steps = firmware_.stepper().lifetime_steps();
  for (std::size_t i = 0; i < 4; ++i) {
    const auto axis = static_cast<sim::Axis>(i);
    r.motor_steps[i] = printer_.motor(axis).position();
    r.motor_dropped_steps[i] = printer_.motor(axis).dropped_steps();
    r.undervolt_skips[i] = printer_.motor(axis).undervolt_skips();
  }
  if (power_probe_ != nullptr) r.power_trace = power_probe_->take_trace();
  if (acoustic_probe_ != nullptr) {
    r.acoustic_trace = acoustic_probe_->take_trace();
  }
  if (vibration_probe_ != nullptr) {
    r.vibration_trace = vibration_probe_->take_trace();
  }
  if (fault_injector_ != nullptr) {
    r.faults_armed = fault_injector_->armed();
    r.fault_stats = fault_injector_->stats();
  }
  r.uart_crc_rejected = board_.fpga().uart().crc_rejected();
  r.uart_frames_emitted = board_.fpga().uart().frames_emitted();
  r.scheduler_warped_events = sched_.warped_events();
  r.endstop_bounces_rejected =
      firmware_.stepper().endstop_bounces_rejected();
  r.hotend_peak_c = printer_.hotend().peak_c();
  r.bed_peak_c = printer_.bed().peak_c();
  r.mean_fan_rpm = printer_.fan().mean_rpm();
  r.sim_seconds = sim::to_seconds(sched_.now());
  r.events_executed = sched_.executed();
  return r;
}

}  // namespace offramps::host
