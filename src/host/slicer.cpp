#include "host/slicer.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "sim/error.hpp"

namespace offramps::host {
namespace {

using gcode::Command;
using gcode::Program;

/// Incremental g-code builder tracking absolute-E accumulation.
class GcodeBuilder {
 public:
  explicit GcodeBuilder(const SliceProfile& profile) : profile_(profile) {}

  void raw(char letter, int code) { program_.push_back({letter, code, {}, {}}); }

  void cmd(char letter, int code,
           std::initializer_list<gcode::Param> params,
           const char* comment = "") {
    Command c;
    c.letter = letter;
    c.code = code;
    c.params.assign(params);
    c.comment = comment;
    program_.push_back(std::move(c));
  }

  void set_temp_and_wait() {
    if (profile_.bed_temp_c > 0.0) {
      cmd('M', 140, {{'S', profile_.bed_temp_c}}, "bed temp");
      cmd('M', 190, {{'S', profile_.bed_temp_c}}, "wait bed");
    }
    cmd('M', 104, {{'S', profile_.hotend_temp_c}}, "hotend temp");
    cmd('M', 109, {{'S', profile_.hotend_temp_c}}, "wait hotend");
  }

  void travel(double x, double y) {
    cmd('G', 0,
        {{'X', x}, {'Y', y}, {'F', profile_.travel_speed_mm_s * 60.0}});
    x_ = x;
    y_ = y;
  }

  void lift(double z) {
    cmd('G', 1, {{'Z', z}, {'F', profile_.z_speed_mm_s * 60.0}});
    z_ = z;
  }

  void extrude_to(double x, double y, double speed_mm_s) {
    const double len = std::hypot(x - x_, y - y_);
    e_ += len * profile_.e_per_mm();
    cmd('G', 1, {{'X', x}, {'Y', y}, {'E', e_}, {'F', speed_mm_s * 60.0}});
    x_ = x;
    y_ = y;
  }

  /// Extruding arc (G2 cw / G3 ccw) with center offset (i, j) and the
  /// given arc path length.
  void arc_to(bool clockwise, double x, double y, double i, double j,
              double arc_len_mm, double speed_mm_s) {
    e_ += arc_len_mm * profile_.e_per_mm();
    cmd('G', clockwise ? 2 : 3,
        {{'X', x}, {'Y', y}, {'I', i}, {'J', j}, {'E', e_},
         {'F', speed_mm_s * 60.0}});
    x_ = x;
    y_ = y;
  }

  void retract() {
    e_ -= profile_.retract_mm;
    cmd('G', 1, {{'E', e_}, {'F', profile_.retract_speed_mm_s * 60.0}},
        "retract");
  }

  void unretract() {
    e_ += profile_.retract_mm;
    cmd('G', 1, {{'E', e_}, {'F', profile_.retract_speed_mm_s * 60.0}},
        "unretract");
  }

  void reset_e() {
    cmd('G', 92, {{'E', 0.0}}, "reset extruder datum");
    e_ = 0.0;
  }

  void prime() {
    e_ += profile_.prime_e_mm;
    cmd('G', 1, {{'E', e_}, {'F', 300.0}}, "prime nozzle");
    reset_e();
  }

  void fan(double duty) {
    if (duty <= 0.0) {
      raw('M', 107);
    } else {
      cmd('M', 106, {{'S', std::min(duty, 1.0) * 255.0}});
    }
  }

  [[nodiscard]] double x() const { return x_; }
  [[nodiscard]] double y() const { return y_; }
  [[nodiscard]] double z() const { return z_; }

  Program take() { return std::move(program_); }

  void append(Program more) {
    for (auto& c : more) program_.push_back(std::move(c));
  }

 private:
  const SliceProfile& profile_;
  Program program_;
  double x_ = 0.0, y_ = 0.0, z_ = 0.0, e_ = 0.0;
};

/// Closed rectangle loop (counter-clockwise), extruding each side.
void extrude_rect(GcodeBuilder& b, double cx, double cy, double half_x,
                  double half_y, double speed) {
  b.extrude_to(cx + half_x, cy - half_y, speed);
  b.extrude_to(cx + half_x, cy + half_y, speed);
  b.extrude_to(cx - half_x, cy + half_y, speed);
  b.extrude_to(cx - half_x, cy - half_y, speed);
}

void layer_change(GcodeBuilder& b, const SliceProfile& profile, double z,
                  double start_x, double start_y) {
  b.retract();
  b.lift(z);
  b.travel(start_x, start_y);
  b.unretract();
  (void)profile;
}

/// Draws the configured number of skirt outlines around a rectangular
/// footprint centred at (cx, cy) with half-extents (hx, hy), at the
/// current (first) layer height.
void draw_skirt(GcodeBuilder& b, const SliceProfile& profile, double cx,
                double cy, double hx, double hy) {
  for (int loop = profile.skirt_loops; loop >= 1; --loop) {
    const double off = profile.skirt_gap_mm +
                       profile.line_width_mm * static_cast<double>(loop - 1);
    b.travel(cx - hx - off, cy - hy - off);
    extrude_rect(b, cx, cy, hx + off, hy + off,
                 profile.first_layer_speed_mm_s);
  }
}

}  // namespace

double SliceProfile::e_per_mm() const {
  const double filament_area =
      std::numbers::pi * filament_diameter_mm * filament_diameter_mm / 4.0;
  return layer_height_mm * line_width_mm / filament_area;
}

Program start_sequence(const SliceProfile& profile) {
  GcodeBuilder b(profile);
  b.cmd('G', 21, {}, "millimeter units");
  b.cmd('G', 90, {}, "absolute positioning");
  b.raw('M', 82);  // absolute E
  b.fan(0.0);
  b.set_temp_and_wait();
  b.cmd('G', 28, {}, "home all axes");
  b.reset_e();
  b.prime();
  return b.take();
}

Program end_sequence(const SliceProfile& profile) {
  GcodeBuilder b(profile);
  b.retract();
  b.cmd('M', 104, {{'S', 0.0}}, "hotend off");
  if (profile.bed_temp_c > 0.0) b.cmd('M', 140, {{'S', 0.0}}, "bed off");
  b.fan(0.0);
  b.cmd('G', 91, {}, "relative for lift");
  b.cmd('G', 1, {{'Z', 5.0}, {'F', profile.z_speed_mm_s * 60.0}},
        "lift away from part");
  b.cmd('G', 90, {}, "back to absolute");
  b.raw('M', 84);  // motors off
  return b.take();
}

Program slice_cube(const CubeSpec& spec, const SliceProfile& profile) {
  if (spec.size_x_mm <= 0.0 || spec.size_y_mm <= 0.0 ||
      spec.height_mm <= 0.0) {
    throw Error("slice_cube: degenerate dimensions");
  }
  GcodeBuilder b(profile);
  b.append(start_sequence(profile));

  const auto layers = static_cast<std::uint32_t>(
      std::ceil(spec.height_mm / profile.layer_height_mm));
  const double cx = spec.center_x_mm;
  const double cy = spec.center_y_mm;

  for (std::uint32_t layer = 1; layer <= layers; ++layer) {
    const double z = static_cast<double>(layer) * profile.layer_height_mm;
    const double speed = (layer == 1) ? profile.first_layer_speed_mm_s
                                      : profile.perimeter_speed_mm_s;
    const double hx = spec.size_x_mm / 2.0;
    const double hy = spec.size_y_mm / 2.0;

    layer_change(b, profile, z, cx - hx, cy - hy);
    if (layer == 1 && profile.skirt_loops > 0) {
      draw_skirt(b, profile, cx, cy, hx, hy);
      b.travel(cx - hx, cy - hy);
    }
    if (layer == profile.fan_from_layer) b.fan(profile.fan_duty);

    // Perimeters, outermost first.
    for (int p = 0; p < profile.perimeter_count; ++p) {
      const double inset = profile.line_width_mm * static_cast<double>(p);
      const double phx = hx - inset;
      const double phy = hy - inset;
      if (phx <= 0.0 || phy <= 0.0) break;
      if (p > 0) b.travel(cx - phx, cy - phy);
      extrude_rect(b, cx, cy, phx, phy, speed);
    }

    // Zigzag infill inside the innermost perimeter.
    const double inset = profile.line_width_mm *
                         static_cast<double>(profile.perimeter_count);
    const double ix = hx - inset;
    const double iy = hy - inset;
    if (ix > 0.0 && iy > 0.0) {
      const double infill_speed = (layer == 1)
                                      ? profile.first_layer_speed_mm_s
                                      : profile.infill_speed_mm_s;
      bool left_to_right = (layer % 2) == 1;
      double yline = cy - iy;
      b.travel(left_to_right ? cx - ix : cx + ix, yline);
      bool first = true;
      while (yline <= cy + iy + 1e-9) {
        const double x_from = left_to_right ? cx - ix : cx + ix;
        const double x_to = left_to_right ? cx + ix : cx - ix;
        if (!first) b.extrude_to(x_from, yline, infill_speed);  // step over
        b.extrude_to(x_to, yline, infill_speed);
        left_to_right = !left_to_right;
        yline += profile.infill_spacing_mm;
        first = false;
      }
    }
    b.reset_e();
  }

  b.append(end_sequence(profile));
  return b.take();
}

Program slice_square(const SquareSpec& spec, const SliceProfile& profile) {
  GcodeBuilder b(profile);
  b.append(start_sequence(profile));
  const auto layers = static_cast<std::uint32_t>(
      std::ceil(spec.height_mm / profile.layer_height_mm));
  const double h = spec.size_mm / 2.0;
  for (std::uint32_t layer = 1; layer <= layers; ++layer) {
    const double z = static_cast<double>(layer) * profile.layer_height_mm;
    const double speed = (layer == 1) ? profile.first_layer_speed_mm_s
                                      : profile.perimeter_speed_mm_s;
    layer_change(b, profile, z, spec.center_x_mm - h, spec.center_y_mm - h);
    if (layer == profile.fan_from_layer) b.fan(profile.fan_duty);
    extrude_rect(b, spec.center_x_mm, spec.center_y_mm, h, h, speed);
  }
  b.append(end_sequence(profile));
  return b.take();
}

Program slice_cylinder(const CylinderSpec& spec, const SliceProfile& profile) {
  if (spec.facets < 3) throw Error("slice_cylinder: need at least 3 facets");
  GcodeBuilder b(profile);
  b.append(start_sequence(profile));
  const auto layers = static_cast<std::uint32_t>(
      std::ceil(spec.height_mm / profile.layer_height_mm));
  const double r = spec.diameter_mm / 2.0;
  auto vertex = [&](int i) {
    const double theta = 2.0 * std::numbers::pi * static_cast<double>(i) /
                         static_cast<double>(spec.facets);
    return std::pair<double, double>{spec.center_x_mm + r * std::cos(theta),
                                     spec.center_y_mm + r * std::sin(theta)};
  };
  for (std::uint32_t layer = 1; layer <= layers; ++layer) {
    const double z = static_cast<double>(layer) * profile.layer_height_mm;
    const double speed = (layer == 1) ? profile.first_layer_speed_mm_s
                                      : profile.perimeter_speed_mm_s;
    const auto [sx, sy] = vertex(0);
    layer_change(b, profile, z, sx, sy);
    if (layer == profile.fan_from_layer) b.fan(profile.fan_duty);
    for (int i = 1; i <= spec.facets; ++i) {
      const auto [x, y] = vertex(i % spec.facets);
      b.extrude_to(x, y, speed);
    }
  }
  b.append(end_sequence(profile));
  return b.take();
}

Program slice_cylinder_arcs(const CylinderSpec& spec,
                            const SliceProfile& profile, bool clockwise) {
  GcodeBuilder b(profile);
  b.append(start_sequence(profile));
  const auto layers = static_cast<std::uint32_t>(
      std::ceil(spec.height_mm / profile.layer_height_mm));
  const double r = spec.diameter_mm / 2.0;
  const double cx = spec.center_x_mm;
  const double cy = spec.center_y_mm;
  const double half_circumference = std::numbers::pi * r;

  for (std::uint32_t layer = 1; layer <= layers; ++layer) {
    const double z = static_cast<double>(layer) * profile.layer_height_mm;
    const double speed = (layer == 1) ? profile.first_layer_speed_mm_s
                                      : profile.perimeter_speed_mm_s;
    // Start at the east point of the circle.
    layer_change(b, profile, z, cx + r, cy);
    if (layer == profile.fan_from_layer) b.fan(profile.fan_duty);
    // Two half-circles: east -> west, then back around.
    b.arc_to(clockwise, cx - r, cy, -r, 0.0, half_circumference, speed);
    b.arc_to(clockwise, cx + r, cy, r, 0.0, half_circumference, speed);
    b.reset_e();
  }
  b.append(end_sequence(profile));
  return b.take();
}

}  // namespace offramps::host
