#include "host/parallel_runner.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/strict_parse.hpp"

namespace offramps::host {

ParallelRunner::ParallelRunner(std::size_t workers)
    : workers_(workers == 0 ? default_workers() : workers) {
  if (workers_ < 1) workers_ = 1;
  if (workers_ <= 1) return;  // Inline mode: no threads, no queues.
  queues_.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
#if OFFRAMPS_OBS_ENABLED
  // Handles are registered up front (one registry lock per pool, off the
  // job path) so per-worker balance shows up keyed deterministically:
  // host.pool.worker.<i>.{executed,stolen}.
  stats_.resize(workers_);
  for (std::size_t i = 0; i < workers_; ++i) {
    const std::string prefix = "host.pool.worker." + std::to_string(i);
    stats_[i].executed =
        &obs::Registry::instance().counter(prefix + ".executed");
    stats_[i].stolen = &obs::Registry::instance().counter(prefix + ".stolen");
  }
  parks_ = &obs::Registry::instance().counter("host.pool.parks");
  unparks_ = &obs::Registry::instance().counter("host.pool.unparks");
#endif
  threads_.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ParallelRunner::~ParallelRunner() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::size_t ParallelRunner::default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cores = hw == 0 ? 1 : hw;
  if (const char* env = std::getenv("OFFRAMPS_JOBS")) {
    const auto v = core::parse_long(env);
    if (v && *v >= 1) return static_cast<std::size_t>(*v);
    // Malformed ("8x", "", "0", "-3"): warn once per process, then fall
    // back to the documented default rather than silently degrading to
    // one worker.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "OFFRAMPS_JOBS='%s' is not a positive integer; "
                   "using hardware concurrency (%zu)\n",
                   env, cores);
    }
  }
  return cores;
}

void ParallelRunner::run(std::size_t jobs,
                         const std::function<void(std::size_t)>& body) {
  if (jobs == 0) return;

  if (workers_ <= 1) {
    // Inline path: byte-for-byte the reference execution order, with the
    // same drain-then-rethrow-first semantics as the threaded path.
    std::exception_ptr first;
    for (std::size_t i = 0; i < jobs; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  std::uint64_t batch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    batch = batch_ + 1;
    body_ = body;
    unfinished_ = jobs;
    first_error_ = nullptr;
  }
  // Deal jobs round-robin so every worker starts with a local run of
  // indices; steals then rebalance whatever actually runs long.  The
  // items go in *before* batch_ is published: a worker that wakes for
  // batch N must find its jobs already queued, otherwise it could scan
  // empty queues, re-park with its wait predicate already consumed, and
  // miss the one notify_all() forever (lost wake-up).  Stragglers from
  // batch N-1 can't mis-pop these early items because try_pop() only
  // takes jobs tagged with the batch the worker is draining.
  for (std::size_t i = 0; i < jobs; ++i) {
    Queue& q = *queues_[i % workers_];
    std::lock_guard<std::mutex> lk(q.mu);
    q.items.emplace_back(batch, i);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    batch_ = batch;
  }
  work_cv_.notify_all();

  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return unfinished_ == 0; });
  body_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ParallelRunner::post(std::function<void()> job) {
  if (workers_ <= 1) {
    // Inline mode has no threads to hand the job to; run it now and let
    // drain() surface the error, same contract as the pooled path.
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      err = std::current_exception();
    }
    if (err) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!service_first_error_) service_first_error_ = err;
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    service_jobs_.push_back(std::move(job));
    ++service_unfinished_;
  }
  work_cv_.notify_one();
}

void ParallelRunner::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return service_unfinished_ == 0; });
  if (service_first_error_) {
    std::exception_ptr err = service_first_error_;
    service_first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

bool ParallelRunner::try_pop(std::size_t self, std::uint64_t batch,
                             std::size_t& out, bool& stole) {
  {  // Own queue: take the oldest local job.
    Queue& q = *queues_[self];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.items.empty() && q.items.front().first == batch) {
      out = q.items.front().second;
      q.items.pop_front();
      stole = false;
      return true;
    }
  }
  // Steal from siblings' backs, starting just past ourselves so the
  // victims rotate instead of all thieves hammering worker 0.
  for (std::size_t k = 1; k < workers_; ++k) {
    Queue& q = *queues_[(self + k) % workers_];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.items.empty() && q.items.back().first == batch) {
      out = q.items.back().second;
      q.items.pop_back();
      stole = true;
      return true;
    }
  }
  return false;
}

void ParallelRunner::worker_loop(std::size_t self) {
  std::uint64_t seen_batch = 0;
  while (true) {
    std::function<void()> service;
    const std::function<void(std::size_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      const auto ready = [&] {
        return shutdown_ || batch_ > seen_batch || !service_jobs_.empty();
      };
#if OFFRAMPS_OBS_ENABLED
      if (obs::enabled() && !ready()) {
        // A park is a worker actually going to sleep on the condition
        // variable (the predicate was false on arrival); the matching
        // unpark is its wake-up.  Handles were bound in the constructor,
        // so this path is two striped relaxed adds.
        parks_->add(1);
        work_cv_.wait(lk, ready);
        unparks_->add(1);
      } else {
        work_cv_.wait(lk, ready);
      }
#else
      work_cv_.wait(lk, ready);
#endif
      if (!service_jobs_.empty()) {
        // Service jobs outrank shutdown so a destructor racing a posted
        // session still lets the job finish instead of dropping it.
        service = std::move(service_jobs_.front());
        service_jobs_.pop_front();
      } else if (shutdown_) {
        return;
      } else {
        seen_batch = batch_;
        body = &body_;
      }
    }
    if (service) {
      std::exception_ptr err;
      try {
        service();
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(mu_);
      if (err && !service_first_error_) service_first_error_ = err;
      if (--service_unfinished_ == 0) done_cv_.notify_all();
      continue;
    }
    // Drain this batch.  `body_` stays valid until run() observes
    // unfinished_ == 0, and only jobs tagged with `seen_batch` are
    // popped, so a straggler can never run a later batch's index
    // against an earlier batch's body.
    std::size_t idx = 0;
    bool stole = false;
    while (try_pop(self, seen_batch, idx, stole)) {
#if OFFRAMPS_OBS_ENABLED
      if (obs::enabled()) {
        stats_[self].executed->add(1);
        if (stole) stats_[self].stolen->add(1);
      }
#endif
      std::exception_ptr err;
      try {
        (*body)(idx);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--unfinished_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace offramps::host
