#include "host/parallel_runner.hpp"

#include <cstdlib>
#include <string>

namespace offramps::host {

ParallelRunner::ParallelRunner(std::size_t workers)
    : workers_(workers == 0 ? default_workers() : workers) {
  if (workers_ < 1) workers_ = 1;
  if (workers_ <= 1) return;  // Inline mode: no threads, no queues.
  queues_.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  threads_.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ParallelRunner::~ParallelRunner() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::size_t ParallelRunner::default_workers() {
  if (const char* env = std::getenv("OFFRAMPS_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<std::size_t>(v);
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelRunner::run(std::size_t jobs,
                         const std::function<void(std::size_t)>& body) {
  if (jobs == 0) return;

  if (workers_ <= 1) {
    // Inline path: byte-for-byte the reference execution order, with the
    // same drain-then-rethrow-first semantics as the threaded path.
    std::exception_ptr first;
    for (std::size_t i = 0; i < jobs; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  std::uint64_t batch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    batch = batch_ + 1;
    body_ = body;
    unfinished_ = jobs;
    first_error_ = nullptr;
  }
  // Deal jobs round-robin so every worker starts with a local run of
  // indices; steals then rebalance whatever actually runs long.  The
  // items go in *before* batch_ is published: a worker that wakes for
  // batch N must find its jobs already queued, otherwise it could scan
  // empty queues, re-park with its wait predicate already consumed, and
  // miss the one notify_all() forever (lost wake-up).  Stragglers from
  // batch N-1 can't mis-pop these early items because try_pop() only
  // takes jobs tagged with the batch the worker is draining.
  for (std::size_t i = 0; i < jobs; ++i) {
    Queue& q = *queues_[i % workers_];
    std::lock_guard<std::mutex> lk(q.mu);
    q.items.emplace_back(batch, i);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    batch_ = batch;
  }
  work_cv_.notify_all();

  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return unfinished_ == 0; });
  body_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

bool ParallelRunner::try_pop(std::size_t self, std::uint64_t batch,
                             std::size_t& out) {
  {  // Own queue: take the oldest local job.
    Queue& q = *queues_[self];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.items.empty() && q.items.front().first == batch) {
      out = q.items.front().second;
      q.items.pop_front();
      return true;
    }
  }
  // Steal from siblings' backs, starting just past ourselves so the
  // victims rotate instead of all thieves hammering worker 0.
  for (std::size_t k = 1; k < workers_; ++k) {
    Queue& q = *queues_[(self + k) % workers_];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.items.empty() && q.items.back().first == batch) {
      out = q.items.back().second;
      q.items.pop_back();
      return true;
    }
  }
  return false;
}

void ParallelRunner::worker_loop(std::size_t self) {
  std::uint64_t seen_batch = 0;
  while (true) {
    const std::function<void(std::size_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return shutdown_ || batch_ > seen_batch; });
      if (shutdown_) return;
      seen_batch = batch_;
      body = &body_;
    }
    // Drain this batch.  `body_` stays valid until run() observes
    // unfinished_ == 0, and only jobs tagged with `seen_batch` are
    // popped, so a straggler can never run a later batch's index
    // against an earlier batch's body.
    std::size_t idx = 0;
    while (try_pop(self, seen_batch, idx)) {
      std::exception_ptr err;
      try {
        (*body)(idx);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--unfinished_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace offramps::host
