// offramps_fleetd: fleet orchestration daemon.
//
// Batch mode runs a fleet of simulated printer rigs - each behind its
// own OFFRAMPS board - with per-rig online streaming detection
// (svc::Fleet), and emits a deterministic fleet report.  The report is
// byte-identical at any --jobs value, so CI can diff it.
//
//   offramps_fleetd --demo 16 --sabotage 4      built-in demo fleet
//   offramps_fleetd fleet.json                  fleet spec file
//   offramps_fleetd --json --demo 8             JSON report on stdout
//   offramps_fleetd --out report.json ...       JSON report to a file
//   offramps_fleetd --chaos 3=crash:1 ...       chaos-campaign faults
//   offramps_fleetd --checkpoint ck.bin ...     checkpoint the campaign
//   offramps_fleetd --resume ck.bin ...         continue a killed campaign
//   offramps_fleetd --cache refs/ ...           golden-reference cache
//
// Service mode turns the process into a long-lived daemon: rigs are
// clients that stream recorded core::wire sessions at it and join or
// leave mid-campaign; SIGTERM drains in-flight rigs and emits the same
// deterministic report.
//
//   offramps_fleetd --serve --listen fleet.sock daemon on a Unix socket
//   offramps_fleetd --serve                     sessions from stdin
//   offramps_fleetd --join fleet.sock *.ofs     stream sessions at it
//   offramps_fleetd --replay captures/          offline verdict replay
//
// Exit codes (contract shared by offramps_lint and fault_campaign):
// 0 = clean, 1 = any detector alarm / lost rig / finding, 2 = usage or
// spec error, 75 = partial campaign (resume from the checkpoint).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "host/chaos.hpp"

#include "core/strict_parse.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svc/daemon.hpp"
#include "svc/fleet.hpp"

namespace {

constexpr const char* kUsage =
    "usage: offramps_fleetd [options] [SPEC.json]\n"
    "  SPEC.json        fleet spec file ('-' = stdin); see --spec-help\n"
    "  --demo N         built-in demo fleet of N rigs (no spec needed)\n"
    "  --sabotage K     implant Flaw3D Trojans in K of the demo rigs\n"
    "  --jobs N, -j N   worker threads (default: OFFRAMPS_JOBS or cores;\n"
    "                   the report is byte-identical at any value)\n"
    "  --json           print the JSON fleet report on stdout\n"
    "  --out FILE       also write the JSON fleet report to FILE\n"
    "  --captures DIR   persist golden + observed captures (.bin) and\n"
    "                   replayable session streams (.ofs) in DIR (the dir\n"
    "                   must exist or be creatable, and be writable -\n"
    "                   checked up front, exit 2 otherwise)\n"
    "  --cache DIR      content-addressed golden-reference cache: serve\n"
    "                   references from DIR when present, else simulate\n"
    "                   once and persist (atomic rename; safe to share)\n"
    "  --cache-max-mb N LRU size bound for --cache in MiB (0 = unbounded)\n"
    "  --channels LIST  detection channels to arm, a comma-separated\n"
    "                   subset of steps,power,acoustic,vibration (or\n"
    "                   'all', the default); probes are only simulated\n"
    "                   for enabled channels\n"
    "  --serve          service mode: accept rig sessions and judge them\n"
    "                   live; SIGTERM drains and prints the report\n"
    "  --listen PATH    --serve on a Unix-domain socket at PATH instead\n"
    "                   of reading concatenated streams from stdin\n"
    "  --join SOCK      stream the positional .ofs session files into a\n"
    "                   serving daemon at SOCK and print each verdict\n"
    "  --replay DIR     re-run detector verdicts over the .ofs session\n"
    "                   corpus in DIR, without the simulator (--chaos\n"
    "                   I=SPEC here drills corpus file index I)\n"
    "  --no-safe-stop   observe alarms without halting the rig\n"
    "  --chaos I=SPEC   inject a service-layer fault into rig I, where\n"
    "                   SPEC is crash|stall|corrupt|truncate|powerjam|\n"
    "                   ringwedge[:attempts] (repeatable)\n"
    "  --max-attempts N supervised attempts per rig before quarantine\n"
    "                   (default 3; 1 = no retry)\n"
    "  --backoff-ms N   base retry backoff (deterministic jitter; 0 =\n"
    "                   no sleeping, the default)\n"
    "  --checkpoint F   write a resumable campaign checkpoint to F after\n"
    "                   the reference phase and then per completed rig\n"
    "  --checkpoint-every N\n"
    "                   rigs between checkpoint writes (default 1)\n"
    "  --resume F       load checkpoint F and skip its completed rigs\n"
    "  --stop-after N   stop after N rigs complete this process (exit 75;\n"
    "                   kill-drill for checkpoint/resume testing)\n"
    "  --metrics        collect obs:: metrics and append a \"metrics\"\n"
    "                   section to the JSON report (the deterministic\n"
    "                   part of the report stays byte-identical)\n"
    "  --trace-out FILE write a chrome://tracing / Perfetto trace of the\n"
    "                   run (Trace Event Format JSON) to FILE\n"
    "  --help, -h       this text\n"
    "exit: 0 clean, 1 any alarm/lost/finding, 2 usage or spec error,\n"
    "75 partial campaign (resume from the checkpoint) - the same\n"
    "contract as offramps_lint and fault_campaign\n";

constexpr const char* kSpecHelp =
    "fleet spec (JSON object):\n"
    "  {\n"
    "    \"workers\": 4,            worker threads (--jobs overrides)\n"
    "    \"safe_stop\": true,       halt a rig on mid-print alarm\n"
    "    \"use_oracle\": true,      static-oracle channel\n"
    "    \"use_power\": true,       power-signature channel (legacy;\n"
    "                             \"channels\" wins when both are given)\n"
    "    \"channels\": \"all\",       comma list of steps,power,acoustic,\n"
    "                             vibration (or \"all\")\n"
    "    \"reference_seed\": 42,    jitter seed of the golden prints\n"
    "    \"ring_capacity\": 64,     detector ring-buffer depth\n"
    "    \"max_attempts\": 3,       supervised attempts per rig\n"
    "    \"backoff_ms\": 0,         base retry backoff\n"
    "    \"stall_timeout_s\": 10,   watchdog no-progress limit (sim s)\n"
    "    \"checkpoint\": \"\",        campaign checkpoint file\n"
    "    \"checkpoint_every\": 1,\n"
    "    \"save_captures_dir\": \"\",\n"
    "    \"cache\": \"\",             golden-reference cache dir\n"
    "    \"cache_max_mb\": 0,       cache LRU bound (0 = unbounded)\n"
    "    \"rigs\": [\n"
    "      {\"name\": \"a\", \"seed\": 7, \"cube_mm\": 8,\n"
    "       \"height_mm\": 3, \"sabotage\": \"reduce:0.85\"},\n"
    "      {\"seed\": 8, \"sabotage\": \"relocate:10\", \"chaos\": \"crash:1\"},\n"
    "      {\"seed\": 9}\n"
    "    ]\n"
    "  }\n"
    "sabotage: \"clean\" | \"reduce:<factor>\" | \"relocate:<n>\"\n"
    "chaos: \"none\" | \"crash\" | \"stall\" | \"corrupt\" | \"truncate\"\n"
    "       | \"powerjam\" | \"ringwedge\" | \"disconnect\" |\n"
    "       \"framecorrupt\" | \"cachetear\", optionally \":<attempts>\"\n";

long parse_count(const char* text, long min_value) {
  const auto v = offramps::core::parse_long(text);
  if (!v || *v < min_value || *v > 1'000'000) return -1;
  return static_cast<long>(*v);
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_path;
  bool json_stdout = false;
  long demo_n = -1;
  long sabotage_k = 0;
  long jobs = 0;
  bool metrics = false;
  std::string trace_path;
  // (rig index, chaos text) pairs, applied after the specs are built
  // (batch mode) or to corpus file indices (--replay).
  std::vector<std::pair<std::size_t, std::string>> chaos_args;
  bool serve = false;
  std::string listen_path;
  std::string join_sock;
  std::string replay_dir;
  // Positional args: the spec file in batch mode, .ofs files for --join.
  std::vector<std::string> positional;

  offramps::svc::FleetOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--spec-help") {
      std::fputs(kSpecHelp, stdout);
      return 0;
    }
    if (arg == "--json") {
      json_stdout = true;
    } else if (arg == "--no-safe-stop") {
      options.safe_stop = false;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--demo" || arg == "--sabotage" || arg == "--jobs" ||
               arg == "-j" || arg == "--out" || arg == "--captures" ||
               arg == "--cache" || arg == "--cache-max-mb" ||
               arg == "--channels" ||
               arg == "--listen" || arg == "--join" || arg == "--replay" ||
               arg == "--trace-out" || arg == "--chaos" ||
               arg == "--max-attempts" || arg == "--backoff-ms" ||
               arg == "--checkpoint" || arg == "--checkpoint-every" ||
               arg == "--resume" || arg == "--stop-after") {
      if (++i >= argc) {
        std::fprintf(stderr, "%s wants a value\n", arg.c_str());
        std::fputs(kUsage, stderr);
        return 2;
      }
      if (arg == "--demo") {
        demo_n = parse_count(argv[i], 1);
        if (demo_n < 0) {
          std::fprintf(stderr, "bad --demo count '%s'\n", argv[i]);
          return 2;
        }
      } else if (arg == "--sabotage") {
        sabotage_k = parse_count(argv[i], 0);
        if (sabotage_k < 0) {
          std::fprintf(stderr, "bad --sabotage count '%s'\n", argv[i]);
          return 2;
        }
      } else if (arg == "--out") {
        out_path = argv[i];
      } else if (arg == "--trace-out") {
        trace_path = argv[i];
      } else if (arg == "--captures") {
        options.save_captures_dir = argv[i];
      } else if (arg == "--cache") {
        options.cache_dir = argv[i];
      } else if (arg == "--cache-max-mb") {
        const long n = parse_count(argv[i], 0);
        if (n < 0) {
          std::fprintf(stderr, "bad --cache-max-mb '%s'\n", argv[i]);
          return 2;
        }
        options.cache_max_bytes =
            static_cast<std::uint64_t>(n) * 1024 * 1024;
      } else if (arg == "--channels") {
        try {
          options.channels = offramps::svc::ChannelSet::parse(argv[i]);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "bad --channels '%s': %s\n", argv[i],
                       e.what());
          return 2;
        }
      } else if (arg == "--listen") {
        listen_path = argv[i];
      } else if (arg == "--join") {
        join_sock = argv[i];
      } else if (arg == "--replay") {
        replay_dir = argv[i];
      } else if (arg == "--chaos") {
        const std::string v = argv[i];
        const auto eq = v.find('=');
        const long idx =
            eq == std::string::npos
                ? -1
                : parse_count(v.substr(0, eq).c_str(), 0);
        if (idx < 0) {
          std::fprintf(stderr, "bad --chaos '%s' (want I=SPEC)\n", v.c_str());
          return 2;
        }
        chaos_args.emplace_back(static_cast<std::size_t>(idx),
                                v.substr(eq + 1));
      } else if (arg == "--max-attempts") {
        const long n = parse_count(argv[i], 1);
        if (n < 0) {
          std::fprintf(stderr, "bad --max-attempts '%s'\n", argv[i]);
          return 2;
        }
        options.supervisor.max_attempts = static_cast<std::uint32_t>(n);
      } else if (arg == "--backoff-ms") {
        const long n = parse_count(argv[i], 0);
        if (n < 0) {
          std::fprintf(stderr, "bad --backoff-ms '%s'\n", argv[i]);
          return 2;
        }
        options.supervisor.backoff_base_ms = static_cast<std::uint64_t>(n);
      } else if (arg == "--checkpoint") {
        options.checkpoint_path = argv[i];
      } else if (arg == "--checkpoint-every") {
        const long n = parse_count(argv[i], 1);
        if (n < 0) {
          std::fprintf(stderr, "bad --checkpoint-every '%s'\n", argv[i]);
          return 2;
        }
        options.checkpoint_every = static_cast<std::size_t>(n);
      } else if (arg == "--resume") {
        options.resume_path = argv[i];
      } else if (arg == "--stop-after") {
        const long n = parse_count(argv[i], 1);
        if (n < 0) {
          std::fprintf(stderr, "bad --stop-after '%s'\n", argv[i]);
          return 2;
        }
        options.stop_after = static_cast<std::size_t>(n);
      } else {
        jobs = parse_count(argv[i], 1);
        if (jobs < 0) {
          std::fprintf(stderr, "bad %s value '%s'\n", arg.c_str(), argv[i]);
          return 2;
        }
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = parse_count(arg.c_str() + 7, 1);
      if (jobs < 0) {
        std::fprintf(stderr, "bad --jobs value '%s'\n", arg.c_str());
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      std::fputs(kUsage, stderr);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  // Join client: stream each positional session file at the daemon.
  if (!join_sock.empty()) {
    if (serve || !replay_dir.empty() || demo_n >= 0 || positional.empty()) {
      std::fputs("--join SOCK wants only .ofs session files\n", stderr);
      std::fputs(kUsage, stderr);
      return 2;
    }
    int rc = 0;
    for (const std::string& file : positional) {
      rc |= offramps::svc::Daemon::stream_file(join_sock, file);
    }
    return rc;
  }

  if (positional.size() > 1) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (!positional.empty()) spec_path = positional.front();

  const bool service_mode = serve || !replay_dir.empty();
  if (!listen_path.empty() && !serve) {
    std::fputs("--listen only applies to --serve\n", stderr);
    return 2;
  }
  if (serve && !replay_dir.empty()) {
    std::fputs("give one of --serve or --replay DIR\n", stderr);
    return 2;
  }
  if (service_mode) {
    if (demo_n >= 0 || !spec_path.empty()) {
      std::fputs("--serve/--replay take no fleet spec: detector and cache\n"
                 "options come from flags, rigs from their sessions\n",
                 stderr);
      return 2;
    }
  } else if ((demo_n >= 0) == !spec_path.empty()) {
    std::fputs("give exactly one of --demo N, a SPEC.json file, --serve,\n"
               "--replay DIR, or --join SOCK FILES...\n",
               stderr);
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (sabotage_k > 0 && demo_n < 0) {
    std::fputs("--sabotage only applies to --demo fleets\n", stderr);
    return 2;
  }

  std::vector<offramps::svc::RigSpec> specs;
  offramps::svc::ReplayOptions replay_options;
  try {
    if (!replay_dir.empty()) {
      // --chaos indexes the sorted corpus files here, not rig specs.
      for (const auto& [index, text] : chaos_args) {
        replay_options.chaos.emplace_back(index,
                                          offramps::host::parse_chaos(text));
      }
    } else if (serve) {
      if (!chaos_args.empty()) {
        std::fputs("--chaos does not apply to --serve\n", stderr);
        return 2;
      }
    } else if (demo_n >= 0) {
      specs = offramps::svc::Fleet::demo_specs(
          static_cast<std::size_t>(demo_n),
          static_cast<std::size_t>(sabotage_k));
    } else {
      std::string text;
      if (spec_path == "-") {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        text = ss.str();
      } else {
        std::ifstream in(spec_path, std::ios::binary);
        if (!in) {
          std::fprintf(stderr, "cannot open '%s'\n", spec_path.c_str());
          return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        text = ss.str();
      }
      specs = offramps::svc::Fleet::specs_from_json(text, options);
    }
    if (!service_mode) {
      for (const auto& [index, text] : chaos_args) {
        if (index >= specs.size()) {
          std::fprintf(stderr,
                       "--chaos rig index %zu out of range (%zu rigs)\n",
                       index, specs.size());
          return 2;
        }
        specs[index].chaos = offramps::host::parse_chaos(text);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet spec error: %s\n", e.what());
    return 2;
  }

  if (jobs > 0) options.workers = static_cast<std::size_t>(jobs);
  if (!options.save_captures_dir.empty()) {
    // Fail fast, before hours of simulation: the captures dir must exist
    // (or be creatable) AND be writable right now.
    std::error_code ec;
    std::filesystem::create_directories(options.save_captures_dir, ec);
    if (ec || !std::filesystem::is_directory(options.save_captures_dir)) {
      std::fprintf(stderr, "captures dir '%s' does not exist: %s\n",
                   options.save_captures_dir.c_str(),
                   ec ? ec.message().c_str() : "not a directory");
      return 2;
    }
    const std::string probe =
        options.save_captures_dir + "/.fleetd-write-probe";
    {
      std::ofstream touch(probe, std::ios::binary | std::ios::trunc);
      touch << "probe";
      if (!touch) {
        std::fprintf(stderr, "captures dir '%s' is not writable\n",
                     options.save_captures_dir.c_str());
        return 2;
      }
    }
    std::filesystem::remove(probe, ec);
  }

  if (metrics) offramps::obs::set_enabled(true);
  if (!trace_path.empty()) offramps::obs::TraceSession::start();

  offramps::svc::FleetReport report;
  try {
    if (service_mode) {
      offramps::svc::ServiceOptions service;
      service.workers = options.workers;
      service.detector = options.detector;
      service.pump = options.pump;
      service.use_oracle = options.use_oracle;
      service.channels = options.channels;
      service.reference_seed = options.reference_seed;
      service.profile = options.profile;
      service.cache_dir = options.cache_dir;
      service.cache_max_bytes = options.cache_max_bytes;
      if (!replay_dir.empty()) {
        replay_options.service = service;
        report = offramps::svc::replay_corpus(replay_dir, replay_options);
      } else {
        offramps::svc::Daemon daemon({service, listen_path});
        report = daemon.serve();
      }
    } else {
      offramps::svc::Fleet fleet(options);
      report = fleet.run(specs);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet run failed: %s\n", e.what());
    return 2;
  }

  if (!trace_path.empty()) {
    offramps::obs::TraceSession::stop();
    if (!offramps::obs::TraceSession::save(trace_path)) {
      std::fprintf(stderr, "cannot write trace '%s'\n", trace_path.c_str());
      return 2;
    }
    // stderr: --json promises a pure JSON document on stdout.
    std::fprintf(stderr, "[fleetd] wrote trace %s (%zu events)\n",
                 trace_path.c_str(),
                 offramps::obs::TraceSession::event_count());
  }

  // The metrics section rides in a separate top-level member; the
  // deterministic report body stays byte-identical with or without it.
  const std::string report_json =
      metrics ? report.to_json_with_metrics(report.metrics_json())
              : report.to_json();
  if (json_stdout) {
    std::fputs(report_json.c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fputs(report.to_string().c_str(), stdout);
    if (metrics) {
      std::fputs(report.metrics_json().c_str(), stdout);
      std::fputc('\n', stdout);
    }
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    out << report_json << '\n';
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
      return 2;
    }
    std::fprintf(stdout, "[fleetd] wrote %s\n", out_path.c_str());
  }
  if (!report.complete) return 75;  // partial campaign: resume to finish
  if (report.alarmed() > 0 ||
      report.count(offramps::svc::RigStatus::kLost) > 0) {
    return 1;
  }
  return 0;
}
