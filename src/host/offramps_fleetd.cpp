// offramps_fleetd: fleet orchestration daemon (one-shot batch mode).
//
// Runs a fleet of simulated printer rigs - each behind its own OFFRAMPS
// board - with per-rig online streaming detection (svc::Fleet), and
// emits a deterministic fleet report.  The report is byte-identical at
// any --jobs value, so CI can diff it.
//
//   offramps_fleetd --demo 16 --sabotage 4      built-in demo fleet
//   offramps_fleetd fleet.json                  fleet spec file
//   offramps_fleetd --json --demo 8             JSON report on stdout
//   offramps_fleetd --out report.json ...       JSON report to a file
//
// Exit codes: 0 = all rigs clean, 1 = any detector alarmed,
// 2 = usage or spec error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/strict_parse.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svc/fleet.hpp"

namespace {

constexpr const char* kUsage =
    "usage: offramps_fleetd [options] [SPEC.json]\n"
    "  SPEC.json        fleet spec file ('-' = stdin); see --spec-help\n"
    "  --demo N         built-in demo fleet of N rigs (no spec needed)\n"
    "  --sabotage K     implant Flaw3D Trojans in K of the demo rigs\n"
    "  --jobs N, -j N   worker threads (default: OFFRAMPS_JOBS or cores;\n"
    "                   the report is byte-identical at any value)\n"
    "  --json           print the JSON fleet report on stdout\n"
    "  --out FILE       also write the JSON fleet report to FILE\n"
    "  --captures DIR   persist golden + observed captures as .bin in DIR\n"
    "  --no-safe-stop   observe alarms without halting the rig\n"
    "  --metrics        collect obs:: metrics and append a \"metrics\"\n"
    "                   section to the JSON report (the deterministic\n"
    "                   part of the report stays byte-identical)\n"
    "  --trace-out FILE write a chrome://tracing / Perfetto trace of the\n"
    "                   run (Trace Event Format JSON) to FILE\n"
    "  --help, -h       this text\n"
    "exit: 0 all rigs clean, 1 any alarm, 2 usage/spec error\n";

constexpr const char* kSpecHelp =
    "fleet spec (JSON object):\n"
    "  {\n"
    "    \"workers\": 4,            worker threads (--jobs overrides)\n"
    "    \"safe_stop\": true,       halt a rig on mid-print alarm\n"
    "    \"use_oracle\": true,      static-oracle channel\n"
    "    \"use_power\": true,       power-signature channel\n"
    "    \"reference_seed\": 42,    jitter seed of the golden prints\n"
    "    \"ring_capacity\": 64,     detector ring-buffer depth\n"
    "    \"save_captures_dir\": \"\",\n"
    "    \"rigs\": [\n"
    "      {\"name\": \"a\", \"seed\": 7, \"cube_mm\": 8,\n"
    "       \"height_mm\": 3, \"sabotage\": \"reduce:0.85\"},\n"
    "      {\"seed\": 8, \"sabotage\": \"relocate:10\"},\n"
    "      {\"seed\": 9}\n"
    "    ]\n"
    "  }\n"
    "sabotage: \"clean\" | \"reduce:<factor>\" | \"relocate:<n>\"\n";

long parse_count(const char* text, long min_value) {
  const auto v = offramps::core::parse_long(text);
  if (!v || *v < min_value || *v > 1'000'000) return -1;
  return static_cast<long>(*v);
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_path;
  bool json_stdout = false;
  long demo_n = -1;
  long sabotage_k = 0;
  long jobs = 0;
  bool metrics = false;
  std::string trace_path;

  offramps::svc::FleetOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--spec-help") {
      std::fputs(kSpecHelp, stdout);
      return 0;
    }
    if (arg == "--json") {
      json_stdout = true;
    } else if (arg == "--no-safe-stop") {
      options.safe_stop = false;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--demo" || arg == "--sabotage" || arg == "--jobs" ||
               arg == "-j" || arg == "--out" || arg == "--captures" ||
               arg == "--trace-out") {
      if (++i >= argc) {
        std::fprintf(stderr, "%s wants a value\n", arg.c_str());
        std::fputs(kUsage, stderr);
        return 2;
      }
      if (arg == "--demo") {
        demo_n = parse_count(argv[i], 1);
        if (demo_n < 0) {
          std::fprintf(stderr, "bad --demo count '%s'\n", argv[i]);
          return 2;
        }
      } else if (arg == "--sabotage") {
        sabotage_k = parse_count(argv[i], 0);
        if (sabotage_k < 0) {
          std::fprintf(stderr, "bad --sabotage count '%s'\n", argv[i]);
          return 2;
        }
      } else if (arg == "--out") {
        out_path = argv[i];
      } else if (arg == "--trace-out") {
        trace_path = argv[i];
      } else if (arg == "--captures") {
        options.save_captures_dir = argv[i];
      } else {
        jobs = parse_count(argv[i], 1);
        if (jobs < 0) {
          std::fprintf(stderr, "bad %s value '%s'\n", arg.c_str(), argv[i]);
          return 2;
        }
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = parse_count(arg.c_str() + 7, 1);
      if (jobs < 0) {
        std::fprintf(stderr, "bad --jobs value '%s'\n", arg.c_str());
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      std::fputs(kUsage, stderr);
      return 2;
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }

  if ((demo_n >= 0) == !spec_path.empty()) {
    std::fputs("give exactly one of --demo N or a SPEC.json file\n", stderr);
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (sabotage_k > 0 && demo_n < 0) {
    std::fputs("--sabotage only applies to --demo fleets\n", stderr);
    return 2;
  }

  std::vector<offramps::svc::RigSpec> specs;
  try {
    if (demo_n >= 0) {
      specs = offramps::svc::Fleet::demo_specs(
          static_cast<std::size_t>(demo_n),
          static_cast<std::size_t>(sabotage_k));
    } else {
      std::string text;
      if (spec_path == "-") {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        text = ss.str();
      } else {
        std::ifstream in(spec_path, std::ios::binary);
        if (!in) {
          std::fprintf(stderr, "cannot open '%s'\n", spec_path.c_str());
          return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        text = ss.str();
      }
      specs = offramps::svc::Fleet::specs_from_json(text, options);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet spec error: %s\n", e.what());
    return 2;
  }

  if (jobs > 0) options.workers = static_cast<std::size_t>(jobs);
  if (!options.save_captures_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.save_captures_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create captures dir '%s': %s\n",
                   options.save_captures_dir.c_str(),
                   ec.message().c_str());
      return 2;
    }
  }

  if (metrics) offramps::obs::set_enabled(true);
  if (!trace_path.empty()) offramps::obs::TraceSession::start();

  offramps::svc::FleetReport report;
  try {
    offramps::svc::Fleet fleet(options);
    report = fleet.run(specs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet run failed: %s\n", e.what());
    return 2;
  }

  if (!trace_path.empty()) {
    offramps::obs::TraceSession::stop();
    if (!offramps::obs::TraceSession::save(trace_path)) {
      std::fprintf(stderr, "cannot write trace '%s'\n", trace_path.c_str());
      return 2;
    }
    // stderr: --json promises a pure JSON document on stdout.
    std::fprintf(stderr, "[fleetd] wrote trace %s (%zu events)\n",
                 trace_path.c_str(),
                 offramps::obs::TraceSession::event_count());
  }

  // The metrics section rides in a separate top-level member; the
  // deterministic report body stays byte-identical with or without it.
  const std::string report_json =
      metrics ? report.to_json_with_metrics(report.metrics_json())
              : report.to_json();
  if (json_stdout) {
    std::fputs(report_json.c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fputs(report.to_string().c_str(), stdout);
    if (metrics) {
      std::fputs(report.metrics_json().c_str(), stdout);
      std::fputc('\n', stdout);
    }
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    out << report_json << '\n';
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
      return 2;
    }
    std::fprintf(stdout, "[fleetd] wrote %s\n", out_path.c_str());
  }
  return report.alarmed() > 0 ? 1 : 0;
}
