// Host-side print-time estimator.
//
// Slicers quote print times by replaying the motion pipeline offline;
// this estimator does the same against OUR firmware's exact planner -
// modal g-code walk, per-axis feed caps, junction lookahead, trapezoid
// integration - so its output cross-validates the entire simulated
// motion stack: the estimate and the measured simulation time must agree
// to within the firmware's scheduling jitter.
#pragma once

#include "fw/config.hpp"
#include "gcode/command.hpp"

namespace offramps::host {

/// Breakdown of an estimate.
struct TimeEstimate {
  double motion_s = 0.0;   // moves (incl. arcs) with ramps and junctions
  double dwell_s = 0.0;    // G4 pauses
  std::size_t moves = 0;

  [[nodiscard]] double total_s() const { return motion_s + dwell_s; }
};

/// Estimates execution time of `program` on a machine described by
/// `config`, excluding homing and heating waits (which depend on plant
/// state, not g-code).
TimeEstimate estimate_print_time(const gcode::Program& program,
                                 const fw::Config& config = {});

}  // namespace offramps::host
