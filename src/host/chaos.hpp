// Service-layer chaos injection.
//
// PR 1's sim::FaultInjector corrupts the *simulated hardware* (pins,
// analog nets, UART bits, event timing); this injector attacks one layer
// up, at the host/service boundary the fleet supervisor has to defend:
// rig phases that throw, capture streams that wedge mid-print, capture
// files whose length prefixes lie, power probes that jam, and consumer
// pumps that stop draining their ring buffer.  Each fault is keyed on
// (rig, attempt), so a chaos campaign is fully deterministic: the same
// spec produces the same classification (clean / recovered / degraded /
// lost) at any worker count.
//
// A ChaosSpec travels with a rig spec ("which fault, for how many
// attempts"); a ChaosInjector is instantiated per *attempt* and applies
// the fault only while `attempt < fires_for` - so "crash:1" fails the
// first attempt and lets the retry succeed (supervisor verdict:
// recovered), while "stall:99" out-lives any sane retry budget
// (verdict: lost).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace offramps::host {

class Rig;

/// What to break.  kNone disables injection (the default everywhere).
enum class ChaosKind : std::uint8_t {
  kNone,
  kCrash,     // throw from a scheduled sim event mid-print
  kStall,     // suppress the capture tap after N transactions (producer
              // wedge: the detector starves while the print continues)
  kCorrupt,   // overwrite the capture's transaction-count prefix with a
              // multi-GB lie before validation
  kTruncate,  // drop the tail half of the serialized capture
  kPowerJam,  // power side-channel probe throws every service slot
  kRingWedge, // consumer pump stops draining after N slots (backpressure
              // must absorb it losslessly - not an attempt failure)
  // Session-layer drills (the daemon/replay wire surfaces).  These are
  // no-ops inside a live rig attempt; they mangle recorded session
  // streams (mangle_session) or cache entries (tear_cache_entry), and
  // must land on the supervisor's ladder as recovered (framecorrupt:
  // the reader resyncs and drops the damaged transaction) or lost
  // (disconnect: the stream dies before its end marker).  Appended at
  // the enum tail so checkpointed ChaosSpecs keep their values.
  kDisconnect,    // cut the session stream mid-frame
  kFrameCorrupt,  // flip bytes inside one kTxn frame (inner CRC rejects)
  kCacheTear,     // half-write a reference cache entry on disk
};

const char* chaos_kind_name(ChaosKind k);

/// One rig's standing chaos order.
struct ChaosSpec {
  ChaosKind kind = ChaosKind::kNone;
  /// Attempts [0, fires_for) are faulted; later retries run clean.
  std::uint32_t fires_for = 1;
  /// kCrash: sim time of the injected throw.
  double crash_at_s = 1.0;
  /// kStall / kRingWedge: transactions / pump slots before the wedge.
  std::uint32_t after = 5;

  [[nodiscard]] bool enabled() const { return kind != ChaosKind::kNone; }
  /// "none", "crash:1", "stall:99", "powerjam" (no suffix = every
  /// attempt).  parse_chaos() round-trips this.
  [[nodiscard]] std::string to_string() const;
};

/// Parses "" / "none" / "clean" / "<kind>[:<fires_for>]" where kind is
/// crash | stall | corrupt | truncate | powerjam | ringwedge |
/// disconnect | framecorrupt | cachetear.  Without a count,
/// crash/stall/corrupt/truncate and the session drills default to 1
/// (first attempt only) and powerjam/ringwedge to every attempt.
/// Throws offramps::Error on anything else.
ChaosSpec parse_chaos(const std::string& text);

/// Applies one rig's chaos order to one supervised attempt.  The fleet
/// orchestrator consults it at each hook point; when inactive (no spec,
/// or the attempt is past fires_for) every query is a cheap no-op.
class ChaosInjector {
 public:
  ChaosInjector(const ChaosSpec& spec, std::uint32_t attempt);

  [[nodiscard]] bool active() const { return active_; }

  /// kCrash: schedules the throwing event on the rig's scheduler.
  void arm(Rig& rig) const;

  /// Producer-side gate for the capture tap.  Returns false when the
  /// transaction must be suppressed (kStall past the trigger point).
  [[nodiscard]] bool pass_transaction();

  /// Consumer-side gate: true when the pump's poll must be skipped
  /// (kRingWedge past the trigger slot).
  [[nodiscard]] bool wedge_pump(std::size_t slots_run) const;

  /// kPowerJam: the power-streaming hook must throw this slot.
  [[nodiscard]] bool jam_power() const;

  /// kCorrupt / kTruncate: mangles a serialized capture in place so the
  /// bounded from_binary() validation rejects it.
  void mangle_capture(std::vector<std::uint8_t>& bytes) const;

  /// kDisconnect / kFrameCorrupt: mangles a recorded session stream
  /// (core::wire format) in place.  Disconnect cuts the stream mid-frame
  /// (the reader must classify the session lost); framecorrupt flips
  /// bytes inside the `after`-th kTxn frame so the inner CRC rejects
  /// that transaction (the reader must drop it and recover).
  void mangle_session(std::vector<std::uint8_t>& bytes) const;

  /// kCacheTear's drill, usable standalone: truncates an on-disk
  /// reference cache entry to half its size, simulating a crash mid
  /// write outside the temp+rename discipline.  The bounded cache reader
  /// must reject the remnant and recompute.  Throws offramps::Error when
  /// the file cannot be resized.
  static void tear_cache_entry(const std::string& path);

  /// Transactions swallowed by the stall gate so far.
  [[nodiscard]] std::uint64_t suppressed() const { return suppressed_; }

 private:
  ChaosSpec spec_;
  bool active_ = false;
  std::uint64_t seen_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace offramps::host
