// Slicer-lite: generates realistic slicer-style g-code for simple test
// objects (the paper's prints were sliced with Ultimaker Cura; these
// programs reproduce the same structure - start sequence with heat-up and
// homing, per-layer perimeters + zigzag infill with absolute-E extrusion,
// retraction on layer changes, fan management, end sequence).
#pragma once

#include <cstdint>

#include "gcode/command.hpp"

namespace offramps::host {

/// Print settings (a PLA-ish Cura profile).
struct SliceProfile {
  double layer_height_mm = 0.25;
  double line_width_mm = 0.45;
  double filament_diameter_mm = 1.75;

  double first_layer_speed_mm_s = 20.0;
  double perimeter_speed_mm_s = 40.0;
  double infill_speed_mm_s = 50.0;
  double travel_speed_mm_s = 120.0;
  double z_speed_mm_s = 8.0;

  double retract_mm = 0.8;
  double retract_speed_mm_s = 35.0;

  double hotend_temp_c = 210.0;
  double bed_temp_c = 0.0;  // 0 = unheated bed (faster experiments)

  /// Part fan: off for the first layer, then this duty (0..1).
  double fan_duty = 0.7;
  std::uint32_t fan_from_layer = 2;

  int perimeter_count = 2;
  double infill_spacing_mm = 1.2;
  double prime_e_mm = 3.0;

  /// First-layer skirt: `skirt_loops` outlines drawn `skirt_gap_mm` away
  /// from the part before printing it (primes flow and flags adhesion
  /// problems early).  0 = no skirt.
  int skirt_loops = 0;
  double skirt_gap_mm = 3.0;

  /// Filament mm per path mm for this profile's extrusion geometry.
  [[nodiscard]] double e_per_mm() const;
};

/// Axis-aligned solid box.
struct CubeSpec {
  double size_x_mm = 10.0;
  double size_y_mm = 10.0;
  double height_mm = 5.0;
  double center_x_mm = 110.0;
  double center_y_mm = 100.0;
};

/// Single-wall hollow square (a vase-mode-style quick print).
struct SquareSpec {
  double size_mm = 20.0;
  double height_mm = 6.0;
  double center_x_mm = 110.0;
  double center_y_mm = 100.0;
};

/// Polygon-approximated hollow cylinder.
struct CylinderSpec {
  double diameter_mm = 16.0;
  double height_mm = 6.0;
  int facets = 32;
  double center_x_mm = 110.0;
  double center_y_mm = 100.0;
};

/// Machine start sequence: units/modes, heat-up, homing, priming.
gcode::Program start_sequence(const SliceProfile& profile);
/// Machine end sequence: retract, heaters/fan off, lift, motors off.
gcode::Program end_sequence(const SliceProfile& profile);

/// Full sliced programs (start sequence + object + end sequence).
gcode::Program slice_cube(const CubeSpec& spec, const SliceProfile& profile);
gcode::Program slice_square(const SquareSpec& spec,
                            const SliceProfile& profile);
gcode::Program slice_cylinder(const CylinderSpec& spec,
                              const SliceProfile& profile);

/// Cylinder sliced with G2/G3 arc moves (two half-circles per layer), as
/// ArcWelder-style post-processors emit.  `facets` is ignored; the
/// firmware segments the arcs itself.
gcode::Program slice_cylinder_arcs(const CylinderSpec& spec,
                                   const SliceProfile& profile,
                                   bool clockwise = false);

}  // namespace offramps::host
