#include "host/fault_campaign.hpp"

#include <cmath>
#include <sstream>

#include "obs/trace.hpp"
#include "sim/error.hpp"

namespace offramps::host {

const char* cell_outcome_name(CellOutcome o) {
  switch (o) {
    case CellOutcome::kClean: return "clean";
    case CellOutcome::kFailSafe: return "fail_safe";
    case CellOutcome::kSilentCorruption: return "silent_corruption";
    case CellOutcome::kFalseAlarm: return "false_alarm";
  }
  return "unknown";
}

std::size_t CampaignReport::count(CellOutcome o) const {
  std::size_t n = 0;
  for (const auto& c : cells) {
    if (c.outcome == o) ++n;
  }
  return n;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  out += '"';
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string CampaignReport::to_json() const {
  std::string out = "{\n  \"program\": ";
  append_json_string(out, program_label);
  out += ",\n  \"clean\": {\"transactions\": ";
  out += std::to_string(clean_transactions);
  out += ", \"filament_mm\": " + fmt_double(clean_filament_mm) + "},\n";
  out += "  \"summary\": {";
  const CellOutcome kAll[] = {CellOutcome::kClean, CellOutcome::kFailSafe,
                              CellOutcome::kSilentCorruption,
                              CellOutcome::kFalseAlarm};
  bool first = true;
  for (const auto o : kAll) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += cell_outcome_name(o);
    out += "\": " + std::to_string(count(o));
  }
  out += "},\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out += "    {\"kind\": ";
    append_json_string(out, sim::fault_kind_name(c.fault.kind));
    out += ", \"target\": ";
    append_json_string(out, c.fault.target);
    out += ", \"intensity\": " + fmt_double(c.fault.intensity);
    out += ", \"window_s\": [" + fmt_double(sim::to_seconds(c.fault.start)) +
           ", " + fmt_double(sim::to_seconds(c.fault.stop)) + "]";
    out += ", \"outcome\": ";
    append_json_string(out, cell_outcome_name(c.outcome));
    out += ", \"finished\": ";
    out += c.finished ? "true" : "false";
    out += ", \"killed\": ";
    out += c.killed ? "true" : "false";
    out += ", \"alarmed\": ";
    out += c.alarmed ? "true" : "false";
    out += ", \"kill_reason\": ";
    append_json_string(out, c.kill_reason);
    out += ", \"deviation\": " + fmt_double(c.deviation);
    out += ", \"transactions\": " + std::to_string(c.capture_transactions);
    out += ", \"crc_rejected\": " + std::to_string(c.crc_rejected);
    out += ", \"fault_events\": " + std::to_string(c.fault_events);
    out += ", \"sim_seconds\": " + fmt_double(c.sim_seconds);
    out += i + 1 < cells.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

FaultCampaign::FaultCampaign(gcode::Program program, std::string label,
                             FaultCampaignOptions options)
    : program_(std::move(program)),
      label_(std::move(label)),
      options_(std::move(options)) {}

void FaultCampaign::run_reference() {
  if (have_reference_) return;
  have_reference_ = true;
  const obs::Span span("reference/" + label_, "campaign");
  Rig rig(options_.rig);
  reference_ = rig.run(program_);
  if (!reference_.finished) {
    throw Error("FaultCampaign: clean reference print did not finish");
  }
  golden_ = reference_.capture;
}

double FaultCampaign::deviation_from_reference(const RunResult& r) const {
  const auto rel = [](double v, double ref, double floor_) {
    return std::abs(v - ref) / std::max(std::abs(ref), floor_);
  };
  double dev = rel(r.part.total_filament_mm,
                   reference_.part.total_filament_mm, 1.0);
  for (std::size_t i = 0; i < 4; ++i) {
    // The floor keeps tiny absolute wobbles on low-count axes (Z moves a
    // few thousand steps in a whole print) from reading as deviation.
    dev = std::max(dev, rel(static_cast<double>(r.motor_steps[i]),
                            static_cast<double>(reference_.motor_steps[i]),
                            2000.0));
  }
  // A layer shift is geometric corruption even at equal step totals.
  if (r.part.max_layer_shift_mm >
      reference_.part.max_layer_shift_mm + 0.5) {
    dev = std::max(dev, 1.0);
  }
  return dev;
}

CellResult FaultCampaign::run_cell(const sim::FaultSpec& spec) {
  run_reference();
  return evaluate_cell(spec);
}

CellResult FaultCampaign::evaluate_cell(const sim::FaultSpec& spec) const {
  // One trace span per sweep cell: with --trace-out, the campaign's
  // per-worker timeline shows each cell's full print as one block.
  const obs::Span span("cell/" + spec.describe(), "campaign");
  RigOptions opts = options_.rig;
  opts.faults.push_back(spec);
  Rig rig(opts);
  // Observe-only monitoring: letting the print run to its natural end is
  // what makes false alarms (alarm + healthy part) distinguishable from
  // fail-safes (alarm + real deviation).
  const RunResult r = rig.run_monitored(program_, golden_, options_.detect,
                                        /*abort_on_alarm=*/false);

  CellResult cell;
  cell.fault = spec;
  cell.finished = r.finished;
  cell.killed = r.killed;
  cell.alarmed = r.monitor_alarmed;
  cell.kill_reason = r.kill_reason;
  cell.deviation = deviation_from_reference(r);
  cell.capture_transactions = r.capture.size();
  cell.crc_rejected = r.uart_crc_rejected;
  cell.fault_events = r.fault_stats.total();
  cell.sim_seconds = r.sim_seconds;

  const bool detected = r.killed || r.monitor_alarmed;
  const bool deviates =
      cell.deviation > options_.deviation_threshold || !r.finished;
  if (detected) {
    cell.outcome =
        deviates ? CellOutcome::kFailSafe : CellOutcome::kFalseAlarm;
  } else {
    cell.outcome =
        deviates ? CellOutcome::kSilentCorruption : CellOutcome::kClean;
  }
  return cell;
}

CampaignReport FaultCampaign::run(const std::vector<sim::FaultSpec>& specs) {
  run_reference();
  CampaignReport report;
  report.program_label = label_;
  report.clean_transactions = golden_.size();
  report.clean_filament_mm = reference_.part.total_filament_mm;
  report.cells.reserve(specs.size());
  for (const auto& spec : specs) {
    report.cells.push_back(evaluate_cell(spec));
  }
  return report;
}

CampaignReport FaultCampaign::run(const std::vector<sim::FaultSpec>& specs,
                                  ParallelRunner& pool) {
  run_reference();
  CampaignReport report;
  report.program_label = label_;
  report.clean_transactions = golden_.size();
  report.clean_filament_mm = reference_.part.total_filament_mm;
  report.cells = pool.map<CellResult>(
      specs.size(), [&](std::size_t i) { return evaluate_cell(specs[i]); });
  return report;
}

std::vector<sim::FaultSpec> FaultCampaign::default_sweep() {
  using sim::FaultKind;
  std::vector<sim::FaultSpec> specs;
  std::uint64_t seed = 0xFA17;
  const auto add = [&](FaultKind kind, std::string target, double intensity,
                       sim::Tick start, sim::Tick stop) {
    sim::FaultSpec s;
    s.kind = kind;
    s.target = std::move(target);
    s.intensity = intensity;
    s.start = start;
    s.stop = stop;
    s.seed = seed++;
    specs.push_back(std::move(s));
  };

  // Stuck STEP on the Arduino header: the monitors tap that side, so the
  // missing steps show up against the golden capture -> expected fail-safe
  // at full engagement.  Intensity is binary for stuck faults; the sweep
  // axis is the window length.
  add(FaultKind::kStuckLow, "arduino.X_STEP", 0.0, sim::seconds(20), 0);
  add(FaultKind::kStuckLow, "arduino.X_STEP", 1.0, sim::seconds(20),
      sim::seconds(22));
  add(FaultKind::kStuckLow, "arduino.X_STEP", 1.0, sim::seconds(20), 0);

  // Glitch pulses on the RAMPS-side STEP net: the motor sees extra steps
  // the monitors cannot -> expected silent corruption at high rates.
  add(FaultKind::kGlitch, "ramps.X_STEP", 0.0, sim::seconds(15), 0);
  add(FaultKind::kGlitch, "ramps.X_STEP", 5.0, sim::seconds(15), 0);
  add(FaultKind::kGlitch, "ramps.X_STEP", 200.0, sim::seconds(15), 0);

  // Hotend thermistor drift: the firmware's thermal protection is the
  // detector here -> expected kill (fail-safe) at strong drift.
  add(FaultKind::kAnalogDrift, "THERM_HOTEND", 0.0, sim::seconds(10), 0);
  add(FaultKind::kAnalogDrift, "THERM_HOTEND", 2.0, sim::seconds(10), 0);
  add(FaultKind::kAnalogDrift, "THERM_HOTEND", 50.0, sim::seconds(10), 0);

  // UART frame corruption: CRC framing must absorb it -> expected clean,
  // with crc_rejected counting the discarded frames.
  add(FaultKind::kUartBitFlip, "uart", 0.0, 0, 0);
  add(FaultKind::kUartBitFlip, "uart", 0.0005, 0, 0);
  add(FaultKind::kUartBitFlip, "uart", 0.01, 0, 0);

  // Scheduler timing jitter ("time noise", paper section V-C): the
  // detector margin must absorb it -> expected clean.
  add(FaultKind::kTimingJitter, "scheduler", 0.0, 0, 0);
  add(FaultKind::kTimingJitter, "scheduler", 50.0, 0, 0);
  add(FaultKind::kTimingJitter, "scheduler", 300.0, 0, 0);

  return specs;
}

}  // namespace offramps::host
