// Digital wires and analog channels.
//
// A `Wire` models one digital net of the Arduino <-> RAMPS interface at
// logic level (the board's 5 V <-> 3.3 V shifting is modelled as pure
// propagation delay on connections, not as a voltage).  Components observe
// wires by registering edge listeners; drivers call `set()`.
//
// An `AnalogChannel` models one analog net (the thermistor divider
// voltages, expressed as 10-bit ADC counts like the ATmega2560 sees them).
//
// Hot-path notes: listener lists live in `SmallVec` inline storage (most
// nets have one forwarding connection plus at most one observer), so
// wiring a board allocates nothing per net and edge delivery walks
// memory inside the Wire itself.  Same-tick edge bursts are batched one
// level up: the scheduler drains a whole tick's events as one sorted
// run (see timer_wheel.hpp), so a burst of simultaneous edges is
// delivered in a single pass without re-ordering listener interleaving.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "sim/scheduler.hpp"
#include "sim/small_fn.hpp"
#include "sim/small_vec.hpp"
#include "sim/time.hpp"

namespace offramps::sim {

/// Direction of a digital transition.
enum class Edge : std::uint8_t { kRising, kFalling };

/// One digital net.  Not copyable or movable: listeners capture `this`.
class Wire {
 public:
  using EdgeCallback = SmallFn<void(Edge, Tick)>;
  using ListenerId = std::size_t;

  Wire(Scheduler& sched, std::string name, bool initial = false)
      : sched_(sched), name_(std::move(name)), level_(initial),
        driven_(initial) {}

  Wire(const Wire&) = delete;
  Wire& operator=(const Wire&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool level() const { return level_; }

  /// Drives the wire to `level` at the current simulation time.  A no-op if
  /// the level is unchanged; otherwise all edge listeners fire immediately.
  /// While a fault is forced onto the net the drive is recorded but masked:
  /// observers keep seeing the fault level.
  void set(bool level) {
    driven_ = level;
    if (fault_.has_value()) {
      if (level != level_) ++fault_masked_drives_;
      return;
    }
    apply(level);
  }

  /// Physical-fault override (a short to a rail, a stuck pin): forces the
  /// observable level regardless of what drivers request.  Passing nullopt
  /// releases the fault and re-synchronizes the net to its driver's level.
  /// This is the hook `sim::FaultInjector` uses for stuck-at and glitch
  /// faults; it is not part of the normal driver API.
  void force_fault(std::optional<bool> level) {
    fault_ = level;
    apply(level.value_or(driven_));
  }

  [[nodiscard]] std::optional<bool> fault() const { return fault_; }
  /// Driver transitions swallowed while a fault held the net.
  [[nodiscard]] std::uint64_t fault_masked_drives() const {
    return fault_masked_drives_;
  }

  /// Emits a positive pulse: rising edge now, falling edge `width` later.
  void pulse(Tick width) {
    set(true);
    sched_.schedule_in(width, [this] { set(false); });
  }

  /// Registers a listener invoked on every edge.  Returns an id usable with
  /// remove_listener().
  ListenerId on_edge(EdgeCallback cb) {
    const ListenerId id = next_listener_id_++;
    listeners_.emplace_back(id, std::move(cb));
    return id;
  }

  /// Convenience: listener fired only on rising edges.
  template <typename F>
  ListenerId on_rising(F cb) {
    return on_edge([f = std::move(cb)](Edge e, Tick t) mutable {
      if (e == Edge::kRising) f(t);
    });
  }

  /// Convenience: listener fired only on falling edges.
  template <typename F>
  ListenerId on_falling(F cb) {
    return on_edge([f = std::move(cb)](Edge e, Tick t) mutable {
      if (e == Edge::kFalling) f(t);
    });
  }

  /// Detaches a listener.  Safe to call from inside a callback: the slot is
  /// nulled immediately and the vector compacted once no edge delivery is
  /// in flight, so jumper re-routing cannot grow the listener storage (or
  /// the per-edge scan) without bound.
  void remove_listener(ListenerId id) {
    for (auto& [lid, cb] : listeners_) {
      if (lid == id) {
        if (cb != nullptr) {
          cb = nullptr;
          ++dead_listeners_;
        }
        break;
      }
    }
    maybe_compact();
  }

  /// Listener slots currently stored, live or dead (observability for the
  /// compaction tests; bounded at ~2x the live count).
  [[nodiscard]] std::size_t listener_slots() const {
    return listeners_.size();
  }
  /// Listeners that still receive edges.
  [[nodiscard]] std::size_t live_listeners() const {
    return listeners_.size() - dead_listeners_;
  }

  /// Number of rising edges since construction.
  [[nodiscard]] std::uint64_t rising_count() const { return rising_count_; }
  /// Number of falling edges since construction.
  [[nodiscard]] std::uint64_t falling_count() const { return falling_count_; }
  /// Time of the most recent transition (0 if never driven).
  [[nodiscard]] Tick last_change() const { return last_change_; }

  [[nodiscard]] Scheduler& scheduler() { return sched_; }

 private:
  /// Switches the observable level and fires listeners (the body of the
  /// pre-fault `set()`).
  void apply(bool level) {
    if (level == level_) return;
    level_ = level;
    const Tick t = sched_.now();
    last_change_ = t;
    const Edge e = level ? Edge::kRising : Edge::kFalling;
    if (level) {
      ++rising_count_;
    } else {
      ++falling_count_;
    }
    // Listener list may grow during iteration (a callback adding another
    // listener); index-based loop keeps that safe.  Newly added listeners do
    // not see the current edge.  `delivering_` defers compaction so removal
    // from inside a callback never shuffles slots mid-scan; the scope guard
    // keeps it balanced even when a listener throws, so compaction can't be
    // disabled permanently by an escaping exception.
    struct DeliveryGuard {
      Wire& w;
      explicit DeliveryGuard(Wire& wire) : w(wire) { ++w.delivering_; }
      ~DeliveryGuard() {
        --w.delivering_;
        w.maybe_compact();
      }
    } guard(*this);
    const std::size_t n = listeners_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (listeners_[i].second != nullptr) {
        listeners_[i].second.invoke_unchecked(e, t);
      }
    }
  }

  /// Erases dead slots once they outnumber the live ones (amortized O(1)
  /// per removal) -- but never while an edge is being delivered.
  void maybe_compact() {
    if (delivering_ != 0 || dead_listeners_ * 2 < listeners_.size() ||
        dead_listeners_ == 0) {
      return;
    }
    listeners_.remove_if(
        [](const auto& slot) { return slot.second == nullptr; });
    dead_listeners_ = 0;
  }

  Scheduler& sched_;
  std::string name_;
  bool level_;
  bool driven_ = false;
  std::optional<bool> fault_;
  std::uint64_t fault_masked_drives_ = 0;
  Tick last_change_ = 0;
  std::uint64_t rising_count_ = 0;
  std::uint64_t falling_count_ = 0;
  ListenerId next_listener_id_ = 0;
  std::size_t dead_listeners_ = 0;
  int delivering_ = 0;
  SmallVec<std::pair<ListenerId, EdgeCallback>, 2> listeners_;
};

/// One analog net carrying a slowly varying value (ADC counts or volts).
class AnalogChannel {
 public:
  using ChangeCallback = SmallFn<void(double, Tick)>;

  AnalogChannel(Scheduler& sched, std::string name, double initial = 0.0)
      : sched_(sched), name_(std::move(name)), value_(initial),
        driven_value_(initial) {}

  AnalogChannel(const AnalogChannel&) = delete;
  AnalogChannel& operator=(const AnalogChannel&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double value() const { return value_; }

  /// Drives the channel.  Listeners fire on every call, even if unchanged,
  /// because consumers (the firmware ADC) sample on update cadence.
  /// An installed fault transform (sensor drift, open/short circuit)
  /// distorts the value between driver and observers.
  void set(double v) {
    driven_value_ = v;
    value_ = fault_ ? fault_(v) : v;
    publish();
  }

  /// Registers an update listener.
  void on_change(ChangeCallback cb) { listeners_.push_back(std::move(cb)); }

  /// Physical-fault hook (`sim::FaultInjector`): observers read
  /// `transform(driven)` instead of the driven value.  Pass nullptr to
  /// clear.  The faulted value is re-published immediately so slow-cadence
  /// consumers see the fault without waiting for the next driver update.
  void set_fault(std::function<double(double)> transform) {
    fault_ = std::move(transform);
    value_ = fault_ ? fault_(driven_value_) : driven_value_;
    publish();
  }

  [[nodiscard]] bool fault_active() const { return fault_ != nullptr; }

 private:
  void publish() {
    const Tick t = sched_.now();
    const std::size_t n = listeners_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (listeners_[i] != nullptr) listeners_[i].invoke_unchecked(value_, t);
    }
  }

  Scheduler& sched_;
  std::string name_;
  double value_;
  double driven_value_ = 0.0;
  std::function<double(double)> fault_;
  SmallVec<ChangeCallback, 2> listeners_;
};

/// RAII handle for a wire-to-wire connection created by `connect()`.
/// Destroying (or releasing) the handle detaches the forwarding listener,
/// which is how the OFFRAMPS board re-routes signals when jumpers change.
class Connection {
 public:
  Connection() = default;
  Connection(Wire& src, Wire::ListenerId id) : src_(&src), id_(id) {}
  Connection(Connection&& o) noexcept : src_(o.src_), id_(o.id_) {
    o.src_ = nullptr;
  }
  Connection& operator=(Connection&& o) noexcept {
    if (this != &o) {
      disconnect();
      src_ = o.src_;
      id_ = o.id_;
      o.src_ = nullptr;
    }
    return *this;
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  ~Connection() { disconnect(); }

  /// Detaches the forwarding listener; the destination keeps its last level.
  void disconnect() {
    if (src_ != nullptr) {
      src_->remove_listener(id_);
      src_ = nullptr;
    }
  }

  [[nodiscard]] bool connected() const { return src_ != nullptr; }

 private:
  Wire* src_ = nullptr;
  Wire::ListenerId id_ = 0;
};

/// Forwards every edge of `src` onto `dst` after a fixed propagation
/// `delay`.  With delay == 0 the destination switches within the same event
/// via a dedicated fast-path listener: no scheduler trip and no per-edge
/// delay branch.  The destination is immediately synchronized to the
/// source's present level.  Returns a handle that detaches the forwarding
/// when destroyed.
inline Connection connect(Wire& src, Wire& dst, Tick delay = 0) {
  dst.set(src.level());
  Wire::ListenerId id;
  if (delay == 0) {
    id = src.on_edge(
        [&dst](Edge e, Tick) { dst.set(e == Edge::kRising); });
  } else {
    id = src.on_edge([&dst, delay](Edge e, Tick) {
      const bool lvl = (e == Edge::kRising);
      dst.scheduler().schedule_in(delay, [&dst, lvl] { dst.set(lvl); });
    });
  }
  return Connection(src, id);
}

}  // namespace offramps::sim
