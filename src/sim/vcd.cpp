#include "sim/vcd.hpp"

#include <algorithm>
#include <limits>

namespace offramps::sim {
namespace {

// Printable VCD identifier characters ('!' .. '~', excluding none).
constexpr char kFirstCode = '!';
constexpr char kLastCode = '~';

}  // namespace

VcdRecorder::~VcdRecorder() {
  for (auto& ch : channels_) ch.wire->remove_listener(ch.listener);
}

bool VcdRecorder::add(Wire& wire, std::string label) {
  const int code_value = kFirstCode + static_cast<int>(channels_.size());
  if (code_value > kLastCode) return false;
  const char code = static_cast<char>(code_value);
  const std::size_t index = channels_.size();
  Channel ch;
  ch.wire = &wire;
  ch.label = label.empty() ? wire.name() : std::move(label);
  // VCD identifiers cannot contain whitespace; sanitize dots for
  // hierarchy friendliness too.
  for (auto& c : ch.label) {
    if (c == ' ' || c == '\t') c = '_';
  }
  ch.code = code;
  ch.initial = wire.level();
  ch.listener = wire.on_edge([this, index](Edge e, Tick t) {
    events_.push_back({t, index, e == Edge::kRising});
  });
  channels_.push_back(std::move(ch));
  return true;
}

std::string VcdRecorder::render(const std::string& module_name) const {
  std::string out;
  out += "$date simulated $end\n";
  out += "$version OFFRAMPS simulated logic analyzer $end\n";
  out += "$timescale 1ns $end\n";
  out += "$scope module " + module_name + " $end\n";
  for (const auto& ch : channels_) {
    out += "$var wire 1 ";
    out += ch.code;
    out += " " + ch.label + " $end\n";
  }
  out += "$upscope $end\n$enddefinitions $end\n";

  out += "$dumpvars\n";
  for (const auto& ch : channels_) {
    out += ch.initial ? '1' : '0';
    out += ch.code;
    out += '\n';
  }
  out += "$end\n";

  // Events arrive in simulation order already, but simultaneous edges on
  // different wires keep insertion order; group by timestamp.
  Tick last_time = std::numeric_limits<Tick>::max();
  for (const auto& ev : events_) {
    if (ev.time != last_time) {
      out += '#' + std::to_string(ev.time - start_time_) + '\n';
      last_time = ev.time;
    }
    out += ev.level ? '1' : '0';
    out += channels_[ev.channel].code;
    out += '\n';
  }
  return out;
}

}  // namespace offramps::sim
