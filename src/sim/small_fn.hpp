// Small-buffer-optimized callable, the event/listener payload of the
// simulator hot path.
//
// The scheduler's binary heap moves its elements O(log n) times per
// push/pop, so the move must be as cheap as the comparison: `SmallFn`
// stores trivially copyable callables (the simulator's lambdas capture
// `this` plus a few scalars) in an inline buffer and moves by plain
// `memcpy` -- no indirect call, no allocation, no destructor work on the
// moved-from shell.  Callables that are oversized, over-aligned, or not
// trivially copyable (a captured `std::function`, a `std::string`) fall
// back to a single heap cell whose move is a pointer copy.  Move-only by
// design: the event queue never copies callbacks.
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>  // std::bad_function_call
#include <new>
#include <type_traits>
#include <utility>

namespace offramps::sim {

template <typename Signature, std::size_t Capacity = 24>
class SmallFn;

template <typename R, typename... Args, std::size_t Capacity>
class SmallFn<R(Args...), Capacity> {
 public:
  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wraps any callable invocable as R(Args...).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVTable<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &kHeapVTable<Fn>;
    }
  }

  // The fixed-size copy reads past the stored callable into the buffer's
  // intentionally-uninitialized tail (defined behavior for unsigned
  // char), which GCC's -Wmaybe-uninitialized (and, when it can prove the
  // tail untouched after inlining, -Wuninitialized) flags in some
  // inlining contexts; copying sizeof(Fn) instead would need a per-type
  // vtable hop on the hottest move in the program.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif
  SmallFn(SmallFn&& other) noexcept
      : vt_(other.vt_) {
    // Inline payloads are trivially copyable and heap payloads are a raw
    // pointer, so one fixed-size copy relocates either kind.
    std::memcpy(buf_, other.buf_, Capacity);
    other.vt_ = nullptr;
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      std::memcpy(buf_, other.buf_, Capacity);
      other.vt_ = nullptr;
    }
    return *this;
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }
  friend bool operator==(const SmallFn& f, std::nullptr_t) noexcept {
    return f.vt_ == nullptr;
  }
  friend bool operator!=(const SmallFn& f, std::nullptr_t) noexcept {
    return f.vt_ != nullptr;
  }

  R operator()(Args... args) {
    if (vt_ == nullptr) throw std::bad_function_call();
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

  /// Invokes without the empty-check/throw path.  For dispatch loops that
  /// already guarantee non-emptiness structurally (the scheduler pops
  /// only events it inserted with a callback; the wire delivery loop
  /// tests each slot before firing) - there the branch is provably dead
  /// and this keeps it out of the hottest call in the program.
  R invoke_unchecked(Args... args) {
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    /// nullptr when the payload needs no teardown (trivial inline case).
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= Capacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_trivially_copyable_v<Fn>;
  }

  template <typename Fn>
  static constexpr VTable kInlineVTable = {
      [](void* p, Args&&... a) -> R {
        return (*static_cast<Fn*>(p))(std::forward<Args>(a)...);
      },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable kHeapVTable = {
      [](void* p, Args&&... a) -> R {
        return (**static_cast<Fn**>(p))(std::forward<Args>(a)...);
      },
      [](void* p) noexcept { delete *static_cast<Fn**>(p); },
  };

  void reset() noexcept {
    if (vt_ != nullptr) {
      if (vt_->destroy != nullptr) vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

}  // namespace offramps::sim
