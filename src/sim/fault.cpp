#include "sim/fault.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/error.hpp"

namespace offramps::sim {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kStuckHigh: return "stuck_high";
    case FaultKind::kStuckLow: return "stuck_low";
    case FaultKind::kGlitch: return "glitch";
    case FaultKind::kAnalogOpen: return "analog_open";
    case FaultKind::kAnalogShort: return "analog_short";
    case FaultKind::kAnalogDrift: return "analog_drift";
    case FaultKind::kUartBitFlip: return "uart_bit_flip";
    case FaultKind::kUartDropByte: return "uart_drop_byte";
    case FaultKind::kUartDupByte: return "uart_dup_byte";
    case FaultKind::kTimingJitter: return "timing_jitter";
  }
  return "unknown";
}

FaultKind fault_kind_from_name(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(FaultKind::kTimingJitter); ++i) {
    const auto k = static_cast<FaultKind>(i);
    if (name == fault_kind_name(k)) return k;
  }
  throw Error("fault_kind_from_name: unknown fault kind '" + name + "'");
}

bool fault_targets_digital(FaultKind k) {
  return k == FaultKind::kStuckHigh || k == FaultKind::kStuckLow ||
         k == FaultKind::kGlitch;
}

bool fault_targets_analog(FaultKind k) {
  return k == FaultKind::kAnalogOpen || k == FaultKind::kAnalogShort ||
         k == FaultKind::kAnalogDrift;
}

bool fault_targets_stream(FaultKind k) {
  return k == FaultKind::kUartBitFlip || k == FaultKind::kUartDropByte ||
         k == FaultKind::kUartDupByte;
}

bool fault_targets_timing(FaultKind k) {
  return k == FaultKind::kTimingJitter;
}

std::string FaultSpec::describe() const {
  std::ostringstream os;
  os << fault_kind_name(kind);
  if (!target.empty()) os << '@' << target;
  os << " i=" << intensity << " window=[" << to_seconds(start) << "s,";
  if (stop == 0) {
    os << "end)";
  } else {
    os << to_seconds(stop) << "s)";
  }
  return os.str();
}

FaultInjector::~FaultInjector() {
  // Timing warps outlive nothing: the scheduler reference may dangle the
  // moment the rig tears down, but the warp closure captures an Rng this
  // injector owns, so it has to be unhooked first.
  if (owns_time_warp_) sched_.set_time_warp(nullptr);
}

namespace {
constexpr double kAdcFullScale = 1023.0;
}  // namespace

struct FaultInjector::GlitchState {
  Wire* wire = nullptr;
  std::shared_ptr<Rng> rng;
  double rate_hz = 0.0;  // mean glitches per second
  Tick width = 0;
  Tick stop = 0;  // 0 = unbounded
};

void FaultInjector::inject_digital(const FaultSpec& spec, Wire& wire) {
  if (!fault_targets_digital(spec.kind)) {
    throw Error("FaultInjector::inject_digital: " +
                std::string(fault_kind_name(spec.kind)) +
                " is not a digital fault");
  }
  ++armed_;
  if (!spec.enabled()) return;

  switch (spec.kind) {
    case FaultKind::kStuckHigh:
    case FaultKind::kStuckLow: {
      const bool level = spec.kind == FaultKind::kStuckHigh;
      Wire* w = &wire;
      sched_.schedule_at(std::max(spec.start, sched_.now()), [this, w, level] {
        w->force_fault(level);
        ++stats_.stuck_engagements;
      });
      if (spec.stop != 0) {
        sched_.schedule_at(std::max(spec.stop, sched_.now()),
                           [w] { w->force_fault(std::nullopt); });
      }
      break;
    }
    case FaultKind::kGlitch: {
      auto st = std::make_shared<GlitchState>();
      st->wire = &wire;
      st->rng = std::make_shared<Rng>(spec.seed);
      st->rate_hz = spec.intensity;
      st->width = std::max<Tick>(spec.glitch_width, 1);
      st->stop = spec.stop;
      rngs_.push_back(st->rng);
      sched_.schedule_at(std::max(spec.start, sched_.now()),
                         [this, st] { schedule_glitch(st); });
      break;
    }
    default:
      break;
  }
}

void FaultInjector::schedule_glitch(const std::shared_ptr<GlitchState>& st) {
  // Exponential inter-arrival times approximate a Poisson glitch process.
  const double mean_gap_s = 1.0 / st->rate_hz;
  const double u = std::max(st->rng->uniform(0.0, 1.0), 1e-12);
  const double gap_s = -mean_gap_s * std::log(u);
  const Tick gap = std::max<Tick>(from_seconds(gap_s), 1);
  sched_.schedule_in(gap, [this, st] {
    if (st->stop != 0 && sched_.now() >= st->stop) return;
    // A glitch forces the opposite of the current level for `width`, then
    // releases the net back to its driver.
    Wire* w = st->wire;
    const bool glitch_level = !w->level();
    w->force_fault(glitch_level);
    ++stats_.glitches;
    sched_.schedule_in(st->width, [w] {
      // Only release if a longer-lived stuck fault hasn't taken over.
      if (w->fault().has_value()) w->force_fault(std::nullopt);
    });
    schedule_glitch(st);
  });
}

void FaultInjector::inject_analog(const FaultSpec& spec,
                                  AnalogChannel& channel) {
  if (!fault_targets_analog(spec.kind)) {
    throw Error("FaultInjector::inject_analog: " +
                std::string(fault_kind_name(spec.kind)) +
                " is not an analog fault");
  }
  ++armed_;
  if (!spec.enabled()) return;

  AnalogChannel* ch = &channel;
  const Tick start = std::max(spec.start, sched_.now());
  switch (spec.kind) {
    case FaultKind::kAnalogOpen:
      sched_.schedule_at(start, [this, ch] {
        ch->set_fault([](double) { return kAdcFullScale; });
        ++stats_.analog_engagements;
      });
      break;
    case FaultKind::kAnalogShort:
      sched_.schedule_at(start, [this, ch] {
        ch->set_fault([](double) { return 0.0; });
        ++stats_.analog_engagements;
      });
      break;
    case FaultKind::kAnalogDrift: {
      // Offset grows linearly from the engagement instant: intensity ADC
      // counts per second, clamped to the 10-bit range.
      const double counts_per_tick =
          spec.intensity / static_cast<double>(seconds(1));
      sched_.schedule_at(start, [this, ch, start, counts_per_tick] {
        Scheduler* sched = &sched_;
        ch->set_fault([sched, start, counts_per_tick](double v) {
          const double drift =
              counts_per_tick * static_cast<double>(sched->now() - start);
          return std::clamp(v + drift, 0.0, kAdcFullScale);
        });
        ++stats_.analog_engagements;
      });
      break;
    }
    default:
      break;
  }
  if (spec.stop != 0) {
    sched_.schedule_at(std::max(spec.stop, sched_.now()),
                       [ch] { ch->set_fault(nullptr); });
  }
}

void FaultInjector::inject_timing(const FaultSpec& spec) {
  if (!fault_targets_timing(spec.kind)) {
    throw Error("FaultInjector::inject_timing: " +
                std::string(fault_kind_name(spec.kind)) +
                " is not a timing fault");
  }
  ++armed_;
  if (!spec.enabled()) return;
  if (timing_armed_) {
    throw Error("FaultInjector::inject_timing: a timing fault is already "
                "armed; jitter sources do not compose");
  }
  timing_armed_ = true;

  auto rng = std::make_shared<Rng>(spec.seed);
  rngs_.push_back(rng);
  const Tick max_jitter = us(static_cast<std::uint64_t>(spec.intensity));
  const Tick start = spec.start;
  const Tick stop = spec.stop;
  // The window gates on the requested fire time, not the scheduling
  // instant, so an event placed early for after the window stays exact.
  sched_.set_time_warp(
      [rng, max_jitter, start, stop](Tick, Tick requested) -> Tick {
        if (requested < start || (stop != 0 && requested >= stop)) {
          return requested;
        }
        const Tick jitter = static_cast<Tick>(
            rng->uniform_int(0, static_cast<std::int64_t>(max_jitter)));
        return requested + jitter;
      });
  owns_time_warp_ = true;
  ++stats_.timing_windows;
}

FaultInjector::StreamFault FaultInjector::make_stream_fault(
    const FaultSpec& spec) {
  if (!fault_targets_stream(spec.kind)) {
    throw Error("FaultInjector::make_stream_fault: " +
                std::string(fault_kind_name(spec.kind)) +
                " is not a stream fault");
  }
  ++armed_;
  if (!spec.enabled()) return nullptr;

  auto rng = std::make_shared<Rng>(spec.seed);
  rngs_.push_back(rng);
  const double p = std::min(spec.intensity, 1.0);
  const FaultKind kind = spec.kind;
  const Tick start = spec.start;
  const Tick stop = spec.stop;
  Scheduler* sched = &sched_;
  Stats* stats = &stats_;
  return [rng, p, kind, start, stop, sched,
          stats](std::vector<std::uint8_t>& bytes) {
    const Tick now = sched->now();
    if (now < start || (stop != 0 && now >= stop)) return;
    switch (kind) {
      case FaultKind::kUartBitFlip:
        for (auto& b : bytes) {
          if (rng->chance(p)) {
            b ^= static_cast<std::uint8_t>(1u << rng->uniform_int(0, 7));
            ++stats->bytes_flipped;
          }
        }
        break;
      case FaultKind::kUartDropByte: {
        std::vector<std::uint8_t> kept;
        kept.reserve(bytes.size());
        for (auto b : bytes) {
          if (rng->chance(p)) {
            ++stats->bytes_dropped;
          } else {
            kept.push_back(b);
          }
        }
        bytes.swap(kept);
        break;
      }
      case FaultKind::kUartDupByte: {
        std::vector<std::uint8_t> out;
        out.reserve(bytes.size() + 4);
        for (auto b : bytes) {
          out.push_back(b);
          if (rng->chance(p)) {
            out.push_back(b);
            ++stats->bytes_duplicated;
          }
        }
        bytes.swap(out);
        break;
      }
      default:
        break;
    }
  };
}

}  // namespace offramps::sim
