// Hierarchical timer wheel: the event queue behind `sim::Scheduler`.
//
// The simulator's event horizons are short and dense (stepper pulse
// trains on the nanosecond grid, FPGA clock edges every 10 ticks), which
// makes the classic O(log n) binary heap pay a sift per push *and* per
// pop on every event.  The wheel replaces that with O(1) bucket inserts:
// four levels of 256 slots cover deltas up to just under 2^32 ticks
// (~4.3 simulated seconds, see kHorizon and lap_safe); an event lands in
// the level whose granularity matches its distance from the cursor and
// cascades toward level 0 as time approaches.  Anything beyond the horizon spills into a small binary
// heap and migrates into the wheel when it comes within range - far
// timers (supervisor deadlines, end-of-print watchdogs) stay correct
// without growing the wheel.
//
// Ordering contract (the determinism invariant every fleet/campaign/
// checkpoint digest depends on): events drain in exactly (time, seq)
// order, FIFO among same-tick events.  A drained level-0 slot holds the
// full same-tick burst, which is sorted by seq once and dispatched as a
// batch - one pass per burst instead of one heap pop per event.
//
// Allocation: slot buffers are recycled through a scratch buffer when
// drained (the "epoch arena"), so steady-state traffic performs no
// allocation once the touched slots are warm; the same Event storage is
// reused across wheel laps.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace offramps::sim {

/// Single-threaded (time, seq)-ordered event queue with O(1) inserts for
/// near events and a heap spill for events beyond the wheel horizon.
class TimerWheel {
 public:
  using Callback = SmallFn<void()>;

  struct Event {
    Tick time = 0;
    std::uint64_t seq = 0;
    Callback cb;
  };

  static constexpr int kLevelBits = 8;
  static constexpr std::size_t kSlotsPerLevel = std::size_t{1} << kLevelBits;
  static constexpr int kLevels = 4;
  /// Deltas at or beyond this many ticks from the cursor overflow into
  /// the spill heap (2^32 ticks = ~4.3 s of simulated time).  Deltas
  /// just under it can overflow too when they would alias a wheel lap
  /// (see lap_safe).
  static constexpr Tick kHorizon = Tick{1} << (kLevelBits * kLevels);

  TimerWheel() = default;
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Events currently parked in the spill heap (observability for the
  /// horizon-overflow tests).
  [[nodiscard]] std::size_t overflow_size() const { return overflow_.size(); }

  /// Inserts an event.  `t` may be earlier than previously inserted
  /// events (the cursor rewinds); the caller guarantees `t` is not in
  /// its own past and that `seq` increases monotonically across inserts.
  void insert(Tick t, std::uint64_t seq, Callback cb) {
    ++size_;
    if (ready_head_ < ready_.size()) {
      if (t == ready_time_) {
        // Same-tick event scheduled while its tick drains: `seq` is the
        // largest yet, so appending keeps the ready run seq-sorted.
        ready_.push_back(Event{t, seq, std::move(cb)});
        return;
      }
      if (t < ready_time_) spill_ready();
    }
    if (size_ == 1) {
      // Only pending event anywhere: it is by definition the next batch,
      // so serve it straight from the ready run.  A lone timer
      // rescheduling itself (a rig's UART byte clock between bursts, the
      // detector pump on a drained queue) never touches the slot
      // machinery at all.  The cursor may jump forward freely here -
      // nothing else is placed relative to it.
      cursor_ = t;
      ready_time_ = t;
      ready_.push_back(Event{t, seq, std::move(cb)});
      return;
    }
    if (t < cursor_) cursor_ = t;
    place(Event{t, seq, std::move(cb)});
  }

  /// True when an event is pending; `*next_time` is the earliest event's
  /// time.  Idempotent; refills the ready batch when needed but never
  /// loses or reorders events.
  bool peek(Tick* next_time) {
    if (ready_head_ >= ready_.size() && !refill()) return false;
    *next_time = ready_time_;
    return true;
  }

  /// Moves the earliest event out.  Call only after peek() returned
  /// true; the event leaves the container before its callback runs.
  Event pop() {
    Event ev = std::move(ready_[ready_head_++]);
    if (ready_head_ >= ready_.size()) {
      ready_.clear();
      ready_head_ = 0;
    }
    --size_;
    return ev;
  }

 private:
  static constexpr std::size_t kWords = kSlotsPerLevel / 64;

  struct Level {
    std::array<std::vector<Event>, kSlotsPerLevel> slot;
    std::array<std::uint64_t, kWords> bits{};
    std::size_t count = 0;  // events stored at this level
  };

  static void set_bit(Level& lv, std::size_t idx) {
    lv.bits[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  }
  static void clear_bit(Level& lv, std::size_t idx) {
    lv.bits[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  }
  [[nodiscard]] static bool test_bit(const Level& lv, std::size_t idx) {
    return (lv.bits[idx >> 6] >> (idx & 63)) & 1u;
  }

  /// Level whose granularity covers `delta`, or -1 for the spill heap.
  /// The power-of-two thresholds guarantee cascade progress: an event in
  /// the cursor's own window at level l has delta < 2^(8l) and therefore
  /// re-places at a level strictly below l.
  static int level_for(Tick delta) {
    if (delta < (Tick{1} << kLevelBits)) return 0;
    if (delta < (Tick{1} << (2 * kLevelBits))) return 1;
    if (delta < (Tick{1} << (3 * kLevelBits))) return 2;
    if (delta < kHorizon) return 3;
    return -1;
  }

  /// True when `t`'s slot at `level` lies within one lap of the cursor.
  /// A delta near the top of a level's range can land a full lap ahead -
  /// worst case in the cursor's *own* slot, which the candidate scan
  /// would read one lap early and the cascade would re-place in place
  /// forever.  Such events park in the spill heap (place) and migrate
  /// once the cursor advances (refill).  Forward cursor motion only
  /// shrinks slot distances, so placed events stay lap-safe; a cursor
  /// *rewind* (insert of an earlier event) can break the property
  /// retroactively, which refill absorbs: a lap-early candidate is a
  /// lower bound, its slot drains, and stragglers re-place through this
  /// same check.
  [[nodiscard]] bool lap_safe(Tick t, int level) const {
    return (t >> (kLevelBits * level)) - (cursor_ >> (kLevelBits * level)) <
           kSlotsPerLevel;
  }

  /// True when `t` can enter the wheel right now (within horizon and
  /// lap-safe at its level); false sends it to the spill heap.
  [[nodiscard]] bool admissible(Tick t) const {
    const int level = level_for(t - cursor_);
    return level >= 0 && lap_safe(t, level);
  }

  static std::size_t slot_index(Tick t, int level) {
    return static_cast<std::size_t>(t >> (kLevelBits * level)) &
           (kSlotsPerLevel - 1);
  }

  struct OverflowLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void place(Event ev) {
    const int level = level_for(ev.time - cursor_);
    if (level < 0 || !lap_safe(ev.time, level)) {
      overflow_.push_back(std::move(ev));
      std::push_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
      return;
    }
    Level& lv = levels_[static_cast<std::size_t>(level)];
    const std::size_t idx = slot_index(ev.time, level);
    lv.slot[idx].push_back(std::move(ev));
    set_bit(lv, idx);
    ++lv.count;
  }

  /// Returns undrained ready events to the wheel (an earlier event was
  /// inserted after a speculative peek; rare).
  void spill_ready() {
    for (std::size_t i = ready_head_; i < ready_.size(); ++i) {
      place(std::move(ready_[i]));
    }
    ready_.clear();
    ready_head_ = 0;
  }

  /// Moves slot (level, idx) into scratch_ and returns its event count.
  /// The buffer swap recycles capacity between slots and scratch: the
  /// epoch arena that keeps steady-state traffic allocation-free.
  std::size_t take_slot(int level, std::size_t idx) {
    Level& lv = levels_[static_cast<std::size_t>(level)];
    scratch_.swap(lv.slot[idx]);
    clear_bit(lv, idx);
    lv.count -= scratch_.size();
    return scratch_.size();
  }

  /// First occupied slot at or cyclically after `pos`; `*wrapped` is set
  /// when the hit lies one higher-level window ahead.  -1 when empty.
  static int scan_from(const Level& lv, int pos, bool* wrapped) {
    *wrapped = false;
    int w = pos >> 6;
    std::uint64_t word = lv.bits[static_cast<std::size_t>(w)] &
                         (~std::uint64_t{0} << (pos & 63));
    for (;;) {
      if (word != 0) return (w << 6) + std::countr_zero(word);
      if (++w == static_cast<int>(kWords)) break;
      word = lv.bits[static_cast<std::size_t>(w)];
    }
    *wrapped = true;
    for (w = 0; w <= (pos >> 6); ++w) {
      word = lv.bits[static_cast<std::size_t>(w)];
      if (w == (pos >> 6)) word &= ~(~std::uint64_t{0} << (pos & 63));
      if (word != 0) return (w << 6) + std::countr_zero(word);
    }
    return -1;
  }

  /// Refills the ready batch with the earliest tick's events, advancing
  /// the cursor and cascading higher levels as needed.  False when no
  /// events remain anywhere.
  bool refill() {
    ready_.clear();
    ready_head_ = 0;
    if (size_ == 0) return false;
    for (;;) {
      // Spill-heap events the wheel can hold cleanly from the current
      // cursor drop in; the rest wait for the cursor to come closer.
      while (!overflow_.empty() && admissible(overflow_.front().time)) {
        std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
        Event ev = std::move(overflow_.back());
        overflow_.pop_back();
        place(std::move(ev));
      }
      // Cascade any occupied slot covering the cursor's own window: its
      // events belong at a lower level now.
      bool cascaded = false;
      for (int l = 1; l < kLevels; ++l) {
        Level& lv = levels_[static_cast<std::size_t>(l)];
        if (lv.count == 0) continue;
        const std::size_t cur = slot_index(cursor_, l);
        if (!test_bit(lv, cur)) continue;
        const std::size_t n = take_slot(l, cur);
        for (std::size_t i = 0; i < n; ++i) place(std::move(scratch_[i]));
        scratch_.clear();
        cascaded = true;
        break;
      }
      if (cascaded) continue;
      // Earliest candidate window across all levels.  A candidate is a
      // lower bound on its slot's event times: exact in the steady
      // state, an underestimate only after a cursor rewind crossed a
      // window boundary, in which case the drain below re-places the
      // stragglers and the loop converges.
      int best_level = -1;
      std::size_t best_idx = 0;
      Tick best_time = 0;
      for (int l = 0; l < kLevels; ++l) {
        const Level& lv = levels_[static_cast<std::size_t>(l)];
        if (lv.count == 0) continue;
        bool wrapped = false;
        const int s = scan_from(
            lv, static_cast<int>(slot_index(cursor_, l)), &wrapped);
        if (s < 0) continue;
        const int shift = kLevelBits * (l + 1);
        Tick base = (cursor_ >> shift) << shift;
        if (wrapped) base += Tick{1} << shift;
        const Tick t =
            base + (static_cast<Tick>(s) << (kLevelBits * l));
        if (best_level < 0 || t < best_time) {
          best_level = l;
          best_idx = static_cast<std::size_t>(s);
          best_time = t;
        }
      }
      if (best_level < 0) {
        // Wheel empty; jump the cursor to the spill heap's top so the
        // migration loop above pulls the next batch in.
        if (overflow_.empty()) return false;
        cursor_ = overflow_.front().time;
        continue;
      }
      if (!overflow_.empty() && overflow_.front().time <= best_time) {
        // A parked event (not yet admissible from the old cursor) comes
        // first - or ties the candidate tick, where its seq must sort
        // into the same batch.  Advance to it and let migration pull it
        // in; a tied candidate is re-found next iteration.
        cursor_ = overflow_.front().time;
        continue;
      }
      cursor_ = best_time;
      const std::size_t n = take_slot(best_level, best_idx);
      if (best_level == 0) {
        for (std::size_t i = 0; i < n; ++i) {
          if (scratch_[i].time == best_time) {
            ready_.push_back(std::move(scratch_[i]));
          } else {
            // Same residue, a later lap: back into the wheel (delta is
            // now a multiple of 256, so it lands at level >= 1).
            place(std::move(scratch_[i]));
          }
        }
        scratch_.clear();
        if (!ready_.empty()) {
          if (ready_.size() > 1) {
            std::sort(ready_.begin(), ready_.end(),
                      [](const Event& a, const Event& b) {
                        return a.seq < b.seq;
                      });
          }
          ready_time_ = best_time;
          return true;
        }
      } else {
        for (std::size_t i = 0; i < n; ++i) place(std::move(scratch_[i]));
        scratch_.clear();
      }
    }
  }

  std::array<Level, kLevels> levels_;
  std::vector<Event> overflow_;  // min-heap by (time, seq)
  std::vector<Event> ready_;     // current tick's batch, seq-sorted
  std::size_t ready_head_ = 0;
  Tick ready_time_ = 0;
  /// Lower bound on every pending event's time; advances as events
  /// drain, rewinds when an earlier event is inserted.
  Tick cursor_ = 0;
  std::size_t size_ = 0;
  std::vector<Event> scratch_;  // drain staging, capacity recycled
};

}  // namespace offramps::sim
