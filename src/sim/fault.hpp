// Declarative fault-injection engine.
//
// A `FaultSpec` names one physical fault - a stuck or glitching digital
// net, a drifting/open/shorted analog sensor, a corrupted serial byte
// stream, or bounded scheduler timing jitter - with an activation window,
// an intensity, and its own RNG seed so campaigns are exactly
// reproducible cell by cell.  The `FaultInjector` binds specs to concrete
// wires/channels/streams and drives engagement and disengagement from the
// scheduler, which is what lets a campaign sweep fault type x intensity
// over otherwise identical prints.
//
// Design rule: the no-fault path must stay near-free.  Faults act through
// dedicated hooks (`Wire::force_fault`, `AnalogChannel::set_fault`,
// `Scheduler::set_time_warp`, byte-stream corruptors installed only when a
// stream fault is armed); an idle hook costs one predictable branch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "sim/wire.hpp"

namespace offramps::sim {

/// The fault classes the engine can inject.
enum class FaultKind : std::uint8_t {
  // Digital wires (STEP/DIR/EN, endstops, heater gates).
  kStuckHigh,   // net shorted to the supply for the window
  kStuckLow,    // net shorted to ground for the window
  kGlitch,      // spurious pulses; intensity = mean glitches per second
  // Analog channels (thermistor dividers, in ADC counts).
  kAnalogOpen,   // broken wire: divider rails to full scale (1023)
  kAnalogShort,  // shorted divider: reads 0
  kAnalogDrift,  // offset ramp; intensity = ADC counts of drift per second
  // Serial byte streams (UART transaction frames).
  kUartBitFlip,   // intensity = per-byte probability of one flipped bit
  kUartDropByte,  // intensity = per-byte drop probability
  kUartDupByte,   // intensity = per-byte duplication probability
  // Scheduler timing.
  kTimingJitter,  // intensity = max added event latency, microseconds
};

const char* fault_kind_name(FaultKind k);
/// Parses a name produced by fault_kind_name(); throws offramps::Error on
/// unknown names (used by campaign CLIs).
FaultKind fault_kind_from_name(const std::string& name);

[[nodiscard]] bool fault_targets_digital(FaultKind k);
[[nodiscard]] bool fault_targets_analog(FaultKind k);
[[nodiscard]] bool fault_targets_stream(FaultKind k);
[[nodiscard]] bool fault_targets_timing(FaultKind k);

/// One declarative fault.
struct FaultSpec {
  FaultKind kind = FaultKind::kGlitch;
  /// Target net name, e.g. "X_STEP", "X_MIN", "THERM_HOTEND", "uart".
  /// Purely descriptive inside sim; binding to a concrete Wire/channel is
  /// the caller's job (host::Rig resolves names against the board).
  std::string target;
  /// Kind-specific magnitude (see FaultKind).  Zero disarms the fault
  /// entirely - the conventional "control cell" of a campaign sweep.
  double intensity = 1.0;
  /// Activation window, simulation time.  stop == 0 means "until the end".
  Tick start = 0;
  Tick stop = 0;
  /// Per-fault RNG seed: every cell of a sweep is independently seeded.
  std::uint64_t seed = 0x0ffa;
  /// Width of injected glitch pulses (kGlitch only).
  Tick glitch_width = us(2);

  [[nodiscard]] bool enabled() const { return intensity > 0.0; }
  [[nodiscard]] bool window_contains(Tick t) const {
    return t >= start && (stop == 0 || t < stop);
  }
  /// "kind@target i=... window=[a,b)" one-liner for logs and reports.
  [[nodiscard]] std::string describe() const;
};

/// Binds fault specs to simulation objects and runs their windows.
/// Must outlive the simulation it injects into (armed faults hold
/// references to the wires and channels they corrupt).
class FaultInjector {
 public:
  /// Corruptor for one in-flight chunk of serial bytes (a transaction
  /// frame).  May flip bits, erase or duplicate bytes in place.
  using StreamFault = std::function<void(std::vector<std::uint8_t>&)>;

  explicit FaultInjector(Scheduler& sched) : sched_(sched) {}
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms a stuck-at or glitch fault on `wire`.  Engagement and release
  /// are scheduled from the spec's window; a zero-intensity spec is a
  /// recorded no-op.
  void inject_digital(const FaultSpec& spec, Wire& wire);

  /// Arms a drift/open/short fault on `channel`.
  void inject_analog(const FaultSpec& spec, AnalogChannel& channel);

  /// Arms bounded timing jitter on the scheduler for the spec's window.
  /// Only one timing fault may be active at a time (they would compose
  /// unpredictably); arming a second one throws.
  void inject_timing(const FaultSpec& spec);

  /// Builds a byte-stream corruptor for a kUart* spec.  The caller
  /// installs it where bytes flow (e.g. core::UartReporter's frame-fault
  /// hook); it only corrupts inside the spec's window.
  [[nodiscard]] StreamFault make_stream_fault(const FaultSpec& spec);

  /// Observability: everything the engine did, for campaign reports.
  struct Stats {
    std::uint64_t stuck_engagements = 0;
    std::uint64_t glitches = 0;
    std::uint64_t analog_engagements = 0;
    std::uint64_t bytes_flipped = 0;
    std::uint64_t bytes_dropped = 0;
    std::uint64_t bytes_duplicated = 0;
    std::uint64_t timing_windows = 0;
    [[nodiscard]] std::uint64_t total() const {
      return stuck_engagements + glitches + analog_engagements +
             bytes_flipped + bytes_dropped + bytes_duplicated +
             timing_windows;
    }
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Specs armed (including zero-intensity no-ops).
  [[nodiscard]] std::size_t armed() const { return armed_; }

 private:
  struct GlitchState;
  void schedule_glitch(const std::shared_ptr<GlitchState>& st);

  Scheduler& sched_;
  Stats stats_;
  std::size_t armed_ = 0;
  bool timing_armed_ = false;
  bool owns_time_warp_ = false;
  /// Keeps per-fault RNGs alive for the callbacks that capture them.
  std::vector<std::shared_ptr<Rng>> rngs_;
};

}  // namespace offramps::sim
