// Small-buffer-optimized vector for listener lists.
//
// Nearly every `sim::Wire` in the board model has one or two listeners
// (the forwarding connection plus at most one observer), yet each
// `std::vector` puts them behind a heap allocation made during wiring and
// chased on every edge.  `SmallVec<T, N>` stores the first N elements
// inline in the owning object - zero allocations for the common fan-out,
// one cache line fewer per edge delivery - and spills to the heap only
// when a net genuinely fans out wider.
//
// Deliberately minimal: move-only, append/index/iterate/remove_if, no
// insert/erase-at, no shrink.  Exactly what the wire delivery loop needs.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace offramps::sim {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "SmallVec needs at least one inline slot");

 public:
  SmallVec() = default;

  SmallVec(SmallVec&& o) noexcept { steal(std::move(o)); }

  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      destroy_all();
      steal(std::move(o));
    }
    return *this;
  }

  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  ~SmallVec() { destroy_all(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  /// True while elements still live in the owner's inline buffer.
  [[nodiscard]] bool inline_storage() const { return data() == inline_ptr(); }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  void push_back(T v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow();
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void clear() {
    std::destroy_n(data(), size_);
    size_ = 0;
  }

  /// Removes every element matching `pred`, preserving the order of the
  /// survivors (the listener-FIFO guarantee).  Returns the removed count.
  template <typename Pred>
  std::size_t remove_if(Pred pred) {
    T* const first = data();
    T* const last = first + size_;
    T* out = first;
    for (T* p = first; p != last; ++p) {
      if (!pred(*p)) {
        if (out != p) *out = std::move(*p);
        ++out;
      }
    }
    const auto removed = static_cast<std::size_t>(last - out);
    std::destroy_n(out, removed);
    size_ -= removed;
    return removed;
  }

 private:
  T* data() { return heap_ != nullptr ? heap_ : inline_ptr(); }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_ptr(); }
  T* inline_ptr() { return std::launder(reinterpret_cast<T*>(inline_)); }
  const T* inline_ptr() const {
    return std::launder(reinterpret_cast<const T*>(inline_));
  }

  static T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T),
                                          std::align_val_t{alignof(T)}));
  }
  static void deallocate(T* p) {
    ::operator delete(p, std::align_val_t{alignof(T)});
  }

  void grow() {
    const std::size_t new_cap = cap_ * 2;
    T* fresh = allocate(new_cap);
    T* const src = data();
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(src[i]));
    }
    std::destroy_n(src, size_);
    if (heap_ != nullptr) deallocate(heap_);
    heap_ = fresh;
    cap_ = new_cap;
  }

  void destroy_all() {
    std::destroy_n(data(), size_);
    if (heap_ != nullptr) deallocate(heap_);
    heap_ = nullptr;
    size_ = 0;
    cap_ = N;
  }

  void steal(SmallVec&& o) {
    if (o.heap_ != nullptr) {
      heap_ = o.heap_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.heap_ = nullptr;
      o.size_ = 0;
      o.cap_ = N;
    } else {
      heap_ = nullptr;
      cap_ = N;
      size_ = o.size_;
      for (std::size_t i = 0; i < size_; ++i) {
        ::new (static_cast<void*>(inline_ptr() + i))
            T(std::move(o.inline_ptr()[i]));
      }
      std::destroy_n(o.inline_ptr(), o.size_);
      o.size_ = 0;
    }
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace offramps::sim
