// Signal observation helpers: trace recording (the FPGA-as-logic-analyzer
// role from paper section V) and duty-cycle metering (used by the plant to
// integrate heater power and by Trojan T9 to re-modulate the fan PWM).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/wire.hpp"

namespace offramps::sim {

/// One recorded transition.
struct Transition {
  Tick time = 0;
  bool level = false;
};

/// Records every transition of a wire, with summary statistics used by the
/// overhead evaluation (max signal frequency, min pulse width; paper V-B).
class TraceRecorder {
 public:
  /// Starts recording `w` immediately.  `keep_transitions` == false keeps
  /// only the statistics (bounded memory for multi-minute prints).
  explicit TraceRecorder(Wire& w, bool keep_transitions = true)
      : wire_(w), keep_(keep_transitions) {
    id_ = w.on_edge([this](Edge e, Tick t) { record(e, t); });
  }

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  ~TraceRecorder() { wire_.remove_listener(id_); }

  /// All recorded transitions (empty when keep_transitions was false).
  [[nodiscard]] const std::vector<Transition>& transitions() const {
    return log_;
  }

  [[nodiscard]] std::uint64_t rising_edges() const { return rising_; }
  [[nodiscard]] std::uint64_t falling_edges() const { return falling_; }

  /// Shortest observed positive pulse (rising -> falling), or max Tick if
  /// no complete pulse was seen.
  [[nodiscard]] Tick min_high_pulse() const { return min_high_; }

  /// Shortest observed negative pulse (falling -> rising), or max Tick.
  [[nodiscard]] Tick min_low_pulse() const { return min_low_; }

  /// Shortest observed period between consecutive rising edges, or max
  /// Tick.  1e9 / min_period_ns = max signal frequency in Hz.
  [[nodiscard]] Tick min_period() const { return min_period_; }

  /// Maximum observed frequency in Hz (0.0 if fewer than two rising edges).
  [[nodiscard]] double max_frequency_hz() const {
    if (min_period_ == std::numeric_limits<Tick>::max()) return 0.0;
    return static_cast<double>(kTicksPerSecond) /
           static_cast<double>(min_period_);
  }

 private:
  void record(Edge e, Tick t) {
    if (keep_) log_.push_back({t, e == Edge::kRising});
    if (e == Edge::kRising) {
      ++rising_;
      if (rising_ >= 2 && t - last_rise_ < min_period_) {
        min_period_ = t - last_rise_;
      }
      if (falling_ > 0 && t - last_fall_ < min_low_) {
        min_low_ = t - last_fall_;
      }
      last_rise_ = t;
    } else {
      ++falling_;
      if (rising_ > 0 && t - last_rise_ < min_high_) {
        min_high_ = t - last_rise_;
      }
      last_fall_ = t;
    }
  }

  Wire& wire_;
  bool keep_;
  Wire::ListenerId id_ = 0;
  std::vector<Transition> log_;
  std::uint64_t rising_ = 0;
  std::uint64_t falling_ = 0;
  Tick last_rise_ = 0;
  Tick last_fall_ = 0;
  Tick min_high_ = std::numeric_limits<Tick>::max();
  Tick min_low_ = std::numeric_limits<Tick>::max();
  Tick min_period_ = std::numeric_limits<Tick>::max();
};

/// Measures the duty cycle of a PWM-driven wire between successive calls to
/// sample().  Used by the thermal plant (heater MOSFET gates) and the fan.
class DutyMeter {
 public:
  explicit DutyMeter(Wire& w) : wire_(w), last_sample_(w.scheduler().now()) {
    last_edge_ = last_sample_;
    id_ = w.on_edge([this](Edge e, Tick t) {
      if (e == Edge::kFalling) high_accum_ += t - last_edge_;
      last_edge_ = t;
    });
  }

  DutyMeter(const DutyMeter&) = delete;
  DutyMeter& operator=(const DutyMeter&) = delete;
  ~DutyMeter() { wire_.remove_listener(id_); }

  /// Fraction of time the wire was high since the previous sample() (or
  /// since construction).  Returns 0.0 for an empty interval.
  [[nodiscard]] double sample() {
    const Tick now = wire_.scheduler().now();
    Tick high = high_accum_;
    if (wire_.level()) high += now - last_edge_;
    const Tick interval = now - last_sample_;
    // Reset accumulation for the next window.
    high_accum_ = 0;
    last_edge_ = now;
    last_sample_ = now;
    if (interval == 0) return wire_.level() ? 1.0 : 0.0;
    return static_cast<double>(high) / static_cast<double>(interval);
  }

 private:
  Wire& wire_;
  Wire::ListenerId id_ = 0;
  Tick last_sample_ = 0;
  Tick last_edge_ = 0;
  Tick high_accum_ = 0;
};

}  // namespace offramps::sim
