// NTC thermistor + ADC divider model (RAMPS 1.4 thermistor inputs).
//
// A 100 kOhm beta-3950-class NTC forms a divider with a 4.7 kOhm pullup to
// VCC; the ATmega2560 samples the midpoint with a 10-bit ADC.  The plant
// uses temp -> ADC counts to drive the analog net; the firmware uses the
// inverse (its "temperature table") to read it back.  Sharing the exact
// model here mirrors a correctly-configured Marlin; sensor mismatch can be
// emulated by giving the two sides different parameters.
#pragma once

#include <algorithm>
#include <cmath>

namespace offramps::sim {

/// Beta-model NTC thermistor with pullup divider and 10-bit ADC.
struct Thermistor {
  double r25_ohm = 100'000.0;   // resistance at 25 C
  double beta = 4092.0;         // beta coefficient
  double pullup_ohm = 4'700.0;  // divider pullup
  static constexpr double kAdcMax = 1023.0;

  /// Thermistor resistance at `temp_c`.
  [[nodiscard]] double resistance(double temp_c) const {
    const double t_k = temp_c + 273.15;
    return r25_ohm * std::exp(beta * (1.0 / t_k - 1.0 / 298.15));
  }

  /// ADC counts read at `temp_c` (thermistor to ground, pullup to VCC).
  [[nodiscard]] double adc_counts(double temp_c) const {
    const double rt = resistance(temp_c);
    return kAdcMax * rt / (rt + pullup_ohm);
  }

  /// Inverse mapping: temperature for a given ADC reading.  Readings at the
  /// rails (shorted/open sensor) map to extreme temperatures so firmware
  /// min/max-temp protection trips, as on real hardware.
  [[nodiscard]] double temperature(double adc) const {
    const double clamped = std::clamp(adc, 0.5, kAdcMax - 0.5);
    const double rt = pullup_ohm * clamped / (kAdcMax - clamped);
    const double inv_t = 1.0 / 298.15 + std::log(rt / r25_ohm) / beta;
    return 1.0 / inv_t - 273.15;
  }
};

}  // namespace offramps::sim
