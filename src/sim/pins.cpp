#include "sim/pins.hpp"

#include "sim/error.hpp"

namespace offramps::sim {

const char* axis_name(Axis a) {
  switch (a) {
    case Axis::kX: return "X";
    case Axis::kY: return "Y";
    case Axis::kZ: return "Z";
    case Axis::kE: return "E";
  }
  throw Error("axis_name: invalid axis");
}

const char* pin_name(Pin p) {
  switch (p) {
    case Pin::kXStep: return "X_STEP";
    case Pin::kXDir: return "X_DIR";
    case Pin::kXEnable: return "X_EN";
    case Pin::kYStep: return "Y_STEP";
    case Pin::kYDir: return "Y_DIR";
    case Pin::kYEnable: return "Y_EN";
    case Pin::kZStep: return "Z_STEP";
    case Pin::kZDir: return "Z_DIR";
    case Pin::kZEnable: return "Z_EN";
    case Pin::kEStep: return "E_STEP";
    case Pin::kEDir: return "E_DIR";
    case Pin::kEEnable: return "E_EN";
    case Pin::kBedHeat: return "D8_BED_HEAT";
    case Pin::kFan: return "D9_FAN";
    case Pin::kHotendHeat: return "D10_HOTEND_HEAT";
    case Pin::kXMin: return "X_MIN";
    case Pin::kYMin: return "Y_MIN";
    case Pin::kZMin: return "Z_MIN";
    case Pin::kCount: break;
  }
  throw Error("pin_name: invalid pin");
}

const char* apin_name(APin p) {
  switch (p) {
    case APin::kThermHotend: return "THERM_HOTEND";
    case APin::kThermBed: return "THERM_BED";
    case APin::kCount: break;
  }
  throw Error("apin_name: invalid analog pin");
}

PinDirection pin_direction(Pin p) {
  switch (p) {
    case Pin::kXMin:
    case Pin::kYMin:
    case Pin::kZMin:
      return PinDirection::kPrinterToFirmware;
    default:
      return PinDirection::kFirmwareToPrinter;
  }
}

Pin step_pin(Axis a) {
  switch (a) {
    case Axis::kX: return Pin::kXStep;
    case Axis::kY: return Pin::kYStep;
    case Axis::kZ: return Pin::kZStep;
    case Axis::kE: return Pin::kEStep;
  }
  throw Error("step_pin: invalid axis");
}

Pin dir_pin(Axis a) {
  switch (a) {
    case Axis::kX: return Pin::kXDir;
    case Axis::kY: return Pin::kYDir;
    case Axis::kZ: return Pin::kZDir;
    case Axis::kE: return Pin::kEDir;
  }
  throw Error("dir_pin: invalid axis");
}

Pin enable_pin(Axis a) {
  switch (a) {
    case Axis::kX: return Pin::kXEnable;
    case Axis::kY: return Pin::kYEnable;
    case Axis::kZ: return Pin::kZEnable;
    case Axis::kE: return Pin::kEEnable;
  }
  throw Error("enable_pin: invalid axis");
}

Pin min_endstop_pin(Axis a) {
  switch (a) {
    case Axis::kX: return Pin::kXMin;
    case Axis::kY: return Pin::kYMin;
    case Axis::kZ: return Pin::kZMin;
    case Axis::kE: break;
  }
  throw Error("min_endstop_pin: extruder has no endstop");
}

PinBank::PinBank(Scheduler& sched, const std::string& prefix) {
  for (std::size_t i = 0; i < kPinCount; ++i) {
    const Pin p = static_cast<Pin>(i);
    // Enable pins idle high (A4988 /EN deasserted = motor free).
    const bool initial = (p == Pin::kXEnable || p == Pin::kYEnable ||
                          p == Pin::kZEnable || p == Pin::kEEnable);
    wires_[i] = std::make_unique<Wire>(sched, prefix + pin_name(p), initial);
  }
  for (std::size_t i = 0; i < kAPinCount; ++i) {
    const APin p = static_cast<APin>(i);
    analogs_[i] =
        std::make_unique<AnalogChannel>(sched, prefix + apin_name(p));
  }
}

}  // namespace offramps::sim
