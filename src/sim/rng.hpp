// Deterministic random source.
//
// Everything stochastic in the reproduction (firmware "time noise" jitter,
// Trojan trigger randomness, thermistor measurement noise) draws from a
// seeded Rng so runs are exactly reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace offramps::sim {

/// Thin wrapper over std::mt19937_64 with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x0ffa117b5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal sample with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace offramps::sim
