// Library-wide error type.
//
// `offramps::Error` is thrown for API misuse and unrecoverable host-side
// failures (malformed g-code fed to the parser, invalid configuration,
// capture-file format errors).  Conditions that arise *inside* the simulated
// world — thermal runaway, endstop faults, killed prints — are modelled as
// state on the affected component, never as exceptions, because on the real
// hardware they are observable machine states rather than program failures.
#pragma once

#include <stdexcept>
#include <string>

namespace offramps {

/// Base exception for all host-side failures raised by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace offramps
