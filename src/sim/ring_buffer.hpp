// Bounded single-producer/single-consumer ring buffer.
//
// The fleet service decouples a rig's capture tap (producer: the UART
// reporter callback, firing in simulation time) from its online detector
// (consumer: the clock-slaved pump, draining in batches) through one of
// these per rig.  Capacity is fixed at construction, so a stalled
// consumer bounds memory instead of growing a queue without limit; the
// occupancy high-water mark and push/pop counters make backpressure
// observable from the fleet report.
//
// Within one rig the producer and consumer run on the same simulation
// thread (scheduler callbacks), so no atomics are needed - the SPSC
// discipline here is structural: exactly one pushing site and one
// popping site, never reentrantly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/error.hpp"

namespace offramps::sim {

/// Fixed-capacity FIFO of `T` with occupancy accounting.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) {
    if (capacity == 0) {
      throw Error("RingBuffer: capacity must be at least 1");
    }
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == slots_.size(); }

  /// Appends `value`; returns false (value untouched) when full.
  [[nodiscard]] bool try_push(T value) {
    if (full()) return false;
    slots_[(head_ + size_) % slots_.size()] = std::move(value);
    ++size_;
    ++pushed_;
    if (size_ > high_water_) high_water_ = size_;
    return true;
  }

  /// Moves the oldest element into `out`; returns false when empty.
  [[nodiscard]] bool try_pop(T& out) {
    if (empty()) return false;
    out = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    ++popped_;
    return true;
  }

  /// Highest occupancy ever reached (the backpressure gauge).
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  [[nodiscard]] std::uint64_t pushed() const { return pushed_; }
  [[nodiscard]] std::uint64_t popped() const { return popped_; }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
};

}  // namespace offramps::sim
