// Discrete-event scheduler.
//
// Every component in the reproduction (firmware stepper engine, FPGA fabric
// modules, printer plant integrators) advances time by scheduling callbacks
// on a single shared `Scheduler`.  The queue is a min-heap ordered by
// (time, insertion sequence) so simultaneous events run in FIFO order, which
// makes runs fully deterministic for a fixed seed.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/error.hpp"
#include "sim/time.hpp"

namespace offramps::sim {

/// Single-threaded discrete-event scheduler on the 1 ns tick grid.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time.  Inside a callback this is the event's time.
  [[nodiscard]] Tick now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t`.  Scheduling in the past
  /// (t < now()) is an API misuse and throws.
  void schedule_at(Tick t, Callback cb) {
    if (t < now_) {
      throw Error("Scheduler::schedule_at: event scheduled in the past");
    }
    if (time_warp_) {
      t = std::max(now_, time_warp_(now_, t));
      ++warped_events_;
    }
    queue_.push(Event{t, next_seq_++, std::move(cb)});
  }

  /// Timing-fault hook (`sim::FaultInjector`): maps each requested event
  /// time to a (possibly jittered) one.  Results earlier than now() are
  /// clamped.  Pass nullptr to restore exact timing.
  using TimeWarp = std::function<Tick(Tick now, Tick requested)>;
  void set_time_warp(TimeWarp warp) { time_warp_ = std::move(warp); }
  [[nodiscard]] bool time_warp_active() const {
    return static_cast<bool>(time_warp_);
  }
  /// Events scheduled while a time warp was installed.
  [[nodiscard]] std::uint64_t warped_events() const { return warped_events_; }

  /// Schedules `cb` to run `dt` ticks from now.
  void schedule_in(Tick dt, Callback cb) {
    schedule_at(now_ + dt, std::move(cb));
  }

  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// True when no events remain.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Runs the single earliest pending event.  Returns false when idle.
  bool step() {
    if (queue_.empty()) return false;
    // The heap node must be moved out before the callback runs: callbacks
    // routinely schedule further events, which would invalidate top().
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    executed_++;
    ev.cb();
    return true;
  }

  /// Runs all events with time <= `t`, then advances `now()` to exactly `t`.
  /// Returns the number of events executed.
  std::size_t run_until(Tick t) {
    std::size_t n = 0;
    while (!queue_.empty() && queue_.top().time <= t && !stop_requested_) {
      step();
      ++n;
    }
    if (!stop_requested_ && now_ < t) now_ = t;
    return n;
  }

  /// Runs until the queue drains, a stop is requested, or `max_events`
  /// events have executed (a runaway-simulation backstop).  Returns the
  /// number of events executed.
  std::size_t run_all(std::size_t max_events = kDefaultEventLimit) {
    std::size_t n = 0;
    while (!queue_.empty() && !stop_requested_) {
      if (n >= max_events) {
        throw Error("Scheduler::run_all: event limit exceeded (runaway?)");
      }
      step();
      ++n;
    }
    return n;
  }

  /// Asks the current run_* loop to return after the in-flight event.
  void request_stop() { stop_requested_ = true; }

  /// Clears a previous stop request so the scheduler can be driven again.
  void clear_stop() { stop_requested_ = false; }

  /// True if request_stop() was called and not yet cleared.
  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  /// Total number of events executed over the scheduler's lifetime.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  static constexpr std::size_t kDefaultEventLimit = 2'000'000'000;

 private:
  struct Event {
    Tick time = 0;
    std::uint64_t seq = 0;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t warped_events_ = 0;
  bool stop_requested_ = false;
  TimeWarp time_warp_;
};

}  // namespace offramps::sim
