// Discrete-event scheduler.
//
// Every component in the reproduction (firmware stepper engine, FPGA fabric
// modules, printer plant integrators) advances time by scheduling callbacks
// on a single shared `Scheduler`.  Events run in (time, insertion sequence)
// order so simultaneous events run in FIFO order, which makes runs fully
// deterministic for a fixed seed.
//
// Hot-path notes: storage is a hierarchical `TimerWheel` (O(1) bucket
// inserts, batched same-tick drains, recycled slot buffers - see
// timer_wheel.hpp) instead of a binary heap, and callbacks are
// small-buffer-optimized `SmallFn`s, so steady-state event traffic performs
// no per-event allocation and no O(log n) sift.  Metrics, when enabled, are
// accumulated in plain members and flushed to the registry in batches so
// the per-event cost is an increment and a compare, not atomic RMWs and
// clock reads (see execute_instrumented).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/error.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"
#include "sim/timer_wheel.hpp"

namespace offramps::sim {

/// Single-threaded discrete-event scheduler on the 1 ns tick grid.
class Scheduler {
 public:
  using Callback = SmallFn<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

#if OFFRAMPS_OBS_ENABLED
  ~Scheduler() {
    if (obs_batch_events_ != 0) flush_obs();
  }
#endif

  /// Current simulation time.  Inside a callback this is the event's time.
  [[nodiscard]] Tick now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t`.  Scheduling in the past
  /// (t < now()) is an API misuse and throws.
  void schedule_at(Tick t, Callback cb) {
    if (t < now_) {
      throw Error("Scheduler::schedule_at: event scheduled in the past");
    }
    if (time_warp_) {
      t = std::max(now_, time_warp_(now_, t));
      ++warped_events_;
    }
    wheel_.insert(t, next_seq_++, std::move(cb));
  }

  /// Timing-fault hook (`sim::FaultInjector`): maps each requested event
  /// time to a (possibly jittered) one.  Results earlier than now() are
  /// clamped.  Pass nullptr to restore exact timing.
  using TimeWarp = std::function<Tick(Tick now, Tick requested)>;
  void set_time_warp(TimeWarp warp) { time_warp_ = std::move(warp); }
  [[nodiscard]] bool time_warp_active() const {
    return static_cast<bool>(time_warp_);
  }
  /// Events scheduled while a time warp was installed.
  [[nodiscard]] std::uint64_t warped_events() const { return warped_events_; }

  /// Schedules `cb` to run `dt` ticks from now.
  void schedule_in(Tick dt, Callback cb) {
    schedule_at(now_ + dt, std::move(cb));
  }

  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending() const { return wheel_.size(); }

  /// True when no events remain.
  [[nodiscard]] bool idle() const { return wheel_.empty(); }

  /// Events currently parked in the wheel's far-future spill heap
  /// (beyond the TimerWheel::kHorizon delta from the drain cursor).
  [[nodiscard]] std::size_t overflowed() const {
    return wheel_.overflow_size();
  }

  /// Runs the single earliest pending event.  Returns false when idle.
  bool step() {
    Tick t = 0;
    if (!wheel_.peek(&t)) {
#if OFFRAMPS_OBS_ENABLED
      if (obs_batch_events_ != 0) flush_obs();
#endif
      return false;
    }
    execute(wheel_.pop());
    return true;
  }

  /// Runs the earliest pending event if its time is <= `t` (one peek
  /// covers both the emptiness and the deadline check).  Returns false
  /// when idle or the next event lies beyond `t`.
  bool step_if_before(Tick t) {
    Tick next = 0;
    if (!wheel_.peek(&next) || next > t) {
#if OFFRAMPS_OBS_ENABLED
      if (obs_batch_events_ != 0) flush_obs();
#endif
      return false;
    }
    execute(wheel_.pop());
    return true;
  }

  /// Runs all events with time <= `t`, then advances `now()` to exactly `t`.
  /// Returns the number of events executed.
  std::size_t run_until(Tick t) {
    std::size_t n = 0;
    while (!stop_requested_ && step_if_before(t)) ++n;
    if (!stop_requested_ && now_ < t) now_ = t;
#if OFFRAMPS_OBS_ENABLED
    if (obs_batch_events_ != 0) flush_obs();
#endif
    return n;
  }

  /// Runs until the queue drains, a stop is requested, or `max_events`
  /// events have executed (a runaway-simulation backstop).  Returns the
  /// number of events executed.
  std::size_t run_all(std::size_t max_events = kDefaultEventLimit) {
    std::size_t n = 0;
    while (!wheel_.empty() && !stop_requested_) {
      if (n >= max_events) {
#if OFFRAMPS_OBS_ENABLED
        if (obs_batch_events_ != 0) flush_obs();
#endif
        throw Error("Scheduler::run_all: event limit exceeded (runaway?)");
      }
      step();
      ++n;
    }
#if OFFRAMPS_OBS_ENABLED
    if (obs_batch_events_ != 0) flush_obs();
#endif
    return n;
  }

  /// Asks the current run_* loop to return after the in-flight event.
  void request_stop() { stop_requested_ = true; }

  /// Clears a previous stop request so the scheduler can be driven again.
  void clear_stop() { stop_requested_ = false; }

  /// True if request_stop() was called and not yet cleared.
  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  /// Total number of events executed over the scheduler's lifetime.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  static constexpr std::size_t kDefaultEventLimit = 2'000'000'000;

 private:
  void execute(TimerWheel::Event ev) {
    now_ = ev.time;
    ++executed_;
#if OFFRAMPS_OBS_ENABLED
    // One relaxed load + untaken branch on the everyday path (bench_obs
    // holds this under 2% of the event loop); the priced work lives in
    // the cold sibling below.
    if (obs::enabled()) {
      execute_instrumented(std::move(ev));
      return;
    }
#endif
    ev.cb.invoke_unchecked();
  }

#if OFFRAMPS_OBS_ENABLED
  /// Metered dispatch, only reachable while obs::set_enabled(true):
  /// process-wide event count, queue-depth gauge (high-water semantics:
  /// depth at dispatch, including the executing event), and a sampled
  /// wall-clock callback latency histogram (1-in-N per
  /// obs::latency_sample_every()).  Counts and depth accumulate in plain
  /// members and flush to the registry per batch, so the per-event cost
  /// is increments and compares rather than shared atomic RMWs.  Wall
  /// time never feeds back into simulated time, so enabling metrics
  /// cannot change a run.
  void execute_instrumented(TimerWheel::Event ev) {
    if (obs_events_ == nullptr) {
      auto& reg = obs::Registry::instance();
      obs_events_ = &reg.counter("sim.scheduler.events");
      obs_depth_ = &reg.gauge("sim.scheduler.queue_depth");
      obs_latency_ =
          &reg.histogram("sim.scheduler.callback_us",
                         obs::latency_buckets_us());
    }
    ++obs_batch_events_;
    const auto depth = static_cast<std::int64_t>(wheel_.size()) + 1;
    if (depth > obs_depth_high_) obs_depth_high_ = depth;
    if (--obs_sample_countdown_ == 0) {
      obs_sample_countdown_ = obs::latency_sample_every();
      const auto t0 = std::chrono::steady_clock::now();
      ev.cb.invoke_unchecked();
      obs_latency_->observe(obs::us_since(t0));
    } else {
      ev.cb.invoke_unchecked();
    }
    if (obs_batch_events_ >= kObsFlushEvery) flush_obs();
  }

  /// Publishes the accumulated batch to the registry.  Call sites ensure
  /// obs_batch_events_ != 0, which implies the handles are bound.
  void flush_obs() {
    obs_events_->add(obs_batch_events_);
    obs_depth_->set(obs_depth_high_);
    obs_batch_events_ = 0;
    obs_depth_high_ = 0;
  }

  static constexpr std::uint64_t kObsFlushEvery = 1024;
#endif

  TimerWheel wheel_;
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t warped_events_ = 0;
  bool stop_requested_ = false;
  TimeWarp time_warp_;
#if OFFRAMPS_OBS_ENABLED
  obs::Counter* obs_events_ = nullptr;
  obs::Gauge* obs_depth_ = nullptr;
  obs::Histogram* obs_latency_ = nullptr;
  std::uint64_t obs_batch_events_ = 0;
  std::int64_t obs_depth_high_ = 0;
  std::uint32_t obs_sample_countdown_ = 1;
#endif
};

}  // namespace offramps::sim
