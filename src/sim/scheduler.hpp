// Discrete-event scheduler.
//
// Every component in the reproduction (firmware stepper engine, FPGA fabric
// modules, printer plant integrators) advances time by scheduling callbacks
// on a single shared `Scheduler`.  The queue is a min-heap ordered by
// (time, insertion sequence) so simultaneous events run in FIFO order, which
// makes runs fully deterministic for a fixed seed.
//
// Hot-path notes: the heap is a plain `std::vector` driven with
// `std::push_heap`/`std::pop_heap` (no `std::priority_queue`, whose const
// top() forces a const_cast to move the event out), and callbacks are
// small-buffer-optimized `SmallFn`s, so steady-state event traffic performs
// no per-event heap allocation.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/error.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace offramps::sim {

/// Single-threaded discrete-event scheduler on the 1 ns tick grid.
class Scheduler {
 public:
  using Callback = SmallFn<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time.  Inside a callback this is the event's time.
  [[nodiscard]] Tick now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t`.  Scheduling in the past
  /// (t < now()) is an API misuse and throws.
  void schedule_at(Tick t, Callback cb) {
    if (t < now_) {
      throw Error("Scheduler::schedule_at: event scheduled in the past");
    }
    if (time_warp_) {
      t = std::max(now_, time_warp_(now_, t));
      ++warped_events_;
    }
    heap_.push_back(Event{t, next_seq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Timing-fault hook (`sim::FaultInjector`): maps each requested event
  /// time to a (possibly jittered) one.  Results earlier than now() are
  /// clamped.  Pass nullptr to restore exact timing.
  using TimeWarp = std::function<Tick(Tick now, Tick requested)>;
  void set_time_warp(TimeWarp warp) { time_warp_ = std::move(warp); }
  [[nodiscard]] bool time_warp_active() const {
    return static_cast<bool>(time_warp_);
  }
  /// Events scheduled while a time warp was installed.
  [[nodiscard]] std::uint64_t warped_events() const { return warped_events_; }

  /// Schedules `cb` to run `dt` ticks from now.
  void schedule_in(Tick dt, Callback cb) {
    schedule_at(now_ + dt, std::move(cb));
  }

  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// True when no events remain.
  [[nodiscard]] bool idle() const { return heap_.empty(); }

  /// Runs the single earliest pending event.  Returns false when idle.
  bool step() {
    if (heap_.empty()) return false;
    execute(pop_earliest());
    return true;
  }

  /// Runs the earliest pending event if its time is <= `t` (one heap-top
  /// inspection covers both the emptiness and the deadline check).
  /// Returns false when idle or the next event lies beyond `t`.
  bool step_if_before(Tick t) {
    if (heap_.empty() || heap_.front().time > t) return false;
    execute(pop_earliest());
    return true;
  }

  /// Runs all events with time <= `t`, then advances `now()` to exactly `t`.
  /// Returns the number of events executed.
  std::size_t run_until(Tick t) {
    std::size_t n = 0;
    while (!stop_requested_ && step_if_before(t)) ++n;
    if (!stop_requested_ && now_ < t) now_ = t;
    return n;
  }

  /// Runs until the queue drains, a stop is requested, or `max_events`
  /// events have executed (a runaway-simulation backstop).  Returns the
  /// number of events executed.
  std::size_t run_all(std::size_t max_events = kDefaultEventLimit) {
    std::size_t n = 0;
    while (!heap_.empty() && !stop_requested_) {
      if (n >= max_events) {
        throw Error("Scheduler::run_all: event limit exceeded (runaway?)");
      }
      step();
      ++n;
    }
    return n;
  }

  /// Asks the current run_* loop to return after the in-flight event.
  void request_stop() { stop_requested_ = true; }

  /// Clears a previous stop request so the scheduler can be driven again.
  void clear_stop() { stop_requested_ = false; }

  /// True if request_stop() was called and not yet cleared.
  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  /// Total number of events executed over the scheduler's lifetime.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  static constexpr std::size_t kDefaultEventLimit = 2'000'000'000;

 private:
  struct Event {
    Tick time = 0;
    std::uint64_t seq = 0;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Moves the earliest event out of the heap.  The event must leave the
  /// container before its callback runs: callbacks routinely schedule
  /// further events, which would reallocate under top()'s feet.
  Event pop_earliest() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
  }

  void execute(Event ev) {
    now_ = ev.time;
    ++executed_;
#if OFFRAMPS_OBS_ENABLED
    // One relaxed load + untaken branch on the everyday path (bench_obs
    // holds this under 2% of the event loop); the priced work lives in
    // the cold sibling below.
    if (obs::enabled()) {
      execute_instrumented(std::move(ev));
      return;
    }
#endif
    ev.cb();
  }

#if OFFRAMPS_OBS_ENABLED
  /// Metered dispatch, only reachable while obs::set_enabled(true):
  /// process-wide event count, queue-depth gauge (current + high water),
  /// and a wall-clock callback latency histogram.  Wall time never feeds
  /// back into simulated time, so enabling metrics cannot change a run.
  void execute_instrumented(Event ev) {
    static obs::Counter& events =
        obs::Registry::instance().counter("sim.scheduler.events");
    static obs::Gauge& depth =
        obs::Registry::instance().gauge("sim.scheduler.queue_depth");
    static obs::Histogram& latency = obs::Registry::instance().histogram(
        "sim.scheduler.callback_us", obs::latency_buckets_us());
    events.add(1);
    depth.set(static_cast<std::int64_t>(heap_.size()) + 1);
    const auto t0 = std::chrono::steady_clock::now();
    ev.cb();
    latency.observe(obs::us_since(t0));
  }
#endif

  std::vector<Event> heap_;
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t warped_events_ = 0;
  bool stop_requested_ = false;
  TimeWarp time_warp_;
};

}  // namespace offramps::sim
