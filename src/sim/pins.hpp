// Catalog of the Arduino Mega <-> RAMPS 1.4 interface nets that the
// OFFRAMPS board intercepts (paper section III-C).
//
// Digital nets:
//   * STEP / DIR / EN per stepper driver (X, Y, Z, E0) - firmware -> RAMPS
//   * D8 (heated bed MOSFET), D9 (part fan MOSFET), D10 (hotend MOSFET)
//     - firmware -> RAMPS
//   * X/Y/Z min endstops - RAMPS -> firmware
// Analog nets:
//   * hotend / bed thermistor dividers - RAMPS -> firmware (read by the
//     ATmega ADC; interceptable through the Artix-7 XADC + DAC path)
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/wire.hpp"

namespace offramps::sim {

/// Logical axes of the machine.  E is the extruder "axis".
enum class Axis : std::uint8_t { kX = 0, kY = 1, kZ = 2, kE = 3 };

inline constexpr std::size_t kAxisCount = 4;
inline constexpr std::array<Axis, kAxisCount> kAllAxes = {
    Axis::kX, Axis::kY, Axis::kZ, Axis::kE};

/// Short display name for an axis ("X", "Y", "Z", "E").
const char* axis_name(Axis a);

/// Digital nets of the intercepted interface.
enum class Pin : std::uint8_t {
  kXStep, kXDir, kXEnable,
  kYStep, kYDir, kYEnable,
  kZStep, kZDir, kZEnable,
  kEStep, kEDir, kEEnable,
  kBedHeat,     // D8 MOSFET gate
  kFan,         // D9 MOSFET gate
  kHotendHeat,  // D10 MOSFET gate
  kXMin, kYMin, kZMin,  // mechanical endstops (normally-open, active high)
  kCount
};

inline constexpr std::size_t kPinCount = static_cast<std::size_t>(Pin::kCount);

/// Analog nets of the intercepted interface.
enum class APin : std::uint8_t {
  kThermHotend,
  kThermBed,
  kCount
};

inline constexpr std::size_t kAPinCount =
    static_cast<std::size_t>(APin::kCount);

/// Who drives a net in the unmodified Arduino+RAMPS stack.
enum class PinDirection : std::uint8_t {
  kFirmwareToPrinter,  // Arduino output, RAMPS input
  kPrinterToFirmware,  // RAMPS output (endstop/thermistor), Arduino input
};

/// Display name matching the paper's schematic labels (e.g. "X_STEP").
const char* pin_name(Pin p);

/// Display name for an analog net.
const char* apin_name(APin p);

/// Signal direction of `p` in the stock stack.
PinDirection pin_direction(Pin p);

/// STEP pin for `a`.
Pin step_pin(Axis a);
/// DIR pin for `a`.
Pin dir_pin(Axis a);
/// EN pin for `a` (active low at the A4988 driver).
Pin enable_pin(Axis a);
/// Min endstop pin for a positional axis; throws for Axis::kE.
Pin min_endstop_pin(Axis a);

/// One side of the intercepted interface: a full set of wires (one per
/// digital pin) plus the analog channels.  The OFFRAMPS board owns three of
/// these banks: the Arduino-side header, the RAMPS-side header, and the
/// FPGA-facing bank.
class PinBank {
 public:
  /// Creates all wires named "<prefix><PIN_NAME>".
  PinBank(Scheduler& sched, const std::string& prefix);

  PinBank(const PinBank&) = delete;
  PinBank& operator=(const PinBank&) = delete;

  [[nodiscard]] Wire& wire(Pin p) {
    return *wires_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const Wire& wire(Pin p) const {
    return *wires_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] AnalogChannel& analog(APin p) {
    return *analogs_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const AnalogChannel& analog(APin p) const {
    return *analogs_[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] Wire& step(Axis a) { return wire(step_pin(a)); }
  [[nodiscard]] Wire& dir(Axis a) { return wire(dir_pin(a)); }
  [[nodiscard]] Wire& enable(Axis a) { return wire(enable_pin(a)); }
  [[nodiscard]] Wire& min_endstop(Axis a) { return wire(min_endstop_pin(a)); }

 private:
  std::array<std::unique_ptr<Wire>, kPinCount> wires_;
  std::array<std::unique_ptr<AnalogChannel>, kAPinCount> analogs_;
};

}  // namespace offramps::sim
