// VCD (Value Change Dump) export - the "rudimentary digital logic
// analyzer" role of the OFFRAMPS FPGA (paper section V), made concrete:
// any set of wires can be recorded and dumped as an IEEE 1364 VCD file,
// viewable in GTKWave or any waveform viewer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/wire.hpp"

namespace offramps::sim {

/// Records transitions on a set of wires and renders a VCD document.
/// Every recorded wire must outlive the recorder: its destructor
/// detaches the edge listeners it installed.
class VcdRecorder {
 public:
  explicit VcdRecorder(Scheduler& sched) : sched_(sched) {
    start_time_ = sched.now();
  }

  VcdRecorder(const VcdRecorder&) = delete;
  VcdRecorder& operator=(const VcdRecorder&) = delete;
  ~VcdRecorder();

  /// Starts recording `wire` under `label` (defaults to the wire name).
  /// Returns false if the recorder ran out of VCD identifier codes.
  bool add(Wire& wire, std::string label = {});

  /// Number of recorded value changes across all wires.
  [[nodiscard]] std::size_t events() const { return events_.size(); }
  [[nodiscard]] std::size_t channels() const { return channels_.size(); }

  /// Renders the full VCD document (header, initial dump, changes).
  [[nodiscard]] std::string render(const std::string& module_name =
                                       "offramps") const;

 private:
  struct Channel {
    Wire* wire = nullptr;
    std::string label;
    char code = '!';
    bool initial = false;
    Wire::ListenerId listener = 0;
  };
  struct Event {
    Tick time = 0;
    std::size_t channel = 0;
    bool level = false;
  };

  Scheduler& sched_;
  Tick start_time_ = 0;
  std::vector<Channel> channels_;
  std::vector<Event> events_;
};

}  // namespace offramps::sim
