// Simulation time base.
//
// The whole OFFRAMPS reproduction runs on a single discrete time grid of
// 1 tick = 1 ns.  This is fine enough to represent the paper's measured
// propagation delays (12.923 ns worst case through the level shifters and
// FPGA fabric, section V-B) while leaving plenty of headroom in a 64-bit
// counter (2^64 ns is ~584 years of simulated printing).
//
// The emulated Cmod-A7 fabric is clocked at 100 MHz, i.e. one FPGA clock
// cycle every `kFpgaClockTicks` ticks.
#pragma once

#include <cstdint>

namespace offramps::sim {

/// Absolute simulation time in nanoseconds since simulation start.
using Tick = std::uint64_t;

/// Signed duration in nanoseconds (useful for jitter and deltas).
using TickDelta = std::int64_t;

/// Number of ticks per simulated second (1 GHz grid).
inline constexpr Tick kTicksPerSecond = 1'000'000'000;

/// FPGA fabric clock frequency: 100 MHz (one cycle every 10 ticks = 10 ns).
inline constexpr Tick kFpgaClockHz = 100'000'000;

/// Ticks per FPGA clock cycle (10 ns at 100 MHz).
inline constexpr Tick kFpgaClockTicks = kTicksPerSecond / kFpgaClockHz;

/// Converts nanoseconds to ticks (identity on this grid, kept for clarity).
constexpr Tick ns(std::uint64_t v) { return v; }

/// Converts microseconds to ticks.
constexpr Tick us(std::uint64_t v) { return v * 1'000; }

/// Converts milliseconds to ticks.
constexpr Tick ms(std::uint64_t v) { return v * 1'000'000; }

/// Converts whole seconds to ticks.
constexpr Tick seconds(std::uint64_t v) { return v * kTicksPerSecond; }

/// Converts a floating point second count to ticks (rounds toward zero).
constexpr Tick from_seconds(double v) {
  return static_cast<Tick>(v * static_cast<double>(kTicksPerSecond));
}

/// Converts ticks to floating point seconds.
constexpr double to_seconds(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerSecond);
}

/// Rounds `t` up to the next FPGA clock edge (multiples of 10 ns).
constexpr Tick align_to_fpga_clock(Tick t) {
  const Tick rem = t % kFpgaClockTicks;
  return rem == 0 ? t : t + (kFpgaClockTicks - rem);
}

}  // namespace offramps::sim
