#include "svc/channel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "svc/online_detector.hpp"

namespace offramps::svc {

const char* channel_name(Channel c) {
  // Exhaustive by construction: -Werror=switch flags a new Channel value
  // the moment it is added without a name.
  switch (c) {
    case Channel::kNone: return "none";
    case Channel::kGoldenCompare: return "golden-compare";
    case Channel::kStreamLength: return "stream-length";
    case Channel::kGoldenFree: return "golden-free";
    case Channel::kPower: return "power";
    case Channel::kFinalCounts: return "final-counts";
    case Channel::kStaticOracle: return "static-oracle";
    case Channel::kAcoustic: return "acoustic";
    case Channel::kVibration: return "vibration";
  }
  return "?";
}

Channel channel_from_name(std::string_view name) {
  for (std::uint8_t v = 0; v < kChannelCount; ++v) {
    const auto c = static_cast<Channel>(v);
    if (name == channel_name(c)) return c;
  }
  return Channel::kNone;
}

std::string ChannelSet::to_string() const {
  std::string out;
  const auto append = [&out](const char* group) {
    if (!out.empty()) out += ',';
    out += group;
  };
  if (steps) append("steps");
  if (power) append("power");
  if (acoustic) append("acoustic");
  if (vibration) append("vibration");
  if (out.empty()) out = "none";
  return out;
}

ChannelSet ChannelSet::parse(const std::string& text) {
  ChannelSet set{false, false, false, false};
  std::size_t pos = 0;
  bool any = false;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string token = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (token == "steps") {
      set.steps = true;
    } else if (token == "power") {
      set.power = true;
    } else if (token == "acoustic") {
      set.acoustic = true;
    } else if (token == "vibration") {
      set.vibration = true;
    } else if (token == "all") {
      set = ChannelSet{};
    } else {
      throw std::runtime_error("unknown channel group '" + token +
                               "' (want steps|power|acoustic|vibration|all)");
    }
    any = true;
    if (comma == text.size()) break;
  }
  if (!any || set == ChannelSet{false, false, false, false}) {
    throw std::runtime_error("empty channel set");
  }
  return set;
}

const ChannelTrip* pick_first_trip(const std::vector<ChannelTrip>& trips) {
  const ChannelTrip* best = nullptr;
  for (const ChannelTrip& trip : trips) {
    // Strictly-earlier window wins; an equal window keeps the earlier
    // trip (delivery order = channel registration order).
    if (best == nullptr || trip.window < best->window) best = &trip;
  }
  return best;
}

namespace {

// ---------------------------------------------------------------------
// Shared windowed side-channel streaming (the online equivalent of
// detect::compare_side / verify_signature): accumulate per-window means
// against a golden window series, mismatch over tolerance, sustained
// mismatches trip.  Empty windows (sampling gaps) repeat the previous
// mean, mirroring detect::window_means so the online channel sees the
// same series the offline compare would.
class WindowStream {
 public:
  void arm(std::vector<double> golden, double window_s, double tolerance,
           std::uint32_t consecutive_to_flag, std::uint32_t skip_edge) {
    golden_ = std::move(golden);
    window_s_ = window_s;
    tolerance_ = tolerance;
    consecutive_to_flag_ = consecutive_to_flag;
    skip_edge_ = skip_edge;
  }

  [[nodiscard]] bool armed() const { return !golden_.empty(); }

  /// Feeds one sample.  Returns true when a window closed over the
  /// consecutive-mismatch threshold (a trip).
  bool push(double t_s, double value) {
    if (golden_.empty() || window_s_ <= 0.0) return false;
    if (!have_t0_) {
      have_t0_ = true;
      t0_ = t_s;
    }
    const auto w = static_cast<std::size_t>((t_s - t0_) / window_s_);
    bool tripped = false;
    while (window_ < w) tripped = close_window() || tripped;
    sum_ += value;
    ++n_;
    return tripped;
  }

  struct Mismatch {
    std::size_t window = 0;
    double golden = 0.0;
    double observed = 0.0;
  };

  [[nodiscard]] const std::vector<Mismatch>& mismatches() const {
    return mismatches_;
  }
  [[nodiscard]] std::size_t windows_compared() const {
    return windows_compared_;
  }
  [[nodiscard]] double largest_delta() const { return largest_delta_; }
  [[nodiscard]] bool flagged() const { return flagged_; }

 private:
  bool close_window() {
    const double mean =
        n_ > 0 ? sum_ / static_cast<double>(n_) : last_mean_;
    last_mean_ = mean;
    const std::size_t idx = window_;
    ++window_;
    sum_ = 0.0;
    n_ = 0;

    if (idx >= golden_.size()) return false;
    ++windows_compared_;
    // Leading edge windows (heat-up / homing transients) are skipped
    // just like the offline comparison; the trailing edge skip falls
    // out of finish() never closing the last partial windows.
    if (idx < skip_edge_) return false;
    const double golden_v = golden_[idx];
    const double delta = std::abs(golden_v - mean);
    largest_delta_ = std::max(largest_delta_, delta);
    if (delta > tolerance_) {
      mismatches_.push_back({idx, golden_v, mean});
      ++consecutive_;
      if (consecutive_ >= consecutive_to_flag_) {
        flagged_ = true;
        return true;
      }
    } else {
      consecutive_ = 0;
    }
    return false;
  }

  std::vector<double> golden_;
  double window_s_ = 1.0;
  double tolerance_ = 0.0;
  std::uint32_t consecutive_to_flag_ = 3;
  std::uint32_t skip_edge_ = 2;

  std::size_t window_ = 0;  // index of the window being filled
  double t0_ = 0.0;
  bool have_t0_ = false;
  double sum_ = 0.0;
  std::size_t n_ = 0;
  double last_mean_ = 0.0;
  std::uint32_t consecutive_ = 0;

  std::vector<Mismatch> mismatches_;
  std::size_t windows_compared_ = 0;
  double largest_delta_ = 0.0;
  bool flagged_ = false;
};

/// Common verdict bookkeeping: arm state plus first-trip capture.
class BuiltinChannel : public DetectionChannel {
 protected:
  void set_armed(bool armed) { verdict_.armed = armed; }
  [[nodiscard]] bool armed() const { return verdict_.armed; }

  void record_trip(std::uint32_t window, std::uint64_t tick_ns,
                   const std::array<std::int32_t, 4>& counts,
                   std::vector<ChannelTrip>& trips) {
    if (!verdict_.tripped) {
      verdict_.tripped = true;
      verdict_.trip_window = window;
    }
    trips.push_back({info().id, window, tick_ns, counts});
  }

  /// Finalizes counts and appends the attribution row.
  void push_verdict(OnlineReport& report, std::uint64_t windows_compared,
                    std::uint64_t mismatches) const {
    ChannelVerdict v = verdict_;
    v.channel = info().id;
    v.windows_compared = windows_compared;
    v.mismatches = mismatches;
    report.channels.push_back(v);
  }

 private:
  ChannelVerdict verdict_{};
};

// ---------------------------------------------------------------------
// Builtin channels, in the legacy fusion priority order.

/// Windowed step-count compare against the golden capture (the paper's
/// section V-C method, via detect::compare_transaction).
class GoldenCompareChannel final : public BuiltinChannel {
 public:
  explicit GoldenCompareChannel(const OnlineDetectorOptions& options)
      : compare_(options.compare),
        consecutive_to_alarm_(options.consecutive_to_alarm) {}

  [[nodiscard]] ChannelInfo info() const override {
    return {Channel::kGoldenCompare, "golden-compare",
            "windowed step-count compare vs the golden capture",
            ChannelInfo::Group::kSteps};
  }

  void arm(const ChannelRefs& refs) override {
    golden_ = refs.golden;
    set_armed(golden_ != nullptr);
  }

  void on_transaction(const core::Transaction& txn, const StreamContext&,
                      std::vector<ChannelTrip>& trips) override {
    if (golden_ == nullptr) return;
    if (txn.index >= golden_->transactions.size()) return;
    ++compared_;
    const bool bad = detect::compare_transaction(
        golden_->transactions[txn.index], txn, compare_, mismatches_);
    consecutive_ = bad ? consecutive_ + 1 : 0;
    if (consecutive_ >= consecutive_to_alarm_) {
      record_trip(txn.index, txn.time_ns, txn.counts, trips);
    }
  }

  void fill_report(OnlineReport& report) const override {
    report.compare_mismatches = mismatches_.size();
    push_verdict(report, compared_, mismatches_.size());
  }

 private:
  detect::CompareOptions compare_;
  std::uint32_t consecutive_to_alarm_;
  const core::Capture* golden_ = nullptr;
  std::uint32_t consecutive_ = 0;
  std::vector<detect::Mismatch> mismatches_;
  std::uint64_t compared_ = 0;
};

/// Sustained stream overrun past the golden length (print-lengthening
/// Trojans).  Tolerates the compare length tolerance plus a fixed slack
/// (time noise stretches prints slightly).
class StreamLengthChannel final : public BuiltinChannel {
 public:
  explicit StreamLengthChannel(const OnlineDetectorOptions& options)
      : length_tolerance_(options.compare.length_tolerance),
        slack_windows_(options.length_slack_windows) {}

  [[nodiscard]] ChannelInfo info() const override {
    return {Channel::kStreamLength, "stream-length",
            "stream ran measurably longer than the golden print",
            ChannelInfo::Group::kSteps};
  }

  void arm(const ChannelRefs& refs) override {
    golden_ = refs.golden;
    set_armed(golden_ != nullptr);
  }

  void on_transaction(const core::Transaction& txn, const StreamContext&,
                      std::vector<ChannelTrip>& trips) override {
    if (golden_ == nullptr) return;
    const std::size_t golden_len = golden_->transactions.size();
    if (txn.index < golden_len) return;
    ++overrun_windows_;
    const double allowed =
        static_cast<double>(golden_len) * length_tolerance_ +
        static_cast<double>(slack_windows_);
    const auto over = static_cast<double>(txn.index - golden_len + 1);
    if (over > allowed) {
      ++beyond_allowed_;
      record_trip(txn.index, txn.time_ns, txn.counts, trips);
    }
  }

  void fill_report(OnlineReport& report) const override {
    push_verdict(report, overrun_windows_, beyond_allowed_);
  }

 private:
  double length_tolerance_;
  std::uint32_t slack_windows_;
  const core::Capture* golden_ = nullptr;
  std::uint64_t overrun_windows_ = 0;
  std::uint64_t beyond_allowed_ = 0;
};

/// Physical-plausibility rules (no reference needed).
class GoldenFreeChannel final : public BuiltinChannel {
 public:
  explicit GoldenFreeChannel(const OnlineDetectorOptions& options)
      : golden_free_(options.machine),
        min_violations_(options.golden_free_min_violations) {
    set_armed(true);  // reference-free: always able to judge
  }

  [[nodiscard]] ChannelInfo info() const override {
    return {Channel::kGoldenFree, "golden-free",
            "physical-plausibility rule violations (reference-free)",
            ChannelInfo::Group::kSteps};
  }

  void on_transaction(const core::Transaction& txn, const StreamContext&,
                      std::vector<ChannelTrip>& trips) override {
    ++windows_;
    golden_free_.push(txn);
    if (golden_free_.violation_count() >= min_violations_) {
      record_trip(txn.index, txn.time_ns, txn.counts, trips);
    }
  }

  void fill_report(OnlineReport& report) const override {
    report.golden_free = golden_free_.report(min_violations_);
    push_verdict(report, windows_, golden_free_.violation_count());
  }

 private:
  detect::StreamingGoldenFree golden_free_;
  std::size_t min_violations_;
  std::uint64_t windows_ = 0;
};

/// Per-window mean-power compare against a golden power trace (the
/// side-channel baseline class).
class PowerChannel final : public BuiltinChannel {
 public:
  explicit PowerChannel(const OnlineDetectorOptions& options)
      : options_(options.power) {}

  [[nodiscard]] ChannelInfo info() const override {
    return {Channel::kPower, "power",
            "per-window mean-power compare vs the golden power trace",
            ChannelInfo::Group::kPower};
  }

  void arm(const ChannelRefs& refs) override {
    if (refs.golden_power != nullptr) {
      stream_.arm(detect::window_means(*refs.golden_power, options_.window_s),
                  options_.window_s, options_.tolerance_w,
                  options_.consecutive_to_flag, options_.skip_edge_windows);
    }
    set_armed(stream_.armed());
  }

  void on_sample(SampleKind kind, double t_s, double value,
                 const StreamContext& ctx,
                 std::vector<ChannelTrip>& trips) override {
    if (kind != SampleKind::kPower) return;
    if (stream_.push(t_s, value)) {
      record_trip(stream_window(ctx), ctx.last_tick_ns, ctx.last_counts,
                  trips);
    }
  }

  void fill_report(OnlineReport& report) const override {
    detect::PowerReport& p = report.power;
    p.windows_compared = stream_.windows_compared();
    p.largest_delta_w = stream_.largest_delta();
    p.sabotage_likely = stream_.flagged();
    p.mismatches.clear();
    for (const auto& m : stream_.mismatches()) {
      p.mismatches.push_back({m.window, m.golden, m.observed});
    }
    push_verdict(report, stream_.windows_compared(),
                 stream_.mismatches().size());
  }

 private:
  /// Side-channel trips are attributed to the latest drained transaction
  /// window (the stream position the operator can act on).
  static std::uint32_t stream_window(const StreamContext& ctx) {
    return static_cast<std::uint32_t>(
        ctx.windows_processed == 0 ? 0 : ctx.windows_processed - 1);
  }

  detect::PowerSignatureOptions options_;
  WindowStream stream_;
};

/// Acoustic master-signature verification (audio signing): the golden
/// recording is distilled into a MasterSignature and the live recording
/// is verified window-by-window against its levels.
class AcousticChannel final : public BuiltinChannel {
 public:
  explicit AcousticChannel(const OnlineDetectorOptions& options)
      : options_(options.acoustic) {}

  [[nodiscard]] ChannelInfo info() const override {
    return {Channel::kAcoustic, "acoustic",
            "acoustic master-signature verification (audio signing)",
            ChannelInfo::Group::kAcoustic};
  }

  void arm(const ChannelRefs& refs) override {
    if (refs.golden_acoustic != nullptr) {
      signature_ =
          detect::make_master_signature(*refs.golden_acoustic,
                                        options_.window_s);
      stream_.arm(signature_.levels, signature_.window_s, options_.tolerance,
                  options_.consecutive_to_flag, options_.skip_edge_windows);
    }
    set_armed(stream_.armed());
  }

  void on_sample(SampleKind kind, double t_s, double value,
                 const StreamContext& ctx,
                 std::vector<ChannelTrip>& trips) override {
    if (kind != SampleKind::kAcoustic) return;
    if (stream_.push(t_s, value)) {
      record_trip(stream_window(ctx), ctx.last_tick_ns, ctx.last_counts,
                  trips);
    }
  }

  void fill_report(OnlineReport& report) const override {
    fill_side_report(report.acoustic, stream_);
    push_verdict(report, stream_.windows_compared(),
                 stream_.mismatches().size());
  }

  static void fill_side_report(detect::SideReport& r,
                               const WindowStream& stream) {
    r.windows_compared = stream.windows_compared();
    r.largest_delta = stream.largest_delta();
    r.sabotage_likely = stream.flagged();
    r.mismatches.clear();
    for (const auto& m : stream.mismatches()) {
      r.mismatches.push_back({m.window, m.golden, m.observed});
    }
  }

  static std::uint32_t stream_window(const StreamContext& ctx) {
    return static_cast<std::uint32_t>(
        ctx.windows_processed == 0 ? 0 : ctx.windows_processed - 1);
  }

 private:
  detect::SideSignatureOptions options_;
  detect::MasterSignature signature_;
  WindowStream stream_;
};

/// Vibration-signature compare against the golden vibration trace.
class VibrationChannel final : public BuiltinChannel {
 public:
  explicit VibrationChannel(const OnlineDetectorOptions& options)
      : options_(options.vibration) {}

  [[nodiscard]] ChannelInfo info() const override {
    return {Channel::kVibration, "vibration",
            "per-window vibration compare vs the golden vibration trace",
            ChannelInfo::Group::kVibration};
  }

  void arm(const ChannelRefs& refs) override {
    if (refs.golden_vibration != nullptr) {
      stream_.arm(
          detect::window_means(*refs.golden_vibration, options_.window_s),
          options_.window_s, options_.tolerance,
          options_.consecutive_to_flag, options_.skip_edge_windows);
    }
    set_armed(stream_.armed());
  }

  void on_sample(SampleKind kind, double t_s, double value,
                 const StreamContext& ctx,
                 std::vector<ChannelTrip>& trips) override {
    if (kind != SampleKind::kVibration) return;
    if (stream_.push(t_s, value)) {
      record_trip(AcousticChannel::stream_window(ctx), ctx.last_tick_ns,
                  ctx.last_counts, trips);
    }
  }

  void fill_report(OnlineReport& report) const override {
    AcousticChannel::fill_side_report(report.vibration, stream_);
    push_verdict(report, stream_.windows_compared(),
                 stream_.mismatches().size());
  }

 private:
  detect::SideSignatureOptions options_;
  WindowStream stream_;
};

/// The paper's exact (0% margin) end-of-print totals check.  Only
/// meaningful when both prints ran to completion - a capture cut short
/// by our own safe-stop has nothing comparable to freeze.
class FinalCountsChannel final : public BuiltinChannel {
 public:
  explicit FinalCountsChannel(const OnlineDetectorOptions&) {}

  [[nodiscard]] ChannelInfo info() const override {
    return {Channel::kFinalCounts, "final-counts",
            "end-of-print 0%-margin golden totals check",
            ChannelInfo::Group::kSteps};
  }

  void arm(const ChannelRefs& refs) override {
    golden_ = refs.golden;
    set_armed(golden_ != nullptr);
  }

  void on_finish(const core::Capture& capture, const StreamContext& ctx,
                 std::vector<ChannelTrip>& trips) override {
    if (golden_ == nullptr || !capture.print_completed ||
        !golden_->print_completed) {
      return;
    }
    checked_ = true;
    match_ = capture.final_counts == golden_->final_counts;
    if (!match_) {
      record_trip(capture.transactions.empty()
                      ? 0
                      : capture.transactions.back().index,
                  ctx.last_tick_ns, ctx.last_counts, trips);
    }
  }

  void fill_report(OnlineReport& report) const override {
    report.final_counts_match = match_;
    push_verdict(report, checked_ ? 1 : 0, match_ ? 0 : 1);
  }

 private:
  const core::Capture* golden_ = nullptr;
  bool checked_ = false;
  bool match_ = true;
};

/// Static-oracle cross-check (tight margin, no golden print needed).
class StaticOracleChannel final : public BuiltinChannel {
 public:
  explicit StaticOracleChannel(const OnlineDetectorOptions& options)
      : options_(options.static_check) {}

  [[nodiscard]] ChannelInfo info() const override {
    return {Channel::kStaticOracle, "static-oracle",
            "end-of-print static-oracle cross-check",
            ChannelInfo::Group::kSteps};
  }

  void arm(const ChannelRefs& refs) override {
    oracle_ = refs.oracle;
    set_armed(oracle_ != nullptr);
  }

  void on_finish(const core::Capture& capture, const StreamContext& ctx,
                 std::vector<ChannelTrip>& trips) override {
    if (oracle_ == nullptr) return;
    ran_ = true;
    report_ = detect::static_check(*oracle_, capture, options_);
    if (report_.trojan_suspected && report_.print_completed &&
        report_.oracle_armed) {
      record_trip(capture.transactions.empty()
                      ? 0
                      : capture.transactions.back().index,
                  ctx.last_tick_ns, ctx.last_counts, trips);
    }
  }

  void fill_report(OnlineReport& report) const override {
    report.static_final = report_;
    push_verdict(report, ran_ ? 1 : 0, report_.trojan_suspected ? 1 : 0);
  }

 private:
  detect::StaticCheckOptions options_;
  const analyze::Oracle* oracle_ = nullptr;
  bool ran_ = false;
  detect::StaticCheckReport report_{};
};

}  // namespace

ChannelRegistry& ChannelRegistry::global() {
  static ChannelRegistry* registry = [] {
    auto* r = new ChannelRegistry();
    detail::register_builtin_channels(*r);
    return r;
  }();
  return *registry;
}

bool ChannelRegistry::add(ChannelInfo info, ChannelFactory factory) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.info.id == info.id) return false;
  }
  entries_.push_back({info, std::move(factory)});
  return true;
}

std::vector<ChannelInfo> ChannelRegistry::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ChannelInfo> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.info);
  return out;
}

bool ChannelRegistry::has(Channel id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.info.id == id) return true;
  }
  return false;
}

std::unique_ptr<DetectionChannel> ChannelRegistry::make(
    Channel id, const OnlineDetectorOptions& options) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.info.id == id) return e.factory(options);
  }
  return nullptr;
}

std::vector<std::unique_ptr<DetectionChannel>> ChannelRegistry::make_enabled(
    const ChannelSet& set, const OnlineDetectorOptions& options) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::unique_ptr<DetectionChannel>> out;
  for (const Entry& e : entries_) {
    bool enabled = false;
    switch (e.info.group) {
      case ChannelInfo::Group::kSteps: enabled = set.steps; break;
      case ChannelInfo::Group::kPower: enabled = set.power; break;
      case ChannelInfo::Group::kAcoustic: enabled = set.acoustic; break;
      case ChannelInfo::Group::kVibration: enabled = set.vibration; break;
    }
    if (!enabled) continue;
    auto channel = e.factory(options);
    if (channel != nullptr) out.push_back(std::move(channel));
  }
  return out;
}

namespace detail {

void register_builtin_channels(ChannelRegistry& registry) {
  // Registration order is the fusion tie-break order - keep the legacy
  // fused-detector priority: step channels, then the side channels, then
  // the end-of-print checks.
  registry.add({Channel::kGoldenCompare, "golden-compare",
                "windowed step-count compare vs the golden capture",
                ChannelInfo::Group::kSteps},
               [](const OnlineDetectorOptions& o) {
                 return std::make_unique<GoldenCompareChannel>(o);
               });
  registry.add({Channel::kStreamLength, "stream-length",
                "stream ran measurably longer than the golden print",
                ChannelInfo::Group::kSteps},
               [](const OnlineDetectorOptions& o) {
                 return std::make_unique<StreamLengthChannel>(o);
               });
  registry.add({Channel::kGoldenFree, "golden-free",
                "physical-plausibility rule violations (reference-free)",
                ChannelInfo::Group::kSteps},
               [](const OnlineDetectorOptions& o)
                   -> std::unique_ptr<DetectionChannel> {
                 if (!o.golden_free) return nullptr;
                 return std::make_unique<GoldenFreeChannel>(o);
               });
  registry.add({Channel::kPower, "power",
                "per-window mean-power compare vs the golden power trace",
                ChannelInfo::Group::kPower},
               [](const OnlineDetectorOptions& o) {
                 return std::make_unique<PowerChannel>(o);
               });
  registry.add({Channel::kAcoustic, "acoustic",
                "acoustic master-signature verification (audio signing)",
                ChannelInfo::Group::kAcoustic},
               [](const OnlineDetectorOptions& o) {
                 return std::make_unique<AcousticChannel>(o);
               });
  registry.add({Channel::kVibration, "vibration",
                "per-window vibration compare vs the golden vibration trace",
                ChannelInfo::Group::kVibration},
               [](const OnlineDetectorOptions& o) {
                 return std::make_unique<VibrationChannel>(o);
               });
  registry.add({Channel::kFinalCounts, "final-counts",
                "end-of-print 0%-margin golden totals check",
                ChannelInfo::Group::kSteps},
               [](const OnlineDetectorOptions& o)
                   -> std::unique_ptr<DetectionChannel> {
                 if (!o.final_checks) return nullptr;
                 return std::make_unique<FinalCountsChannel>(o);
               });
  registry.add({Channel::kStaticOracle, "static-oracle",
                "end-of-print static-oracle cross-check",
                ChannelInfo::Group::kSteps},
               [](const OnlineDetectorOptions& o)
                   -> std::unique_ptr<DetectionChannel> {
                 if (!o.final_checks) return nullptr;
                 return std::make_unique<StaticOracleChannel>(o);
               });
}

}  // namespace detail

}  // namespace offramps::svc
