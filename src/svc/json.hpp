// Minimal JSON reader for the fleet service's configuration surface.
//
// The fleet daemon takes its rig matrix as a JSON spec file; this is the
// self-contained parser for it (the repository's JSON *writers* stay
// hand-rolled snprintf renderers - only configuration input needs a
// reader).  Full JSON value model, recursive descent, UTF-8 passed
// through verbatim, \uXXXX escapes rejected rather than mis-decoded.
// Throws offramps::Error with a byte offset on malformed input.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace offramps::svc::json {

/// Recursion-depth ceiling of the recursive-descent reader.  A hostile
/// spec file of nothing but '[' characters costs one stack frame per
/// nesting level; the parser rejects documents deeper than this with
/// "nesting too deep" instead of overflowing the stack.  64 is far
/// beyond any legitimate fleet spec (which nests 3 levels).
inline constexpr int kMaxParseDepth = 64;

/// One parsed JSON value (a tagged tree).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> items;                            // kArray
  std::vector<std::pair<std::string, Value>> fields;   // kObject, in order

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// Typed accessors with fallbacks (absent or differently-typed members
  /// yield the fallback - the spec surface treats both as "not given").
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing data
/// rejected).  Throws offramps::Error on malformed input.
Value parse(const std::string& text);

}  // namespace offramps::svc::json
