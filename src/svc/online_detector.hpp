// Online streaming Trojan detection (the fleet service's per-rig brain).
//
// The paper's detection is one-shot: capture the whole print, then
// compare.  Its Discussion notes the board "cannot currently support
// [detection]" without a host in the loop - this class is that host-side
// loop, made streaming: capture transactions are consumed incrementally
// through a bounded SPSC ring buffer as the rig emits them, and every
// window is judged the moment it is drained, so sabotage is flagged
// *while the print is running* instead of after the material is wasted.
//
// Detection is pluggable: each way of judging the stream is one
// `DetectionChannel` (svc/channel.hpp) instantiated from the process
// registry.  The detector delivers every event - transaction window,
// side-channel sample, end of stream - to each enabled channel in
// registration order, then *fuses* the trips they emit into one
// first-alarm verdict (earliest window wins; ties go to the earlier
// registered channel) with per-channel attribution in the report.
// The builtin channels:
//
//   * golden compare  - windowed step-count compare against a golden
//                       capture (the paper's section V-C method, via
//                       detect::compare_transaction);
//   * stream length   - sustained stream overrun (print-lengthening
//                       Trojans);
//   * golden-free     - the physical-plausibility rules of
//                       detect::StreamingGoldenFree (no reference
//                       needed);
//   * power signature - per-window mean-power compare against a golden
//                       power trace (the side-channel baseline class);
//   * acoustic        - audio-signing master-signature verification of
//                       the machine's acoustic emission;
//   * vibration       - per-window vibration-signature compare;
//   * final checks    - at end of stream, the paper's exact 0%-margin
//                       final-count check and the static-oracle
//                       cross-check.  These are post-print by nature
//                       and are reported as such.
//
// Backpressure: the ring has fixed capacity.  When a push finds it full
// the producer STALLS - the backlog is drained inline (consumer
// catch-up) until a slot frees, and the stall is counted.  Transactions
// are never dropped or duplicated; memory per rig stays bounded at the
// ring capacity.  The occupancy high-water mark and stall counter
// surface in the report so a fleet operator can see which detectors run
// hot.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analyze/oracle.hpp"
#include "core/capture.hpp"
#include "obs/metrics.hpp"
#include "detect/compare.hpp"
#include "detect/golden_free.hpp"
#include "detect/side_channel.hpp"
#include "detect/static_check.hpp"
#include "plant/side_channel.hpp"
#include "sim/ring_buffer.hpp"
#include "svc/channel.hpp"

namespace offramps::svc {

/// Detector tuning.
struct OnlineDetectorOptions {
  /// Which channel groups to instantiate (see svc/channel.hpp).
  ChannelSet channels{};

  /// Windowed golden comparison (paper defaults: 5% margin).
  detect::CompareOptions compare{};
  /// Consecutive suspicious windows before the golden-compare channel
  /// alarms (debounces isolated drift spikes).
  std::uint32_t consecutive_to_alarm = 2;
  /// Windows past the golden length (beyond the compare length
  /// tolerance) before the overrun channel alarms.
  std::uint32_t length_slack_windows = 8;

  /// Golden-free channel (set false to disable).
  bool golden_free = true;
  detect::MachineModel machine{};
  /// Violations before the golden-free channel alarms.
  std::size_t golden_free_min_violations = 3;

  /// Power channel tuning (armed only when a golden trace is provided).
  detect::PowerSignatureOptions power{};
  /// Acoustic master-signature channel tuning.  The tolerance rides the
  /// jitter-driven spread between two honest prints of the same part,
  /// which the acoustic tone weights amplify harder than power does.
  detect::SideSignatureOptions acoustic{1.0, 5.0, 3, 2};
  /// Vibration channel tuning (the gantry axes swing the largest
  /// levels, so honest spread is widest here).
  detect::SideSignatureOptions vibration{1.0, 8.0, 3, 2};

  /// End-of-print checks (exact golden finals, static oracle).
  bool final_checks = true;
  detect::StaticCheckOptions static_check{};

  /// Transactions the ring buffer holds before backpressure engages.
  std::size_t ring_capacity = 64;
};

/// Detector health/verdict snapshot - the per-rig record the fleet
/// report aggregates.
struct OnlineReport {
  bool alarmed = false;
  /// True when the first alarm fired while the stream was live (before
  /// finish()): the operator could have stopped the print.
  bool alarmed_mid_print = false;
  Channel first_channel = Channel::kNone;
  std::uint32_t alarm_window = 0;    // transaction index of the alarm
  std::uint64_t alarm_tick_ns = 0;   // sim time of the alarming window
  /// 1-based g-code program line the machine was executing at the alarm
  /// (estimated from the static oracle's segment trace; 0 = unknown).
  std::size_t alarm_gcode_line = 0;

  std::size_t windows_processed = 0;
  std::size_t ring_high_water = 0;
  std::uint64_t backpressure_stalls = 0;
  bool stream_finished = false;

  /// Channel detail, embeddable via the reports' to_json().
  std::size_t compare_mismatches = 0;
  detect::GoldenFreeReport golden_free;
  detect::PowerReport power;
  detect::SideReport acoustic;
  detect::SideReport vibration;
  bool final_counts_match = true;
  detect::StaticCheckReport static_final;
  /// Per-channel attribution rows, one per instantiated channel, in
  /// registration order.
  std::vector<ChannelVerdict> channels;

  [[nodiscard]] std::string to_string() const;
};

/// Estimates the 1-based g-code line being executed when the armed
/// counters read `counts`, by walking the oracle's counted segments on
/// the near-monotone E+Z progress axes.  0 when the oracle never armed.
std::size_t estimate_gcode_line(const analyze::Oracle& oracle,
                                const std::array<std::int32_t, 4>& counts);

/// Streaming multi-channel detector over one rig's capture feed.
class OnlineDetector {
 public:
  using AlarmCallback = std::function<void(const OnlineReport&)>;

  explicit OnlineDetector(OnlineDetectorOptions options = {});

  OnlineDetector(const OnlineDetector&) = delete;
  OnlineDetector& operator=(const OnlineDetector&) = delete;

  /// Arms the golden-compare (and final-counts) channel.  The capture
  /// must outlive the detector.
  void set_golden(const core::Capture* golden) { refs_.golden = golden; }
  /// Arms the static-oracle final check and g-code line attribution.
  void set_oracle(const analyze::Oracle* oracle) { refs_.oracle = oracle; }
  /// Arms the power channel.  The trace must outlive the detector.
  void set_golden_power(const plant::PowerTrace* trace) {
    refs_.golden_power = trace;
  }
  /// Arms the acoustic master-signature channel.
  void set_golden_acoustic(const plant::SideTrace* trace) {
    refs_.golden_acoustic = trace;
  }
  /// Arms the vibration channel.
  void set_golden_vibration(const plant::SideTrace* trace) {
    refs_.golden_vibration = trace;
  }

  /// Alarm hook, fired once on the first alarm (any channel).  The fleet
  /// orchestrator uses this for mid-print safe-stop.
  void on_alarm(AlarmCallback cb) { on_alarm_ = std::move(cb); }

  /// Producer side: queues one transaction.  Stalls (drains inline) when
  /// the ring is full - see the backpressure contract above.
  void submit(const core::Transaction& txn);

  /// Producer side: one power sample (seconds, watts).
  void submit_power(double t_s, double watts) {
    submit_sample(SampleKind::kPower, t_s, watts);
  }

  /// Producer side: one side-channel sample of any kind.
  void submit_sample(SampleKind kind, double t_s, double value);

  /// Consumer side: processes up to `max_windows` queued transactions.
  /// Returns the number processed.
  std::size_t poll(std::size_t max_windows);

  /// Consumer side: drains the whole backlog.
  std::size_t drain();

  /// End of stream: drains, then runs the end-of-print checks against
  /// the finalized capture (exact golden finals, static oracle).
  void finish(const core::Capture& capture);

  [[nodiscard]] bool alarmed() const { return report_.alarmed; }
  [[nodiscard]] std::size_t queued() const { return ring_.size(); }
  [[nodiscard]] std::size_t windows_processed() const {
    return report_.windows_processed;
  }

  /// Current snapshot (valid at any point in the stream).
  [[nodiscard]] OnlineReport report() const;

 private:
  /// Dispatches to process_impl(), wrapped in the obs:: window timer
  /// when metrics are enabled (never touches detection state itself, so
  /// instrumentation cannot change a verdict).
  void process(const core::Transaction& txn);
  void process_impl(const core::Transaction& txn);
  /// Arms every channel with the accumulated references, once, before
  /// the first event is delivered.
  void ensure_armed();
  /// Fuses the trips one event produced into the first-alarm verdict.
  void fuse(const std::vector<ChannelTrip>& trips);
  void raise(const ChannelTrip& trip);

  OnlineDetectorOptions options_;
  sim::RingBuffer<core::Transaction> ring_;
  ChannelRefs refs_;
  std::vector<std::unique_ptr<DetectionChannel>> channels_;
  bool armed_ = false;
  AlarmCallback on_alarm_;

  OnlineReport report_;
  StreamContext ctx_;
  std::vector<ChannelTrip> trips_;  // per-event scratch (no realloc churn)
  std::uint64_t backpressure_stalls_ = 0;
  bool finished_ = false;
  bool draining_ = false;

#if OFFRAMPS_OBS_ENABLED
  // Registry handles, bound lazily on the first metered window so a
  // detector that never runs with metrics enabled registers nothing
  // (keeping the exported document identical to pre-instrumentation
  // runs).  The countdown samples the wall-clock window timer 1-in-N
  // per obs::latency_sample_every(); the window *counter* stays exact.
  obs::Counter* obs_windows_ = nullptr;
  obs::Histogram* obs_window_us_ = nullptr;
  std::uint32_t obs_sample_countdown_ = 1;
#endif
};

}  // namespace offramps::svc
