#include "svc/checkpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/error.hpp"

namespace offramps::svc {

namespace {

// ---------------------------------------------------------------- writer

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// ---------------------------------------------------------------- reader

/// Bounded little-endian reader: every read is preceded by need(), and
/// every count is checked against the bytes actually left, so a lying
/// length prefix fails *before* any allocation (same discipline as
/// core::Capture::from_binary).
struct Rd {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  [[nodiscard]] std::size_t remaining() const { return size - pos; }

  void need(std::size_t n, const char* what) const {
    if (remaining() < n) {
      throw Error(std::string("checkpoint: truncated input reading ") + what);
    }
  }

  std::uint8_t u8(const char* what) {
    need(1, what);
    return data[pos++];
  }

  std::uint16_t u16(const char* what) {
    need(2, what);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v |= static_cast<std::uint16_t>(data[pos++]) << (8 * i);
    }
    return v;
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
    }
    return v;
  }

  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
    }
    return v;
  }

  std::int64_t i64(const char* what) {
    return static_cast<std::int64_t>(u64(what));
  }

  double f64(const char* what) {
    const std::uint64_t bits = u64(what);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str(const char* what) {
    const std::uint32_t n = u32(what);
    need(n, what);
    std::string s(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return s;
  }
};

template <typename Enum>
Enum checked_enum(std::uint8_t raw, std::uint8_t max, const char* what) {
  if (raw > max) {
    throw Error(std::string("checkpoint: out-of-range ") + what + " value " +
                std::to_string(raw));
  }
  return static_cast<Enum>(raw);
}

// ------------------------------------------------------- outcome records

void put_outcome(std::vector<std::uint8_t>& out, const RigOutcome& r) {
  put_str(out, r.spec.name);
  put_u64(out, r.spec.seed);
  put_f64(out, r.spec.cube_mm);
  put_f64(out, r.spec.height_mm);
  put_u8(out, static_cast<std::uint8_t>(r.spec.sabotage.kind));
  put_f64(out, r.spec.sabotage.factor);
  put_u32(out, r.spec.sabotage.every_n);
  put_u8(out, static_cast<std::uint8_t>(r.spec.chaos.kind));
  put_u32(out, r.spec.chaos.fires_for);
  put_f64(out, r.spec.chaos.crash_at_s);
  put_u32(out, r.spec.chaos.after);

  put_u8(out, static_cast<std::uint8_t>(r.status));
  put_u32(out, r.attempts);
  put_str(out, r.failure_cause);

  put_u8(out, r.print_finished ? 1 : 0);
  put_u8(out, r.safe_stopped ? 1 : 0);
  put_str(out, r.kill_reason);
  put_f64(out, r.sim_seconds);
  for (const std::int64_t c : r.final_counts) put_i64(out, c);

  const OnlineReport& d = r.detector;
  put_u8(out, d.alarmed ? 1 : 0);
  put_u8(out, d.alarmed_mid_print ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(d.first_channel));
  put_u32(out, d.alarm_window);
  put_u64(out, d.alarm_tick_ns);
  put_u64(out, d.alarm_gcode_line);
  put_u64(out, d.windows_processed);
  put_u64(out, d.ring_high_water);
  put_u64(out, d.backpressure_stalls);
  put_u8(out, d.stream_finished ? 1 : 0);
  put_u64(out, d.compare_mismatches);
  // Nested channel reports are persisted as *counts*: to_json only ever
  // renders sizes of these vectors, so resume rebuilds them as
  // default-constructed entries of the right count and the report stays
  // byte for byte.
  put_u64(out, d.golden_free.violations.size());
  put_u64(out, d.power.windows_compared);
  put_u64(out, d.power.mismatches.size());
  put_u64(out, d.acoustic.windows_compared);
  put_u64(out, d.acoustic.mismatches.size());
  put_u64(out, d.vibration.windows_compared);
  put_u64(out, d.vibration.mismatches.size());
  put_u8(out, d.final_counts_match ? 1 : 0);
  put_u8(out, d.static_final.trojan_suspected ? 1 : 0);

  // Per-channel verdict rows: the report's attribution array renders
  // every field, so they are persisted whole, not as counts.
  put_u8(out, static_cast<std::uint8_t>(d.channels.size()));
  for (const ChannelVerdict& v : d.channels) {
    put_u8(out, static_cast<std::uint8_t>(v.channel));
    put_u8(out, v.armed ? 1 : 0);
    put_u8(out, v.tripped ? 1 : 0);
    put_u32(out, v.trip_window);
    put_u64(out, v.windows_compared);
    put_u64(out, v.mismatches);
  }
}

RigOutcome read_outcome(Rd& r) {
  RigOutcome out;
  out.spec.name = r.str("rig name");
  out.spec.seed = r.u64("rig seed");
  out.spec.cube_mm = r.f64("rig cube_mm");
  out.spec.height_mm = r.f64("rig height_mm");
  out.spec.sabotage.kind = checked_enum<Sabotage::Kind>(
      r.u8("sabotage kind"), 2, "sabotage kind");
  out.spec.sabotage.factor = r.f64("sabotage factor");
  out.spec.sabotage.every_n = r.u32("sabotage every_n");
  out.spec.chaos.kind =
      checked_enum<host::ChaosKind>(r.u8("chaos kind"), 9, "chaos kind");
  out.spec.chaos.fires_for = r.u32("chaos fires_for");
  out.spec.chaos.crash_at_s = r.f64("chaos crash_at_s");
  out.spec.chaos.after = r.u32("chaos after");

  out.status = checked_enum<RigStatus>(r.u8("rig status"), 4, "rig status");
  out.attempts = r.u32("rig attempts");
  out.failure_cause = r.str("failure cause");

  out.print_finished = r.u8("print_finished") != 0;
  out.safe_stopped = r.u8("safe_stopped") != 0;
  out.kill_reason = r.str("kill reason");
  out.sim_seconds = r.f64("sim_seconds");
  for (std::int64_t& c : out.final_counts) c = r.i64("final counts");

  OnlineReport& d = out.detector;
  d.alarmed = r.u8("alarmed") != 0;
  d.alarmed_mid_print = r.u8("alarmed_mid_print") != 0;
  d.first_channel = checked_enum<Channel>(
      r.u8("alarm channel"), kChannelCount - 1, "alarm channel");
  d.alarm_window = r.u32("alarm_window");
  d.alarm_tick_ns = r.u64("alarm_tick_ns");
  d.alarm_gcode_line = static_cast<std::size_t>(r.u64("alarm_gcode_line"));
  d.windows_processed = static_cast<std::size_t>(r.u64("windows_processed"));
  d.ring_high_water = static_cast<std::size_t>(r.u64("ring_high_water"));
  d.backpressure_stalls = r.u64("backpressure_stalls");
  d.stream_finished = r.u8("stream_finished") != 0;
  d.compare_mismatches = static_cast<std::size_t>(r.u64("compare_mismatches"));
  const std::uint64_t gf = r.u64("golden-free violation count");
  const std::uint64_t pw = r.u64("power windows compared");
  const std::uint64_t pm = r.u64("power mismatch count");
  // Bound the resize the same way a capture bounds its transaction
  // count: a default-constructed violation costs tens of bytes, so cap
  // the claimed counts against the *entire* input size - a lying count
  // cannot out-allocate the file that carried it.
  const std::uint64_t aw = r.u64("acoustic windows compared");
  const std::uint64_t am = r.u64("acoustic mismatch count");
  const std::uint64_t vw = r.u64("vibration windows compared");
  const std::uint64_t vm = r.u64("vibration mismatch count");
  if (gf > r.size || pm > r.size || am > r.size || vm > r.size) {
    throw Error("checkpoint: nested report count exceeds input size");
  }
  d.golden_free.violations.resize(static_cast<std::size_t>(gf));
  d.power.windows_compared = static_cast<std::size_t>(pw);
  d.power.mismatches.resize(static_cast<std::size_t>(pm));
  d.acoustic.windows_compared = static_cast<std::size_t>(aw);
  d.acoustic.mismatches.resize(static_cast<std::size_t>(am));
  d.vibration.windows_compared = static_cast<std::size_t>(vw);
  d.vibration.mismatches.resize(static_cast<std::size_t>(vm));
  d.final_counts_match = r.u8("final_counts_match") != 0;
  d.static_final.trojan_suspected = r.u8("static_trojan_suspected") != 0;

  const std::uint8_t n_channels = r.u8("channel verdict count");
  if (n_channels > kChannelCount) {
    throw Error("checkpoint: channel verdict count exceeds channel space");
  }
  d.channels.resize(n_channels);
  for (ChannelVerdict& v : d.channels) {
    v.channel = checked_enum<Channel>(r.u8("verdict channel"),
                                      kChannelCount - 1, "verdict channel");
    v.armed = r.u8("verdict armed") != 0;
    v.tripped = r.u8("verdict tripped") != 0;
    v.trip_window = r.u32("verdict trip window");
    v.windows_compared = r.u64("verdict windows compared");
    v.mismatches = r.u64("verdict mismatches");
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> Checkpoint::to_binary() const {
  std::vector<std::uint8_t> out;
  out.reserve(1024);
  out.push_back('O');
  out.push_back('F');
  out.push_back('C');
  out.push_back('K');
  put_u16(out, kVersion);
  put_u16(out, 0);  // reserved
  put_u64(out, spec_digest);
  put_u32(out, total_rigs);

  put_u32(out, static_cast<std::uint32_t>(references.size()));
  for (const ReferenceSnapshot& ref : references) {
    const std::vector<std::uint8_t> blob = ref.golden.to_binary();
    put_u64(out, blob.size());
    out.insert(out.end(), blob.begin(), blob.end());
    put_u64(out, ref.golden_power.size());
    for (const plant::PowerSample& s : ref.golden_power) {
      put_f64(out, s.t_s);
      put_f64(out, s.watts);
    }
    for (const plant::SideTrace* trace :
         {&ref.golden_acoustic, &ref.golden_vibration}) {
      put_u64(out, trace->size());
      for (const plant::SideSample& s : *trace) {
        put_f64(out, s.t_s);
        put_f64(out, s.value);
      }
    }
  }

  put_u32(out, static_cast<std::uint32_t>(done.size()));
  for (const auto& [index, outcome] : done) {
    put_u32(out, index);
    put_outcome(out, outcome);
  }
  return out;
}

Checkpoint Checkpoint::from_binary(const std::uint8_t* data,
                                   std::size_t size) {
  Rd r{data, size};
  r.need(4, "magic");
  if (std::memcmp(data, "OFCK", 4) != 0) {
    throw Error("checkpoint: bad magic (not an OFCK checkpoint)");
  }
  r.pos = 4;
  const std::uint16_t version = r.u16("version");
  if (version != kVersion) {
    throw Error("checkpoint: unsupported format version " +
                std::to_string(version) + " (this build reads version " +
                std::to_string(kVersion) + ")");
  }
  (void)r.u16("reserved");

  Checkpoint ck;
  ck.spec_digest = r.u64("spec digest");
  ck.total_rigs = r.u32("total rigs");

  const std::uint32_t n_refs = r.u32("reference count");
  // Each reference costs at least 16 bytes on the wire.
  if (n_refs > r.remaining() / 16) {
    throw Error("checkpoint: reference count exceeds input size");
  }
  ck.references.resize(n_refs);
  for (ReferenceSnapshot& ref : ck.references) {
    const std::uint64_t blob_len = r.u64("golden capture length");
    r.need(blob_len, "golden capture");
    ref.golden = core::Capture::from_binary(data + r.pos,
                                            static_cast<std::size_t>(blob_len));
    r.pos += static_cast<std::size_t>(blob_len);
    const std::uint64_t n_samples = r.u64("power sample count");
    if (n_samples > r.remaining() / 16) {
      throw Error("checkpoint: power sample count exceeds remaining input");
    }
    ref.golden_power.resize(static_cast<std::size_t>(n_samples));
    for (plant::PowerSample& s : ref.golden_power) {
      s.t_s = r.f64("power sample time");
      s.watts = r.f64("power sample watts");
    }
    for (plant::SideTrace* trace :
         {&ref.golden_acoustic, &ref.golden_vibration}) {
      const std::uint64_t n_side = r.u64("side sample count");
      if (n_side > r.remaining() / 16) {
        throw Error("checkpoint: side sample count exceeds remaining input");
      }
      trace->resize(static_cast<std::size_t>(n_side));
      for (plant::SideSample& s : *trace) {
        s.t_s = r.f64("side sample time");
        s.value = r.f64("side sample value");
      }
    }
  }

  const std::uint32_t n_done = r.u32("completed rig count");
  if (n_done > ck.total_rigs) {
    throw Error("checkpoint: more completed rigs than the campaign has");
  }
  ck.done.reserve(n_done);
  for (std::uint32_t i = 0; i < n_done; ++i) {
    const std::uint32_t index = r.u32("rig index");
    if (index >= ck.total_rigs) {
      throw Error("checkpoint: completed rig index out of range");
    }
    ck.done.emplace_back(index, read_outcome(r));
  }
  if (r.remaining() != 0) {
    throw Error("checkpoint: trailing bytes after the last record");
  }
  std::sort(ck.done.begin(), ck.done.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return ck;
}

void Checkpoint::save(const std::string& path) const {
  const obs::Span span("checkpoint/save", "fleet");
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::uint8_t> bytes = to_binary();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("checkpoint: cannot open for writing: " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw Error("checkpoint: short write: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw Error("checkpoint: atomic rename failed: " + tmp + " -> " + path +
                ": " + ec.message());
  }
#if OFFRAMPS_OBS_ENABLED
  if (obs::enabled()) {
    static obs::Counter& saves =
        obs::Registry::instance().counter("svc.checkpoint.saves");
    saves.add(1);
    static obs::Histogram& latency = obs::Registry::instance().histogram(
        "svc.checkpoint.save_latency_us", obs::latency_buckets_us());
    latency.observe(std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  }
#endif
  (void)t0;
}

Checkpoint Checkpoint::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("checkpoint: cannot open: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return from_binary(bytes);
}

namespace {

/// FNV-1a 64, fed field by field (doubles by bit pattern, so the digest
/// is exact, not format-dependent).
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

}  // namespace

std::uint64_t campaign_digest(const std::vector<RigSpec>& specs,
                              const FleetOptions& options) {
  Fnv f;
  f.str("offramps-campaign-v2");
  // Behavior-relevant options.  Workers, checkpoint paths, stop_after and
  // save_captures_dir are excluded: they never change the report bytes.
  f.u64(options.safe_stop ? 1 : 0);
  f.u64(options.use_oracle ? 1 : 0);
  f.u64(options.channels.steps ? 1 : 0);
  f.u64(options.channels.power ? 1 : 0);
  f.u64(options.channels.acoustic ? 1 : 0);
  f.u64(options.channels.vibration ? 1 : 0);
  f.u64(options.reference_seed);
  f.u64(options.detector.ring_capacity);
  f.u64(static_cast<std::uint64_t>(options.pump.period));
  f.u64(options.pump.windows_per_slot);
  f.u64(options.supervisor.max_attempts);
  f.u64(options.supervisor.degrade_channels ? 1 : 0);
  f.f64(options.supervisor.watchdog_period_s);
  f.f64(options.supervisor.stall_timeout_s);
  f.f64(options.supervisor.first_data_timeout_s);
  const host::SliceProfile& p = options.profile;
  f.f64(p.layer_height_mm);
  f.f64(p.line_width_mm);
  f.f64(p.filament_diameter_mm);
  f.f64(p.first_layer_speed_mm_s);
  f.f64(p.perimeter_speed_mm_s);
  f.f64(p.infill_speed_mm_s);
  f.f64(p.travel_speed_mm_s);
  f.f64(p.z_speed_mm_s);
  f.f64(p.retract_mm);
  f.f64(p.retract_speed_mm_s);
  f.f64(p.hotend_temp_c);
  f.f64(p.bed_temp_c);
  f.f64(p.fan_duty);
  f.u64(p.fan_from_layer);
  f.u64(static_cast<std::uint64_t>(p.perimeter_count));
  f.f64(p.infill_spacing_mm);
  f.f64(p.prime_e_mm);
  f.u64(static_cast<std::uint64_t>(p.skirt_loops));
  f.f64(p.skirt_gap_mm);

  f.u64(specs.size());
  for (const RigSpec& s : specs) {
    f.str(s.name);
    f.u64(s.seed);
    f.f64(s.cube_mm);
    f.f64(s.height_mm);
    f.str(s.sabotage.to_string());
    f.str(s.chaos.to_string());
  }
  return f.h;
}

}  // namespace offramps::svc
