#include "svc/supervisor.hpp"

#include <cstdio>
#include <thread>

#include "obs/metrics.hpp"
#include "sim/error.hpp"

namespace offramps::svc {

const char* rig_status_name(RigStatus s) {
  switch (s) {
    case RigStatus::kOk: return "ok";
    case RigStatus::kRecovered: return "recovered";
    case RigStatus::kDegraded: return "degraded";
    case RigStatus::kLost: return "lost";
    case RigStatus::kPending: return "pending";
  }
  return "?";
}

namespace {

/// splitmix64: the usual strong 64-bit finalizer, here the jitter PRF.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t backoff_delay_ms(const SupervisorOptions& options,
                               std::uint64_t key, std::uint32_t attempt) {
  if (options.backoff_base_ms == 0) return 0;
  // base * 2^attempt, saturating at the cap before jitter so the jitter
  // range stays meaningful at the ceiling.
  std::uint64_t delay = options.backoff_base_ms;
  for (std::uint32_t i = 0; i < attempt && delay < options.backoff_cap_ms;
       ++i) {
    delay *= 2;
  }
  if (delay > options.backoff_cap_ms) delay = options.backoff_cap_ms;
  // Jitter in [delay/2, delay]: a pure function of (seed, key, attempt),
  // so the schedule is reproducible yet decorrelated across rigs.
  const std::uint64_t h =
      mix64(options.backoff_seed ^ mix64(key) ^ (std::uint64_t{attempt} << 32));
  const std::uint64_t half = delay / 2;
  return half + (half > 0 ? h % (half + 1) : 0);
}

GuardOutcome Supervisor::run_guarded(
    std::uint64_t key,
    const std::function<void(const AttemptContext&)>& attempt) const {
  const std::uint32_t max_attempts =
      options_.max_attempts == 0 ? 1 : options_.max_attempts;
  GuardOutcome out;
  std::string cause;
  for (std::uint32_t a = 0; a < max_attempts; ++a) {
    AttemptContext ctx;
    ctx.attempt = a;
    ctx.degraded =
        options_.degrade_channels && max_attempts > 1 && a + 1 == max_attempts;
    try {
      attempt(ctx);
      out.attempts = a + 1;
      out.status = a == 0 ? RigStatus::kOk
                          : (ctx.degraded ? RigStatus::kDegraded
                                          : RigStatus::kRecovered);
      out.failure_cause = a == 0 ? std::string{} : cause;
#if OFFRAMPS_OBS_ENABLED
      if (out.status == RigStatus::kDegraded && obs::enabled()) {
        static obs::Counter& degraded =
            obs::Registry::instance().counter("svc.supervisor.degraded");
        degraded.add(1);
      }
#endif
      return out;
    } catch (const std::exception& e) {
      cause = e.what();
#if OFFRAMPS_OBS_ENABLED
      if (obs::enabled()) {
        static obs::Counter& failures =
            obs::Registry::instance().counter("svc.supervisor.failures");
        failures.add(1);
      }
#endif
      if (a + 1 < max_attempts) {
#if OFFRAMPS_OBS_ENABLED
        if (obs::enabled()) {
          static obs::Counter& retries =
              obs::Registry::instance().counter("svc.supervisor.retries");
          retries.add(1);
        }
#endif
        const std::uint64_t delay = backoff_delay_ms(options_, key, a);
        if (delay > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
      }
    }
  }
  out.status = RigStatus::kLost;
  out.attempts = max_attempts;
  out.failure_cause = cause;
#if OFFRAMPS_OBS_ENABLED
  if (obs::enabled()) {
    static obs::Counter& quarantined =
        obs::Registry::instance().counter("svc.supervisor.quarantined");
    quarantined.add(1);
  }
#endif
  return out;
}

void StallWatchdog::check() {
  // Phase over (print finished / firmware killed): retire quietly so the
  // scheduler can drain.
  if (!active_()) return;

  const std::uint64_t p = progress_();
  if (p != last_progress_) {
    last_progress_ = p;
    last_change_ = sched_.now();
    seen_progress_ = seen_progress_ || p > 0;
  } else {
    const double idle_s = sim::to_seconds(sched_.now() - last_change_);
    const double limit_s = seen_progress_ ? options_.stall_timeout_s
                                          : options_.first_data_timeout_s;
    if (idle_s >= limit_s) {
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "watchdog: %s in phase %s (no progress for %.1f sim-s "
                    "at t=%.1f s)",
                    seen_progress_ ? "capture stream stalled"
                                   : "capture stream never started",
                    phase_.c_str(), idle_s,
                    sim::to_seconds(sched_.now()));
      throw Error(buf);
    }
  }

  if (options_.wall_deadline_s > 0.0) {
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start_)
                              .count();
    if (wall_s >= options_.wall_deadline_s) {
      throw Error("watchdog: wall-clock deadline exceeded in phase " +
                  phase_);
    }
  }

  schedule();
}

}  // namespace offramps::svc
