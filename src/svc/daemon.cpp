#include "svc/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>

#include "analyze/analyzer.hpp"
#include "host/parallel_runner.hpp"
#include "host/rig.hpp"
#include "obs/metrics.hpp"
#include "sim/error.hpp"
#include "svc/ref_cache.hpp"

namespace offramps::svc {

namespace {

// ---------------------------------------------------------------------
// Shared reference resolution: one compute per content digest per
// process.  The first session to ask for a digest computes (cache read,
// else simulate + cache write) while later askers block on the slot's
// condition variable - so a 16-rig campaign over one object runs the
// reference phase exactly once no matter how sessions interleave.

struct Resolved {
  gcode::Program program;
  analyze::Oracle oracle;
  core::Capture golden;
  plant::PowerTrace golden_power;
  plant::SideTrace golden_acoustic;
  plant::SideTrace golden_vibration;
};

class ReferenceResolver {
 public:
  explicit ReferenceResolver(const ServiceOptions& options)
      : options_(options) {
    if (!options_.cache_dir.empty()) {
      cache_ = std::make_unique<RefCache>(
          RefCacheOptions{options_.cache_dir, options_.cache_max_bytes});
    }
  }

  /// Returns the references for one object geometry; throws
  /// offramps::Error when the reference cannot be produced (and replays
  /// that error to every waiter of the same digest).
  const Resolved& resolve(double cube_mm, double height_mm) {
    const std::uint64_t key =
        reference_digest(cube_mm, height_mm, options_.profile,
                         options_.reference_seed, options_.channels);
    Slot* slot = nullptr;
    bool owner = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      auto& p = slots_[key];
      if (!p) {
        p = std::make_unique<Slot>();
        owner = true;
      }
      slot = p.get();
      if (!owner) {
        cv_.wait(lk, [&] { return slot->done; });
        if (slot->failed) throw Error(slot->error);
        return slot->data;
      }
    }
    try {
      Resolved r = compute(cube_mm, height_mm, key);
      std::lock_guard<std::mutex> lk(mu_);
      slot->data = std::move(r);
      slot->done = true;
      cv_.notify_all();
      return slot->data;
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lk(mu_);
      slot->failed = true;
      slot->error = std::string("reference: ") + e.what();
      slot->done = true;
      cv_.notify_all();
      throw Error(slot->error);
    }
  }

 private:
  struct Slot {
    bool done = false;
    bool failed = false;
    std::string error;
    Resolved data;
  };

  Resolved compute(double cube_mm, double height_mm, std::uint64_t key) {
    Resolved r;
    const host::CubeSpec cube{.size_x_mm = cube_mm,
                              .size_y_mm = cube_mm,
                              .height_mm = height_mm,
                              .center_x_mm = 110.0,
                              .center_y_mm = 100.0};
    r.program = host::slice_cube(cube, options_.profile);
    r.oracle = analyze::analyze_program(r.program, fw::Config{}).oracle;
    if (cache_) {
      if (auto hit = cache_->get(key)) {
        r.golden = std::move(hit->golden);
        r.golden_power = std::move(hit->golden_power);
        r.golden_acoustic = std::move(hit->golden_acoustic);
        r.golden_vibration = std::move(hit->golden_vibration);
        return r;
      }
    }
#if OFFRAMPS_OBS_ENABLED
    if (obs::enabled()) {
      obs::Registry::instance().counter("svc.ref.simulations").add(1);
    }
#endif
    host::RigOptions ro;
    ro.firmware.jitter_seed = options_.reference_seed;
    attach_probes(ro, options_.channels, options_.reference_seed);
    host::Rig rig(ro);
    host::RunResult res = rig.run(r.program);
    if (!res.finished) throw Error("reference print did not finish");
    r.golden = std::move(res.capture);
    r.golden_power = std::move(res.power_trace);
    r.golden_acoustic = std::move(res.acoustic_trace);
    r.golden_vibration = std::move(res.vibration_trace);
    if (cache_) {
      cache_->put(key, RefEntry{r.golden, r.golden_power, r.golden_acoustic,
                                r.golden_vibration});
    }
    return r;
  }

  ServiceOptions options_;
  std::unique_ptr<RefCache> cache_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::unique_ptr<Slot>> slots_;
};

/// Binds a resolver into the per-session callback, honoring the
/// campaign-level channel switches exactly like Fleet does: the oracle
/// only when armed, the power trace only when non-empty.
RigSession::ResolveRefs make_refs_fn(ReferenceResolver& resolver,
                                     const ServiceOptions& options) {
  const bool use_oracle = options.use_oracle;
  const ChannelSet channels = options.channels;
  return [&resolver, use_oracle,
          channels](const core::wire::SessionHello& hello) {
    const Resolved& r = resolver.resolve(hello.cube_mm, hello.height_mm);
    SessionRefs refs;
    refs.golden = &r.golden;
    if (use_oracle && r.oracle.counters_armed) refs.oracle = &r.oracle;
    if (channels.power && !r.golden_power.empty()) {
      refs.golden_power = &r.golden_power;
    }
    if (channels.acoustic && !r.golden_acoustic.empty()) {
      refs.golden_acoustic = &r.golden_acoustic;
    }
    if (channels.vibration && !r.golden_vibration.empty()) {
      refs.golden_vibration = &r.golden_vibration;
    }
    return refs;
  };
}

// ---------------------------------------------------------------------
// Report assembly.  Arrival order is wall-clock nondeterministic (socket
// accepts race), so the report sorts by the rig's *campaign* identity:
// hello-bearing sessions by their recorded rig index, then name; hello-
// less wrecks after them by label, with arrival as the final tiebreak.

struct SessionResult {
  RigOutcome outcome;
  bool has_hello = false;
  std::uint32_t rig_index = 0;
  std::string label;
  double seconds = 0.0;
  std::size_t arrival = 0;
};

FleetReport assemble_report(std::vector<SessionResult> results) {
  std::sort(results.begin(), results.end(),
            [](const SessionResult& a, const SessionResult& b) {
              if (a.has_hello != b.has_hello) return a.has_hello;
              if (a.rig_index != b.rig_index) {
                return a.rig_index < b.rig_index;
              }
              if (a.outcome.spec.name != b.outcome.spec.name) {
                return a.outcome.spec.name < b.outcome.spec.name;
              }
              return a.arrival < b.arrival;
            });
  FleetReport report;
  report.complete = true;
  report.rigs.reserve(results.size());
  report.timings.reserve(results.size());
  for (auto& r : results) {
    report.timings.push_back({"session/" + r.label, r.seconds});
    report.rigs.push_back(std::move(r.outcome));
  }
  return report;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

#if OFFRAMPS_OBS_ENABLED
struct DaemonStats {
  obs::Counter* joins;
  obs::Counter* leaves;
  obs::Gauge* sessions;
  obs::Histogram* session_us;
};

DaemonStats& daemon_stats() {
  static DaemonStats s{
      &obs::Registry::instance().counter("svc.daemon.joins"),
      &obs::Registry::instance().counter("svc.daemon.leaves"),
      &obs::Registry::instance().gauge("svc.daemon.sessions"),
      &obs::Registry::instance().histogram("svc.daemon.session_us",
                                           obs::latency_buckets_us())};
  return s;
}
#endif

/// Registers every daemon-path instrument up front so a campaign that
/// never touches one (e.g. a fully-warm cache: zero simulations) still
/// exports it, with value 0 - the acceptance check greps for exactly
/// that.
void register_service_metrics() {
#if OFFRAMPS_OBS_ENABLED
  if (!obs::enabled()) return;
  obs::Registry::instance().counter("svc.ref.simulations");
  obs::Registry::instance().counter("svc.cache.hit");
  obs::Registry::instance().counter("svc.cache.miss");
  obs::Registry::instance().counter("svc.cache.evict");
  obs::Registry::instance().counter("svc.cache.rejected");
  daemon_stats();
#endif
}

SessionOptions session_options(const ServiceOptions& options) {
  SessionOptions s;
  s.detector = options.detector;
  s.detector.channels = options.channels;
  s.windows_per_slot = options.pump.windows_per_slot;
  return s;
}

void fill_result(SessionResult& item, RigSession& session) {
  if (session.has_hello()) {
    item.has_hello = true;
    item.rig_index = session.hello().rig_index;
    item.label = session.hello().name;
  }
  item.outcome = session.outcome();
  if (!item.has_hello && item.outcome.spec.name.empty()) {
    item.outcome.spec.name = item.label;
  }
}

// ---------------------------------------------------------------------
// Stop signal plumbing.  The handler only flips a flag and pokes a
// self-pipe so the poll() loop wakes without races; sigaction state is
// saved/restored so the daemon leaves the process as it found it.

volatile std::sig_atomic_t g_stop = 0;
int g_wake_fd = -1;

void handle_stop_signal(int) {
  g_stop = 1;
  const int fd = g_wake_fd;
  if (fd >= 0) {
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

struct SignalGuard {
  SignalGuard() {
    g_stop = 0;
    struct sigaction sa{};
    sa.sa_handler = handle_stop_signal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, &old_term_);
    ::sigaction(SIGINT, &sa, &old_int_);
  }
  ~SignalGuard() {
    ::sigaction(SIGTERM, &old_term_, nullptr);
    ::sigaction(SIGINT, &old_int_, nullptr);
    g_wake_fd = -1;
  }

 private:
  struct sigaction old_term_{};
  struct sigaction old_int_{};
};

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

// ---------------------------------------------------------------------
// Offline replay.

FleetReport replay_corpus(const std::string& corpus_dir,
                          const ReplayOptions& options) {
  const std::vector<std::string> files =
      core::wire::list_session_corpus(corpus_dir);
  if (files.empty()) {
    throw Error("replay: no .ofs session streams under " + corpus_dir);
  }
  register_service_metrics();

  host::ParallelRunner pool(options.service.workers);
  ReferenceResolver resolver(options.service);
  const SessionOptions sopts = session_options(options.service);
  const auto refs_fn = make_refs_fn(resolver, options.service);

  std::vector<SessionResult> results =
      pool.map<SessionResult>(files.size(), [&](std::size_t i) {
        const auto t0 = std::chrono::steady_clock::now();
        SessionResult item;
        item.arrival = i;
        item.label = std::filesystem::path(files[i]).stem().string();
        try {
          std::ifstream in(files[i], std::ios::binary);
          if (!in) throw Error("replay: cannot open " + files[i]);
          std::vector<std::uint8_t> bytes(
              (std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
          for (const auto& [index, spec] : options.chaos) {
            if (index == i) {
              host::ChaosInjector(spec, 0).mangle_session(bytes);
            }
          }
          RigSession session(sopts, refs_fn);
          session.feed(bytes.data(), bytes.size());
          session.close();
          fill_result(item, session);
        } catch (const std::exception& e) {
          item.outcome = RigOutcome{};
          item.outcome.spec.name = item.label;
          item.outcome.status = RigStatus::kLost;
          item.outcome.attempts = 0;
          item.outcome.failure_cause = std::string("replay: ") + e.what();
        }
        item.seconds = seconds_since(t0);
        return item;
      });
  return assemble_report(std::move(results));
}

// ---------------------------------------------------------------------
// Daemon.

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  register_service_metrics();
}

FleetReport Daemon::serve() {
  if (options_.socket_path.empty() || options_.socket_path == "-") {
    return serve_stdin();
  }
  return serve_socket();
}

FleetReport Daemon::serve_socket() {
  const std::string& path = options_.socket_path;
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("daemon: socket path too long: " + path);
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  FdCloser listener{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (listener.fd < 0) {
    throw Error(std::string("daemon: socket(): ") + std::strerror(errno));
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw Error("daemon: bind(" + path + "): " + std::strerror(errno));
  }
  if (::listen(listener.fd, 64) < 0) {
    throw Error("daemon: listen(" + path + "): " + std::strerror(errno));
  }
  ::fcntl(listener.fd, F_SETFL, O_NONBLOCK);

  int wake[2] = {-1, -1};
  if (::pipe(wake) != 0) {
    throw Error(std::string("daemon: pipe(): ") + std::strerror(errno));
  }
  FdCloser wake_rd{wake[0]};
  FdCloser wake_wr{wake[1]};
  ::fcntl(wake[0], F_SETFL, O_NONBLOCK);
  g_wake_fd = wake[1];
  SignalGuard signals;

  host::ParallelRunner pool(options_.service.workers);
  ReferenceResolver resolver(options_.service);
  const SessionOptions sopts = session_options(options_.service);
  const auto refs_fn = make_refs_fn(resolver, options_.service);

  std::mutex results_mu;
  std::vector<SessionResult> results;
#if OFFRAMPS_OBS_ENABLED
  std::atomic<std::int64_t> inflight{0};
#endif

  // One posted job per accepted connection.  The read loop feeds the
  // session synchronously, so a slow detector simply stops reading and
  // the kernel socket buffer stalls the producer - the wire extension of
  // the SPSC backpressure contract.
  const auto run_session = [&](int fd, std::size_t seq) {
    FdCloser conn{fd};
    const auto t0 = std::chrono::steady_clock::now();
#if OFFRAMPS_OBS_ENABLED
    if (obs::enabled()) {
      daemon_stats().joins->add(1);
      daemon_stats().sessions->set(++inflight);
    }
#endif
    SessionResult item;
    item.arrival = seq;
    item.label = "conn-" + std::to_string(seq);
    {
      RigSession session(sopts, refs_fn);
      std::vector<std::uint8_t> buf(1 << 16);
      while (!session.done()) {
        const ssize_t n = ::read(fd, buf.data(), buf.size());
        if (n < 0) {
          if (errno == EINTR) continue;
          break;  // close() below classifies the disconnect
        }
        if (n == 0) break;
        session.feed(buf.data(), static_cast<std::size_t>(n));
      }
      session.close();
      fill_result(item, session);
    }
    const char ack = item.outcome.status == RigStatus::kLost  ? 'E'
                     : item.outcome.detector.alarmed          ? 'A'
                                                              : 'C';
    [[maybe_unused]] const ssize_t sent =
        ::send(fd, &ack, 1, MSG_NOSIGNAL);  // best effort
    item.seconds = seconds_since(t0);
#if OFFRAMPS_OBS_ENABLED
    if (obs::enabled()) {
      daemon_stats().leaves->add(1);
      daemon_stats().sessions->set(--inflight);
      daemon_stats().session_us->observe(item.seconds * 1e6);
    }
#endif
    std::lock_guard<std::mutex> lk(results_mu);
    results.push_back(std::move(item));
  };

  std::size_t accepted = 0;
  const auto accept_pending = [&] {
    while (true) {
      const int fd = ::accept(listener.fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN: backlog drained
      }
      const std::size_t seq = accepted++;
      pool.post([&run_session, fd, seq] { run_session(fd, seq); });
    }
  };

  while (g_stop == 0) {
    pollfd fds[2] = {{listener.fd, POLLIN, 0}, {wake[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (g_stop != 0) break;
    if ((fds[0].revents & POLLIN) != 0) accept_pending();
  }

  // Drain: clients already in the backlog raced the signal - accept and
  // finish them too, then wait for every in-flight session before the
  // report freezes.
  accept_pending();
  ::close(listener.fd);
  listener.fd = -1;
  ::unlink(path.c_str());
  pool.drain();
  return assemble_report(std::move(results));
}

FleetReport Daemon::serve_stdin() {
  SignalGuard signals;  // no wake pipe: the EINTR return from read()
                        // is the wake-up in pipe mode
  ReferenceResolver resolver(options_.service);
  const SessionOptions sopts = session_options(options_.service);
  const auto refs_fn = make_refs_fn(resolver, options_.service);

  std::vector<SessionResult> results;
  std::size_t seq = 0;
  std::unique_ptr<RigSession> session;
  auto t0 = std::chrono::steady_clock::now();

  const auto finalize = [&] {
    if (!session) return;
    session->close();
    SessionResult item;
    item.arrival = seq++;
    item.label = "pipe-" + std::to_string(item.arrival);
    fill_result(item, *session);
    item.seconds = seconds_since(t0);
#if OFFRAMPS_OBS_ENABLED
    if (obs::enabled()) {
      daemon_stats().leaves->add(1);
      daemon_stats().session_us->observe(item.seconds * 1e6);
    }
#endif
    results.push_back(std::move(item));
    session.reset();
  };

  // Concatenated streams ride one pipe: feed() hands back the bytes past
  // a kEnd and they seed the next session.  A stream that fails outright
  // (bad header, mid-frame garbage that never resyncs) has no recoverable
  // end marker, so it swallows the rest of the pipe - by design: a pipe
  // is one producer, and a producer that garbles its framing is lost.
  std::vector<std::uint8_t> buf(1 << 16);
  while (g_stop == 0) {
    const ssize_t n = ::read(STDIN_FILENO, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: the fleet of producers is done
    const std::size_t got = static_cast<std::size_t>(n);
    std::size_t off = 0;
    while (off < got) {
      if (!session) {
        session = std::make_unique<RigSession>(sopts, refs_fn);
        t0 = std::chrono::steady_clock::now();
#if OFFRAMPS_OBS_ENABLED
        if (obs::enabled()) daemon_stats().joins->add(1);
#endif
      }
      const std::size_t used = session->feed(buf.data() + off, got - off);
      off += used;
      // feed() is short only at kEnd (an ended session returns 0 for
      // further bytes), so leftover input means "next stream starts
      // here".  A terminally *failed* session instead consumes
      // everything, swallowing the rest of its pipe until EOF.
      if (used == 0 || (session->done() && off < got)) finalize();
    }
  }
  finalize();  // EOF or signal mid-session: classified as a disconnect
  return assemble_report(std::move(results));
}

int Daemon::stream_file(const std::string& socket_path,
                        const std::string& file) {
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "join: cannot open %s\n", file.c_str());
      return 1;
    }
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "join: socket path too long: %s\n",
                 socket_path.c_str());
    return 1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  FdCloser sock{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (sock.fd < 0 ||
      ::connect(sock.fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    std::fprintf(stderr, "join: cannot connect to %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    return 1;
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(sock.fd, bytes.data() + off,
                             bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "join: send to %s failed: %s\n",
                   socket_path.c_str(), std::strerror(errno));
      return 1;
    }
    off += static_cast<std::size_t>(n);
  }
  ::shutdown(sock.fd, SHUT_WR);
  char ack = 0;
  ssize_t r = 0;
  do {
    r = ::read(sock.fd, &ack, 1);
  } while (r < 0 && errno == EINTR);
  if (r != 1) {
    std::fprintf(stderr, "join: no verdict ack from %s\n",
                 socket_path.c_str());
    return 1;
  }
  std::printf("%s: %s\n", file.c_str(),
              ack == 'C'   ? "clean"
              : ack == 'A' ? "alarm"
                           : "lost");
  return (ack == 'C' || ack == 'A') ? 0 : 1;
}

}  // namespace offramps::svc
