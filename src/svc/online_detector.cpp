#include "svc/online_detector.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "obs/metrics.hpp"

namespace offramps::svc {

std::string OnlineReport::to_string() const {
  char buf[256];
  if (!alarmed) {
    std::snprintf(buf, sizeof(buf),
                  "clean (%zu windows, ring high-water %zu, %llu stalls)",
                  windows_processed, ring_high_water,
                  static_cast<unsigned long long>(backpressure_stalls));
    return buf;
  }
  std::snprintf(buf, sizeof(buf),
                "ALARM %s at window %u (t=%.3f s%s%s)%s",
                channel_name(first_channel), alarm_window,
                static_cast<double>(alarm_tick_ns) / 1e9,
                alarm_gcode_line != 0 ? ", line " : "",
                alarm_gcode_line != 0
                    ? std::to_string(alarm_gcode_line).c_str()
                    : "",
                alarmed_mid_print ? " [mid-print]" : " [post-print]");
  return buf;
}

std::size_t estimate_gcode_line(const analyze::Oracle& oracle,
                                const std::array<std::int32_t, 4>& counts) {
  if (!oracle.counters_armed) return 0;
  // Progress axis: cumulative E + Z steps.  Both are near-monotone over a
  // legitimate print (E net-advances, Z only rises), so the observed sum
  // picks out a unique position along the program even when X/Y wander
  // back and forth.
  const std::int64_t progress =
      static_cast<std::int64_t>(counts[2]) +
      static_cast<std::int64_t>(counts[3]);
  std::int64_t acc = 0;
  std::size_t line = 0;
  for (const auto& seg : oracle.segments) {
    if (!seg.counted) continue;
    line = seg.command_index + 1;  // 1-based program line
    acc += seg.delta_steps[2] + seg.delta_steps[3];
    if (acc >= progress) return line;
  }
  return line;
}

OnlineDetector::OnlineDetector(OnlineDetectorOptions options)
    : options_(options), ring_(options.ring_capacity) {
  channels_ =
      ChannelRegistry::global().make_enabled(options_.channels, options_);
}

void OnlineDetector::ensure_armed() {
  if (armed_) return;
  armed_ = true;
  for (auto& channel : channels_) channel->arm(refs_);
}

void OnlineDetector::submit(const core::Transaction& txn) {
  if (ring_.try_push(txn)) return;
  // Backpressure: the producer stalls while the backlog is consumed
  // inline.  Nothing is dropped; the stall is visible in the report.
  ++backpressure_stalls_;
  drain();
  if (!ring_.try_push(txn)) {
    // Only reachable when an alarm callback produced a window while the
    // ring was already draining: consume it inline rather than lose it.
    process(txn);
  }
}

void OnlineDetector::submit_sample(SampleKind kind, double t_s,
                                   double value) {
  ensure_armed();
  // A fresh vector per event is free on the hot path: it only allocates
  // when a channel actually trips, and keeps alarm-callback re-entrancy
  // from sharing scratch state.
  std::vector<ChannelTrip> trips;
  for (auto& channel : channels_) {
    channel->on_sample(kind, t_s, value, ctx_, trips);
  }
  fuse(trips);
}

std::size_t OnlineDetector::poll(std::size_t max_windows) {
  std::size_t done = 0;
  core::Transaction txn;
  while (done < max_windows && ring_.try_pop(txn)) {
    process(txn);
    ++done;
  }
  return done;
}

std::size_t OnlineDetector::drain() {
  // Re-entrancy guard: an alarm callback raised from process() may stall
  // its own producer, which would call back into drain().
  if (draining_) return 0;
  draining_ = true;
  std::size_t done = 0;
  core::Transaction txn;
  while (ring_.try_pop(txn)) {
    process(txn);
    ++done;
  }
  draining_ = false;
  return done;
}

void OnlineDetector::process(const core::Transaction& txn) {
#if OFFRAMPS_OBS_ENABLED
  if (obs::enabled()) {
    if (obs_windows_ == nullptr) {
      obs_windows_ = &obs::Registry::instance().counter(
          "svc.detector.windows");
      obs_window_us_ = &obs::Registry::instance().histogram(
          "svc.detector.window_us", obs::latency_buckets_us());
    }
    obs_windows_->add(1);
    if (--obs_sample_countdown_ == 0) {
      obs_sample_countdown_ = obs::latency_sample_every();
      const auto t0 = std::chrono::steady_clock::now();
      process_impl(txn);
      obs_window_us_->observe(obs::us_since(t0));
    } else {
      process_impl(txn);
    }
    return;
  }
#endif
  process_impl(txn);
}

void OnlineDetector::process_impl(const core::Transaction& txn) {
  ensure_armed();
  ++report_.windows_processed;
  ctx_.windows_processed = report_.windows_processed;
  ctx_.last_counts = txn.counts;
  ctx_.last_tick_ns = txn.time_ns;

  std::vector<ChannelTrip> trips;
  for (auto& channel : channels_) {
    channel->on_transaction(txn, ctx_, trips);
  }
  fuse(trips);
}

void OnlineDetector::finish(const core::Capture& capture) {
  drain();
  ensure_armed();  // an empty stream still arms, so the report is honest
  finished_ = true;
  report_.stream_finished = true;

#if OFFRAMPS_OBS_ENABLED
  // Export the ring-buffer health this detector already tracks: the
  // gauge's max is the worst occupancy across every detector in the
  // process, the counter the fleet-wide stall total.
  if (obs::enabled()) {
    // Cold end-of-stream path: one registry lookup per finish() is
    // noise, no cached handles needed.
    obs::Registry::instance()
        .gauge("svc.detector.ring_high_water")
        .set(static_cast<std::int64_t>(ring_.high_water()));
    obs::Registry::instance()
        .counter("svc.detector.backpressure_stalls")
        .add(backpressure_stalls_);
  }
#endif

  std::vector<ChannelTrip> trips;
  for (auto& channel : channels_) {
    channel->on_finish(capture, ctx_, trips);
  }
  fuse(trips);
}

void OnlineDetector::fuse(const std::vector<ChannelTrip>& trips) {
  const ChannelTrip* first = pick_first_trip(trips);
  if (first != nullptr) raise(*first);
}

void OnlineDetector::raise(const ChannelTrip& trip) {
  if (report_.alarmed) return;
  report_.alarmed = true;
  report_.alarmed_mid_print = !finished_;
  report_.first_channel = trip.channel;
  report_.alarm_window = trip.window;
  report_.alarm_tick_ns = trip.tick_ns;
  report_.alarm_gcode_line =
      refs_.oracle != nullptr ? estimate_gcode_line(*refs_.oracle, trip.counts)
                              : 0;
  if (on_alarm_) on_alarm_(report());
}

OnlineReport OnlineDetector::report() const {
  OnlineReport r = report_;
  r.ring_high_water = ring_.high_water();
  r.backpressure_stalls = backpressure_stalls_;
  r.channels.clear();
  for (const auto& channel : channels_) channel->fill_report(r);
  return r;
}

}  // namespace offramps::svc
