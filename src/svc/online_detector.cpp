#include "svc/online_detector.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "obs/metrics.hpp"

namespace offramps::svc {

const char* channel_name(Channel c) {
  switch (c) {
    case Channel::kNone: return "none";
    case Channel::kGoldenCompare: return "golden-compare";
    case Channel::kStreamLength: return "stream-length";
    case Channel::kGoldenFree: return "golden-free";
    case Channel::kPower: return "power";
    case Channel::kFinalCounts: return "final-counts";
    case Channel::kStaticOracle: return "static-oracle";
  }
  return "?";
}

std::string OnlineReport::to_string() const {
  char buf[256];
  if (!alarmed) {
    std::snprintf(buf, sizeof(buf),
                  "clean (%zu windows, ring high-water %zu, %llu stalls)",
                  windows_processed, ring_high_water,
                  static_cast<unsigned long long>(backpressure_stalls));
    return buf;
  }
  std::snprintf(buf, sizeof(buf),
                "ALARM %s at window %u (t=%.3f s%s%s)%s",
                channel_name(first_channel), alarm_window,
                static_cast<double>(alarm_tick_ns) / 1e9,
                alarm_gcode_line != 0 ? ", line " : "",
                alarm_gcode_line != 0
                    ? std::to_string(alarm_gcode_line).c_str()
                    : "",
                alarmed_mid_print ? " [mid-print]" : " [post-print]");
  return buf;
}

std::size_t estimate_gcode_line(const analyze::Oracle& oracle,
                                const std::array<std::int32_t, 4>& counts) {
  if (!oracle.counters_armed) return 0;
  // Progress axis: cumulative E + Z steps.  Both are near-monotone over a
  // legitimate print (E net-advances, Z only rises), so the observed sum
  // picks out a unique position along the program even when X/Y wander
  // back and forth.
  const std::int64_t progress =
      static_cast<std::int64_t>(counts[2]) +
      static_cast<std::int64_t>(counts[3]);
  std::int64_t acc = 0;
  std::size_t line = 0;
  for (const auto& seg : oracle.segments) {
    if (!seg.counted) continue;
    line = seg.command_index + 1;  // 1-based program line
    acc += seg.delta_steps[2] + seg.delta_steps[3];
    if (acc >= progress) return line;
  }
  return line;
}

OnlineDetector::OnlineDetector(OnlineDetectorOptions options)
    : options_(options),
      ring_(options.ring_capacity),
      golden_free_(options.machine) {}

void OnlineDetector::set_golden_power(const plant::PowerTrace* trace) {
  golden_power_windows_ =
      trace != nullptr ? detect::window_means(*trace, options_.power.window_s)
                       : std::vector<double>{};
}

void OnlineDetector::submit(const core::Transaction& txn) {
  if (ring_.try_push(txn)) return;
  // Backpressure: the producer stalls while the backlog is consumed
  // inline.  Nothing is dropped; the stall is visible in the report.
  ++backpressure_stalls_;
  drain();
  if (!ring_.try_push(txn)) {
    // Only reachable when an alarm callback produced a window while the
    // ring was already draining: consume it inline rather than lose it.
    process(txn);
  }
}

std::size_t OnlineDetector::poll(std::size_t max_windows) {
  std::size_t done = 0;
  core::Transaction txn;
  while (done < max_windows && ring_.try_pop(txn)) {
    process(txn);
    ++done;
  }
  return done;
}

std::size_t OnlineDetector::drain() {
  // Re-entrancy guard: an alarm callback raised from process() may stall
  // its own producer, which would call back into drain().
  if (draining_) return 0;
  draining_ = true;
  std::size_t done = 0;
  core::Transaction txn;
  while (ring_.try_pop(txn)) {
    process(txn);
    ++done;
  }
  draining_ = false;
  return done;
}

void OnlineDetector::process(const core::Transaction& txn) {
#if OFFRAMPS_OBS_ENABLED
  if (obs::enabled()) {
    if (obs_windows_ == nullptr) {
      obs_windows_ = &obs::Registry::instance().counter(
          "svc.detector.windows");
      obs_window_us_ = &obs::Registry::instance().histogram(
          "svc.detector.window_us", obs::latency_buckets_us());
    }
    obs_windows_->add(1);
    if (--obs_sample_countdown_ == 0) {
      obs_sample_countdown_ = obs::latency_sample_every();
      const auto t0 = std::chrono::steady_clock::now();
      process_impl(txn);
      obs_window_us_->observe(obs::us_since(t0));
    } else {
      process_impl(txn);
    }
    return;
  }
#endif
  process_impl(txn);
}

void OnlineDetector::process_impl(const core::Transaction& txn) {
  ++report_.windows_processed;
  last_counts_ = txn.counts;
  last_tick_ns_ = txn.time_ns;

  // Golden-compare channel (windowed step counts + stream overrun).
  if (golden_ != nullptr) {
    const std::size_t golden_len = golden_->transactions.size();
    if (txn.index >= golden_len) {
      // Stream overrun: the observed print has outlived the golden one.
      // Tolerate the compare length tolerance plus a fixed slack (time
      // noise stretches prints slightly); a sustained overrun means a
      // print-lengthening Trojan.
      const double allowed =
          static_cast<double>(golden_len) * options_.compare.length_tolerance +
          static_cast<double>(options_.length_slack_windows);
      const auto over = static_cast<double>(txn.index - golden_len + 1);
      if (over > allowed) {
        raise(Channel::kStreamLength, txn.index, txn.time_ns, txn.counts);
      }
    } else {
      const bool bad = detect::compare_transaction(
          golden_->transactions[txn.index], txn, options_.compare,
          mismatches_);
      consecutive_ = bad ? consecutive_ + 1 : 0;
      if (consecutive_ >= options_.consecutive_to_alarm) {
        raise(Channel::kGoldenCompare, txn.index, txn.time_ns, txn.counts);
      }
    }
    report_.compare_mismatches = mismatches_.size();
  }

  // Golden-free channel (physical plausibility, no reference needed).
  if (options_.golden_free) {
    golden_free_.push(txn);
    if (golden_free_.violation_count() >=
        options_.golden_free_min_violations) {
      raise(Channel::kGoldenFree, txn.index, txn.time_ns, txn.counts);
    }
  }
}

void OnlineDetector::submit_power(double t_s, double watts) {
  if (golden_power_windows_.empty()) return;
  if (!power_have_t0_) {
    power_have_t0_ = true;
    power_t0_ = t_s;
  }
  const double window_s = options_.power.window_s;
  if (window_s <= 0.0) return;
  const auto w = static_cast<std::size_t>((t_s - power_t0_) / window_s);
  while (power_window_ < w) close_power_window();
  power_sum_ += watts;
  ++power_n_;
}

void OnlineDetector::close_power_window() {
  // Empty windows (sampling gaps) repeat the previous mean, mirroring
  // detect::window_means so the online channel sees the same series the
  // offline compare_power would.
  const double mean =
      power_n_ > 0 ? power_sum_ / static_cast<double>(power_n_)
                   : power_last_mean_;
  power_last_mean_ = mean;
  const std::size_t idx = power_window_;
  ++power_window_;
  power_sum_ = 0.0;
  power_n_ = 0;

  if (idx >= golden_power_windows_.size()) return;
  ++report_.power.windows_compared;
  // Leading edge windows (heat-up / homing transients) are skipped just
  // like the offline comparison; the trailing edge skip falls out of
  // finish() never closing the last partial windows.
  if (idx < options_.power.skip_edge_windows) return;
  const double golden_w = golden_power_windows_[idx];
  const double delta = std::abs(golden_w - mean);
  report_.power.largest_delta_w =
      std::max(report_.power.largest_delta_w, delta);
  if (delta > options_.power.tolerance_w) {
    report_.power.mismatches.push_back({idx, golden_w, mean});
    ++power_consecutive_;
    if (power_consecutive_ >= options_.power.consecutive_to_flag) {
      report_.power.sabotage_likely = true;
      raise(Channel::kPower, static_cast<std::uint32_t>(
                report_.windows_processed == 0 ? 0
                                               : report_.windows_processed - 1),
            last_tick_ns_, last_counts_);
    }
  } else {
    power_consecutive_ = 0;
  }
}

void OnlineDetector::finish(const core::Capture& capture) {
  drain();
  finished_ = true;
  report_.stream_finished = true;

#if OFFRAMPS_OBS_ENABLED
  // Export the ring-buffer health this detector already tracks: the
  // gauge's max is the worst occupancy across every detector in the
  // process, the counter the fleet-wide stall total.
  if (obs::enabled()) {
    // Cold end-of-stream path: one registry lookup per finish() is
    // noise, no cached handles needed.
    obs::Registry::instance()
        .gauge("svc.detector.ring_high_water")
        .set(static_cast<std::int64_t>(ring_.high_water()));
    obs::Registry::instance()
        .counter("svc.detector.backpressure_stalls")
        .add(backpressure_stalls_);
  }
#endif

  if (!options_.final_checks) return;

  // The paper's exact (0% margin) end-of-print totals check.  Only
  // meaningful when both prints ran to completion - a capture cut short
  // by our own safe-stop has nothing comparable to freeze.
  if (golden_ != nullptr && capture.print_completed &&
      golden_->print_completed) {
    report_.final_counts_match = capture.final_counts == golden_->final_counts;
    if (!report_.final_counts_match) {
      raise(Channel::kFinalCounts,
            capture.transactions.empty()
                ? 0
                : capture.transactions.back().index,
            last_tick_ns_, last_counts_);
    }
  }

  // Static-oracle cross-check (tight margin, no golden print needed).
  if (oracle_ != nullptr) {
    report_.static_final =
        detect::static_check(*oracle_, capture, options_.static_check);
    if (report_.static_final.trojan_suspected &&
        report_.static_final.print_completed &&
        report_.static_final.oracle_armed) {
      raise(Channel::kStaticOracle,
            capture.transactions.empty()
                ? 0
                : capture.transactions.back().index,
            last_tick_ns_, last_counts_);
    }
  }
}

void OnlineDetector::raise(Channel ch, std::uint32_t window,
                           std::uint64_t tick_ns,
                           const std::array<std::int32_t, 4>& counts) {
  if (report_.alarmed) return;
  report_.alarmed = true;
  report_.alarmed_mid_print = !finished_;
  report_.first_channel = ch;
  report_.alarm_window = window;
  report_.alarm_tick_ns = tick_ns;
  report_.alarm_gcode_line =
      oracle_ != nullptr ? estimate_gcode_line(*oracle_, counts) : 0;
  if (on_alarm_) on_alarm_(report());
}

OnlineReport OnlineDetector::report() const {
  OnlineReport r = report_;
  r.ring_high_water = ring_.high_water();
  r.backpressure_stalls = backpressure_stalls_;
  r.compare_mismatches = mismatches_.size();
  if (options_.golden_free) {
    r.golden_free = golden_free_.report(options_.golden_free_min_violations);
  }
  return r;
}

}  // namespace offramps::svc
