// Fleet supervision: per-rig fault isolation, deadline watchdogs, and
// bounded retry with deterministic backoff.
//
// The Offramps paper positions the intermediary as the component that
// must keep working when the system around it misbehaves.  `svc::Fleet`
// inherits that obligation at farm scale: one rig that throws, stalls,
// or emits a corrupt capture must not take down the campaign, and the
// campaign must say *what happened* to that rig instead of aborting.
//
// The supervisor wraps each phase attempt and classifies the result:
//
//   ok         first attempt succeeded
//   recovered  a retry succeeded at full fidelity
//   degraded   the final, reduced-fidelity attempt succeeded (the
//              side-channel probes disabled, step counting alone - the
//              ChannelSet::counts_only() subset)
//   lost       every attempt failed; the rig is quarantined and the
//              campaign degrades gracefully around it
//   pending    not yet run (campaign checkpointed / stopped early)
//
// Retry pacing is exponential backoff with deterministic jitter: the
// delay is a pure function of (seed, key, attempt), so two workers
// retrying different rigs never thundering-herd the same instant, and
// nothing wall-clock-dependent leaks into the fleet report - reports
// stay byte-identical at any worker count.
//
// The watchdog runs *on the rig's own simulation scheduler*: every
// `watchdog_period_s` of sim time it checks that the capture stream is
// still making progress while the firmware claims to be printing.  A
// wedged producer (chaos kStall, a real tap bug) therefore trips
// deterministically at the same sim tick on every run.  An optional
// wall-clock deadline backstops true host-side hangs.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "sim/scheduler.hpp"

namespace offramps::svc {

/// Supervision verdict for one rig (or one reference phase).
enum class RigStatus : std::uint8_t {
  kOk,
  kRecovered,
  kDegraded,
  kLost,
  kPending,
};

const char* rig_status_name(RigStatus s);

/// Supervision tuning.
struct SupervisorOptions {
  /// Attempts per phase before quarantine (1 = no retry).
  std::uint32_t max_attempts = 3;
  /// Backoff before retry k is roughly base * 2^k (+ jitter), capped.
  /// 0 disables sleeping entirely (tests, benches).
  std::uint64_t backoff_base_ms = 0;
  std::uint64_t backoff_cap_ms = 2000;
  /// Jitter seed: the delay is a pure function of (seed, key, attempt).
  std::uint64_t backoff_seed = 0x0FF7A305;
  /// Final attempt runs on the count-channels subset alone (every
  /// side-channel probe disabled - ChannelSet::counts_only()), trading
  /// fidelity for a verdict: success there is kDegraded, not kRecovered.
  bool degrade_channels = true;

  /// Watchdog cadence, in *sim* time.
  double watchdog_period_s = 1.0;
  /// Stream started, then froze for this long (sim time) -> stalled.
  double stall_timeout_s = 10.0;
  /// Stream never started within this long (sim time) -> stalled.
  /// Generous: homing and heat-up legitimately precede the first
  /// transaction.
  double first_data_timeout_s = 120.0;
  /// Wall-clock ceiling per attempt; 0 disables.  The only
  /// non-deterministic trigger - a true host-side hang backstop.
  double wall_deadline_s = 0.0;
};

/// Deterministic backoff delay before retrying attempt `attempt` of the
/// phase identified by `key` (e.g. the rig index).  Exponential in the
/// attempt with multiplicative jitter in [delay/2, delay]; pure in
/// (options, key, attempt).
[[nodiscard]] std::uint64_t backoff_delay_ms(const SupervisorOptions& options,
                                             std::uint64_t key,
                                             std::uint32_t attempt);

/// Handed to each attempt so it can honor the degrade ladder.
struct AttemptContext {
  std::uint32_t attempt = 0;
  /// True on the final attempt when degrade_channels is set: run with
  /// the step-count channel subset only (no side-channel probes).
  bool degraded = false;
};

/// What the retry loop concluded.
struct GuardOutcome {
  RigStatus status = RigStatus::kLost;
  std::uint32_t attempts = 0;
  /// Last failure message ("" for kOk; for kRecovered/kDegraded, the
  /// failure the retries recovered from).
  std::string failure_cause;
};

/// The retry/quarantine engine.  Thread-safe: run_guarded holds no
/// mutable state, so fleet workers supervise rigs concurrently.
class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options = {})
      : options_(options) {}

  [[nodiscard]] const SupervisorOptions& options() const { return options_; }

  /// Runs `attempt` up to max_attempts times.  The attempt signals
  /// failure by throwing (anything derived from std::exception);
  /// non-exception escapes are bugs and propagate.  Sleeps the
  /// deterministic backoff between tries when backoff_base_ms > 0.
  GuardOutcome run_guarded(
      std::uint64_t key,
      const std::function<void(const AttemptContext&)>& attempt) const;

 private:
  SupervisorOptions options_;
};

/// Sim-clocked no-progress watchdog (see file comment).  Construct it
/// before running the rig; it throws offramps::Error out of the event
/// loop when the stream wedges or the wall deadline passes, which the
/// supervisor catches as an attempt failure.
class StallWatchdog {
 public:
  using ProgressFn = std::function<std::uint64_t()>;
  using ActiveFn = std::function<bool()>;

  /// `progress` must be monotone while the phase is healthy (e.g.
  /// transactions accepted by the detector); `active` gates the checks
  /// (e.g. "firmware still running") - once it reports false the
  /// watchdog retires and stops rescheduling itself.
  StallWatchdog(sim::Scheduler& sched, const SupervisorOptions& options,
                ProgressFn progress, ActiveFn active, std::string phase)
      : sched_(sched),
        options_(options),
        progress_(std::move(progress)),
        active_(std::move(active)),
        phase_(std::move(phase)),
        started_(sched.now()),
        last_change_(sched.now()),
        wall_start_(std::chrono::steady_clock::now()) {
    schedule();
  }

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Sim ticks between the last progress change and now.
  [[nodiscard]] sim::Tick idle_ticks() const {
    return sched_.now() - last_change_;
  }

 private:
  void schedule() {
    sched_.schedule_in(sim::from_seconds(options_.watchdog_period_s),
                       [this] { check(); });
  }

  void check();

  sim::Scheduler& sched_;
  SupervisorOptions options_;
  ProgressFn progress_;
  ActiveFn active_;
  std::string phase_;
  sim::Tick started_;
  sim::Tick last_change_;
  std::uint64_t last_progress_ = 0;
  bool seen_progress_ = false;
  std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace offramps::svc
