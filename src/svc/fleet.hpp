// Fleet service: multi-rig orchestration with online streaming detection.
//
// One OFFRAMPS board defends one printer; a print farm needs a fleet of
// them reporting to a single host.  This orchestrator runs N independent
// rigs - each with its own seed, object, and (optionally) implanted
// Flaw3D Trojan - over the host::ParallelRunner pool, with one
// svc::OnlineDetector per rig consuming that rig's capture stream live
// through its ring buffer via a clock-slaved svc::Pump.
//
// Run shape:
//
//   1. Reference phase: for each distinct object in the fleet, slice the
//      clean program, compute its static oracle, and print one reference
//      part (fixed reference seed) to obtain the golden capture and the
//      golden side-channel traces (power, acoustic, vibration - per the
//      enabled channel set).  References are shared by every rig printing
//      that object and are computed on the same pool.
//   2. Fleet phase: every rig prints under its detector.  A mid-print
//      alarm safe-stops that rig's firmware (the paper's real-time
//      halt, here driven by the fused multi-channel verdict); the other
//      rigs are unaffected.
//
// Determinism: each rig is a self-contained single-threaded simulation,
// outcomes are stored by rig index, and the report renders no wall-clock
// or worker-count data - so the fleet report is BYTE-IDENTICAL at any
// `--jobs` value.  Detector memory is bounded per rig by the ring
// capacity; the backpressure policy (producer stall, lossless) is
// documented in online_detector.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "host/chaos.hpp"
#include "host/slicer.hpp"
#include "svc/online_detector.hpp"
#include "svc/pump.hpp"
#include "svc/supervisor.hpp"

namespace offramps::host {
struct RigOptions;
}  // namespace offramps::host

namespace offramps::svc {

/// Attaches one side-channel probe per enabled channel to `ro`, every
/// probe's noise seed derived from `seed` via plant::probe_noise_seed.
/// Shared by the batch fleet and the daemon's reference resolver so no
/// caller can regress to the old fixed-default-seed behavior (which gave
/// every rig in the farm the same sensor-noise sequence).
void attach_probes(host::RigOptions& ro, const ChannelSet& channels,
                   std::uint64_t seed);

/// Sabotage implanted in one rig's g-code path (the Flaw3D families of
/// paper Table II).  Parsed from "reduce:<factor>" / "relocate:<n>".
struct Sabotage {
  enum class Kind : std::uint8_t { kNone, kReduction, kRelocation };
  Kind kind = Kind::kNone;
  double factor = 0.5;         // reduction: E multiplier
  std::uint32_t every_n = 20;  // relocation: moves between blob dumps

  [[nodiscard]] std::string to_string() const;  // "clean", "reduce:0.50", ...
};

/// Parses "" / "clean" / "none" / "reduce:0.85" / "relocate:10".
/// Throws offramps::Error on anything else.
Sabotage parse_sabotage(const std::string& text);

/// One rig's slot in the fleet.
struct RigSpec {
  std::string name;         // defaults to "rig-<index>" when empty
  std::uint64_t seed = 1;   // firmware jitter seed (per-print drift)
  double cube_mm = 8.0;     // printed object: cube footprint
  double height_mm = 3.0;   // ...and height
  Sabotage sabotage{};
  /// Service-layer fault injected into this rig's supervised attempts
  /// (host::parse_chaos grammar; none by default).
  host::ChaosSpec chaos{};
};

/// Fleet-wide configuration.
struct FleetOptions {
  /// Worker threads; 0 = host::ParallelRunner::default_workers().
  std::size_t workers = 0;
  /// Per-rig detector tuning (channels, margins, ring capacity).
  OnlineDetectorOptions detector{};
  /// Per-rig consumer pump (service period, windows per slot).
  PumpOptions pump{};
  /// Kill a rig's firmware the moment its detector alarms mid-print.
  bool safe_stop = true;
  /// Arm the static-oracle channel (end-of-print tight-margin check and
  /// g-code line attribution for alarms).
  bool use_oracle = true;
  /// Which side channels to probe and arm (steps, power, acoustic,
  /// vibration - all on by default).  Probes are only attached for
  /// enabled channels, and the same set keys the reference cache so a
  /// golden without a channel's trace is never served to a campaign that
  /// wants that channel.  Mirrored into detector.channels per rig.
  ChannelSet channels{};
  /// Fixed jitter seed of the reference prints.
  std::uint64_t reference_seed = 42;
  /// Slicer profile shared by every object in the fleet.
  host::SliceProfile profile{};
  /// When set, persist each object's golden capture and each rig's
  /// observed capture as .bin files (core::Capture::save_binary) there,
  /// plus each rig's detector-feed session stream as a .ofs file
  /// (core::wire) replayable by svc::replay_corpus.
  std::string save_captures_dir;
  /// When set, golden references are served from / persisted to this
  /// svc::RefCache directory (content-addressed by object + slicer
  /// profile + reference seed), so repeated campaigns skip the
  /// reference simulations entirely.  Like save_captures_dir, this is
  /// orchestration plumbing: it does not enter the campaign digest and
  /// cannot change report bytes.
  std::string cache_dir;
  /// RefCache LRU size bound in bytes (0 = unbounded).
  std::uint64_t cache_max_bytes = 0;
  /// Per-phase retry/watchdog/quarantine policy.
  SupervisorOptions supervisor{};
  /// When set, write a campaign checkpoint (completed rig verdicts plus
  /// per-object golden references) there after every `checkpoint_every`
  /// completed rigs, via write-to-temp + atomic rename.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 1;
  /// When set, load this checkpoint first and skip (not re-simulate) the
  /// rigs it already covers.
  std::string resume_path;
  /// When > 0, stop the campaign after this many rigs have completed
  /// this process (checkpoint-kill drill for tests; remaining rigs are
  /// reported kPending and FleetReport::complete is false).
  std::size_t stop_after = 0;
};

/// One rig's outcome: spec, print result summary, detector verdict.
struct RigOutcome {
  RigSpec spec;
  OnlineReport detector;
  bool print_finished = false;
  bool safe_stopped = false;   // killed by the fleet's alarm hook
  std::string kill_reason;
  double sim_seconds = 0.0;
  std::array<std::int64_t, 4> final_counts{};
  /// Supervision verdict: ok / recovered / degraded / lost / pending.
  RigStatus status = RigStatus::kOk;
  std::uint32_t attempts = 1;
  /// Last failure the supervisor saw ("" when the first attempt
  /// succeeded; for kLost, why the rig was quarantined).
  std::string failure_cause;
};

/// One orchestration phase's wall-clock cost ("reference/0" per object,
/// "rig/<name>" per rig).
struct PhaseTiming {
  std::string name;
  double seconds = 0.0;
};

/// Whole-fleet result.
struct FleetReport {
  std::vector<RigOutcome> rigs;
  /// Wall-clock phase timings in deterministic order (references by
  /// object index, then rigs by spec index).  Collected on every run but
  /// NEVER rendered by to_json() - only the CLI's --metrics flag
  /// surfaces them, in a separate "metrics" section, so the results stay
  /// byte-identical whether or not instrumentation is on.
  std::vector<PhaseTiming> timings;
  /// False when the campaign stopped early (stop_after): some rigs are
  /// kPending and the report is a partial, resumable snapshot.
  bool complete = true;

  [[nodiscard]] std::size_t alarmed() const;
  [[nodiscard]] std::size_t mid_print_alarms() const;
  /// Supervision census over `rigs`.
  [[nodiscard]] std::size_t count(RigStatus s) const;
  /// Worst-of campaign classification: "partial" when incomplete, else
  /// "lost" / "degraded" / "recovered" / "clean" by the worst rig status.
  [[nodiscard]] std::string campaign() const;

  /// Deterministic machine-readable report (analyzer JSON conventions).
  /// Contains no wall-clock or worker-count data: byte-identical for a
  /// given fleet spec at any worker count.
  [[nodiscard]] std::string to_json() const;
  /// Same document with one extra top-level "metrics" member holding the
  /// pre-rendered JSON value `metrics_json` (see metrics_json()).  With
  /// an empty argument this is to_json() byte for byte.
  [[nodiscard]] std::string to_json_with_metrics(
      const std::string& metrics_json) const;
  /// The "metrics" section value: {"phases": {...}, "registry": {...}} -
  /// the phase timings above plus a snapshot of the process-wide obs::
  /// registry (scheduler/runner/detector counters).  Keys are emitted in
  /// deterministic order; values are wall-clock measurements.
  [[nodiscard]] std::string metrics_json() const;
  /// One line per rig, for the console.
  [[nodiscard]] std::string to_string() const;
};

/// The orchestrator.
class Fleet {
 public:
  explicit Fleet(FleetOptions options = {});

  /// Runs the whole fleet; outcomes are indexed like `specs`.
  FleetReport run(const std::vector<RigSpec>& specs);

  /// Built-in demo fleet: `n` rigs, the first `sabotaged` of which get
  /// Flaw3D variants (cycling reduce:0.5, relocate:5, reduce:0.85,
  /// relocate:10 - the strongly windowed-detectable half of Table II),
  /// interleaved evenly among clean rigs.
  static std::vector<RigSpec> demo_specs(std::size_t n,
                                         std::size_t sabotaged);

  /// Parses a fleet spec document:
  ///   { "workers": 4, "safe_stop": true, "rigs": [
  ///       {"name": "a", "seed": 7, "cube_mm": 8, "height_mm": 3,
  ///        "sabotage": "reduce:0.85"}, ... ] }
  /// Unknown keys are ignored; rig defaults are RigSpec's.  Throws
  /// offramps::Error on malformed JSON or a malformed sabotage string.
  static std::vector<RigSpec> specs_from_json(const std::string& text,
                                              FleetOptions& options);

 private:
  FleetOptions options_;
};

}  // namespace offramps::svc
