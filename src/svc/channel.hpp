// Pluggable detection channels of the online detector.
//
// `OnlineDetector` used to fuse a hard-coded set of per-channel checks
// inline; it is now a *channel manager* in the PassRegistry mold: every
// way of judging a print - windowed step-count compare, stream-length
// overrun, golden-free plausibility, power signature, acoustic master
// signature, vibration signature, the end-of-print checks - is one
// `DetectionChannel` object behind a common interface.  The detector
// delivers each stream event (transaction window, side-channel sample,
// end of stream) to every enabled channel, collects the `ChannelTrip`s
// they emit, and fuses them into one first-alarm verdict: the earliest
// tripped window wins, ties go to the earlier-registered channel.  Each
// channel also contributes a `ChannelVerdict` attribution row to the
// report, so a fleet operator can see which modality caught a Trojan
// and which ones were armed but quiet.
//
// Third-party channels register through `ChannelRegistry::global()`
// exactly like analyzer passes; registration order is the fusion
// tie-break order, which keeps fleet reports deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/oracle.hpp"
#include "core/capture.hpp"
#include "plant/side_channel.hpp"

namespace offramps::svc {

/// Which detection channel raised the (first) alarm.  Values are wire
/// format (checkpoints persist them) - append only.
enum class Channel : std::uint8_t {
  kNone,
  kGoldenCompare,  // windowed step-count mismatch vs golden capture
  kStreamLength,   // stream ran measurably longer than golden
  kGoldenFree,     // physical-plausibility rule violations
  kPower,          // power-signature window mismatch
  kFinalCounts,    // end-of-print 0%-margin golden check
  kStaticOracle,   // end-of-print static-oracle cross-check
  kAcoustic,       // acoustic master-signature window mismatch
  kVibration,      // vibration-signature window mismatch
};

/// One past the largest Channel value; checkpoint decoding and the
/// name round-trip test derive their bounds from this so a new channel
/// cannot be forgotten silently.
inline constexpr std::uint8_t kChannelCount = 9;

const char* channel_name(Channel c);
/// Inverse of channel_name(); Channel::kNone for an unknown name.
Channel channel_from_name(std::string_view name);

/// Side-channel sample taxonomy (also the wire kind byte of kSample
/// session frames - append only).
enum class SampleKind : std::uint8_t {
  kPower = 1,
  kAcoustic = 2,
  kVibration = 3,
};

/// Which channel groups a fleet runs with.  `steps` covers every
/// channel derived from the captured step stream (golden compare,
/// stream length, golden-free, the end-of-print checks); the other
/// three each gate one physical side channel.
struct ChannelSet {
  bool steps = true;
  bool power = true;
  bool acoustic = true;
  bool vibration = true;

  /// The Supervisor's degraded-attempt fallback: step counting alone,
  /// no side-channel probes to simulate or compare.
  [[nodiscard]] ChannelSet counts_only() const {
    return ChannelSet{true, false, false, false};
  }
  /// Intersection (a degraded attempt never enables more than the
  /// campaign asked for).
  [[nodiscard]] ChannelSet intersect(const ChannelSet& other) const {
    return ChannelSet{steps && other.steps, power && other.power,
                      acoustic && other.acoustic,
                      vibration && other.vibration};
  }
  /// Canonical "steps,power,acoustic,vibration" subset string (digest
  /// and CLI-round-trip stable).
  [[nodiscard]] std::string to_string() const;
  /// Parses a comma-separated group list ("power,acoustic,vibration,
  /// steps", any order, "all" = everything).  Throws std::runtime_error
  /// on an unknown group or an empty set.
  static ChannelSet parse(const std::string& text);

  bool operator==(const ChannelSet&) const = default;
};

/// The references a channel may arm against.  All pointers are borrowed
/// and must outlive the detector; a null (or empty) reference leaves
/// the channels needing it unarmed but reported.
struct ChannelRefs {
  const core::Capture* golden = nullptr;
  const analyze::Oracle* oracle = nullptr;
  const plant::PowerTrace* golden_power = nullptr;
  const plant::SideTrace* golden_acoustic = nullptr;
  const plant::SideTrace* golden_vibration = nullptr;
};

/// Per-channel attribution row of the fused verdict.
struct ChannelVerdict {
  Channel channel = Channel::kNone;
  bool armed = false;       // had its reference / was able to judge
  bool tripped = false;     // found sustained evidence of sabotage
  std::uint32_t trip_window = 0;   // transaction window of its first trip
  std::uint64_t windows_compared = 0;
  std::uint64_t mismatches = 0;
};

/// One "this channel wants to alarm" event, tagged with the stream
/// position the fused verdict will record.
struct ChannelTrip {
  Channel channel = Channel::kNone;
  std::uint32_t window = 0;
  std::uint64_t tick_ns = 0;
  std::array<std::int32_t, 4> counts{};
};

/// Fusion rule shared by the detector and the unit suite: the earliest
/// window wins; ties go to the earliest-delivered trip (channels are
/// delivered to in registration order).  nullptr when `trips` is empty.
const ChannelTrip* pick_first_trip(const std::vector<ChannelTrip>& trips);

/// Stream position handed to every channel hook (what the legacy fused
/// detector kept in member state).
struct StreamContext {
  std::size_t windows_processed = 0;
  std::uint64_t last_tick_ns = 0;
  std::array<std::int32_t, 4> last_counts{};
};

struct OnlineDetectorOptions;
struct OnlineReport;

/// Identity card of one channel (also what list() reports).
struct ChannelInfo {
  Channel id = Channel::kNone;
  const char* name = "";
  const char* description = "";
  /// Which ChannelSet group gates this channel.
  enum class Group : std::uint8_t { kSteps, kPower, kAcoustic, kVibration };
  Group group = Group::kSteps;
};

/// One detection channel.  Instances live for one detector, so member
/// variables are the place for channel-local stream state.  Hooks append
/// trips instead of raising directly: fusion is the detector's job.
class DetectionChannel {
 public:
  virtual ~DetectionChannel() = default;
  DetectionChannel() = default;
  DetectionChannel(const DetectionChannel&) = delete;
  DetectionChannel& operator=(const DetectionChannel&) = delete;

  [[nodiscard]] virtual ChannelInfo info() const = 0;

  /// Called once, before the first event, with the references the
  /// detector accumulated.
  virtual void arm(const ChannelRefs& refs) { (void)refs; }
  /// One drained transaction window.
  virtual void on_transaction(const core::Transaction& txn,
                              const StreamContext& ctx,
                              std::vector<ChannelTrip>& trips) {
    (void)txn; (void)ctx; (void)trips;
  }
  /// One side-channel sample (seconds, channel units).
  virtual void on_sample(SampleKind kind, double t_s, double value,
                         const StreamContext& ctx,
                         std::vector<ChannelTrip>& trips) {
    (void)kind; (void)t_s; (void)value; (void)ctx; (void)trips;
  }
  /// End of stream, with the finalized capture.
  virtual void on_finish(const core::Capture& capture,
                         const StreamContext& ctx,
                         std::vector<ChannelTrip>& trips) {
    (void)capture; (void)ctx; (void)trips;
  }
  /// Writes this channel's detail into the report: the legacy embedded
  /// fields (compare_mismatches, power, ...) plus its attribution row.
  virtual void fill_report(OnlineReport& report) const = 0;
};

using ChannelFactory = std::function<std::unique_ptr<DetectionChannel>(
    const OnlineDetectorOptions&)>;

/// Process-wide channel registry.  Builtin channels self-register on
/// first access; third-party channels may `add` more at any time.
/// Thread-safe (fleet rigs build detectors on parallel workers).
class ChannelRegistry {
 public:
  static ChannelRegistry& global();

  /// Registers a channel factory.  Returns false (and registers
  /// nothing) when the Channel id is already taken.  A factory may
  /// return nullptr to sit out a particular configuration (e.g. the
  /// golden-free channel when options disable it).
  bool add(ChannelInfo info, ChannelFactory factory);

  /// Registered channels in registration order (= fusion tie-break
  /// order).
  [[nodiscard]] std::vector<ChannelInfo> list() const;
  [[nodiscard]] bool has(Channel id) const;

  /// Instantiates one channel; nullptr for an unknown id or when the
  /// factory declined the configuration.
  [[nodiscard]] std::unique_ptr<DetectionChannel> make(
      Channel id, const OnlineDetectorOptions& options) const;

  /// Instantiates every registered channel whose group is enabled, in
  /// registration order, skipping factories that decline.
  [[nodiscard]] std::vector<std::unique_ptr<DetectionChannel>> make_enabled(
      const ChannelSet& set, const OnlineDetectorOptions& options) const;

 private:
  ChannelRegistry() = default;
  struct Entry {
    ChannelInfo info;
    ChannelFactory factory;
  };
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

namespace detail {
/// Registers the builtin channels (channel.cpp); called once from
/// ChannelRegistry::global().
void register_builtin_channels(ChannelRegistry& registry);
}  // namespace detail

}  // namespace offramps::svc
