#include "svc/ref_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/error.hpp"

namespace offramps::svc {
namespace {

namespace fs = std::filesystem;

constexpr std::array<char, 4> kMagic{'O', 'F', 'R', 'F'};

struct Fnv {
  std::uint64_t h = 1469598103934665603ull;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Bounded reader over one cache record.
struct Rd {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (size - pos < n) {
      throw Error("RefCache: truncated entry (need " + std::to_string(n) +
                  " bytes, have " + std::to_string(size - pos) + ")");
    }
  }
  [[nodiscard]] std::size_t remaining() const { return size - pos; }

  std::uint16_t u16() {
    need(2);
    const std::uint16_t v =
        static_cast<std::uint16_t>(data[pos] | (data[pos + 1] << 8));
    pos += 2;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data[pos + i];
    pos += 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
};

/// obs counters, registered eagerly at cache construction when metrics
/// are on so a fully-warm campaign still exports "svc.cache.miss": 0.
struct CacheCounters {
  obs::Counter* hit = nullptr;
  obs::Counter* miss = nullptr;
  obs::Counter* evict = nullptr;
  obs::Counter* rejected = nullptr;
};

CacheCounters& cache_counters() {
  static CacheCounters c{&obs::Registry::instance().counter("svc.cache.hit"),
                         &obs::Registry::instance().counter("svc.cache.miss"),
                         &obs::Registry::instance().counter("svc.cache.evict"),
                         &obs::Registry::instance().counter(
                             "svc.cache.rejected")};
  return c;
}

}  // namespace

std::uint64_t reference_digest(double cube_mm, double height_mm,
                               const host::SliceProfile& p,
                               std::uint64_t reference_seed,
                               const ChannelSet& channels) {
  Fnv f;
  f.str("offramps-reference-v2");
  f.f64(cube_mm);
  f.f64(height_mm);
  f.u64(reference_seed);
  // Each probe flag separately: a golden computed without the acoustic
  // probe has no master signature, so it must not be addressable by a
  // campaign that needs one.  (`steps` needs no probe and is excluded.)
  f.u64(channels.power ? 1 : 0);
  f.u64(channels.acoustic ? 1 : 0);
  f.u64(channels.vibration ? 1 : 0);
  f.f64(p.layer_height_mm);
  f.f64(p.line_width_mm);
  f.f64(p.filament_diameter_mm);
  f.f64(p.first_layer_speed_mm_s);
  f.f64(p.perimeter_speed_mm_s);
  f.f64(p.infill_speed_mm_s);
  f.f64(p.travel_speed_mm_s);
  f.f64(p.z_speed_mm_s);
  f.f64(p.retract_mm);
  f.f64(p.retract_speed_mm_s);
  f.f64(p.hotend_temp_c);
  f.f64(p.bed_temp_c);
  f.f64(p.fan_duty);
  f.u64(p.fan_from_layer);
  f.u64(static_cast<std::uint64_t>(p.perimeter_count));
  f.f64(p.infill_spacing_mm);
  f.f64(p.prime_e_mm);
  f.u64(static_cast<std::uint64_t>(p.skirt_loops));
  f.f64(p.skirt_gap_mm);
  return f.h;
}

RefCache::RefCache(RefCacheOptions options) : options_(std::move(options)) {
  if (options_.dir.empty()) {
    throw Error("RefCache: cache directory must not be empty");
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec || !fs::is_directory(options_.dir)) {
    throw Error("RefCache: cannot create cache directory " + options_.dir);
  }
  if (obs::enabled()) cache_counters();  // eager registration
}

std::string RefCache::path_for(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.ref",
                static_cast<unsigned long long>(key));
  return options_.dir + "/" + name;
}

std::vector<std::uint8_t> RefCache::encode_entry(std::uint64_t key,
                                                 const RefEntry& entry) {
  const auto blob = entry.golden.to_binary();
  std::vector<std::uint8_t> out;
  out.reserve(48 + blob.size() + 16 * entry.golden_power.size() +
              16 * entry.golden_acoustic.size() +
              16 * entry.golden_vibration.size());
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u16(out, kVersion);
  put_u16(out, 0);  // reserved
  put_u64(out, key);
  put_u64(out, blob.size());
  out.insert(out.end(), blob.begin(), blob.end());
  put_u64(out, entry.golden_power.size());
  for (const auto& s : entry.golden_power) {
    put_f64(out, s.t_s);
    put_f64(out, s.watts);
  }
  for (const auto* trace : {&entry.golden_acoustic, &entry.golden_vibration}) {
    put_u64(out, trace->size());
    for (const auto& s : *trace) {
      put_f64(out, s.t_s);
      put_f64(out, s.value);
    }
  }
  return out;
}

RefEntry RefCache::decode_entry(const std::uint8_t* data, std::size_t size,
                                std::uint64_t expect_key) {
  Rd r{data, size};
  r.need(4);
  if (std::memcmp(data, kMagic.data(), 4) != 0) {
    throw Error("RefCache: bad magic (not a reference cache entry)");
  }
  r.pos = 4;
  const std::uint16_t version = r.u16();
  if (version != kVersion) {
    throw Error("RefCache: unsupported entry version " +
                std::to_string(version));
  }
  r.u16();  // reserved
  const std::uint64_t key = r.u64();
  if (key != expect_key) {
    throw Error("RefCache: entry key does not match its address");
  }
  const std::uint64_t blob_len = r.u64();
  r.need(blob_len);
  RefEntry entry;
  entry.golden = core::Capture::from_binary(data + r.pos,
                                            static_cast<std::size_t>(blob_len));
  r.pos += static_cast<std::size_t>(blob_len);
  const std::uint64_t samples = r.u64();
  // Each sample is 16 bytes; checking the aggregate before reserving
  // keeps a lying count from allocating gigabytes.
  if (samples > r.remaining() / 16) {
    throw Error("RefCache: truncated entry (power sample count lies)");
  }
  entry.golden_power.reserve(static_cast<std::size_t>(samples));
  for (std::uint64_t i = 0; i < samples; ++i) {
    plant::PowerSample s;
    s.t_s = r.f64();
    s.watts = r.f64();
    entry.golden_power.push_back(s);
  }
  for (plant::SideTrace* trace :
       {&entry.golden_acoustic, &entry.golden_vibration}) {
    const std::uint64_t n = r.u64();
    if (n > r.remaining() / 16) {
      throw Error("RefCache: truncated entry (side sample count lies)");
    }
    trace->reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      plant::SideSample s;
      s.t_s = r.f64();
      s.value = r.f64();
      trace->push_back(s);
    }
  }
  if (r.remaining() != 0) {
    throw Error("RefCache: trailing bytes after entry");
  }
  return entry;
}

std::optional<RefEntry> RefCache::get(std::uint64_t key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string path = path_for(key);
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      ++stats_.misses;
      if (obs::enabled()) cache_counters().miss->add(1);
      return std::nullopt;
    }
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  try {
    RefEntry entry = decode_entry(bytes.data(), bytes.size(), key);
    // Refresh recency so the LRU budget sees this entry as live.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    ++stats_.hits;
    if (obs::enabled()) cache_counters().hit->add(1);
    return entry;
  } catch (const Error&) {
    // Truncated / corrupt / skewed: delete so it cannot poison later
    // campaigns, report a miss, let the caller recompute.
    std::error_code ec;
    fs::remove(path, ec);
    ++stats_.rejected;
    ++stats_.misses;
    if (obs::enabled()) {
      cache_counters().rejected->add(1);
      cache_counters().miss->add(1);
    }
    return std::nullopt;
  }
}

void RefCache::put(std::uint64_t key, const RefEntry& entry) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string path = path_for(key);
  const std::string tmp = path + ".tmp";
  const auto bytes = encode_entry(key, entry);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("RefCache: cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw Error("RefCache: write failed for " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw Error("RefCache: rename to " + path + " failed: " + ec.message());
  }
  enforce_budget_locked();
}

void RefCache::enforce_budget_locked() {
  if (options_.max_bytes == 0) return;
  struct File {
    fs::file_time_type mtime;
    std::string name;
    std::string path;
    std::uint64_t size = 0;
  };
  std::vector<File> files;
  std::uint64_t total = 0;
  std::error_code ec;
  for (fs::directory_iterator it(options_.dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (it->path().extension() != ".ref") continue;
    File f;
    f.path = it->path().string();
    f.name = it->path().filename().string();
    f.mtime = fs::last_write_time(it->path(), ec);
    f.size = it->file_size(ec);
    total += f.size;
    files.push_back(std::move(f));
  }
  if (total <= options_.max_bytes) return;
  // Oldest first; filename tiebreak keeps eviction deterministic when a
  // filesystem's mtime granularity collapses timestamps.
  std::sort(files.begin(), files.end(), [](const File& a, const File& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.name < b.name;
  });
  // Never evict the newest entry (the one a put just wrote), even when
  // the budget is smaller than a single record.
  for (std::size_t i = 0; i + 1 < files.size(); ++i) {
    if (total <= options_.max_bytes) break;
    std::error_code rm_ec;
    if (fs::remove(files[i].path, rm_ec)) {
      total -= files[i].size;
      ++stats_.evictions;
      if (obs::enabled()) cache_counters().evict->add(1);
    }
  }
}

RefCache::Stats RefCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace offramps::svc
