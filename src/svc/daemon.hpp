// Long-lived fleet service: rig sessions over Unix-domain sockets or a
// framed stdin pipe, plus offline corpus replay.
//
// The batch fleet (svc::Fleet) simulates its rigs itself; the daemon
// inverts that: rigs are *clients* that join and leave mid-campaign,
// streaming core::wire sessions at the service.  Each accepted session
// is sharded onto the existing host::ParallelRunner workers (post()
// service lane) and consumed through a RigSession, which preserves the
// SPSC lossless-backpressure contract end to end: the daemon reads a
// connection only as fast as the detector drains, so a slow detector
// fills the kernel socket buffer and stalls the producer - it never
// drops.  SIGTERM (or SIGINT, or stdin EOF) drains in-flight rigs and
// yields the usual deterministic FleetReport, rigs ordered by their
// hello's campaign index so the report is byte-identical to the live
// campaign the streams were recorded from.
//
// Golden references resolve through a shared ReferenceResolver: one
// compute per content digest per process, backed by the on-disk
// svc::RefCache when a cache directory is configured - so a farm daemon
// simulates each reference at most once, ever.
//
// replay_corpus() is the offline flavor: re-run detector verdicts from
// `--captures`-saved session files without simulating anything,
// optionally mangled by session-layer chaos drills (disconnect,
// framecorrupt) to prove the quarantine/recovery ladder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "host/chaos.hpp"
#include "host/slicer.hpp"
#include "svc/fleet.hpp"
#include "svc/session.hpp"

namespace offramps::svc {

/// Options shared by the daemon and replay: how sessions are judged and
/// how references are obtained.  Detector/pump tuning must match the
/// campaign the streams came from for byte-identical reports.
struct ServiceOptions {
  /// Worker threads; 0 = host::ParallelRunner::default_workers().
  std::size_t workers = 0;
  OnlineDetectorOptions detector{};
  PumpOptions pump{};
  bool use_oracle = true;
  /// Enabled side channels; mirrored into the per-session detector and
  /// part of the reference digest, exactly like FleetOptions::channels.
  ChannelSet channels{};
  std::uint64_t reference_seed = 42;
  host::SliceProfile profile{};
  /// When set, golden references are served from / persisted to this
  /// svc::RefCache directory.
  std::string cache_dir;
  std::uint64_t cache_max_bytes = 0;
};

struct ReplayOptions {
  ServiceOptions service{};
  /// Session-layer chaos drills keyed by corpus file index (sorted
  /// order), applied to the loaded stream bytes before parsing.
  std::vector<std::pair<std::size_t, host::ChaosSpec>> chaos;
};

/// Re-runs detector verdicts over every `*.ofs` session file in
/// `corpus_dir` (sorted, sharded over the worker pool), resolving golden
/// references through the cache instead of the simulator.  Throws
/// offramps::Error when the corpus is missing or empty.
FleetReport replay_corpus(const std::string& corpus_dir,
                          const ReplayOptions& options);

struct DaemonOptions {
  ServiceOptions service{};
  /// Unix-domain socket to listen on; empty or "-" serves concatenated
  /// session streams from stdin instead.
  std::string socket_path;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);

  /// Serves until SIGTERM/SIGINT (socket mode) or EOF (stdin mode),
  /// then drains in-flight sessions and returns the campaign report.
  FleetReport serve();

  /// Join client: streams one recorded `.ofs` session file into a
  /// serving daemon and waits for its one-byte verdict ack.  Returns 0
  /// when the session was accepted (clean or alarmed), 1 when the
  /// daemon reported it lost or the socket failed.
  static int stream_file(const std::string& socket_path,
                         const std::string& file);

 private:
  FleetReport serve_socket();
  FleetReport serve_stdin();

  DaemonOptions options_;
};

}  // namespace offramps::svc
