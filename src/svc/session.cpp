#include "svc/session.hpp"

#include <utility>

#include "sim/error.hpp"

namespace offramps::svc {

RigSession::RigSession(SessionOptions options, ResolveRefs resolve)
    : options_(std::move(options)), resolve_(std::move(resolve)) {
  if (options_.windows_per_slot == 0) {
    throw Error("RigSession: windows_per_slot must be > 0");
  }
}

void RigSession::fail(const std::string& why) {
  if (failed_) return;
  failed_ = true;
  error_ = why;
}

void RigSession::on_frame(const core::wire::Frame& frame) {
  using core::wire::FrameType;
  if (failed_ || saw_end_) return;
  if (!has_hello_ && frame.type != FrameType::kHello) {
    fail("session: first frame must be hello");
    return;
  }
  try {
    switch (frame.type) {
      case FrameType::kHello: {
        if (has_hello_) {
          fail("session: duplicate hello");
          return;
        }
        hello_ = frame.hello;
        has_hello_ = true;
        const SessionRefs refs = resolve_(hello_);
        if (refs.golden == nullptr) {
          fail("session: no golden reference for object");
          return;
        }
        detector_ = std::make_unique<OnlineDetector>(options_.detector);
        detector_->set_golden(refs.golden);
        if (refs.oracle != nullptr) detector_->set_oracle(refs.oracle);
        if (refs.golden_power != nullptr && !refs.golden_power->empty()) {
          detector_->set_golden_power(refs.golden_power);
        }
        if (refs.golden_acoustic != nullptr &&
            !refs.golden_acoustic->empty()) {
          detector_->set_golden_acoustic(refs.golden_acoustic);
        }
        if (refs.golden_vibration != nullptr &&
            !refs.golden_vibration->empty()) {
          detector_->set_golden_vibration(refs.golden_vibration);
        }
        break;
      }
      case FrameType::kTxn:
        detector_->submit(frame.txn);
        break;
      case FrameType::kPower:
        detector_->submit_power(frame.power_t_s, frame.power_watts);
        break;
      case FrameType::kSample:
        detector_->submit_sample(static_cast<SampleKind>(frame.sample_kind),
                                 frame.sample_t_s, frame.sample_value);
        break;
      case FrameType::kSlot:
        detector_->poll(options_.windows_per_slot);
        break;
      case FrameType::kFinish: {
        if (saw_finish_) {
          fail("session: duplicate finish");
          return;
        }
        // A lying blob here is a protocol failure, not frame damage: the
        // outer frame was intact, so the peer sent a bad capture.
        const core::Capture capture = core::Capture::from_binary(
            frame.finish.data(), frame.finish.size());
        saw_finish_ = true;
        detector_->finish(capture);
        break;
      }
      case FrameType::kEnd:
        meta_ = frame.end;
        saw_end_ = true;
        break;
    }
  } catch (const std::exception& e) {
    fail(std::string("session: ") + e.what());
  }
}

std::size_t RigSession::feed(const std::uint8_t* data, std::size_t n) {
  return reader_.feed(data, n,
                      [this](const core::wire::Frame& f) { on_frame(f); });
}

void RigSession::close() {
  if (saw_end_) return;
  reader_.close();
  if (reader_.failed() && !failed_) fail(reader_.error());
}

RigOutcome RigSession::outcome() const {
  RigOutcome out;
  bool spec_ok = true;
  if (has_hello_) {
    out.spec.name = hello_.name;
    out.spec.seed = hello_.seed;
    out.spec.cube_mm = hello_.cube_mm;
    out.spec.height_mm = hello_.height_mm;
    try {
      out.spec.sabotage = parse_sabotage(hello_.sabotage);
      out.spec.chaos = host::parse_chaos(hello_.chaos);
    } catch (const Error&) {
      // A hello whose spec strings fail their strict grammars is not a
      // stream we can report faithfully: quarantine.
      spec_ok = false;
    }
  }
  out.attempts = 1;

  const bool lost = failed_ || !saw_end_ || !has_hello_ || !spec_ok;
  if (lost) {
    out.status = RigStatus::kLost;
    out.failure_cause = failed_       ? error_
                        : !has_hello_ ? "session: no hello"
                        : !spec_ok    ? "session: malformed spec in hello"
                                      : "session: disconnected before end";
    out.attempts = has_hello_ ? 1 : 0;
    return out;
  }

  out.detector = detector_->report();
  out.print_finished = meta_.print_finished;
  out.safe_stopped = meta_.safe_stopped;
  out.sim_seconds = meta_.sim_seconds;
  out.final_counts = meta_.final_counts;
  if (reader_.resyncs() > 0 || reader_.corrupt_txns() > 0) {
    out.status = RigStatus::kRecovered;
    out.failure_cause = "session: resynced " +
                        std::to_string(reader_.resyncs()) +
                        " frame gap(s), dropped " +
                        std::to_string(reader_.corrupt_txns()) +
                        " corrupt transaction(s)";
  } else {
    out.status = RigStatus::kOk;
  }
  return out;
}

}  // namespace offramps::svc
