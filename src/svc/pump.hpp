// Clock-slaved detector pump.
//
// The OnlineDetector's ring buffer models the host-side boundary between
// the capture wire (producer) and the analysis loop (consumer).  In a
// real deployment the consumer runs at some finite service rate; this
// pump reproduces that inside the discrete-event simulation by draining
// a bounded number of windows per service period, on the same scheduler
// the rig runs on.  Slowing the pump (small budget, long period) is how
// the tests provoke genuine ring-buffer backpressure without threads.
#pragma once

#include <cstddef>
#include <functional>

#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "svc/online_detector.hpp"

namespace offramps::svc {

/// Pump tuning.
struct PumpOptions {
  /// Service period: how often the consumer side gets scheduled.
  sim::Tick period = sim::ms(100);
  /// Windows processed per service slot (the consumer's throughput).
  std::size_t windows_per_slot = 4;
};

/// Periodically polls an OnlineDetector from the simulation clock.
class Pump {
 public:
  Pump(sim::Scheduler& sched, OnlineDetector& detector,
       PumpOptions options = {})
      : sched_(sched), detector_(detector), options_(options) {
    if (options_.windows_per_slot == 0) {
      throw Error("Pump: windows_per_slot must be > 0");
    }
    schedule();
  }

  Pump(const Pump&) = delete;
  Pump& operator=(const Pump&) = delete;

  /// Stops rescheduling (the in-flight slot still runs).  Used at end of
  /// print so the scheduler can drain.
  void stop() { stopped_ = true; }

  /// Extra work per service slot, before the poll - the fleet streams
  /// freshly captured power samples into the detector here.
  void on_slot(std::function<void()> hook) { on_slot_ = std::move(hook); }

  /// Consumer gate: when set and returning false, the slot still runs
  /// its hook but skips the detector poll (a wedged consumer).  The
  /// chaos harness uses this to force the producer into the ring's
  /// lossless backpressure path.
  void set_gate(std::function<bool()> gate) { gate_ = std::move(gate); }

  [[nodiscard]] std::size_t slots_run() const { return slots_run_; }

 private:
  void schedule() {
    sched_.schedule_in(options_.period, [this] {
      if (stopped_) return;
      ++slots_run_;
#if OFFRAMPS_OBS_ENABLED
      if (obs::enabled()) {
        // Lazily bound member handle (not a magic static): no guard
        // load per slot, and registration still only happens on runs
        // that actually meter.
        if (obs_slots_ == nullptr) {
          obs_slots_ = &obs::Registry::instance().counter("svc.pump.slots");
        }
        obs_slots_->add(1);
      }
#endif
      if (on_slot_) on_slot_();
      if (!gate_ || gate_()) detector_.poll(options_.windows_per_slot);
      schedule();
    });
  }

  sim::Scheduler& sched_;
  OnlineDetector& detector_;
  PumpOptions options_;
  std::function<void()> on_slot_;
  std::function<bool()> gate_;
  std::size_t slots_run_ = 0;
  bool stopped_ = false;
#if OFFRAMPS_OBS_ENABLED
  obs::Counter* obs_slots_ = nullptr;
#endif
};

}  // namespace offramps::svc
