#include "svc/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>

#include "analyze/analyzer.hpp"
#include "core/strict_parse.hpp"
#include "gcode/flaw3d.hpp"
#include "host/parallel_runner.hpp"
#include "host/rig.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/error.hpp"
#include "core/session_wire.hpp"
#include "svc/checkpoint.hpp"
#include "svc/json.hpp"
#include "svc/ref_cache.hpp"

namespace offramps::svc {

std::string Sabotage::to_string() const {
  char buf[48];
  switch (kind) {
    case Kind::kNone: return "clean";
    case Kind::kReduction:
      std::snprintf(buf, sizeof(buf), "reduce:%.2f", factor);
      return buf;
    case Kind::kRelocation:
      std::snprintf(buf, sizeof(buf), "relocate:%u", every_n);
      return buf;
  }
  return "?";
}

Sabotage parse_sabotage(const std::string& text) {
  Sabotage s;
  if (text.empty() || text == "clean" || text == "none") return s;
  const auto colon = text.find(':');
  const std::string head = text.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : text.substr(colon + 1);
  if (head == "reduce") {
    // core::parse_double is strict (whole string, locale-independent) -
    // std::strtod would accept "0.5junk" and, under a de_DE LC_NUMERIC,
    // read "0,5" styles differently than the spec files intend.
    const auto f = core::parse_double(arg);
    if (!f || *f <= 0.0 || *f >= 1.0) {
      throw Error("sabotage: reduce wants a factor in (0, 1): \"" + text +
                  "\"");
    }
    s.kind = Sabotage::Kind::kReduction;
    s.factor = *f;
    return s;
  }
  if (head == "relocate") {
    const auto n = core::parse_long(arg);
    if (!n || *n < 1 || *n > 0xFFFFFFFFll) {
      throw Error("sabotage: relocate wants a positive move count: \"" +
                  text + "\"");
    }
    s.kind = Sabotage::Kind::kRelocation;
    s.every_n = static_cast<std::uint32_t>(*n);
    return s;
  }
  throw Error(
      "sabotage: expected \"clean\", \"reduce:<factor>\" or "
      "\"relocate:<n>\", got \"" +
      text + "\"");
}

std::size_t FleetReport::alarmed() const {
  std::size_t n = 0;
  for (const auto& r : rigs) n += r.detector.alarmed ? 1 : 0;
  return n;
}

std::size_t FleetReport::mid_print_alarms() const {
  std::size_t n = 0;
  for (const auto& r : rigs) n += r.detector.alarmed_mid_print ? 1 : 0;
  return n;
}

std::size_t FleetReport::count(RigStatus s) const {
  std::size_t n = 0;
  for (const auto& r : rigs) n += r.status == s ? 1 : 0;
  return n;
}

std::string FleetReport::campaign() const {
  if (!complete || count(RigStatus::kPending) > 0) return "partial";
  if (count(RigStatus::kLost) > 0) return "lost";
  if (count(RigStatus::kDegraded) > 0) return "degraded";
  if (count(RigStatus::kRecovered) > 0) return "recovered";
  return "clean";
}

namespace {

void append_kv(std::string& out, const char* key, bool v) {
  out += '"';
  out += key;
  out += "\": ";
  out += v ? "true" : "false";
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// A file-name-safe rendition of a rig name.
std::string sanitize(const std::string& name) {
  std::string out;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    out += ok ? c : '_';
  }
  return out.empty() ? "rig" : out;
}

}  // namespace

std::string FleetReport::to_json() const {
  std::size_t sabotaged = 0;
  std::size_t true_alarms = 0;
  std::size_t false_alarms = 0;
  for (const auto& r : rigs) {
    const bool dirty = r.spec.sabotage.kind != Sabotage::Kind::kNone;
    sabotaged += dirty ? 1 : 0;
    if (r.detector.alarmed) {
      (dirty ? true_alarms : false_alarms) += 1;
    }
  }

  char buf[512];
  std::string out = "{\n  \"fleet\": {\n";
  std::snprintf(buf, sizeof(buf),
                "    \"rigs\": %zu,\n    \"sabotaged\": %zu,\n"
                "    \"alarmed\": %zu,\n    \"mid_print_alarms\": %zu,\n"
                "    \"true_alarms\": %zu,\n    \"false_alarms\": %zu,\n",
                rigs.size(), sabotaged, alarmed(), mid_print_alarms(),
                true_alarms, false_alarms);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"recovered\": %zu,\n    \"degraded\": %zu,\n"
                "    \"lost\": %zu,\n    \"pending\": %zu,\n",
                count(RigStatus::kRecovered), count(RigStatus::kDegraded),
                count(RigStatus::kLost), count(RigStatus::kPending));
  out += buf;
  out += "    \"campaign\": \"";
  out += campaign();
  out += "\",\n    ";
  append_kv(out, "complete", complete);
  out += "\n  },\n  \"rigs\": [";
  for (std::size_t i = 0; i < rigs.size(); ++i) {
    const RigOutcome& r = rigs[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    std::snprintf(buf, sizeof(buf),
                  "      \"name\": \"%s\",\n      \"seed\": %llu,\n"
                  "      \"cube_mm\": %.6f,\n      \"height_mm\": %.6f,\n"
                  "      \"sabotage\": \"%s\",\n",
                  json_escape(r.spec.name).c_str(),
                  static_cast<unsigned long long>(r.spec.seed),
                  r.spec.cube_mm, r.spec.height_mm,
                  r.spec.sabotage.to_string().c_str());
    out += buf;
    out += "      \"chaos\": \"";
    out += r.spec.chaos.to_string();
    out += "\",\n      \"status\": \"";
    out += rig_status_name(r.status);
    std::snprintf(buf, sizeof(buf), "\",\n      \"attempts\": %u,\n",
                  r.attempts);
    out += buf;
    // failure_cause carries arbitrary exception text - append it through
    // the escaper, never through a fixed snprintf buffer.
    out += "      \"failure_cause\": \"";
    out += json_escape(r.failure_cause);
    out += "\",\n";
    out += "      ";
    append_kv(out, "alarmed", r.detector.alarmed);
    out += ",\n      ";
    append_kv(out, "alarm_mid_print", r.detector.alarmed_mid_print);
    std::snprintf(buf, sizeof(buf),
                  ",\n      \"alarm_channel\": \"%s\",\n"
                  "      \"alarm_window\": %u,\n"
                  "      \"alarm_time_s\": %.6f,\n"
                  "      \"alarm_gcode_line\": %zu,\n"
                  "      \"windows_processed\": %zu,\n"
                  "      \"ring_high_water\": %zu,\n"
                  "      \"backpressure_stalls\": %llu,\n"
                  "      \"compare_mismatches\": %zu,\n"
                  "      \"golden_free_violations\": %zu,\n"
                  "      \"power_windows_compared\": %zu,\n"
                  "      \"power_mismatches\": %zu,\n",
                  channel_name(r.detector.first_channel),
                  r.detector.alarm_window,
                  static_cast<double>(r.detector.alarm_tick_ns) / 1e9,
                  r.detector.alarm_gcode_line, r.detector.windows_processed,
                  r.detector.ring_high_water,
                  static_cast<unsigned long long>(
                      r.detector.backpressure_stalls),
                  r.detector.compare_mismatches,
                  r.detector.golden_free.violations.size(),
                  r.detector.power.windows_compared,
                  r.detector.power.mismatches.size());
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "      \"acoustic_windows_compared\": %zu,\n"
                  "      \"acoustic_mismatches\": %zu,\n"
                  "      \"vibration_windows_compared\": %zu,\n"
                  "      \"vibration_mismatches\": %zu,\n",
                  r.detector.acoustic.windows_compared,
                  r.detector.acoustic.mismatches.size(),
                  r.detector.vibration.windows_compared,
                  r.detector.vibration.mismatches.size());
    out += buf;
    // Per-channel attribution: one row per registered channel of this
    // rig's detector, in fusion (registration) order.
    out += "      \"channels\": [";
    for (std::size_t c = 0; c < r.detector.channels.size(); ++c) {
      const ChannelVerdict& v = r.detector.channels[c];
      out += c == 0 ? "\n" : ",\n";
      std::snprintf(buf, sizeof(buf),
                    "        {\"channel\": \"%s\", \"armed\": %s, "
                    "\"tripped\": %s, \"trip_window\": %u, "
                    "\"windows_compared\": %llu, \"mismatches\": %llu}",
                    channel_name(v.channel), v.armed ? "true" : "false",
                    v.tripped ? "true" : "false", v.trip_window,
                    static_cast<unsigned long long>(v.windows_compared),
                    static_cast<unsigned long long>(v.mismatches));
      out += buf;
    }
    out += r.detector.channels.empty() ? "],\n" : "\n      ],\n";
    out += "      ";
    append_kv(out, "final_counts_match", r.detector.final_counts_match);
    out += ",\n      ";
    append_kv(out, "static_trojan_suspected",
              r.detector.static_final.trojan_suspected);
    out += ",\n      ";
    append_kv(out, "print_finished", r.print_finished);
    out += ",\n      ";
    append_kv(out, "safe_stopped", r.safe_stopped);
    std::snprintf(buf, sizeof(buf),
                  ",\n      \"sim_seconds\": %.6f,\n"
                  "      \"final_counts\": [%lld, %lld, %lld, %lld]\n",
                  r.sim_seconds,
                  static_cast<long long>(r.final_counts[0]),
                  static_cast<long long>(r.final_counts[1]),
                  static_cast<long long>(r.final_counts[2]),
                  static_cast<long long>(r.final_counts[3]));
    out += buf;
    out += "    }";
  }
  out += rigs.empty() ? "]\n}" : "\n  ]\n}";
  return out;
}

std::string FleetReport::to_json_with_metrics(
    const std::string& metrics_json) const {
  std::string out = to_json();
  if (metrics_json.empty()) return out;
  // Splice ",\n  \"metrics\": <value>" before the closing "\n}" so the
  // deterministic part of the document stays byte for byte to_json().
  out.resize(out.size() - 2);  // drop "\n}"
  out += ",\n  \"metrics\": ";
  out += metrics_json;
  out += "\n}";
  return out;
}

std::string FleetReport::metrics_json() const {
  char buf[64];
  std::string out = "{\n    \"phases\": {";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "      \"";
    out += json_escape(timings[i].name);
    std::snprintf(buf, sizeof(buf), "\": %.6f", timings[i].seconds);
    out += buf;
  }
  out += timings.empty() ? "}" : "\n    }";
  out += ",\n    \"registry\": ";
  out += obs::Registry::instance().to_json();
  out += "\n  }";
  return out;
}

std::string FleetReport::to_string() const {
  std::string out;
  char buf[256];
  for (const auto& r : rigs) {
    std::string status;
    if (r.status != RigStatus::kOk) {
      status = " [";
      status += rig_status_name(r.status);
      if (r.attempts > 1) status += " x" + std::to_string(r.attempts);
      status += "]";
    }
    std::snprintf(buf, sizeof(buf), "%-10s seed=%-6llu %-14s %s%s%s\n",
                  r.spec.name.c_str(),
                  static_cast<unsigned long long>(r.spec.seed),
                  r.spec.sabotage.to_string().c_str(),
                  r.detector.to_string().c_str(),
                  r.safe_stopped ? " [safe-stopped]" : "", status.c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "fleet: %zu rigs, %zu alarmed (%zu mid-print), campaign %s\n",
                rigs.size(), alarmed(), mid_print_alarms(),
                campaign().c_str());
  out += buf;
  return out;
}

Fleet::Fleet(FleetOptions options) : options_(std::move(options)) {}

void attach_probes(host::RigOptions& ro, const ChannelSet& channels,
                   std::uint64_t seed) {
  // (Every run used to get the probe defaults verbatim, so the whole
  // farm shared one noise sequence - two rigs' "independent" sensors
  // were bit-identical.)
  if (channels.power) {
    plant::PowerProbeOptions po;
    po.noise_seed = plant::probe_noise_seed(seed, po.noise_seed);
    ro.power_probe = po;
  }
  if (channels.acoustic) {
    plant::AcousticProbeOptions ao;
    ao.noise_seed = plant::probe_noise_seed(seed, ao.noise_seed);
    ro.acoustic_probe = ao;
  }
  if (channels.vibration) {
    plant::VibrationProbeOptions vo;
    vo.noise_seed = plant::probe_noise_seed(seed, vo.noise_seed);
    ro.vibration_probe = vo;
  }
}

namespace {

/// Per-object reference data shared by every rig printing that object.
struct Reference {
  gcode::Program program;       // clean sliced program
  analyze::Oracle oracle;
  core::Capture golden;
  plant::PowerTrace golden_power;
  plant::SideTrace golden_acoustic;
  plant::SideTrace golden_vibration;
};

gcode::Program sabotaged_program(const gcode::Program& clean,
                                 const Sabotage& s) {
  switch (s.kind) {
    case Sabotage::Kind::kNone: return clean;
    case Sabotage::Kind::kReduction:
      return gcode::flaw3d::apply_reduction(clean, {.factor = s.factor});
    case Sabotage::Kind::kRelocation:
      return gcode::flaw3d::apply_relocation(clean,
                                             {.every_n_moves = s.every_n});
  }
  return clean;
}

}  // namespace

FleetReport Fleet::run(const std::vector<RigSpec>& specs) {
  host::ParallelRunner pool(options_.workers);
  const Supervisor supervisor(options_.supervisor);

  // Reference cache: opened once per campaign; its counters (and the
  // simulation counter it suppresses) register eagerly so a fully-warm
  // run still exports "svc.ref.simulations": 0 for the acceptance grep.
  std::unique_ptr<RefCache> ref_cache;
  if (!options_.cache_dir.empty()) {
    ref_cache = std::make_unique<RefCache>(
        RefCacheOptions{options_.cache_dir, options_.cache_max_bytes});
  }
#if OFFRAMPS_OBS_ENABLED
  if (obs::enabled()) {
    obs::Registry::instance().counter("svc.ref.simulations");
  }
#endif

  // Normalized specs: default names resolved up front so the campaign
  // digest, the checkpoint records, and the report all agree.
  std::vector<RigSpec> fleet(specs);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (fleet[i].name.empty()) fleet[i].name = "rig-" + std::to_string(i);
  }

  // Distinct objects, in first-seen order (deterministic grouping).
  std::vector<std::pair<double, double>> objects;
  std::vector<std::size_t> object_of(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const std::pair<double, double> key{fleet[i].cube_mm,
                                        fleet[i].height_mm};
    const auto it = std::find(objects.begin(), objects.end(), key);
    object_of[i] = static_cast<std::size_t>(it - objects.begin());
    if (it == objects.end()) objects.push_back(key);
  }

  const std::uint64_t digest = campaign_digest(fleet, options_);

  // Resume: pull prior outcomes and golden references out of the
  // checkpoint.  A digest mismatch is a hard error - resuming with
  // edited specs or options would silently skew results.
  std::vector<char> already_done(fleet.size(), 0);
  std::vector<RigOutcome> prior(fleet.size());
  std::vector<ReferenceSnapshot> ref_snapshots(objects.size());
  std::vector<char> have_snapshot(objects.size(), 0);
  if (!options_.resume_path.empty()) {
    Checkpoint ck = Checkpoint::load(options_.resume_path);
    if (ck.spec_digest != digest) {
      throw Error(
          "checkpoint: spec digest mismatch - this checkpoint was written "
          "by a different campaign (specs or options changed)");
    }
    if (ck.total_rigs != fleet.size()) {
      throw Error("checkpoint: rig count mismatch with the fleet spec");
    }
    if (ck.references.size() > objects.size()) {
      throw Error("checkpoint: more references than the fleet has objects");
    }
    for (std::size_t j = 0; j < ck.references.size(); ++j) {
      if (ck.references[j].golden.empty()) continue;  // degraded/lost ref
      ref_snapshots[j] = std::move(ck.references[j]);
      have_snapshot[j] = 1;
    }
    for (auto& [index, outcome] : ck.done) {
      already_done[index] = 1;
      prior[index] = std::move(outcome);
    }
  }

  // Per-job wall-clock, written by worker threads into index-addressed
  // slots (no sharing) and merged in index order afterwards, so the
  // timings list is deterministic even though the values are wall-clock.
  std::vector<double> ref_seconds(objects.size(), 0.0);
  std::vector<double> rig_seconds(fleet.size(), 0.0);
  const auto seconds_since =
      [](std::chrono::steady_clock::time_point t0) {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
      };

  // Reference phase: slice + oracle + one golden print per object, each
  // print supervised (retry on throw, sim-clocked stall watchdog).  On
  // resume the golden capture/power come from the checkpoint and only
  // the cheap deterministic slice + oracle are recomputed.
  std::vector<GuardOutcome> ref_guards(objects.size());
  std::vector<Reference> refs = pool.map<Reference>(
      objects.size(), [&](std::size_t i) {
        const obs::Span span("reference/" + std::to_string(i), "fleet");
        const auto job_t0 = std::chrono::steady_clock::now();
        Reference ref;
        const host::CubeSpec cube{.size_x_mm = objects[i].first,
                                  .size_y_mm = objects[i].first,
                                  .height_mm = objects[i].second,
                                  .center_x_mm = 110.0,
                                  .center_y_mm = 100.0};
        ref.program = host::slice_cube(cube, options_.profile);
        ref.oracle =
            analyze::analyze_program(ref.program, fw::Config{}).oracle;

        if (have_snapshot[i]) {
          ref.golden = std::move(ref_snapshots[i].golden);
          ref.golden_power = std::move(ref_snapshots[i].golden_power);
          ref.golden_acoustic = std::move(ref_snapshots[i].golden_acoustic);
          ref.golden_vibration = std::move(ref_snapshots[i].golden_vibration);
          ref_guards[i] = GuardOutcome{RigStatus::kOk, 0, {}};
          ref_seconds[i] = seconds_since(job_t0);
          return ref;
        }

        // Content-addressed cache: a hit replaces the golden print
        // entirely (the slice + oracle above are cheap and always
        // recomputed; only the simulation is worth persisting).
        const std::uint64_t ref_key = reference_digest(
            objects[i].first, objects[i].second, options_.profile,
            options_.reference_seed, options_.channels);
        if (ref_cache) {
          if (auto hit = ref_cache->get(ref_key)) {
            ref.golden = std::move(hit->golden);
            ref.golden_power = std::move(hit->golden_power);
            ref.golden_acoustic = std::move(hit->golden_acoustic);
            ref.golden_vibration = std::move(hit->golden_vibration);
            ref_guards[i] = GuardOutcome{RigStatus::kOk, 0, {}};
            if (!options_.save_captures_dir.empty()) {
              ref.golden.save_binary(options_.save_captures_dir +
                                     "/golden-" + std::to_string(i) +
                                     ".bin");
            }
            ref_seconds[i] = seconds_since(job_t0);
            return ref;
          }
        }
#if OFFRAMPS_OBS_ENABLED
        if (obs::enabled()) {
          obs::Registry::instance().counter("svc.ref.simulations").add(1);
        }
#endif

        // Key space: references live above the rig indices so backoff
        // jitter never correlates a reference with a same-index rig.
        ref_guards[i] = supervisor.run_guarded(
            (1ull << 32) + i, [&](const AttemptContext& ctx) {
              host::RigOptions ro;
              ro.firmware.jitter_seed = options_.reference_seed;
              // Degraded attempt: count channels only, no probes.
              const ChannelSet probes = ctx.degraded
                                            ? options_.channels.counts_only()
                                            : options_.channels;
              attach_probes(ro, probes, options_.reference_seed);
              host::Rig rig(ro);
              std::uint64_t txns = 0;
              rig.board().fpga().uart().on_transaction(
                  [&txns](const core::Transaction&) { ++txns; });
              StallWatchdog dog(
                  rig.scheduler(), options_.supervisor,
                  [&txns] { return txns; },
                  [&rig] {
                    return rig.firmware().state() == fw::FwState::kRunning;
                  },
                  "reference/" + std::to_string(i));
              host::RunResult res = rig.run(ref.program);
              if (!res.finished) {
                throw Error("fleet: reference print did not finish");
              }
              ref.golden = std::move(res.capture);
              ref.golden_power = std::move(res.power_trace);
              ref.golden_acoustic = std::move(res.acoustic_trace);
              ref.golden_vibration = std::move(res.vibration_trace);
            });
        if (ref_guards[i].status == RigStatus::kLost) {
          ref.golden = core::Capture{};
          ref.golden_power.clear();
          ref.golden_acoustic.clear();
          ref.golden_vibration.clear();
        } else {
          // Persist only full-fidelity references: a degraded attempt
          // ran without its probes, and caching empty side-channel
          // traces would silently disarm those channels for every
          // future campaign that hits this key.
          if (ref_cache && (ref_guards[i].status == RigStatus::kOk ||
                            ref_guards[i].status == RigStatus::kRecovered)) {
            ref_cache->put(ref_key,
                           RefEntry{ref.golden, ref.golden_power,
                                    ref.golden_acoustic,
                                    ref.golden_vibration});
          }
          if (!options_.save_captures_dir.empty()) {
            ref.golden.save_binary(options_.save_captures_dir + "/golden-" +
                                   std::to_string(i) + ".bin");
          }
        }
        ref_seconds[i] = seconds_since(job_t0);
        return ref;
      });

  // Checkpoint writer.  One Checkpoint object is reused across saves
  // (references are filled once); rig completions append under the lock.
  Checkpoint ck_out;
  std::mutex ck_mu;
  std::size_t completed_since_save = 0;
  const bool checkpointing = !options_.checkpoint_path.empty();
  if (checkpointing) {
    ck_out.spec_digest = digest;
    ck_out.total_rigs = static_cast<std::uint32_t>(fleet.size());
    ck_out.references.resize(objects.size());
    for (std::size_t j = 0; j < objects.size(); ++j) {
      if (ref_guards[j].status == RigStatus::kLost) continue;
      ck_out.references[j] =
          ReferenceSnapshot{refs[j].golden, refs[j].golden_power,
                            refs[j].golden_acoustic,
                            refs[j].golden_vibration};
    }
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      if (already_done[i]) {
        ck_out.done.emplace_back(static_cast<std::uint32_t>(i), prior[i]);
      }
    }
    // Persist the reference work immediately: a kill during the rig
    // phase must not cost the golden prints.
    ck_out.save(options_.checkpoint_path);
  }

  // Rigs still owed a verdict, in spec order.  stop_after truncates the
  // list deterministically (a checkpoint-kill drill for tests: the first
  // N pending rigs complete, the rest report kPending).
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (!already_done[i]) pending.push_back(i);
  }
  bool stopped_early = false;
  if (options_.stop_after > 0 && options_.stop_after < pending.size()) {
    pending.resize(options_.stop_after);
    stopped_early = true;
  }

  // Fleet phase: every pending rig prints under its own online detector,
  // inside the supervisor's retry/quarantine loop, with its chaos order
  // (if any) applied per attempt.
  std::vector<RigOutcome> fresh = pool.map<RigOutcome>(
      pending.size(), [&](std::size_t k) {
    const std::size_t i = pending[k];
    const RigSpec& spec = fleet[i];
    const obs::Span span("rig/" + spec.name, "fleet");
    const auto job_t0 = std::chrono::steady_clock::now();
    const std::size_t obj = object_of[i];
    const Reference& ref = refs[obj];

    RigOutcome out;
    out.spec = spec;
    if (ref_guards[obj].status == RigStatus::kLost) {
      // No golden reference to compare against: quarantine without
      // simulating.
      out.status = RigStatus::kLost;
      out.attempts = 0;
      out.failure_cause =
          "reference lost: " + ref_guards[obj].failure_cause;
    } else {
      const GuardOutcome guard = supervisor.run_guarded(i, [&](
          const AttemptContext& ctx) {
        host::ChaosInjector injector(spec.chaos, ctx.attempt);
        RigOutcome attempt_out;
        attempt_out.spec = spec;

        // Session recording: every detector call of this attempt, in
        // exact call order (txn after the stall gate, power before the
        // slot's poll, poll only when the wedge gate passes), so a
        // daemon --replay of the stream reproduces the verdict byte for
        // byte without the simulator.  Only the attempt that completes
        // reaches save(); failed attempts throw out of run_guarded
        // first.
        const bool record = !options_.save_captures_dir.empty();
        core::wire::SessionRecorder rec;
        if (record) {
          rec.hello({.rig_index = static_cast<std::uint32_t>(i),
                     .seed = spec.seed,
                     .cube_mm = spec.cube_mm,
                     .height_mm = spec.height_mm,
                     .name = spec.name,
                     .sabotage = spec.sabotage.to_string(),
                     .chaos = spec.chaos.to_string()});
        }

        // Degrade ladder: the final attempt falls back to the step-count
        // subset alone (the Supervisor's count-channels fallback), never
        // to more than the campaign asked for.
        const ChannelSet live =
            ctx.degraded
                ? options_.channels.counts_only().intersect(options_.channels)
                : options_.channels;

        OnlineDetectorOptions det_opts = options_.detector;
        det_opts.channels = live;
        OnlineDetector detector(det_opts);
        detector.set_golden(&ref.golden);
        if (options_.use_oracle && ref.oracle.counters_armed) {
          detector.set_oracle(&ref.oracle);
        }
        if (live.power && !ref.golden_power.empty()) {
          detector.set_golden_power(&ref.golden_power);
        }
        if (live.acoustic && !ref.golden_acoustic.empty()) {
          detector.set_golden_acoustic(&ref.golden_acoustic);
        }
        if (live.vibration && !ref.golden_vibration.empty()) {
          detector.set_golden_vibration(&ref.golden_vibration);
        }

        host::RigOptions ro;
        ro.firmware.jitter_seed = spec.seed;
        attach_probes(ro, live, spec.seed);
        // Safe-stopped rigs need no long post-kill physics observation.
        ro.post_kill_observation_s = 5.0;
        host::Rig rig(ro);

        if (options_.safe_stop) {
          detector.on_alarm([&rig](const OnlineReport& r) {
            if (rig.firmware().state() == fw::FwState::kRunning) {
              rig.firmware().kill(std::string("fleet safe-stop: ") +
                                  channel_name(r.first_channel) + " alarm");
            }
          });
        }

        // Producer: the board's UART tap feeds the detector's ring,
        // through the chaos stall gate (a wedged producer tap).
        rig.board().fpga().uart().on_transaction(
            [&detector, &injector, &rec, record](
                const core::Transaction& txn) {
              if (injector.pass_transaction()) {
                if (record) rec.txn(txn);
                detector.submit(txn);
              }
            });

        // Consumer: clock-slaved pump, plus live power-sample streaming.
        // The chaos ring-wedge gate stops the pump draining; the ring's
        // lossless backpressure must absorb that, so it is NOT a fault.
        Pump pump(rig.scheduler(), detector, options_.pump);
        // The kSlot marker is recorded from inside the gate - after the
        // power hook ran, only when the poll actually happens - so the
        // replayed submit-powers-then-poll order matches the live one.
        pump.set_gate([&injector, &pump, &rec, record] {
          const bool go = !injector.wedge_pump(pump.slots_run());
          if (go && record) rec.slot();
          return go;
        });
        std::size_t power_consumed = 0;
        std::size_t acoustic_consumed = 0;
        std::size_t vibration_consumed = 0;
        pump.on_slot([&rig, &detector, &power_consumed, &acoustic_consumed,
                      &vibration_consumed, &injector, &rec, record] {
          if (plant::PowerTraceProbe* probe = rig.power_probe()) {
            if (injector.jam_power()) {
              throw Error("chaos: power side-channel probe jammed");
            }
            const plant::PowerTrace& trace = probe->trace();
            for (; power_consumed < trace.size(); ++power_consumed) {
              if (record) {
                rec.power(trace[power_consumed].t_s,
                          trace[power_consumed].watts);
              }
              detector.submit_power(trace[power_consumed].t_s,
                                    trace[power_consumed].watts);
            }
          }
          // New side channels ride the generic kSample frame; power keeps
          // its dedicated frame so pre-multi-modal corpora stay replayable.
          if (plant::AcousticTraceProbe* probe = rig.acoustic_probe()) {
            const plant::SideTrace& trace = probe->trace();
            for (; acoustic_consumed < trace.size(); ++acoustic_consumed) {
              const plant::SideSample& s = trace[acoustic_consumed];
              if (record) {
                rec.sample(static_cast<std::uint8_t>(SampleKind::kAcoustic),
                           s.t_s, s.value);
              }
              detector.submit_sample(SampleKind::kAcoustic, s.t_s, s.value);
            }
          }
          if (plant::VibrationTraceProbe* probe = rig.vibration_probe()) {
            const plant::SideTrace& trace = probe->trace();
            for (; vibration_consumed < trace.size();
                 ++vibration_consumed) {
              const plant::SideSample& s = trace[vibration_consumed];
              if (record) {
                rec.sample(static_cast<std::uint8_t>(SampleKind::kVibration),
                           s.t_s, s.value);
              }
              detector.submit_sample(SampleKind::kVibration, s.t_s, s.value);
            }
          }
        });

        // End of stream: the UART's finalize tap hands the frozen
        // capture to the detector for the end-of-print checks.
        rig.board().fpga().uart().on_finalize(
            [&detector, &rec, record](const core::Capture& capture) {
              if (record) rec.finish(capture);
              detector.finish(capture);
            });

        injector.arm(rig);  // kCrash: scheduled mid-print throw
        StallWatchdog dog(
            rig.scheduler(), options_.supervisor,
            [&detector] {
              return static_cast<std::uint64_t>(
                  detector.windows_processed() + detector.queued());
            },
            [&rig] {
              return rig.firmware().state() == fw::FwState::kRunning;
            },
            "rig/" + spec.name);

        const gcode::Program program =
            sabotaged_program(ref.program, spec.sabotage);
        host::RunResult res = rig.run(program);

        if (injector.active()) {
          // Corrupt/truncate chaos mangles the serialized capture; the
          // bounded from_binary() must reject it (attempt failure).  For
          // other kinds this round trip is the identity.
          std::vector<std::uint8_t> wire = res.capture.to_binary();
          injector.mangle_capture(wire);
          res.capture = core::Capture::from_binary(wire);
        }
        // Stream integrity: a finished print whose detector accepted
        // fewer transactions than the capture carries means the tap
        // wedged too late for the watchdog - still an attempt failure.
        const std::size_t accepted =
            detector.windows_processed() + detector.queued();
        if (res.finished && accepted < res.capture.size()) {
          throw Error("fleet: stream integrity: detector accepted " +
                      std::to_string(accepted) + " of " +
                      std::to_string(res.capture.size()) +
                      " transactions (capture tap wedged)");
        }

        attempt_out.print_finished = res.finished;
        attempt_out.kill_reason = res.kill_reason;
        attempt_out.safe_stopped =
            res.killed && res.kill_reason.rfind("fleet safe-stop", 0) == 0;
        attempt_out.sim_seconds = res.sim_seconds;
        attempt_out.final_counts = res.capture.final_counts;
        attempt_out.detector = detector.report();
        if (record) {
          rec.end({attempt_out.print_finished, attempt_out.safe_stopped,
                   attempt_out.sim_seconds, attempt_out.final_counts});
          res.capture.save_binary(options_.save_captures_dir + "/" +
                                  sanitize(spec.name) + ".bin");
          rec.save(options_.save_captures_dir + "/" + sanitize(spec.name) +
                   ".ofs");
        }
        out = std::move(attempt_out);
      });
      out.status = guard.status;
      out.attempts = guard.attempts;
      out.failure_cause = guard.failure_cause;
      if (guard.status == RigStatus::kLost) {
        // Quarantined: drop any partial attempt state so the record is
        // a clean default + verdict.
        RigOutcome lost;
        lost.spec = spec;
        lost.status = RigStatus::kLost;
        lost.attempts = guard.attempts;
        lost.failure_cause = guard.failure_cause;
        out = std::move(lost);
      }
    }
    rig_seconds[i] = seconds_since(job_t0);

    if (checkpointing) {
      const std::lock_guard<std::mutex> lock(ck_mu);
      ck_out.done.emplace_back(static_cast<std::uint32_t>(i), out);
      if (++completed_since_save >= options_.checkpoint_every) {
        completed_since_save = 0;
        ck_out.save(options_.checkpoint_path);
      }
    }
    return out;
  });

  // Assemble: prior (resumed) outcomes, this process's outcomes, and
  // kPending placeholders for rigs behind a stop_after cut.
  FleetReport report;
  report.rigs.resize(fleet.size());
  std::vector<char> covered = already_done;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (already_done[i]) report.rigs[i] = std::move(prior[i]);
  }
  for (std::size_t k = 0; k < pending.size(); ++k) {
    covered[pending[k]] = 1;
    report.rigs[pending[k]] = std::move(fresh[k]);
  }
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (covered[i]) continue;
    RigOutcome p;
    p.spec = fleet[i];
    p.status = RigStatus::kPending;
    p.attempts = 0;
    report.rigs[i] = std::move(p);
  }
  report.complete = !stopped_early;

  if (checkpointing && completed_since_save > 0) {
    ck_out.save(options_.checkpoint_path);  // tail < checkpoint_every
  }

  // Deterministic order: references by object index, then the rigs
  // actually simulated by THIS process, by spec index - resumed rigs
  // deliberately never appear here, which is how tests assert they were
  // skipped rather than re-printed.
  report.timings.reserve(objects.size() + pending.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    report.timings.push_back(
        {"reference/" + std::to_string(i), ref_seconds[i]});
  }
  for (const std::size_t i : pending) {
    report.timings.push_back(
        {"rig/" + report.rigs[i].spec.name, rig_seconds[i]});
  }
  return report;
}

std::vector<RigSpec> Fleet::demo_specs(std::size_t n,
                                       std::size_t sabotaged) {
  if (sabotaged > n) {
    throw Error("fleet: cannot sabotage more rigs than the fleet has");
  }
  // The strongly windowed-detectable half of Table II: these diverge from
  // the golden stream fast enough to catch mid-print (the 2% reduction
  // is a post-print-only catch; see EXPERIMENTS.md E10).
  const std::array<Sabotage, 4> variants{
      Sabotage{Sabotage::Kind::kReduction, 0.5, 0},
      Sabotage{Sabotage::Kind::kRelocation, 0.0, 5},
      Sabotage{Sabotage::Kind::kReduction, 0.85, 0},
      Sabotage{Sabotage::Kind::kRelocation, 0.0, 10},
  };
  std::vector<RigSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].name = "rig-" + std::to_string(i);
    specs[i].seed = 1000 + i;
  }
  // Spread the sabotaged rigs evenly through the fleet.
  for (std::size_t j = 0; j < sabotaged; ++j) {
    specs[j * n / sabotaged].sabotage = variants[j % variants.size()];
  }
  return specs;
}

std::vector<RigSpec> Fleet::specs_from_json(const std::string& text,
                                            FleetOptions& options) {
  const json::Value doc = json::parse(text);
  if (!doc.is_object()) throw Error("fleet spec: root must be an object");

  options.workers = static_cast<std::size_t>(
      doc.number_or("workers", static_cast<double>(options.workers)));
  options.safe_stop = doc.bool_or("safe_stop", options.safe_stop);
  options.use_oracle = doc.bool_or("use_oracle", options.use_oracle);
  // Back-compat: "use_power" predates the channel set and only gates the
  // power channel; "channels" (a ChannelSet::parse list) wins when given.
  options.channels.power =
      doc.bool_or("use_power", options.channels.power);
  const std::string channel_list = doc.string_or("channels", "");
  if (!channel_list.empty()) {
    try {
      options.channels = ChannelSet::parse(channel_list);
    } catch (const std::exception& e) {
      throw Error(std::string("fleet spec: ") + e.what());
    }
  }
  options.reference_seed = static_cast<std::uint64_t>(doc.number_or(
      "reference_seed", static_cast<double>(options.reference_seed)));
  options.save_captures_dir =
      doc.string_or("save_captures_dir", options.save_captures_dir);
  options.cache_dir = doc.string_or("cache", options.cache_dir);
  options.cache_max_bytes = static_cast<std::uint64_t>(
      doc.number_or("cache_max_mb",
                    static_cast<double>(options.cache_max_bytes) /
                        (1024.0 * 1024.0)) *
      1024.0 * 1024.0);
  options.detector.ring_capacity = static_cast<std::size_t>(doc.number_or(
      "ring_capacity",
      static_cast<double>(options.detector.ring_capacity)));
  options.supervisor.max_attempts = static_cast<std::uint32_t>(doc.number_or(
      "max_attempts",
      static_cast<double>(options.supervisor.max_attempts)));
  options.supervisor.backoff_base_ms =
      static_cast<std::uint64_t>(doc.number_or(
          "backoff_ms",
          static_cast<double>(options.supervisor.backoff_base_ms)));
  options.supervisor.stall_timeout_s = doc.number_or(
      "stall_timeout_s", options.supervisor.stall_timeout_s);
  options.checkpoint_path =
      doc.string_or("checkpoint", options.checkpoint_path);
  options.checkpoint_every = static_cast<std::size_t>(doc.number_or(
      "checkpoint_every", static_cast<double>(options.checkpoint_every)));

  const json::Value* rigs = doc.find("rigs");
  if (rigs == nullptr || !rigs->is_array()) {
    throw Error("fleet spec: wants a \"rigs\" array");
  }
  std::vector<RigSpec> specs;
  specs.reserve(rigs->items.size());
  for (const json::Value& r : rigs->items) {
    if (!r.is_object()) {
      throw Error("fleet spec: every rig entry must be an object");
    }
    RigSpec spec;
    spec.name = r.string_or("name", "");
    spec.seed =
        static_cast<std::uint64_t>(r.number_or("seed", 1000.0 + specs.size()));
    spec.cube_mm = r.number_or("cube_mm", spec.cube_mm);
    spec.height_mm = r.number_or("height_mm", spec.height_mm);
    spec.sabotage = parse_sabotage(r.string_or("sabotage", ""));
    spec.chaos = host::parse_chaos(r.string_or("chaos", ""));
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace offramps::svc
