#include "svc/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "analyze/analyzer.hpp"
#include "core/strict_parse.hpp"
#include "gcode/flaw3d.hpp"
#include "host/parallel_runner.hpp"
#include "host/rig.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/error.hpp"
#include "svc/json.hpp"

namespace offramps::svc {

std::string Sabotage::to_string() const {
  char buf[48];
  switch (kind) {
    case Kind::kNone: return "clean";
    case Kind::kReduction:
      std::snprintf(buf, sizeof(buf), "reduce:%.2f", factor);
      return buf;
    case Kind::kRelocation:
      std::snprintf(buf, sizeof(buf), "relocate:%u", every_n);
      return buf;
  }
  return "?";
}

Sabotage parse_sabotage(const std::string& text) {
  Sabotage s;
  if (text.empty() || text == "clean" || text == "none") return s;
  const auto colon = text.find(':');
  const std::string head = text.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : text.substr(colon + 1);
  if (head == "reduce") {
    // core::parse_double is strict (whole string, locale-independent) -
    // std::strtod would accept "0.5junk" and, under a de_DE LC_NUMERIC,
    // read "0,5" styles differently than the spec files intend.
    const auto f = core::parse_double(arg);
    if (!f || *f <= 0.0 || *f >= 1.0) {
      throw Error("sabotage: reduce wants a factor in (0, 1): \"" + text +
                  "\"");
    }
    s.kind = Sabotage::Kind::kReduction;
    s.factor = *f;
    return s;
  }
  if (head == "relocate") {
    const auto n = core::parse_long(arg);
    if (!n || *n < 1 || *n > 0xFFFFFFFFll) {
      throw Error("sabotage: relocate wants a positive move count: \"" +
                  text + "\"");
    }
    s.kind = Sabotage::Kind::kRelocation;
    s.every_n = static_cast<std::uint32_t>(*n);
    return s;
  }
  throw Error(
      "sabotage: expected \"clean\", \"reduce:<factor>\" or "
      "\"relocate:<n>\", got \"" +
      text + "\"");
}

std::size_t FleetReport::alarmed() const {
  std::size_t n = 0;
  for (const auto& r : rigs) n += r.detector.alarmed ? 1 : 0;
  return n;
}

std::size_t FleetReport::mid_print_alarms() const {
  std::size_t n = 0;
  for (const auto& r : rigs) n += r.detector.alarmed_mid_print ? 1 : 0;
  return n;
}

namespace {

void append_kv(std::string& out, const char* key, bool v) {
  out += '"';
  out += key;
  out += "\": ";
  out += v ? "true" : "false";
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// A file-name-safe rendition of a rig name.
std::string sanitize(const std::string& name) {
  std::string out;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    out += ok ? c : '_';
  }
  return out.empty() ? "rig" : out;
}

}  // namespace

std::string FleetReport::to_json() const {
  std::size_t sabotaged = 0;
  std::size_t true_alarms = 0;
  std::size_t false_alarms = 0;
  for (const auto& r : rigs) {
    const bool dirty = r.spec.sabotage.kind != Sabotage::Kind::kNone;
    sabotaged += dirty ? 1 : 0;
    if (r.detector.alarmed) {
      (dirty ? true_alarms : false_alarms) += 1;
    }
  }

  char buf[512];
  std::string out = "{\n  \"fleet\": {\n";
  std::snprintf(buf, sizeof(buf),
                "    \"rigs\": %zu,\n    \"sabotaged\": %zu,\n"
                "    \"alarmed\": %zu,\n    \"mid_print_alarms\": %zu,\n"
                "    \"true_alarms\": %zu,\n    \"false_alarms\": %zu\n",
                rigs.size(), sabotaged, alarmed(), mid_print_alarms(),
                true_alarms, false_alarms);
  out += buf;
  out += "  },\n  \"rigs\": [";
  for (std::size_t i = 0; i < rigs.size(); ++i) {
    const RigOutcome& r = rigs[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    std::snprintf(buf, sizeof(buf),
                  "      \"name\": \"%s\",\n      \"seed\": %llu,\n"
                  "      \"cube_mm\": %.6f,\n      \"height_mm\": %.6f,\n"
                  "      \"sabotage\": \"%s\",\n",
                  json_escape(r.spec.name).c_str(),
                  static_cast<unsigned long long>(r.spec.seed),
                  r.spec.cube_mm, r.spec.height_mm,
                  r.spec.sabotage.to_string().c_str());
    out += buf;
    out += "      ";
    append_kv(out, "alarmed", r.detector.alarmed);
    out += ",\n      ";
    append_kv(out, "alarm_mid_print", r.detector.alarmed_mid_print);
    std::snprintf(buf, sizeof(buf),
                  ",\n      \"alarm_channel\": \"%s\",\n"
                  "      \"alarm_window\": %u,\n"
                  "      \"alarm_time_s\": %.6f,\n"
                  "      \"alarm_gcode_line\": %zu,\n"
                  "      \"windows_processed\": %zu,\n"
                  "      \"ring_high_water\": %zu,\n"
                  "      \"backpressure_stalls\": %llu,\n"
                  "      \"compare_mismatches\": %zu,\n"
                  "      \"golden_free_violations\": %zu,\n"
                  "      \"power_windows_compared\": %zu,\n"
                  "      \"power_mismatches\": %zu,\n",
                  channel_name(r.detector.first_channel),
                  r.detector.alarm_window,
                  static_cast<double>(r.detector.alarm_tick_ns) / 1e9,
                  r.detector.alarm_gcode_line, r.detector.windows_processed,
                  r.detector.ring_high_water,
                  static_cast<unsigned long long>(
                      r.detector.backpressure_stalls),
                  r.detector.compare_mismatches,
                  r.detector.golden_free.violations.size(),
                  r.detector.power.windows_compared,
                  r.detector.power.mismatches.size());
    out += buf;
    out += "      ";
    append_kv(out, "final_counts_match", r.detector.final_counts_match);
    out += ",\n      ";
    append_kv(out, "static_trojan_suspected",
              r.detector.static_final.trojan_suspected);
    out += ",\n      ";
    append_kv(out, "print_finished", r.print_finished);
    out += ",\n      ";
    append_kv(out, "safe_stopped", r.safe_stopped);
    std::snprintf(buf, sizeof(buf),
                  ",\n      \"sim_seconds\": %.6f,\n"
                  "      \"final_counts\": [%lld, %lld, %lld, %lld]\n",
                  r.sim_seconds,
                  static_cast<long long>(r.final_counts[0]),
                  static_cast<long long>(r.final_counts[1]),
                  static_cast<long long>(r.final_counts[2]),
                  static_cast<long long>(r.final_counts[3]));
    out += buf;
    out += "    }";
  }
  out += rigs.empty() ? "]\n}" : "\n  ]\n}";
  return out;
}

std::string FleetReport::to_json_with_metrics(
    const std::string& metrics_json) const {
  std::string out = to_json();
  if (metrics_json.empty()) return out;
  // Splice ",\n  \"metrics\": <value>" before the closing "\n}" so the
  // deterministic part of the document stays byte for byte to_json().
  out.resize(out.size() - 2);  // drop "\n}"
  out += ",\n  \"metrics\": ";
  out += metrics_json;
  out += "\n}";
  return out;
}

std::string FleetReport::metrics_json() const {
  char buf[64];
  std::string out = "{\n    \"phases\": {";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "      \"";
    out += json_escape(timings[i].name);
    std::snprintf(buf, sizeof(buf), "\": %.6f", timings[i].seconds);
    out += buf;
  }
  out += timings.empty() ? "}" : "\n    }";
  out += ",\n    \"registry\": ";
  out += obs::Registry::instance().to_json();
  out += "\n  }";
  return out;
}

std::string FleetReport::to_string() const {
  std::string out;
  char buf[256];
  for (const auto& r : rigs) {
    std::snprintf(buf, sizeof(buf), "%-10s seed=%-6llu %-14s %s%s\n",
                  r.spec.name.c_str(),
                  static_cast<unsigned long long>(r.spec.seed),
                  r.spec.sabotage.to_string().c_str(),
                  r.detector.to_string().c_str(),
                  r.safe_stopped ? " [safe-stopped]" : "");
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "fleet: %zu rigs, %zu alarmed (%zu mid-print)\n",
                rigs.size(), alarmed(), mid_print_alarms());
  out += buf;
  return out;
}

Fleet::Fleet(FleetOptions options) : options_(std::move(options)) {}

namespace {

/// Per-object reference data shared by every rig printing that object.
struct Reference {
  gcode::Program program;       // clean sliced program
  analyze::Oracle oracle;
  core::Capture golden;
  plant::PowerTrace golden_power;
};

gcode::Program sabotaged_program(const gcode::Program& clean,
                                 const Sabotage& s) {
  switch (s.kind) {
    case Sabotage::Kind::kNone: return clean;
    case Sabotage::Kind::kReduction:
      return gcode::flaw3d::apply_reduction(clean, {.factor = s.factor});
    case Sabotage::Kind::kRelocation:
      return gcode::flaw3d::apply_relocation(clean,
                                             {.every_n_moves = s.every_n});
  }
  return clean;
}

}  // namespace

FleetReport Fleet::run(const std::vector<RigSpec>& specs) {
  host::ParallelRunner pool(options_.workers);

  // Distinct objects, in first-seen order (deterministic grouping).
  std::vector<std::pair<double, double>> objects;
  std::vector<std::size_t> object_of(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::pair<double, double> key{specs[i].cube_mm,
                                        specs[i].height_mm};
    const auto it = std::find(objects.begin(), objects.end(), key);
    object_of[i] = static_cast<std::size_t>(it - objects.begin());
    if (it == objects.end()) objects.push_back(key);
  }

  // Per-job wall-clock, written by worker threads into index-addressed
  // slots (no sharing) and merged in index order afterwards, so the
  // timings list is deterministic even though the values are wall-clock.
  std::vector<double> ref_seconds(objects.size(), 0.0);
  std::vector<double> rig_seconds(specs.size(), 0.0);
  const auto seconds_since =
      [](std::chrono::steady_clock::time_point t0) {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
      };

  // Reference phase: slice + oracle + one golden print per object.
  std::vector<Reference> refs = pool.map<Reference>(
      objects.size(), [&](std::size_t i) {
        const obs::Span span("reference/" + std::to_string(i), "fleet");
        const auto job_t0 = std::chrono::steady_clock::now();
        Reference ref;
        const host::CubeSpec cube{.size_x_mm = objects[i].first,
                                  .size_y_mm = objects[i].first,
                                  .height_mm = objects[i].second,
                                  .center_x_mm = 110.0,
                                  .center_y_mm = 100.0};
        ref.program = host::slice_cube(cube, options_.profile);
        ref.oracle =
            analyze::analyze_program(ref.program, fw::Config{}).oracle;

        host::RigOptions ro;
        ro.firmware.jitter_seed = options_.reference_seed;
        if (options_.use_power) ro.power_probe = plant::PowerProbeOptions{};
        host::Rig rig(ro);
        host::RunResult res = rig.run(ref.program);
        if (!res.finished) {
          throw Error("fleet: reference print did not finish");
        }
        ref.golden = std::move(res.capture);
        ref.golden_power = std::move(res.power_trace);
        if (!options_.save_captures_dir.empty()) {
          ref.golden.save_binary(options_.save_captures_dir + "/golden-" +
                                 std::to_string(i) + ".bin");
        }
        ref_seconds[i] = seconds_since(job_t0);
        return ref;
      });

  // Fleet phase: every rig prints under its own online detector.
  FleetReport report;
  report.rigs = pool.map<RigOutcome>(specs.size(), [&](std::size_t i) {
    RigSpec spec = specs[i];
    if (spec.name.empty()) spec.name = "rig-" + std::to_string(i);
    const obs::Span span("rig/" + spec.name, "fleet");
    const auto job_t0 = std::chrono::steady_clock::now();
    const Reference& ref = refs[object_of[i]];

    OnlineDetector detector(options_.detector);
    detector.set_golden(&ref.golden);
    if (options_.use_oracle && ref.oracle.counters_armed) {
      detector.set_oracle(&ref.oracle);
    }
    if (options_.use_power && !ref.golden_power.empty()) {
      detector.set_golden_power(&ref.golden_power);
    }

    host::RigOptions ro;
    ro.firmware.jitter_seed = spec.seed;
    if (options_.use_power) ro.power_probe = plant::PowerProbeOptions{};
    // Safe-stopped rigs need no long post-kill physics observation.
    ro.post_kill_observation_s = 5.0;
    host::Rig rig(ro);

    if (options_.safe_stop) {
      detector.on_alarm([&rig](const OnlineReport& r) {
        if (rig.firmware().state() == fw::FwState::kRunning) {
          rig.firmware().kill(std::string("fleet safe-stop: ") +
                              channel_name(r.first_channel) + " alarm");
        }
      });
    }

    // Producer: the board's UART tap feeds the detector's ring.
    rig.board().fpga().uart().on_transaction(
        [&detector](const core::Transaction& txn) { detector.submit(txn); });

    // Consumer: clock-slaved pump, plus live power-sample streaming.
    Pump pump(rig.scheduler(), detector, options_.pump);
    std::size_t power_consumed = 0;
    pump.on_slot([&rig, &detector, &power_consumed] {
      plant::PowerTraceProbe* probe = rig.power_probe();
      if (probe == nullptr) return;
      const plant::PowerTrace& trace = probe->trace();
      for (; power_consumed < trace.size(); ++power_consumed) {
        detector.submit_power(trace[power_consumed].t_s,
                              trace[power_consumed].watts);
      }
    });

    // End of stream: the UART's finalize tap hands the frozen capture to
    // the detector for the end-of-print checks.
    rig.board().fpga().uart().on_finalize(
        [&detector](const core::Capture& capture) {
          detector.finish(capture);
        });

    const gcode::Program program =
        sabotaged_program(ref.program, spec.sabotage);
    host::RunResult res = rig.run(program);

    RigOutcome out;
    out.spec = std::move(spec);
    out.print_finished = res.finished;
    out.kill_reason = res.kill_reason;
    out.safe_stopped =
        res.killed && res.kill_reason.rfind("fleet safe-stop", 0) == 0;
    out.sim_seconds = res.sim_seconds;
    out.final_counts = res.capture.final_counts;
    out.detector = detector.report();
    if (!options_.save_captures_dir.empty()) {
      res.capture.save_binary(options_.save_captures_dir + "/" +
                              sanitize(out.spec.name) + ".bin");
    }
    rig_seconds[i] = seconds_since(job_t0);
    return out;
  });

  // Deterministic order: references by object index, then rigs by spec
  // index.  Values are wall-clock but the key set never depends on the
  // worker count.
  report.timings.reserve(objects.size() + specs.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    report.timings.push_back(
        {"reference/" + std::to_string(i), ref_seconds[i]});
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    report.timings.push_back({"rig/" + report.rigs[i].spec.name,
                              rig_seconds[i]});
  }
  return report;
}

std::vector<RigSpec> Fleet::demo_specs(std::size_t n,
                                       std::size_t sabotaged) {
  if (sabotaged > n) {
    throw Error("fleet: cannot sabotage more rigs than the fleet has");
  }
  // The strongly windowed-detectable half of Table II: these diverge from
  // the golden stream fast enough to catch mid-print (the 2% reduction
  // is a post-print-only catch; see EXPERIMENTS.md E10).
  const std::array<Sabotage, 4> variants{
      Sabotage{Sabotage::Kind::kReduction, 0.5, 0},
      Sabotage{Sabotage::Kind::kRelocation, 0.0, 5},
      Sabotage{Sabotage::Kind::kReduction, 0.85, 0},
      Sabotage{Sabotage::Kind::kRelocation, 0.0, 10},
  };
  std::vector<RigSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].name = "rig-" + std::to_string(i);
    specs[i].seed = 1000 + i;
  }
  // Spread the sabotaged rigs evenly through the fleet.
  for (std::size_t j = 0; j < sabotaged; ++j) {
    specs[j * n / sabotaged].sabotage = variants[j % variants.size()];
  }
  return specs;
}

std::vector<RigSpec> Fleet::specs_from_json(const std::string& text,
                                            FleetOptions& options) {
  const json::Value doc = json::parse(text);
  if (!doc.is_object()) throw Error("fleet spec: root must be an object");

  options.workers = static_cast<std::size_t>(
      doc.number_or("workers", static_cast<double>(options.workers)));
  options.safe_stop = doc.bool_or("safe_stop", options.safe_stop);
  options.use_oracle = doc.bool_or("use_oracle", options.use_oracle);
  options.use_power = doc.bool_or("use_power", options.use_power);
  options.reference_seed = static_cast<std::uint64_t>(doc.number_or(
      "reference_seed", static_cast<double>(options.reference_seed)));
  options.save_captures_dir =
      doc.string_or("save_captures_dir", options.save_captures_dir);
  options.detector.ring_capacity = static_cast<std::size_t>(doc.number_or(
      "ring_capacity",
      static_cast<double>(options.detector.ring_capacity)));

  const json::Value* rigs = doc.find("rigs");
  if (rigs == nullptr || !rigs->is_array()) {
    throw Error("fleet spec: wants a \"rigs\" array");
  }
  std::vector<RigSpec> specs;
  specs.reserve(rigs->items.size());
  for (const json::Value& r : rigs->items) {
    if (!r.is_object()) {
      throw Error("fleet spec: every rig entry must be an object");
    }
    RigSpec spec;
    spec.name = r.string_or("name", "");
    spec.seed =
        static_cast<std::uint64_t>(r.number_or("seed", 1000.0 + specs.size()));
    spec.cube_mm = r.number_or("cube_mm", spec.cube_mm);
    spec.height_mm = r.number_or("height_mm", spec.height_mm);
    spec.sabotage = parse_sabotage(r.string_or("sabotage", ""));
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace offramps::svc
