// Campaign checkpoint/resume.
//
// A fleet campaign is hours of simulation on a real farm; losing it to a
// host crash at rig 47/48 is exactly the kind of fragility the
// supervisor exists to remove.  The checkpoint persists everything a
// resumed process needs to finish the campaign *byte-identically*:
//
//   - a digest of the fleet spec + behavior-relevant options, so a
//     checkpoint is only ever replayed against the campaign that wrote
//     it (resuming with edited specs is a hard error, not silent skew);
//   - every per-object golden reference (capture + power trace), so
//     resumed rigs never re-print references;
//   - every completed rig's flattened RigOutcome, so resumed campaigns
//     skip those rigs entirely and still render the same report bytes.
//
// Binary format v2 (all little endian):
//   "OFCK" magic, u16 version, u16 reserved,
//   u64 spec digest, u32 total rigs,
//   u32 reference count, then per reference:
//     u64 blob length + core::Capture::to_binary() bytes,
//     u64 power sample count + per sample 2 x f64-as-u64-bits (t_s, watts),
//     u64 acoustic sample count + samples, u64 vibration count + samples,
//   u32 completed count, then per completed rig a flattened outcome
//   record (rig index, spec, supervision verdict, detector summary
//   including the per-channel verdict rows the report's attribution
//   array renders).
// Length prefixes are validated against the remaining input before any
// allocation - the same bounded-read discipline as Capture::from_binary.
//
// Writes go to "<path>.tmp" then std::filesystem::rename, which POSIX
// makes atomic within a filesystem: a reader (or a resumed process)
// never observes a half-written checkpoint, only the old or the new one.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "svc/fleet.hpp"

namespace offramps::svc {

/// One object's golden reference, as persisted (the sliced program and
/// oracle are recomputed deterministically from the spec on resume).
struct ReferenceSnapshot {
  core::Capture golden;
  plant::PowerTrace golden_power;
  plant::SideTrace golden_acoustic;
  plant::SideTrace golden_vibration;
};

/// The persistent campaign state.
struct Checkpoint {
  static constexpr std::uint16_t kVersion = 2;

  std::uint64_t spec_digest = 0;
  /// Rig count of the whole campaign (so a resume can tell "done" from
  /// "everything").
  std::uint32_t total_rigs = 0;
  /// Per-object references, indexed like the fleet's first-seen object
  /// order.
  std::vector<ReferenceSnapshot> references;
  /// Completed rigs: (spec index, outcome), sorted by spec index.
  std::vector<std::pair<std::uint32_t, RigOutcome>> done;

  [[nodiscard]] std::vector<std::uint8_t> to_binary() const;
  /// Throws offramps::Error on bad magic, unknown version, or any length
  /// prefix that exceeds the remaining input (truncated / corrupt file).
  static Checkpoint from_binary(const std::uint8_t* data, std::size_t size);
  static Checkpoint from_binary(const std::vector<std::uint8_t>& bytes) {
    return from_binary(bytes.data(), bytes.size());
  }

  /// Atomic persist: write "<path>.tmp", fsync-free rename over `path`.
  void save(const std::string& path) const;
  static Checkpoint load(const std::string& path);
};

/// FNV-1a over a normalized rendition of the specs and the options that
/// change campaign *behavior* (channels, seeds, ring capacity, retry
/// budget, slicer profile).  Worker count and checkpoint paths are
/// deliberately excluded: they do not change results.
[[nodiscard]] std::uint64_t campaign_digest(const std::vector<RigSpec>& specs,
                                            const FleetOptions& options);

}  // namespace offramps::svc
