// One rig session: wire bytes in, supervised rig verdict out.
//
// A RigSession replays a core::wire session stream into a fresh
// OnlineDetector in EXACTLY the order the live rig drove its own: every
// kTxn is a producer submit (stalling losslessly when the ring fills,
// i.e. the SPSC backpressure contract extends across the wire), every
// kPower a power sample, every kSlot one consumer poll of the pump's
// window budget.  Because the detector's observable state - verdict,
// windows processed, ring high-water, stall count - is a pure function
// of that call sequence, a session replayed from a recorded stream
// yields a RigOutcome byte-identical to the live campaign's, without
// running the simulator.
//
// Damage ladder (mirrors the supervisor's classification):
//
//   clean stream                      -> kOk
//   outer-frame resyncs / CRC-dropped -> kRecovered (counts in the
//   transactions                         failure cause)
//   disconnect, protocol error, bad   -> kLost (quarantined; the
//   capture blob, reference failure      detector verdict is void)
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/session_wire.hpp"
#include "svc/fleet.hpp"
#include "svc/online_detector.hpp"

namespace offramps::svc {

/// References resolved for one session's object, after its hello.  The
/// pointees must outlive the session.  `oracle` and the side-channel
/// traces may be null (channel disarmed, exactly like FleetOptions
/// use_oracle / the channel set).
struct SessionRefs {
  const core::Capture* golden = nullptr;
  const analyze::Oracle* oracle = nullptr;
  const plant::PowerTrace* golden_power = nullptr;
  const plant::SideTrace* golden_acoustic = nullptr;
  const plant::SideTrace* golden_vibration = nullptr;
};

struct SessionOptions {
  /// Detector tuning; must match the live campaign's for replay
  /// byte-identity (ring capacity shapes high-water/stall counts).
  OnlineDetectorOptions detector{};
  /// Windows drained per kSlot marker - the live pump's
  /// PumpOptions::windows_per_slot.
  std::size_t windows_per_slot = 4;
};

class RigSession {
 public:
  /// Resolves the golden references for a just-arrived hello.  Called at
  /// most once per session, from the session's worker thread; may throw
  /// (e.g. reference print lost), which quarantines the session.
  using ResolveRefs =
      std::function<SessionRefs(const core::wire::SessionHello&)>;

  RigSession(SessionOptions options, ResolveRefs resolve);

  RigSession(const RigSession&) = delete;
  RigSession& operator=(const RigSession&) = delete;

  /// Feeds a chunk.  Returns bytes consumed; short only when the session
  /// reached its kEnd (leftover bytes belong to the next concatenated
  /// stream on the same pipe).  Never throws on bad input - damage is
  /// classified into the outcome instead.
  std::size_t feed(const std::uint8_t* data, std::size_t n);

  /// End of input (peer closed).  Before kEnd this is a mid-stream
  /// disconnect.
  void close();

  /// True once the session can make no further progress (kEnd seen or
  /// the stream failed terminally).
  [[nodiscard]] bool done() const {
    return reader_.ended() || reader_.failed() || failed_;
  }
  [[nodiscard]] bool has_hello() const { return has_hello_; }
  [[nodiscard]] const core::wire::SessionHello& hello() const {
    return hello_;
  }

  /// The supervised verdict for this stream (see damage ladder above).
  [[nodiscard]] RigOutcome outcome() const;

 private:
  void on_frame(const core::wire::Frame& frame);
  void fail(const std::string& why);

  SessionOptions options_;
  ResolveRefs resolve_;
  core::wire::FrameReader reader_;

  bool has_hello_ = false;
  core::wire::SessionHello hello_;
  std::unique_ptr<OnlineDetector> detector_;
  bool saw_finish_ = false;
  bool saw_end_ = false;
  core::wire::SessionMeta meta_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace offramps::svc
