// Content-addressed golden-reference cache.
//
// The fleet's reference phase is its single most expensive fixed cost:
// every campaign re-simulates one golden print per distinct object even
// though the result is a pure function of (object geometry, slicer
// profile, reference seed, power instrumentation).  This store memoizes
// that function on disk, keyed by an FNV-1a digest of exactly those
// inputs, so a farm daemon computes each reference once per content hash
// and serves it from cache on every later campaign, replay, or session.
//
// On-disk record (<dir>/<16-hex-digest>.ref, little endian):
//
//   "OFRF" magic, u16 version, u16 reserved, u64 key,
//   u64 capture-blob length + Capture::to_binary bytes,
//   u64 power-sample count + per sample f64 t_s + f64 watts,
//   u64 acoustic-sample count + per sample f64 t_s + f64 value,
//   u64 vibration-sample count + per sample f64 t_s + f64 value
//
// The reader is bounded (every length prefix checked against the
// remaining input before allocation) and paranoid: trailing garbage, a
// version skew, or a key that disagrees with the filename all reject the
// entry, and a rejected or unreadable entry is deleted and treated as a
// miss - the caller recomputes, the cache never crashes a campaign.
// Writes go to a temp file and atomically rename into place, so a
// half-written entry (crash, chaos kCacheTear) can never be read back as
// truth.  An optional byte budget is enforced LRU by file mtime (get()
// refreshes an entry's mtime), evicting oldest-first but never the entry
// just written.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/capture.hpp"
#include "host/slicer.hpp"
#include "plant/side_channel.hpp"
#include "svc/channel.hpp"

namespace offramps::svc {

/// Digest of every input the reference print is a function of: object
/// geometry, the full slicer profile, the reference jitter seed, and
/// which side-channel probes were attached (a power-only golden must
/// never silently disarm the acoustic channel of a campaign that wants
/// it - each channel flag is part of the key, so enabling a new channel
/// forces a recompute instead of serving a golden with no trace for it).
[[nodiscard]] std::uint64_t reference_digest(double cube_mm,
                                             double height_mm,
                                             const host::SliceProfile& profile,
                                             std::uint64_t reference_seed,
                                             const ChannelSet& channels);

struct RefCacheOptions {
  std::string dir;
  /// LRU byte budget; 0 = unbounded.
  std::uint64_t max_bytes = 0;
};

/// One cached reference: the golden capture plus its side-channel
/// snapshots (each trace empty when that probe was not attached).
struct RefEntry {
  core::Capture golden;
  plant::PowerTrace golden_power;
  plant::SideTrace golden_acoustic;
  plant::SideTrace golden_vibration;
};

class RefCache {
 public:
  static constexpr std::uint16_t kVersion = 2;

  /// Creates `options.dir` if needed.  Throws offramps::Error when the
  /// directory cannot be created.
  explicit RefCache(RefCacheOptions options);

  RefCache(const RefCache&) = delete;
  RefCache& operator=(const RefCache&) = delete;

  /// Cache lookup.  nullopt on miss or on a rejected (truncated,
  /// corrupt, version-skewed, mis-keyed) entry; rejected entries are
  /// deleted so they cannot poison later campaigns.  Thread-safe.
  [[nodiscard]] std::optional<RefEntry> get(std::uint64_t key);

  /// Inserts (or overwrites) an entry via write-to-temp + atomic rename,
  /// then enforces the LRU byte budget.  Thread-safe.
  void put(std::uint64_t key, const RefEntry& entry);

  /// Where `key` lives on disk.
  [[nodiscard]] std::string path_for(std::uint64_t key) const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Entries that existed but failed validation (subset of misses).
    std::uint64_t rejected = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Record codec, exposed for tests and the fuzz harness.  encode never
  /// fails; decode throws offramps::Error on any malformation, including
  /// a key that differs from `expect_key`.
  [[nodiscard]] static std::vector<std::uint8_t> encode_entry(
      std::uint64_t key, const RefEntry& entry);
  [[nodiscard]] static RefEntry decode_entry(const std::uint8_t* data,
                                             std::size_t size,
                                             std::uint64_t expect_key);

 private:
  void enforce_budget_locked();

  RefCacheOptions options_;
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace offramps::svc
