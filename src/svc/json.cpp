#include "svc/json.hpp"

#include <cctype>
#include <charconv>
#include <cstddef>

#include "sim/error.hpp"

namespace offramps::svc::json {

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::number_or(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->kind == Kind::kNumber) ? v->number : fallback;
}

bool Value::bool_or(const std::string& key, bool fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->kind == Kind::kBool) ? v->boolean : fallback;
}

std::string Value::string_or(const std::string& key,
                             std::string fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->kind == Kind::kString) ? v->string
                                                    : std::move(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    // Recursion depth is bounded to keep a hostile spec file from
    // overflowing the stack.
    if (depth_ > kMaxParseDepth) fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          Value v;
          v.kind = Value::Kind::kBool;
          v.boolean = true;
          return v;
        }
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) {
          Value v;
          v.kind = Value::Kind::kBool;
          return v;
        }
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value{};
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    ++depth_;
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.fields.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    ++depth_;
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': fail("\\u escapes are not supported");
          default: fail("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      out += c;
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    const auto [ptr, ec] = std::from_chars(
        text_.data() + start, text_.data() + pos_, v.number);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace offramps::svc::json
