#include "fw/kinematics.hpp"

#include <algorithm>
#include <cmath>

namespace offramps::fw {
namespace {

constexpr char kAxisLetters[4] = {'X', 'Y', 'Z', 'E'};

}  // namespace

double MotionState::logical_mm(const Config& config, sim::Axis a) const {
  const auto i = static_cast<std::size_t>(a);
  return static_cast<double>(position_steps[i] - origin_steps[i]) /
         config.steps_per_mm[i];
}

std::int64_t MotionState::steps_from_logical(const Config& config,
                                             sim::Axis a,
                                             double logical) const {
  const auto i = static_cast<std::size_t>(a);
  return origin_steps[i] +
         static_cast<std::int64_t>(
             std::llround(logical * config.steps_per_mm[i]));
}

ResolvedMove resolve_move(const Config& config, const MotionState& state,
                          const gcode::Command& cmd, bool hotend_hot) {
  ResolvedMove out;

  double feed_mm_min = state.feed_mm_min;
  if (const auto f = cmd.get('F')) {
    feed_mm_min = std::max(*f, 0.1);
  }

  std::array<double, 4> target{};
  for (std::size_t i = 0; i < 4; ++i) {
    target[i] = state.logical_mm(config, static_cast<sim::Axis>(i));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    if (const auto v = cmd.get(kAxisLetters[i])) {
      const bool absolute = (i == 3) ? state.absolute_e : state.absolute_xyz;
      target[i] = absolute ? *v : target[i] + *v;
    }
  }

  // Software endstops: once homed, an axis cannot be commanded outside its
  // physical range.
  for (std::size_t i = 0; i < 3; ++i) {
    if (state.homed[i]) {
      const double clamped =
          std::clamp(target[i], 0.0, config.axis_length_mm[i]);
      out.clamped[i] = clamped != target[i];
      target[i] = clamped;
    }
  }

  // Flow multiplier applies to the filament advance.
  const double e_now = state.logical_mm(config, sim::Axis::kE);
  double de = (target[3] - e_now) * (state.flow_pct / 100.0);

  // Cold-extrusion prevention: strip the E component, keep the motion.
  if (config.prevent_cold_extrusion && de != 0.0 && !hotend_hot) {
    de = 0.0;
    out.cold_extrusion_blocked = true;
  }
  target[3] = e_now + de;
  out.e_advance_mm = de;

  for (std::size_t i = 0; i < 4; ++i) {
    out.target_steps[i] =
        state.steps_from_logical(config, static_cast<sim::Axis>(i),
                                 target[i]);
    out.delta_steps[i] = out.target_steps[i] - state.position_steps[i];
  }
  out.target_mm = target;

  const double dx = target[0] - state.logical_mm(config, sim::Axis::kX);
  const double dy = target[1] - state.logical_mm(config, sim::Axis::kY);
  const double dz = target[2] - state.logical_mm(config, sim::Axis::kZ);
  out.path_mm = std::sqrt(dx * dx + dy * dy + dz * dz);

  out.feed_mm_s =
      std::max((feed_mm_min / 60.0) * (state.feedrate_pct / 100.0), 0.1);
  return out;
}

void commit_move(const Config& config, MotionState& state,
                 const gcode::Command& cmd, const ResolvedMove& move,
                 bool executed) {
  (void)config;
  if (const auto f = cmd.get('F')) {
    state.feed_mm_min = std::max(*f, 0.1);
  }
  (void)move;
  if (executed) {
    state.position_steps = move.target_steps;
  }
}

void apply_set_position(const Config& config, MotionState& state,
                        const gcode::Command& cmd) {
  bool any = false;
  for (std::size_t i = 0; i < 4; ++i) {
    if (const auto v = cmd.get(kAxisLetters[i])) {
      any = true;
      state.origin_steps[i] =
          state.position_steps[i] -
          static_cast<std::int64_t>(
              std::llround(*v * config.steps_per_mm[i]));
    }
  }
  if (!any) {
    // Bare G92: all axes read zero from here.
    state.origin_steps = state.position_steps;
  }
}

bool apply_modal(MotionState& state, const gcode::Command& cmd) {
  if (cmd.letter == 'G') {
    switch (cmd.code) {
      case 90:
        state.absolute_xyz = true;
        state.absolute_e = true;
        return true;
      case 91:
        state.absolute_xyz = false;
        state.absolute_e = false;
        return true;
      default:
        return false;
    }
  }
  if (cmd.letter == 'M') {
    switch (cmd.code) {
      case 82:
        state.absolute_e = true;
        return true;
      case 83:
        state.absolute_e = false;
        return true;
      case 220:
        state.feedrate_pct = std::clamp(cmd.value_or('S', 100.0), 10.0,
                                        500.0);
        return true;
      case 221:
        state.flow_pct = std::clamp(cmd.value_or('S', 100.0), 10.0, 500.0);
        return true;
      default:
        return false;
    }
  }
  return false;
}

ArcExpansion expand_arc(const Config& config, const MotionState& state,
                        const gcode::Command& cmd, bool clockwise) {
  ArcExpansion out;
  // I/J-form arcs only (the form slicers emit); R-form is unsupported.
  if (!cmd.has('I') && !cmd.has('J')) {
    out.degenerate = true;
    return out;
  }
  constexpr double kMmPerArcSegment = 1.0;  // Marlin MM_PER_ARC_SEGMENT

  const double x0 = state.logical_mm(config, sim::Axis::kX);
  const double y0 = state.logical_mm(config, sim::Axis::kY);
  const double z0 = state.logical_mm(config, sim::Axis::kZ);
  const double e0 = state.logical_mm(config, sim::Axis::kE);

  double x1 = x0, y1 = y0, z1 = z0, e1 = e0;
  if (const auto v = cmd.get('X')) x1 = state.absolute_xyz ? *v : x0 + *v;
  if (const auto v = cmd.get('Y')) y1 = state.absolute_xyz ? *v : y0 + *v;
  if (const auto v = cmd.get('Z')) z1 = state.absolute_xyz ? *v : z0 + *v;
  if (const auto v = cmd.get('E')) e1 = state.absolute_e ? *v : e0 + *v;

  // Arc center from the I/J offsets (always relative to the start point).
  const double cx = x0 + cmd.value_or('I', 0.0);
  const double cy = y0 + cmd.value_or('J', 0.0);
  const double radius = std::hypot(x0 - cx, y0 - cy);
  if (radius < 1e-6) {
    out.degenerate = true;  // no radius
    return out;
  }
  out.radius_mm = radius;

  const double a0 = std::atan2(y0 - cy, x0 - cx);
  const double a1 = std::atan2(y1 - cy, x1 - cx);
  constexpr double kTau = 6.283185307179586;
  double sweep = a1 - a0;
  if (clockwise) {
    if (sweep >= -1e-9) sweep -= kTau;  // includes full circles
  } else {
    if (sweep <= 1e-9) sweep += kTau;
  }

  const double arc_len = std::abs(sweep) * radius;
  out.arc_len_mm = arc_len;
  // Cap the chord count: a hostile I/J offset (kilometer-scale radius)
  // must not expand into tens of millions of chord commands.  Past the
  // cap the chords just get proportionally longer - the endpoints and
  // totals stay exact, only the interpolation coarsens (and any real
  // print's arc is far below the cap).
  constexpr double kMaxArcSegments = 4096.0;
  const double wanted = std::ceil(arc_len / kMmPerArcSegment);
  const int segments = static_cast<int>(
      std::min(kMaxArcSegments, std::max(2.0, wanted)));

  out.chords.reserve(static_cast<std::size_t>(segments));
  for (int s = 1; s <= segments; ++s) {
    const double t = static_cast<double>(s) / segments;
    gcode::Command g1;
    g1.letter = 'G';
    g1.code = 1;
    if (s == segments) {
      // Land exactly on the commanded endpoint (no trig rounding).
      g1.set('X', x1);
      g1.set('Y', y1);
    } else {
      const double a = a0 + sweep * t;
      g1.set('X', cx + radius * std::cos(a));
      g1.set('Y', cy + radius * std::sin(a));
    }
    if (z1 != z0) g1.set('Z', z0 + (z1 - z0) * t);  // helical
    if (e1 != e0) {
      g1.set('E', state.absolute_e ? e0 + (e1 - e0) * t
                                   : (e1 - e0) / segments);
    }
    if (s == 1 && cmd.has('F')) g1.set('F', cmd.value_or('F', 0.0));
    out.chords.push_back(std::move(g1));
  }
  return out;
}

}  // namespace offramps::fw
