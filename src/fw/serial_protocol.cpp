#include "fw/serial_protocol.hpp"

#include <charconv>

#include "gcode/parser.hpp"
#include "sim/error.hpp"

namespace offramps::fw {
namespace {

/// Extracts the N<line> prefix, if present.  Returns true on success.
bool parse_line_number(std::string_view raw, std::uint32_t* out) {
  std::size_t i = 0;
  while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) ++i;
  if (i >= raw.size() || (raw[i] != 'N' && raw[i] != 'n')) return false;
  ++i;
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(raw.data() + i, raw.data() + raw.size(), value);
  if (ec != std::errc{}) return false;
  *out = value;
  return true;
}

/// Validates the *<checksum> trailer against the body before it.
bool checksum_valid(std::string_view raw) {
  const std::size_t star = raw.find('*');
  if (star == std::string_view::npos) return false;
  std::uint32_t claimed = 0;
  const auto [ptr, ec] = std::from_chars(
      raw.data() + star + 1, raw.data() + raw.size(), claimed);
  if (ec != std::errc{}) return false;
  return claimed == gcode::reprap_checksum(raw.substr(0, star));
}

}  // namespace

const char* line_status_name(LineStatus s) {
  switch (s) {
    case LineStatus::kOk: return "ok";
    case LineStatus::kResend: return "Resend";
    case LineStatus::kDuplicate: return "ok (duplicate dropped)";
    case LineStatus::kBusy: return "busy";
  }
  return "unknown";
}

LineStatus SerialProtocol::receive(std::string_view raw,
                                   std::uint32_t* resend_from) {
  if (firmware_.queue_depth() >= buffer_limit_) {
    return LineStatus::kBusy;
  }

  std::uint32_t line_number = 0;
  const bool numbered = parse_line_number(raw, &line_number);

  std::optional<gcode::Command> cmd;
  bool parse_failed = false;
  try {
    cmd = gcode::parse_line(raw);
  } catch (const Error&) {
    // Malformed content; if the checksum also fails this is corruption
    // (resend); if it passes, treat like Marlin's "unknown command" echo.
    parse_failed = true;
  }

  if (!numbered && raw.find('*') != std::string_view::npos) {
    // A checksum without a line number means the N prefix itself was
    // corrupted (Marlin: "No Line Number with checksum").
    ++checksum_errors_;
    if (resend_from != nullptr) *resend_from = expected_;
    return LineStatus::kResend;
  }

  if (numbered) {
    if (!checksum_valid(raw)) {
      ++checksum_errors_;
      if (resend_from != nullptr) *resend_from = expected_;
      return LineStatus::kResend;
    }
    // M110 renumbers the stream and bypasses sequence validation (it is
    // how hosts recover sequencing in the first place).
    if (cmd.has_value() && cmd->is('M', 110)) {
      expected_ = line_number + 1;
      ++accepted_;
      return LineStatus::kOk;
    }
    if (line_number < expected_) {
      // The host resent further back than needed; drop silently.
      ++duplicates_;
      return LineStatus::kDuplicate;
    }
    if (line_number > expected_) {
      ++sequence_errors_;
      if (resend_from != nullptr) *resend_from = expected_;
      return LineStatus::kResend;
    }
  }

  if (cmd.has_value() && !cmd->is('M', 110)) {
    firmware_.enqueue(*cmd);
  }
  (void)parse_failed;
  if (numbered) expected_ = line_number + 1;
  ++accepted_;
  return LineStatus::kOk;
}

}  // namespace offramps::fw
