// Software PWM generator, as Marlin drives heater MOSFET gates and the
// part-fan output.  Emits no events while saturated at 0% or 100%, so idle
// heaters cost nothing in the event queue.
#pragma once

#include <algorithm>

#include "sim/scheduler.hpp"
#include "sim/wire.hpp"

namespace offramps::fw {

/// Drives `out` with a fixed-period PWM waveform of adjustable duty.
class SoftPwm {
 public:
  SoftPwm(sim::Scheduler& sched, sim::Wire& out, sim::Tick period)
      : sched_(sched), out_(out), period_(period) {}

  SoftPwm(const SoftPwm&) = delete;
  SoftPwm& operator=(const SoftPwm&) = delete;

  /// Sets the duty cycle, clamped to [0, 1].  Takes effect at the next
  /// window boundary (matching a timer-based soft PWM); saturated values
  /// take effect immediately.
  void set_duty(double d) {
    duty_ = std::clamp(d, 0.0, 1.0);
    if (duty_ == 0.0) {
      ++generation_;  // cancel any in-flight window
      running_ = false;
      out_.set(false);
      return;
    }
    if (duty_ == 1.0) {
      ++generation_;
      running_ = false;
      out_.set(true);
      return;
    }
    if (!running_) {
      running_ = true;
      const auto gen = ++generation_;
      window(gen);
    }
  }

  [[nodiscard]] double duty() const { return duty_; }
  [[nodiscard]] sim::Tick period() const { return period_; }

  /// Stops the waveform and leaves the output low.
  void stop() { set_duty(0.0); }

 private:
  /// Smallest realizable on/off slice (timer resolution): duties whose
  /// high or low time would be narrower saturate for that window instead
  /// of emitting degenerate zero-width pulses.
  static constexpr sim::Tick kMinSlice = sim::us(1);

  void window(std::uint64_t gen) {
    if (gen != generation_) return;
    const auto high =
        static_cast<sim::Tick>(duty_ * static_cast<double>(period_));
    if (high < kMinSlice) {
      out_.set(false);
    } else if (period_ - high < kMinSlice) {
      out_.set(true);
    } else {
      out_.set(true);
      sched_.schedule_in(high, [this, gen] {
        if (gen != generation_) return;
        out_.set(false);
      });
    }
    // Re-arm one tick past the nominal boundary so window starts never
    // collide with the controller's duty update on the same instant
    // (which would order a rise before a same-tick shutdown).
    sched_.schedule_in(period_ + 1, [this, gen] { window(gen); });
  }

  sim::Scheduler& sched_;
  sim::Wire& out_;
  sim::Tick period_;
  double duty_ = 0.0;
  bool running_ = false;
  std::uint64_t generation_ = 0;
};

}  // namespace offramps::fw
