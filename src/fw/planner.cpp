#include "fw/planner.hpp"

#include <algorithm>
#include <cmath>

#include "sim/error.hpp"

namespace offramps::fw {

sim::Axis Segment::dominant() const {
  std::size_t best = 0;
  std::int64_t best_abs = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto a = static_cast<std::int64_t>(std::llabs(steps[i]));
    if (a > best_abs) {
      best_abs = a;
      best = i;
    }
  }
  return static_cast<sim::Axis>(best);
}

std::int64_t Segment::dominant_steps() const {
  std::int64_t best = 0;
  for (const auto s : steps) {
    best = std::max(best, static_cast<std::int64_t>(std::llabs(s)));
  }
  return best;
}

bool Segment::empty() const {
  for (const auto s : steps) {
    if (s != 0) return false;
  }
  return true;
}

Segment Planner::plan(const std::array<std::int64_t, 4>& delta_steps,
                      double feed_mm_s, double entry_mm_s,
                      double exit_mm_s) const {
  if (feed_mm_s <= 0.0) {
    throw Error("Planner::plan: feedrate must be positive");
  }
  Segment seg;
  seg.steps = delta_steps;

  // Displacement in mm per axis and along the XYZ path.
  std::array<double, 4> delta_mm{};
  for (std::size_t i = 0; i < 4; ++i) {
    delta_mm[i] =
        static_cast<double>(delta_steps[i]) / config_.steps_per_mm[i];
  }
  const double path_mm =
      std::sqrt(delta_mm[0] * delta_mm[0] + delta_mm[1] * delta_mm[1] +
                delta_mm[2] * delta_mm[2]);
  const double ref_mm = path_mm > 0.0 ? path_mm : std::abs(delta_mm[3]);
  if (ref_mm <= 0.0) return seg;  // nothing moves

  // Per-axis speed at the requested path feedrate; scale the whole move
  // down so no axis exceeds its maximum (Marlin's limit_speed behaviour).
  double scale = 1.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const double axis_speed = feed_mm_s * std::abs(delta_mm[i]) / ref_mm;
    if (axis_speed > config_.max_feedrate_mm_s[i]) {
      scale = std::min(scale, config_.max_feedrate_mm_s[i] / axis_speed);
    }
  }
  const double path_speed = feed_mm_s * scale;

  const auto dom = static_cast<std::size_t>(seg.dominant());
  const double dom_ratio = std::abs(delta_mm[dom]) / ref_mm;
  const double spm = config_.steps_per_mm[dom];

  seg.cruise_sps = std::max(path_speed * dom_ratio * spm,
                            config_.min_step_rate_sps);
  seg.accel_sps2 =
      std::max(config_.acceleration_mm_s2 * dom_ratio * spm, 1.0);

  // End speeds: explicit lookahead values when given, otherwise the
  // junction ("jerk") cap.  Everything is clamped to the cruise speed.
  const auto end_sps = [&](double mm_s) {
    const double requested =
        mm_s < 0.0 ? config_.junction_speed_mm_s : mm_s;
    return std::clamp(requested * dom_ratio * spm,
                      config_.min_step_rate_sps, seg.cruise_sps);
  };
  seg.entry_sps = end_sps(entry_mm_s);
  seg.exit_sps = end_sps(exit_mm_s);
  // The exit speed must be reachable from the entry speed within this
  // segment under the acceleration limit.
  const double n = static_cast<double>(seg.dominant_steps());
  const double reachable = std::sqrt(
      seg.entry_sps * seg.entry_sps + 2.0 * seg.accel_sps2 * n);
  seg.exit_sps = std::min(seg.exit_sps, reachable);
  return seg;
}

double Planner::duration_s(const Segment& seg) {
  const double n = static_cast<double>(seg.dominant_steps());
  if (n <= 0.0) return 0.0;
  const double v0 = seg.entry_sps;
  const double v1 = seg.exit_sps;
  const double vc = seg.cruise_sps;
  const double a = seg.accel_sps2;
  const double up_steps = (vc * vc - v0 * v0) / (2.0 * a);
  const double down_steps = (vc * vc - v1 * v1) / (2.0 * a);
  if (up_steps + down_steps <= n) {
    // Full trapezoid: two ramps plus a cruise phase.
    return (vc - v0) / a + (vc - v1) / a +
           (n - up_steps - down_steps) / vc;
  }
  // Triangular profile: find the reachable peak.
  const double peak = std::sqrt(
      std::max((2.0 * a * n + v0 * v0 + v1 * v1) / 2.0, v0 * v0));
  return (peak - v0) / a + std::max(peak - v1, 0.0) / a;
}

}  // namespace offramps::fw
