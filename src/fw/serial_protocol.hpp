// Firmware side of the Marlin host protocol.
//
// Hosts like Repetier Host stream "N<line> <command>*<checksum>" and wait
// for "ok" / "Resend: <n>" responses.  This component reproduces
// Marlin's gcode_queue behaviour:
//   * checksum validation (XOR of all bytes before '*'),
//   * strict line-number sequencing with duplicate-drop and
//     "Resend:" on gaps or corruption,
//   * M110 line-number reset,
//   * window-limited buffering (the planner queue depth): commands are
//     acknowledged only when buffer space exists, which is how the host
//     is throttled on real hardware.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "fw/firmware.hpp"

namespace offramps::fw {

/// Response to one received line.
enum class LineStatus : std::uint8_t {
  kOk,         // accepted and enqueued
  kResend,     // checksum/sequence error: host must resend from a line
  kDuplicate,  // already seen (host resent too much): dropped, ok'd
  kBusy,       // buffer full: host must retry later
};

const char* line_status_name(LineStatus s);

/// Firmware-side protocol handler wrapping a Firmware's input queue.
class SerialProtocol {
 public:
  /// `buffer_limit` models the serial command buffer (Marlin: 4-8).
  explicit SerialProtocol(Firmware& firmware, std::size_t buffer_limit = 8)
      : firmware_(firmware), buffer_limit_(buffer_limit) {}

  SerialProtocol(const SerialProtocol&) = delete;
  SerialProtocol& operator=(const SerialProtocol&) = delete;

  /// Processes one raw line from the host.  Returns the protocol response
  /// and, for kResend, sets `resend_from` to the expected line number.
  LineStatus receive(std::string_view raw, std::uint32_t* resend_from);

  [[nodiscard]] std::uint32_t expected_line() const { return expected_; }
  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t checksum_errors() const {
    return checksum_errors_;
  }
  [[nodiscard]] std::uint64_t sequence_errors() const {
    return sequence_errors_;
  }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }

 private:
  Firmware& firmware_;
  std::size_t buffer_limit_;
  std::uint32_t expected_ = 1;
  std::uint64_t accepted_ = 0;
  std::uint64_t checksum_errors_ = 0;
  std::uint64_t sequence_errors_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace offramps::fw
