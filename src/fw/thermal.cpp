#include "fw/thermal.hpp"

#include <algorithm>
#include <cmath>

namespace offramps::fw {

const char* thermal_fault_name(ThermalFault f) {
  switch (f) {
    case ThermalFault::kNone: return "none";
    case ThermalFault::kMaxTemp: return "MAXTEMP triggered";
    case ThermalFault::kMinTemp: return "MINTEMP triggered";
    case ThermalFault::kHeatingFailed: return "Heating failed";
    case ThermalFault::kThermalRunaway: return "Thermal Runaway";
  }
  return "unknown";
}

ThermalManager::ThermalManager(sim::Scheduler& sched, const Config& config,
                               sim::AnalogChannel& hotend_adc,
                               sim::AnalogChannel& bed_adc,
                               sim::Wire& hotend_gate, sim::Wire& bed_gate,
                               KillCallback on_kill)
    : sched_(sched),
      config_(config),
      hotend_(sched, &config.hotend, &hotend_adc, hotend_gate,
              config.thermal_period),
      bed_(sched, &config.bed, &bed_adc, bed_gate, config.thermal_period),
      on_kill_(std::move(on_kill)) {}

void ThermalManager::start() {
  if (running_) return;
  running_ = true;
  const auto gen = ++generation_;
  sched_.schedule_in(config_.thermal_period,
                     [this, gen] { control_tick(gen); });
}

void ThermalManager::shutdown() {
  running_ = false;
  ++generation_;
  hotend_.target_c = 0.0;
  bed_.target_c = 0.0;
  hotend_.pwm.stop();
  bed_.pwm.stop();
}

void ThermalManager::set_target(Heater h, double celsius) {
  Zone& z = zone(h);
  z.target_c = celsius;
  if (celsius <= 0.0) {
    z.target_c = 0.0;
    z.watch = WatchState::kInactive;
    z.runaway_armed = false;
    z.integral = 0.0;
    z.pwm.stop();
    z.duty = 0.0;
    return;
  }
  // Begin (or restart) the heating watch if we are well below target.
  if (z.current_c < z.target_c - z.cfg->protection.hysteresis_c) {
    z.watch = WatchState::kFirstHeating;
    z.watch_ref_c = z.current_c;
    z.watch_deadline =
        sched_.now() + sim::from_seconds(z.cfg->protection.watch_period_s);
  } else {
    z.watch = WatchState::kStable;
    z.runaway_armed = false;
  }
}

bool ThermalManager::at_target(Heater h) const {
  const Zone& z = zone(h);
  if (z.target_c <= 0.0) return true;
  return std::abs(z.current_c - z.target_c) <= config_.temp_reached_band_c;
}

void ThermalManager::control_tick(std::uint64_t gen) {
  if (gen != generation_ || !running_) return;
  control_zone(Heater::kHotend);
  control_zone(Heater::kBed);
  sched_.schedule_in(config_.thermal_period,
                     [this, gen] { control_tick(gen); });
}

double ThermalManager::compute_pid(Zone& z, double dt_s) const {
  const PidGains& g = z.cfg->pid;
  const double error = z.target_c - z.current_c;
  z.integral += error * dt_s;
  // Anti-windup: keep the integral term's contribution within [0, 1].
  if (g.ki > 0.0) {
    z.integral = std::clamp(z.integral, 0.0, 1.0 / g.ki);
  }
  const double d_temp = (z.current_c - z.prev_temp_c) / dt_s;
  const double u = g.kp * error + g.ki * z.integral - g.kd * d_temp;
  return std::clamp(u, 0.0, 1.0);
}

void ThermalManager::control_zone(Heater h) {
  Zone& z = zone(h);
  const double dt_s = sim::to_seconds(config_.thermal_period);
  z.prev_temp_c = z.current_c;
  z.current_c = therm_.temperature(z.adc->value());

  // Hard cutoffs first, active regardless of target (sensor faults and
  // overheat are dangerous even when "off" - e.g. Trojan T7 heating a
  // disabled element).
  if (z.current_c > z.cfg->max_temp_c) {
    raise_fault(h, ThermalFault::kMaxTemp);
    return;
  }
  if (z.current_c < z.cfg->min_temp_c) {
    raise_fault(h, ThermalFault::kMinTemp);
    return;
  }

  if (z.target_c <= 0.0) {
    if (z.duty != 0.0) {
      z.duty = 0.0;
      z.pwm.set_duty(0.0);
    }
    return;
  }

  if (z.cfg->use_pid) {
    z.duty = compute_pid(z, dt_s);
  } else {
    // Bang-bang with hysteresis.
    if (z.current_c < z.target_c - z.cfg->bang_hysteresis_c) {
      z.duty = 1.0;
    } else if (z.current_c > z.target_c) {
      z.duty = 0.0;
    }
  }
  z.pwm.set_duty(z.duty);

  check_protection(h);
}

void ThermalManager::check_protection(Heater h) {
  Zone& z = zone(h);
  const ThermalProtection& p = z.cfg->protection;
  const sim::Tick now = sched_.now();

  switch (z.watch) {
    case WatchState::kInactive:
      break;
    case WatchState::kFirstHeating:
      if (z.current_c >= z.target_c - p.hysteresis_c) {
        z.watch = WatchState::kStable;
        z.runaway_armed = false;
        break;
      }
      if (now >= z.watch_deadline) {
        if (z.current_c < z.watch_ref_c + p.watch_increase_c) {
          raise_fault(h, ThermalFault::kHeatingFailed);
          return;
        }
        z.watch_ref_c = z.current_c;
        z.watch_deadline = now + sim::from_seconds(p.watch_period_s);
      }
      break;
    case WatchState::kStable:
      if (z.current_c < z.target_c - p.hysteresis_c) {
        if (!z.runaway_armed) {
          z.runaway_armed = true;
          z.runaway_deadline =
              now + sim::from_seconds(p.protection_period_s);
        } else if (now >= z.runaway_deadline) {
          raise_fault(h, ThermalFault::kThermalRunaway);
          return;
        }
      } else {
        z.runaway_armed = false;
      }
      break;
  }
}

void ThermalManager::raise_fault(Heater h, ThermalFault f) {
  if (fault_ != ThermalFault::kNone) return;  // first fault wins
  fault_ = f;
  fault_heater_ = h;
  shutdown();
  if (on_kill_) on_kill_(h, f);
}

}  // namespace offramps::fw
