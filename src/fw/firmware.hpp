// Marlin-like firmware simulator.
//
// `Firmware` is the "Arduino Mega running Marlin" of the paper's stack: it
// consumes g-code, plans and executes motion as STEP/DIR/EN pulse trains,
// closes the thermal loop over the thermistor ADC inputs, runs the part
// fan, performs endstop homing, and enforces Marlin's safety features
// (thermal runaway protection, cold-extrusion prevention, kill).  Its only
// contact with the rest of the world is a `sim::PinBank` - exactly the
// signal interface the OFFRAMPS board intercepts.
//
// Supported g-code (the Marlin subset exercised by slicer output and by
// the paper's experiments):
//   G0/G1 linear move        G2/G3 arcs (I/J form, helical, E-aware)
//   G4 dwell                 G21 mm units (no-op)
//   G28 home                 G90/G91 abs/rel   G92 set position
//   M82/M83 E abs/rel        M84/M17 motors    M104/M109 hotend temp
//   M105 temp report         M106/M107 fan     M110 via SerialProtocol
//   M112 emergency stop      M114 position report
//   M140/M190 bed temp       M220 feedrate %   M221 flow %
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fw/config.hpp"
#include "fw/kinematics.hpp"
#include "fw/planner.hpp"
#include "fw/pwm.hpp"
#include "fw/stepper.hpp"
#include "fw/thermal.hpp"
#include "gcode/command.hpp"
#include "sim/pins.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace offramps::fw {

/// Overall machine state.
enum class FwState : std::uint8_t {
  kIdle,      // created / start() not called
  kRunning,   // processing the queue (includes waits and homing)
  kFinished,  // queue drained with the stream closed
  kKilled,    // fatal error; machine halted
};

const char* fw_state_name(FwState s);

/// Firmware facade over planner + stepper engine + thermal manager.
class Firmware {
 public:
  /// `io` is the Arduino-side pin bank: the firmware drives the outputs
  /// (STEP/DIR/EN, heater and fan gates) and reads the inputs (endstops,
  /// thermistor channels) of this bank.
  Firmware(sim::Scheduler& sched, Config config, sim::PinBank& io);

  Firmware(const Firmware&) = delete;
  Firmware& operator=(const Firmware&) = delete;

  // --- Input ---------------------------------------------------------------
  /// Parses and enqueues one g-code line (comment-only lines are dropped).
  void enqueue_line(std::string_view line);
  /// Enqueues an already-parsed command.
  void enqueue(const gcode::Command& cmd);
  /// Enqueues a whole program.
  void enqueue_program(const gcode::Program& program);

  /// While open, an empty queue idles (polling for more input) instead of
  /// finishing; used by streaming hosts.  Default: closed (batch mode).
  void set_stream_open(bool open);

  /// Starts processing: thermal loop + command dispatch.
  void start();

  /// Emergency stop: heaters off, motion aborted, drivers released.
  void kill(const std::string& reason);

  // --- Observation ----------------------------------------------------------
  [[nodiscard]] FwState state() const { return state_; }
  [[nodiscard]] bool finished() const { return state_ == FwState::kFinished; }
  [[nodiscard]] bool killed() const { return state_ == FwState::kKilled; }
  [[nodiscard]] const std::string& kill_reason() const { return kill_reason_; }

  /// Commanded physical position, in steps from power-on, per axis.
  [[nodiscard]] const std::array<std::int64_t, 4>& position_steps() const {
    return motion_.position_steps;
  }
  /// Logical position in mm (what M114 would report).
  [[nodiscard]] double logical_mm(sim::Axis a) const;
  [[nodiscard]] bool homed(sim::Axis a) const {
    return motion_.homed[static_cast<std::size_t>(a)];
  }
  [[nodiscard]] bool all_homed() const {
    return motion_.homed[0] && motion_.homed[1] && motion_.homed[2];
  }
  /// The modal/position state of the g-code interpreter (the pure
  /// `fw::kinematics` translation state this firmware advances).
  [[nodiscard]] const MotionState& motion_state() const { return motion_; }

  [[nodiscard]] ThermalManager& thermal() { return thermal_; }
  [[nodiscard]] const ThermalManager& thermal() const { return thermal_; }
  [[nodiscard]] StepperEngine& stepper() { return stepper_; }
  [[nodiscard]] double fan_duty() const { return fan_pwm_.duty(); }
  [[nodiscard]] const Config& config() const { return config_; }

  [[nodiscard]] std::uint64_t commands_executed() const {
    return commands_executed_;
  }
  [[nodiscard]] std::uint64_t moves_executed() const {
    return moves_executed_;
  }
  [[nodiscard]] std::uint64_t unknown_commands() const { return unknown_; }
  [[nodiscard]] std::uint64_t cold_extrusion_blocks() const {
    return cold_extrusion_blocks_;
  }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  // --- Callbacks -------------------------------------------------------------
  /// Fired once when the queue drains (batch mode).
  void on_finished(std::function<void()> cb) { on_finished_ = std::move(cb); }
  /// Fired once on kill, with the reason string.
  void on_killed(std::function<void(const std::string&)> cb) {
    on_killed_ = std::move(cb);
  }
  /// Receives M105/M114 report lines (the host console).
  void on_report(std::function<void(const std::string&)> cb) {
    on_report_ = std::move(cb);
  }

 private:
  // Dispatch.
  void schedule_advance();
  void advance();
  void execute(const gcode::Command& cmd);
  void command_done();  // bookkeeping + advance after a command completes

  // Command implementations.
  void exec_move(const gcode::Command& cmd);
  void exec_arc(const gcode::Command& cmd, bool clockwise);
  void exec_home(const gcode::Command& cmd);
  void exec_dwell(const gcode::Command& cmd);
  void exec_set_position(const gcode::Command& cmd);
  void exec_wait_temp(Heater h, const gcode::Command& cmd);
  void report_temps();
  void report_position();

  // Homing sub-machine.
  struct HomingPhase {
    sim::Axis axis = sim::Axis::kX;
    double distance_mm = 0.0;  // signed
    double feed_mm_s = 0.0;
    bool abort_on_endstop = false;
    bool require_trigger = false;  // kill if the endstop never fires
    bool zero_after = false;       // reset the axis datum on completion
    bool mark_homed = false;
  };
  void run_homing_phase(std::size_t index);

  // Helpers.
  void start_segment(const Segment& seg, StepperEngine::Completion cb);
  void poll_temp(Heater h, std::uint64_t gen);
  void finish_if_drained();

  sim::Scheduler& sched_;
  Config config_;
  sim::PinBank& io_;
  Planner planner_;
  StepperEngine stepper_;
  ThermalManager thermal_;
  SoftPwm fan_pwm_;
  sim::Rng jitter_;

  std::deque<gcode::Command> queue_;
  FwState state_ = FwState::kIdle;
  std::string kill_reason_;
  bool stream_open_ = false;
  bool advance_pending_ = false;
  bool command_in_flight_ = false;

  // Interpreter modal/position state (shared pure translation model).
  MotionState motion_;

  // One-segment lookahead: the junction speed the previous move planned
  // to exit at (mm/s along the path); negative = no continuity.
  double pending_entry_mm_s_ = -1.0;
  /// XY unit direction of the queue-front move measured from `from`,
  /// or nullopt when the next command is not an XY move.
  [[nodiscard]] std::optional<std::array<double, 2>> peek_next_move_dir(
      const std::array<double, 4>& from) const;

  std::vector<HomingPhase> homing_plan_;

  std::uint64_t commands_executed_ = 0;
  std::uint64_t moves_executed_ = 0;
  std::uint64_t unknown_ = 0;
  std::uint64_t cold_extrusion_blocks_ = 0;
  std::uint64_t temp_poll_generation_ = 0;

  std::function<void()> on_finished_;
  std::function<void(const std::string&)> on_killed_;
  std::function<void(const std::string&)> on_report_;
};

}  // namespace offramps::fw
