#include "fw/stepper.hpp"

#include <cmath>

#include "sim/error.hpp"

namespace offramps::fw {

StepperEngine::StepperEngine(sim::Scheduler& sched, sim::PinBank& io,
                             const Config& config)
    : sched_(sched), io_(io), config_(config) {}

StepperEngine::~StepperEngine() {
  if (watching_endstop_) {
    io_.min_endstop(seg_.endstop_axis).remove_listener(endstop_listener_);
  }
}

void StepperEngine::start(const Segment& seg, Completion on_done) {
  if (busy_) throw Error("StepperEngine::start: engine is busy");
  if (seg.empty()) {
    // Zero-length segment: complete on the next scheduler slot so callers
    // can rely on asynchronous completion in all cases.
    sched_.schedule_in(0, [cb = std::move(on_done)] {
      cb(false, std::array<std::int64_t, 4>{});
    });
    return;
  }

  seg_ = seg;
  on_done_ = std::move(on_done);
  busy_ = true;
  const std::uint64_t gen = ++generation_;

  dominant_ = static_cast<std::size_t>(seg_.dominant());
  total_steps_ = seg_.dominant_steps();
  done_steps_ = 0;
  executed_ = {};
  speed_sps_ = std::max(seg_.entry_sps, config_.min_step_rate_sps);

  for (std::size_t i = 0; i < 4; ++i) {
    const auto axis = static_cast<sim::Axis>(i);
    const std::int64_t s = seg_.steps[i];
    step_sign_[i] = (s > 0) - (s < 0);
    bres_err_[i] = total_steps_ / 2;
    if (s != 0) {
      // Auto-enable (Marlin enables a driver before moving it) and set the
      // direction line; DIR high = motion toward the axis maximum.
      io_.enable(axis).set(false);  // /EN is active low at the A4988
      io_.dir(axis).set(s > 0);
    }
  }

  if (seg_.abort_on_endstop) {
    auto& wire = io_.min_endstop(seg_.endstop_axis);
    watching_endstop_ = true;
    debouncing_endstop_ = false;
    endstop_listener_ = wire.on_rising([this, gen](sim::Tick) {
      if (gen != generation_ || !busy_) return;
      if (config_.endstop_debounce_samples <= 1) {
        finish(/*aborted=*/true);
        return;
      }
      if (debouncing_endstop_) return;  // confirmation already running
      debouncing_endstop_ = true;
      confirm_endstop(gen, 1);  // the trigger edge is the first high sample
    });
    // The switch may already be held closed (e.g. re-bump starting on the
    // stop): abort immediately, emitting no steps.
    if (wire.level()) {
      sched_.schedule_in(0, [this, gen] {
        if (gen != generation_ || !busy_) return;
        finish(/*aborted=*/true);
      });
      return;
    }
  }

  // The first step is paced at the entry rate (as in Marlin's ISR, where
  // a block's first step lands one interval into the block): this keeps
  // the step-rate envelope continuous across segment boundaries instead
  // of emitting a spuriously fast pulse pair at every junction.
  sched_.schedule_in(config_.dir_setup_time + interval_for_current_speed(),
                     [this, gen] { step_due(gen); });
}

void StepperEngine::abort() {
  if (!busy_) return;
  finish(/*aborted=*/true);
}

void StepperEngine::set_all_enabled(bool enable) {
  for (const auto axis : sim::kAllAxes) {
    io_.enable(axis).set(!enable);  // active low
  }
}

void StepperEngine::confirm_endstop(std::uint64_t gen,
                                    std::uint32_t stable_samples) {
  // The motor keeps stepping while confirmation runs, exactly like real
  // firmware polling a debounced switch: at the slow re-bump feedrate the
  // extra travel is micrometres.
  sched_.schedule_in(config_.endstop_sample_interval, [this, gen,
                                                       stable_samples] {
    if (gen != generation_ || !busy_) return;
    if (!io_.min_endstop(seg_.endstop_axis).level()) {
      // The switch fell open again: a bounce or an injected glitch, not a
      // mechanical trigger.  Re-arm and wait for the next edge.
      debouncing_endstop_ = false;
      ++endstop_bounces_rejected_;
      return;
    }
    if (stable_samples + 1 >= config_.endstop_debounce_samples) {
      finish(/*aborted=*/true);
      return;
    }
    confirm_endstop(gen, stable_samples + 1);
  });
}

sim::Tick StepperEngine::interval_for_current_speed() const {
  const double sps = std::max(speed_sps_, 1.0);
  const auto ticks = static_cast<sim::Tick>(
      static_cast<double>(sim::kTicksPerSecond) / sps);
  const sim::Tick floor = config_.step_pulse_width + config_.step_pulse_gap;
  return ticks < floor ? floor : ticks;
}

void StepperEngine::step_due(std::uint64_t gen) {
  if (gen != generation_ || !busy_) return;

  // Pulse the dominant axis plus any Bresenham-due follower axes.
  io_.step(static_cast<sim::Axis>(dominant_)).pulse(config_.step_pulse_width);
  executed_[dominant_] += step_sign_[dominant_];
  for (std::size_t i = 0; i < 4; ++i) {
    if (i == dominant_ || seg_.steps[i] == 0) continue;
    bres_err_[i] += std::llabs(seg_.steps[i]);
    if (bres_err_[i] >= total_steps_) {
      bres_err_[i] -= total_steps_;
      io_.step(static_cast<sim::Axis>(i)).pulse(config_.step_pulse_width);
      executed_[i] += step_sign_[i];
    }
  }
  ++done_steps_;

  if (done_steps_ >= total_steps_) {
    // Let the final pulse fall before reporting completion.
    sched_.schedule_in(config_.step_pulse_width + config_.step_pulse_gap,
                       [this, gen] {
                         if (gen != generation_ || !busy_) return;
                         finish(/*aborted=*/false);
                       });
    return;
  }

  // Trapezoid integration, one step at a time: v' = sqrt(v^2 +- 2a).
  const double a2 = 2.0 * seg_.accel_sps2;
  const double exit = std::max(seg_.exit_sps, config_.min_step_rate_sps);
  const std::int64_t remaining = total_steps_ - done_steps_;
  const double decel_steps =
      (speed_sps_ * speed_sps_ - exit * exit) / a2;
  if (static_cast<double>(remaining) <= decel_steps) {
    speed_sps_ = std::max(exit, std::sqrt(std::max(
                                    speed_sps_ * speed_sps_ - a2, 1.0)));
  } else if (speed_sps_ < seg_.cruise_sps) {
    speed_sps_ =
        std::min(seg_.cruise_sps, std::sqrt(speed_sps_ * speed_sps_ + a2));
  }

  sched_.schedule_in(interval_for_current_speed(),
                     [this, gen] { step_due(gen); });
}

void StepperEngine::finish(bool aborted) {
  busy_ = false;
  ++generation_;  // invalidate pending step events
  if (watching_endstop_) {
    io_.min_endstop(seg_.endstop_axis).remove_listener(endstop_listener_);
    watching_endstop_ = false;
  }
  for (std::size_t i = 0; i < 4; ++i) lifetime_steps_[i] += executed_[i];
  if (on_done_) {
    // Move the callback out first: it may start another segment, which
    // installs a new on_done_.
    Completion cb = std::move(on_done_);
    on_done_ = nullptr;
    cb(aborted, executed_);
  }
}

}  // namespace offramps::fw
