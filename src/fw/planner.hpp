// Motion planner: converts a step-space displacement plus a path feedrate
// into an executable trapezoidal segment for the stepper engine.
//
// The model is a simplified Marlin/grbl planner with one-segment
// lookahead: by default a segment enters and exits at the junction
// ("jerk") speed cap, but the firmware passes explicit entry/exit path
// speeds computed from the angle to the adjacent move (classic-jerk
// style), so collinear chains - arc chords especially - cruise through
// junctions instead of decelerating at every boundary.  Cruise speed is
// subject to per-axis feedrate limits; exit speed is clamped to what the
// acceleration limit can actually reach within the segment.  Both the
// golden and the Trojaned prints run through the same planner, so the
// detection comparison (which is what the paper evaluates) sees exactly
// the timing properties it would on hardware: trapezoidal step-rate
// ramps, <20 kHz step rates, and asynchronous per-segment timing.
#pragma once

#include <array>
#include <cstdint>

#include "fw/config.hpp"
#include "sim/pins.hpp"

namespace offramps::fw {

/// One executable motion segment in step space.
struct Segment {
  /// Signed step counts per axis (X, Y, Z, E).
  std::array<std::int64_t, 4> steps{};
  /// Dominant-axis step rates, steps/s.
  double entry_sps = 0.0;
  double cruise_sps = 0.0;
  double exit_sps = 0.0;
  /// Dominant-axis acceleration, steps/s^2.
  double accel_sps2 = 0.0;
  /// Homing support: abort the segment when this axis' min endstop rises.
  bool abort_on_endstop = false;
  sim::Axis endstop_axis = sim::Axis::kX;

  /// Axis with the largest |steps| (the Bresenham major axis).
  [[nodiscard]] sim::Axis dominant() const;
  /// |steps| of the dominant axis.
  [[nodiscard]] std::int64_t dominant_steps() const;
  /// True when no axis moves.
  [[nodiscard]] bool empty() const;
};

/// Stateless planning functions parameterized by the firmware config.
class Planner {
 public:
  explicit Planner(const Config& config) : config_(config) {}

  /// Plans a segment for `delta_steps` at the requested path feedrate
  /// (mm/s).  Feedrate is interpreted along the XYZ path, or along E for
  /// extrusion-only moves, then clamped by per-axis maxima.
  ///
  /// `entry_mm_s` / `exit_mm_s` are path speeds at the segment's ends
  /// (lookahead junction speeds); negative values mean "use the junction
  /// cap".  Both are clamped to the cruise speed, and the exit speed is
  /// further clamped to what the acceleration limit can reach from the
  /// entry speed within the segment's length.
  [[nodiscard]] Segment plan(const std::array<std::int64_t, 4>& delta_steps,
                             double feed_mm_s, double entry_mm_s = -1.0,
                             double exit_mm_s = -1.0) const;

  /// Analytic execution time of a planned segment (trapezoid or triangle
  /// profile), excluding scheduling jitter.  Used by the host-side print
  /// time estimator and by tests as the engine's reference model.
  [[nodiscard]] static double duration_s(const Segment& seg);

 private:
  const Config& config_;
};

}  // namespace offramps::fw
