// Stepper engine: executes one planned segment at a time by scheduling
// STEP/DIR pulse edges onto the firmware's output pins, the role Marlin's
// stepper ISR plays on the ATmega.
//
// Pulse timing follows the planner's trapezoid: the dominant axis steps at
// the integrated step rate while the other axes follow by Bresenham
// accumulation (all axes due on a tick pulse simultaneously, as in the real
// ISR).  Segments can be aborted asynchronously - either explicitly (kill)
// or by an endstop edge during homing - and always report the steps
// actually emitted, which is how the firmware tracks true position.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "fw/config.hpp"
#include "fw/planner.hpp"
#include "sim/pins.hpp"
#include "sim/scheduler.hpp"

namespace offramps::fw {

/// Drives the STEP/DIR/EN pins of one pin bank.
class StepperEngine {
 public:
  /// `io` is the firmware-side pin bank (the Arduino header).
  StepperEngine(sim::Scheduler& sched, sim::PinBank& io,
                const Config& config);
  ~StepperEngine();

  StepperEngine(const StepperEngine&) = delete;
  StepperEngine& operator=(const StepperEngine&) = delete;

  /// Completion callback: `aborted` is true when the segment ended early
  /// (endstop hit or abort()); `executed` holds the signed steps emitted.
  using Completion =
      std::function<void(bool aborted, std::array<std::int64_t, 4> executed)>;

  /// Begins executing `seg`.  Asserts EN for every moving axis, applies the
  /// DIR setup time, then emits pulses.  Throws if already busy.
  void start(const Segment& seg, Completion on_done);

  /// True while a segment is in flight.
  [[nodiscard]] bool busy() const { return busy_; }

  /// Cancels the in-flight segment (no-op when idle).  The completion
  /// callback fires with aborted=true.
  void abort();

  /// Asserts (enable=true) or releases every axis' EN pin, as M17/M84 do.
  void set_all_enabled(bool enable);

  /// Total signed steps emitted over the engine's lifetime, per axis.
  [[nodiscard]] const std::array<std::int64_t, 4>& lifetime_steps() const {
    return lifetime_steps_;
  }

  /// Endstop trigger edges rejected by debounce (switch bounce/glitches).
  [[nodiscard]] std::uint64_t endstop_bounces_rejected() const {
    return endstop_bounces_rejected_;
  }

 private:
  void begin_pulses();
  void step_due(std::uint64_t gen);
  void confirm_endstop(std::uint64_t gen, std::uint32_t stable_samples);
  void finish(bool aborted);
  [[nodiscard]] sim::Tick interval_for_current_speed() const;

  sim::Scheduler& sched_;
  sim::PinBank& io_;
  const Config& config_;

  Segment seg_{};
  Completion on_done_;
  bool busy_ = false;
  std::uint64_t generation_ = 0;

  // Per-segment execution state.
  std::size_t dominant_ = 0;
  std::int64_t total_steps_ = 0;   // dominant-axis steps to emit
  std::int64_t done_steps_ = 0;
  std::array<std::int64_t, 4> bres_err_{};
  std::array<std::int64_t, 4> executed_{};   // signed, current segment
  std::array<int, 4> step_sign_{};           // -1, 0, +1 per axis
  double speed_sps_ = 0.0;

  // Homing endstop watch.
  sim::Wire::ListenerId endstop_listener_ = 0;
  bool watching_endstop_ = false;
  bool debouncing_endstop_ = false;
  std::uint64_t endstop_bounces_rejected_ = 0;

  std::array<std::int64_t, 4> lifetime_steps_{};
};

}  // namespace offramps::fw
