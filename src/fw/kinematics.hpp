// Pure g-code -> step-space translation, factored out of the firmware.
//
// The firmware's dispatch loop is tangled with the event scheduler (waits,
// homing, thermal polls), but the *math* that turns a parsed command into a
// step-space displacement is deterministic and time-free: modal
// absolute/relative resolution, software-endstop clamping, flow and
// feedrate percentages, the llround step quantization against the G92
// origin, and arc-to-chord expansion.  This header exposes that math as a
// pure, side-effect-free API over an explicit `MotionState`, so it can be
// shared verbatim by:
//
//   * `fw::Firmware`, which commits a `ResolvedMove` when the stepper
//     engine reports the segment executed, and
//   * `analyze::` (the static g-code analyzer), which folds the same
//     translation over a whole program to predict the step counts the
//     OFFRAMPS capture will observe at runtime - without running the
//     event-loop simulation.
//
// Every function here is a function of (config, state, command) only; no
// member of this header touches a scheduler, pin, or clock.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "fw/config.hpp"
#include "gcode/command.hpp"
#include "sim/pins.hpp"

namespace offramps::fw {

/// The interpreter state a Marlin-class firmware keeps between commands,
/// as far as motion translation is concerned.  Plain data: copy it to
/// fork hypothetical futures (the static analyzer does).
struct MotionState {
  bool absolute_xyz = true;
  bool absolute_e = true;
  double feed_mm_min = 1500.0;
  double feedrate_pct = 100.0;  // M220
  double flow_pct = 100.0;      // M221
  /// Commanded physical position, steps from power-on, per axis.
  std::array<std::int64_t, 4> position_steps{};
  /// Logical-zero datum (moved by G92 and by homing).
  std::array<std::int64_t, 4> origin_steps{};
  std::array<bool, 3> homed{};

  /// Logical position in mm (what M114 reports) for one axis.
  [[nodiscard]] double logical_mm(const Config& config, sim::Axis a) const;
  /// Steps-from-power-on equivalent of a logical coordinate.
  [[nodiscard]] std::int64_t steps_from_logical(const Config& config,
                                                sim::Axis a,
                                                double logical) const;
};

/// A G0/G1 resolved against a `MotionState`: everything the planner and
/// the step oracle need, plus the clamps/blocks applied along the way.
struct ResolvedMove {
  /// Signed step displacement per axis (X, Y, Z, E).
  std::array<std::int64_t, 4> delta_steps{};
  /// Absolute step target per axis (position_steps after full execution).
  std::array<std::int64_t, 4> target_steps{};
  /// Logical target in mm, after clamping and flow scaling.
  std::array<double, 4> target_mm{};
  /// Path feedrate handed to the planner, mm/s (F word, M220-scaled).
  double feed_mm_s = 0.0;
  /// Filament advance in mm after the flow multiplier (pre-quantization).
  double e_advance_mm = 0.0;
  /// XYZ path length of the move, mm (from the *logical* displacement).
  double path_mm = 0.0;
  /// True when cold-extrusion prevention stripped the E component.
  bool cold_extrusion_blocked = false;
  /// Axes whose target was clamped by the software endstops.
  std::array<bool, 3> clamped{};

  [[nodiscard]] bool moves() const {
    return delta_steps[0] != 0 || delta_steps[1] != 0 ||
           delta_steps[2] != 0 || delta_steps[3] != 0;
  }
};

/// Resolves a G0/G1 against `state` without mutating it.  `hotend_hot`
/// tells the cold-extrusion guard whether the hotend is at printing
/// temperature (the firmware passes the live thermistor reading; the
/// static analyzer passes its modelled setpoint).  The F word's effect on
/// the modal feedrate is part of the result (`feed update`), not a side
/// effect: call `commit_move` to fold the result back into the state.
[[nodiscard]] ResolvedMove resolve_move(const Config& config,
                                        const MotionState& state,
                                        const gcode::Command& cmd,
                                        bool hotend_hot);

/// Folds a resolved move back into the state: modal feedrate and, when
/// `executed` is true, the position.  (The firmware commits the feedrate
/// immediately but the position only after the stepper ran the segment;
/// the analyzer commits both at once.)
void commit_move(const Config& config, MotionState& state,
                 const gcode::Command& cmd, const ResolvedMove& move,
                 bool executed);

/// Applies G92 (set logical position): shifts the origin datum so the
/// current physical position reads as the given coordinates.  A bare G92
/// zeroes every axis.
void apply_set_position(const Config& config, MotionState& state,
                        const gcode::Command& cmd);

/// Applies the modal-only commands G90/G91/M82/M83/M220/M221.  Returns
/// true when `cmd` was one of them (and `state` was updated).
bool apply_modal(MotionState& state, const gcode::Command& cmd);

/// Result of expanding a G2/G3 arc into G1 chords.
struct ArcExpansion {
  /// Chord moves in execution order; empty when the arc is degenerate.
  std::vector<gcode::Command> chords;
  /// True when the command could not be interpreted as an I/J arc
  /// (missing offsets or zero radius) - the firmware counts it unknown.
  bool degenerate = false;
  double radius_mm = 0.0;
  double arc_len_mm = 0.0;
};

/// Expands an I/J-form arc move against the current state into the exact
/// chord sequence the firmware splices into its queue (Marlin
/// MM_PER_ARC_SEGMENT = 1 mm, final chord lands on the commanded
/// endpoint).  Pure: `state` is only read.
[[nodiscard]] ArcExpansion expand_arc(const Config& config,
                                      const MotionState& state,
                                      const gcode::Command& cmd,
                                      bool clockwise);

}  // namespace offramps::fw
