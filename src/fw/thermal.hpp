// Thermal manager: the firmware side of temperature control, modelled on
// Marlin's temperature.cpp.
//
//  * Periodic control loop (default 100 ms): sample the thermistor ADC,
//    convert counts to degrees, run PID (hotend) or bang-bang (bed), drive
//    the heater MOSFET gate with soft PWM.
//  * Safety: min/max temperature cutoffs, "heating failed" watch during
//    initial heat-up, and thermal-runaway protection once stable - all of
//    which Trojans T6/T7 (paper Table I) interact with.
#pragma once

#include <array>
#include <functional>
#include <string>

#include "fw/config.hpp"
#include "fw/pwm.hpp"
#include "sim/scheduler.hpp"
#include "sim/thermistor.hpp"
#include "sim/wire.hpp"

namespace offramps::fw {

/// The two heat zones of the machine.
enum class Heater { kHotend = 0, kBed = 1 };

/// Why the thermal manager killed the machine.
enum class ThermalFault {
  kNone,
  kMaxTemp,         // over the configured maximum
  kMinTemp,         // under the minimum (sensor open/short)
  kHeatingFailed,   // no progress during initial heat-up
  kThermalRunaway,  // temperature fell away from a reached target
};

/// Human-readable fault name (Marlin-style error strings).
const char* thermal_fault_name(ThermalFault f);

/// Firmware-side closed-loop heater control for hotend and bed.
class ThermalManager {
 public:
  /// Fired once on the first fault; the firmware kills the machine.
  using KillCallback = std::function<void(Heater, ThermalFault)>;

  ThermalManager(sim::Scheduler& sched, const Config& config,
                 sim::AnalogChannel& hotend_adc, sim::AnalogChannel& bed_adc,
                 sim::Wire& hotend_gate, sim::Wire& bed_gate,
                 KillCallback on_kill);

  ThermalManager(const ThermalManager&) = delete;
  ThermalManager& operator=(const ThermalManager&) = delete;

  /// Starts the periodic control loop.
  void start();

  /// Stops control and de-asserts both heater gates (firmware kill path).
  void shutdown();

  /// Sets a heater's target; 0 disables it.
  void set_target(Heater h, double celsius);

  [[nodiscard]] double target(Heater h) const { return zone(h).target_c; }
  /// Most recent converted temperature reading.
  [[nodiscard]] double current(Heater h) const { return zone(h).current_c; }
  /// Current PWM duty command in [0, 1].
  [[nodiscard]] double duty(Heater h) const { return zone(h).duty; }

  /// True once the reading is within the configured band of the target
  /// (used by M109/M190 waits).
  [[nodiscard]] bool at_target(Heater h) const;

  [[nodiscard]] ThermalFault fault() const { return fault_; }
  [[nodiscard]] Heater fault_heater() const { return fault_heater_; }

 private:
  enum class WatchState { kInactive, kFirstHeating, kStable };

  struct Zone {
    const HeaterConfig* cfg = nullptr;
    sim::AnalogChannel* adc = nullptr;
    SoftPwm pwm;
    double target_c = 0.0;
    double current_c = 25.0;
    double duty = 0.0;
    // PID state.
    double integral = 0.0;
    double prev_temp_c = 25.0;
    // Protection state.
    WatchState watch = WatchState::kInactive;
    double watch_ref_c = 0.0;
    sim::Tick watch_deadline = 0;
    bool runaway_armed = false;
    sim::Tick runaway_deadline = 0;

    Zone(sim::Scheduler& sched, const HeaterConfig* c, sim::AnalogChannel* a,
         sim::Wire& gate, sim::Tick period)
        : cfg(c), adc(a), pwm(sched, gate, period) {}
  };

  [[nodiscard]] Zone& zone(Heater h) {
    return h == Heater::kHotend ? hotend_ : bed_;
  }
  [[nodiscard]] const Zone& zone(Heater h) const {
    return h == Heater::kHotend ? hotend_ : bed_;
  }

  void control_tick(std::uint64_t gen);
  void control_zone(Heater h);
  void check_protection(Heater h);
  void raise_fault(Heater h, ThermalFault f);
  [[nodiscard]] double compute_pid(Zone& z, double dt_s) const;

  sim::Scheduler& sched_;
  const Config& config_;
  sim::Thermistor therm_{};
  Zone hotend_;
  Zone bed_;
  KillCallback on_kill_;
  bool running_ = false;
  std::uint64_t generation_ = 0;
  ThermalFault fault_ = ThermalFault::kNone;
  Heater fault_heater_ = Heater::kHotend;
};

}  // namespace offramps::fw
