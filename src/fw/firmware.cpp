#include "fw/firmware.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "gcode/parser.hpp"
#include "sim/error.hpp"

namespace offramps::fw {
namespace {

constexpr sim::Tick kTempPollPeriod = sim::ms(250);
constexpr sim::Tick kStreamIdlePoll = sim::ms(50);

std::string format_temp_report(const ThermalManager& tm) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "T:%.1f /%.1f B:%.1f /%.1f",
                tm.current(Heater::kHotend), tm.target(Heater::kHotend),
                tm.current(Heater::kBed), tm.target(Heater::kBed));
  return buf;
}

}  // namespace

const char* fw_state_name(FwState s) {
  switch (s) {
    case FwState::kIdle: return "idle";
    case FwState::kRunning: return "running";
    case FwState::kFinished: return "finished";
    case FwState::kKilled: return "killed";
  }
  return "unknown";
}

Firmware::Firmware(sim::Scheduler& sched, Config config, sim::PinBank& io)
    : sched_(sched),
      config_(config),
      io_(io),
      planner_(config_),
      stepper_(sched, io, config_),
      thermal_(sched, config_, io.analog(sim::APin::kThermHotend),
               io.analog(sim::APin::kThermBed),
               io.wire(sim::Pin::kHotendHeat), io.wire(sim::Pin::kBedHeat),
               [this](Heater h, ThermalFault f) {
                 kill(std::string("thermal: ") + thermal_fault_name(f) +
                      (h == Heater::kHotend ? " (hotend)" : " (bed)"));
               }),
      fan_pwm_(sched, io.wire(sim::Pin::kFan), config_.fan_pwm_period),
      jitter_(config_.jitter_seed) {}

void Firmware::enqueue_line(std::string_view line) {
  if (auto cmd = gcode::parse_line(line)) enqueue(*cmd);
}

void Firmware::enqueue(const gcode::Command& cmd) {
  queue_.push_back(cmd);
  if (state_ == FwState::kRunning) schedule_advance();
}

void Firmware::enqueue_program(const gcode::Program& program) {
  for (const auto& cmd : program) queue_.push_back(cmd);
  if (state_ == FwState::kRunning) schedule_advance();
}

void Firmware::set_stream_open(bool open) {
  stream_open_ = open;
  if (!open && state_ == FwState::kRunning) schedule_advance();
}

void Firmware::start() {
  if (state_ != FwState::kIdle) {
    throw Error("Firmware::start: already started");
  }
  state_ = FwState::kRunning;
  thermal_.start();
  schedule_advance();
}

void Firmware::kill(const std::string& reason) {
  if (state_ == FwState::kKilled) return;
  state_ = FwState::kKilled;
  kill_reason_ = reason;
  ++temp_poll_generation_;  // cancel any M109/M190 poll
  thermal_.shutdown();
  stepper_.abort();
  stepper_.set_all_enabled(false);
  fan_pwm_.stop();
  queue_.clear();
  command_in_flight_ = false;
  if (on_killed_) on_killed_(reason);
}

double Firmware::logical_mm(sim::Axis a) const {
  return motion_.logical_mm(config_, a);
}

// --- Dispatch ---------------------------------------------------------------

void Firmware::schedule_advance() {
  if (advance_pending_) return;
  advance_pending_ = true;
  sched_.schedule_in(0, [this] {
    advance_pending_ = false;
    advance();
  });
}

void Firmware::advance() {
  if (state_ != FwState::kRunning) return;
  if (command_in_flight_ || stepper_.busy()) return;
  if (queue_.empty()) {
    finish_if_drained();
    return;
  }
  gcode::Command cmd = std::move(queue_.front());
  queue_.pop_front();
  execute(cmd);
}

void Firmware::finish_if_drained() {
  if (stream_open_) {
    // Streaming host may still deliver lines; poll until it closes.
    sched_.schedule_in(kStreamIdlePoll, [this] { schedule_advance(); });
    return;
  }
  state_ = FwState::kFinished;
  if (on_finished_) on_finished_();
}

void Firmware::command_done() {
  command_in_flight_ = false;
  ++commands_executed_;
  schedule_advance();
}

void Firmware::execute(const gcode::Command& cmd) {
  command_in_flight_ = true;
  if (cmd.letter == 'G') {
    switch (cmd.code) {
      case 0:
      case 1:
        exec_move(cmd);
        return;
      case 2:
      case 3:
        exec_arc(cmd, /*clockwise=*/cmd.code == 2);
        return;
      case 4:
        exec_dwell(cmd);
        return;
      case 21:  // mm units: the only mode we model
        command_done();
        return;
      case 28:
        exec_home(cmd);
        return;
      case 90:
      case 91:
        apply_modal(motion_, cmd);
        command_done();
        return;
      case 92:
        exec_set_position(cmd);
        return;
      default:
        ++unknown_;
        command_done();
        return;
    }
  }
  if (cmd.letter == 'M') {
    switch (cmd.code) {
      case 17:
        stepper_.set_all_enabled(true);
        command_done();
        return;
      case 82:
      case 83:
        apply_modal(motion_, cmd);
        command_done();
        return;
      case 84:
        stepper_.set_all_enabled(false);
        command_done();
        return;
      case 104:
        thermal_.set_target(Heater::kHotend, cmd.value_or('S', 0.0));
        command_done();
        return;
      case 105:
        report_temps();
        command_done();
        return;
      case 106:
        fan_pwm_.set_duty(std::clamp(cmd.value_or('S', 255.0), 0.0, 255.0) /
                          255.0);
        command_done();
        return;
      case 107:
        fan_pwm_.set_duty(0.0);
        command_done();
        return;
      case 109:
        exec_wait_temp(Heater::kHotend, cmd);
        return;
      case 112:
        kill("M112 emergency stop");
        return;
      case 114:
        report_position();
        command_done();
        return;
      case 140:
        thermal_.set_target(Heater::kBed, cmd.value_or('S', 0.0));
        command_done();
        return;
      case 190:
        exec_wait_temp(Heater::kBed, cmd);
        return;
      case 220:
      case 221:
        apply_modal(motion_, cmd);
        command_done();
        return;
      default:
        ++unknown_;
        command_done();
        return;
    }
  }
  ++unknown_;
  command_done();
}

// --- Motion -----------------------------------------------------------------

void Firmware::start_segment(const Segment& seg,
                             StepperEngine::Completion cb) {
  // "Time noise": per-segment startup latency from planner/serial
  // asynchrony (paper section V-C).
  const auto jitter = static_cast<sim::Tick>(jitter_.uniform(
      0.0, static_cast<double>(config_.segment_jitter_max)));
  sched_.schedule_in(jitter, [this, seg, cb = std::move(cb)]() mutable {
    if (state_ != FwState::kRunning) return;
    stepper_.start(seg, std::move(cb));
  });
}

void Firmware::exec_move(const gcode::Command& cmd) {
  // Pure translation: modal resolution, software endstops, flow scaling,
  // cold-extrusion stripping and step quantization all live in
  // fw::kinematics, shared with the static analyzer.
  const bool hotend_hot =
      thermal_.current(Heater::kHotend) >= config_.min_extrude_temp_c;
  const ResolvedMove mv = resolve_move(config_, motion_, cmd, hotend_hot);
  if (mv.cold_extrusion_blocked) ++cold_extrusion_blocks_;
  // The modal feedrate commits now; the position commits only when the
  // stepper engine reports the executed steps (partial on abort).
  commit_move(config_, motion_, cmd, mv, /*executed=*/false);

  // One-segment lookahead (classic jerk): exit at a speed scaled by the
  // angle to the next queued move, so collinear chains (arc chords,
  // straight runs split by the host) cruise through junctions.
  const double dx =
      static_cast<double>(mv.delta_steps[0]) / config_.steps_per_mm[0];
  const double dy =
      static_cast<double>(mv.delta_steps[1]) / config_.steps_per_mm[1];
  const double len = std::hypot(dx, dy);
  double entry_mm_s = -1.0;
  double exit_mm_s = -1.0;
  if (config_.junction_lookahead && len > 1e-9) {
    entry_mm_s = pending_entry_mm_s_;
    if (const auto next = peek_next_move_dir(mv.target_mm)) {
      const double cosine = (dx * (*next)[0] + dy * (*next)[1]) / len;
      const double factor = std::clamp((1.0 + cosine) / 2.0, 0.0, 1.0);
      exit_mm_s = config_.junction_speed_mm_s +
                  factor * std::max(mv.feed_mm_s -
                                        config_.junction_speed_mm_s,
                                    0.0);
    }
  }
  pending_entry_mm_s_ = exit_mm_s;

  const Segment seg = planner_.plan(mv.delta_steps, mv.feed_mm_s,
                                    entry_mm_s, exit_mm_s);

  start_segment(seg, [this](bool, std::array<std::int64_t, 4> executed) {
    for (std::size_t i = 0; i < 4; ++i) {
      motion_.position_steps[i] += executed[i];
    }
    ++moves_executed_;
    command_done();
  });
}

void Firmware::exec_arc(const gcode::Command& cmd, bool clockwise) {
  // Chord synthesis is pure (fw::kinematics); the firmware's job is only
  // to splice the chords in front of the queue, so they execute before
  // whatever the host sends next.
  ArcExpansion arc = expand_arc(config_, motion_, cmd, clockwise);
  if (arc.degenerate) {
    ++unknown_;
    command_done();
    return;
  }
  for (auto it = arc.chords.rbegin(); it != arc.chords.rend(); ++it) {
    queue_.push_front(std::move(*it));
  }
  command_done();
}

std::optional<std::array<double, 2>> Firmware::peek_next_move_dir(
    const std::array<double, 4>& from) const {
  if (queue_.empty()) return std::nullopt;
  const gcode::Command& next = queue_.front();
  if (!(next.is('G', 0) || next.is('G', 1))) return std::nullopt;
  if (!next.has('X') && !next.has('Y')) return std::nullopt;
  double nx = from[0];
  double ny = from[1];
  if (const auto v = next.get('X')) {
    nx = motion_.absolute_xyz ? *v : from[0] + *v;
  }
  if (const auto v = next.get('Y')) {
    ny = motion_.absolute_xyz ? *v : from[1] + *v;
  }
  const double dx = nx - from[0];
  const double dy = ny - from[1];
  const double len = std::hypot(dx, dy);
  if (len < 1e-9) return std::nullopt;
  return std::array<double, 2>{dx / len, dy / len};
}

void Firmware::exec_dwell(const gcode::Command& cmd) {
  pending_entry_mm_s_ = -1.0;  // motion stops across a dwell
  double wait_s = 0.0;
  if (const auto p = cmd.get('P')) wait_s = *p / 1000.0;
  if (const auto s = cmd.get('S')) wait_s = *s;
  sched_.schedule_in(sim::from_seconds(std::max(wait_s, 0.0)),
                     [this] { command_done(); });
}

void Firmware::exec_set_position(const gcode::Command& cmd) {
  apply_set_position(config_, motion_, cmd);
  command_done();
}

void Firmware::exec_wait_temp(Heater h, const gcode::Command& cmd) {
  pending_entry_mm_s_ = -1.0;
  const double target = cmd.has('R') ? cmd.value_or('R', 0.0)
                                     : cmd.value_or('S', 0.0);
  thermal_.set_target(h, target);
  if (target <= 0.0) {
    command_done();
    return;
  }
  const auto gen = ++temp_poll_generation_;
  poll_temp(h, gen);
}

void Firmware::poll_temp(Heater h, std::uint64_t gen) {
  if (gen != temp_poll_generation_ || state_ != FwState::kRunning) return;
  if (thermal_.at_target(h)) {
    command_done();
    return;
  }
  sched_.schedule_in(kTempPollPeriod, [this, h, gen] { poll_temp(h, gen); });
}

void Firmware::report_temps() {
  if (on_report_) on_report_(format_temp_report(thermal_));
}

void Firmware::report_position() {
  if (on_report_) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "X:%.2f Y:%.2f Z:%.2f E:%.2f",
                  logical_mm(sim::Axis::kX), logical_mm(sim::Axis::kY),
                  logical_mm(sim::Axis::kZ), logical_mm(sim::Axis::kE));
    on_report_(buf);
  }
}

// --- Homing -----------------------------------------------------------------

void Firmware::exec_home(const gcode::Command& cmd) {
  pending_entry_mm_s_ = -1.0;
  const bool all = !cmd.has('X') && !cmd.has('Y') && !cmd.has('Z');
  homing_plan_.clear();
  for (std::size_t i = 0; i < 3; ++i) {
    const auto axis = static_cast<sim::Axis>(i);
    const char letter = "XYZ"[i];
    if (!all && !cmd.has(letter)) continue;
    const double len = config_.axis_length_mm[i];
    // Fast approach: long enough to reach the switch from anywhere.
    homing_plan_.push_back({axis, -(len + 20.0), config_.homing_feed_mm_s,
                            /*abort_on_endstop=*/true,
                            /*require_trigger=*/true,
                            /*zero_after=*/true, /*mark_homed=*/false});
    // Back off the switch.
    homing_plan_.push_back({axis, config_.homing_bump_mm,
                            config_.homing_feed_mm_s, false, false, false,
                            false});
    // Slow re-bump for precision.
    homing_plan_.push_back({axis, -(config_.homing_bump_mm + 5.0),
                            config_.homing_slow_mm_s, true, true,
                            /*zero_after=*/true, /*mark_homed=*/true});
  }
  if (homing_plan_.empty()) {
    command_done();
    return;
  }
  run_homing_phase(0);
}

void Firmware::run_homing_phase(std::size_t index) {
  if (state_ != FwState::kRunning) return;
  if (index >= homing_plan_.size()) {
    command_done();
    return;
  }
  const HomingPhase phase = homing_plan_[index];
  const auto axis_idx = static_cast<std::size_t>(phase.axis);

  std::array<std::int64_t, 4> delta{};
  delta[axis_idx] = static_cast<std::int64_t>(std::llround(
      phase.distance_mm * config_.steps_per_mm[axis_idx]));
  Segment seg = planner_.plan(delta, phase.feed_mm_s);
  seg.abort_on_endstop = phase.abort_on_endstop;
  seg.endstop_axis = phase.axis;

  start_segment(seg, [this, phase, axis_idx, index](
                         bool aborted,
                         std::array<std::int64_t, 4> executed) {
    for (std::size_t i = 0; i < 4; ++i) {
      motion_.position_steps[i] += executed[i];
    }
    if (phase.require_trigger && !aborted) {
      kill(std::string("Homing failed: ") + sim::axis_name(phase.axis) +
           " endstop never triggered");
      return;
    }
    if (phase.zero_after) {
      // The carriage is physically at the switch: this is the new datum.
      motion_.position_steps[axis_idx] = 0;
      motion_.origin_steps[axis_idx] = 0;
    }
    if (phase.mark_homed) motion_.homed[axis_idx] = true;
    run_homing_phase(index + 1);
  });
}

}  // namespace offramps::fw
