// Firmware + machine configuration.
//
// Values default to a RAMPS 1.4 / A4988 (16x microstepping) stack driving a
// Prusa i3 MK3S+-class Cartesian printer, matching the paper's test
// environment (section III-D).  All tunables live here so tests and benches
// can build variants.
#pragma once

#include <array>
#include <cstdint>

#include "sim/pins.hpp"
#include "sim/time.hpp"

namespace offramps::fw {

/// PID gains (output is heater duty in [0, 1]).
struct PidGains {
  double kp = 0.0;
  double ki = 0.0;  // per second
  double kd = 0.0;  // seconds
};

/// Thermal-runaway protection parameters (Marlin semantics).
struct ThermalProtection {
  double watch_period_s = 20.0;    // while first heating...
  double watch_increase_c = 2.0;   // ...must gain this many deg C per period
  double protection_period_s = 40.0;  // once stable, max time below...
  double hysteresis_c = 4.0;          // ...target - hysteresis
};

/// One heater's firmware-side configuration.
struct HeaterConfig {
  PidGains pid{};            // used when use_pid is true
  bool use_pid = true;       // false = bang-bang with hysteresis
  double bang_hysteresis_c = 2.0;
  double max_temp_c = 275.0;  // instant kill above this
  double min_temp_c = 0.0;    // instant kill below this (sensor fault)
  ThermalProtection protection{};
};

/// Complete configuration of the simulated Marlin firmware.
struct Config {
  // --- Kinematics -------------------------------------------------------
  /// Steps per mm for X, Y, Z, E (A4988 at 16x microstepping).
  std::array<double, 4> steps_per_mm = {100.0, 100.0, 400.0, 280.0};
  /// Per-axis maximum feedrate, mm/s.
  std::array<double, 4> max_feedrate_mm_s = {200.0, 200.0, 12.0, 120.0};
  /// Default acceleration, mm/s^2 (applied on the dominant axis).
  double acceleration_mm_s2 = 1000.0;
  /// Junction ("jerk") speed cap, mm/s: segments enter and exit at up to
  /// this speed without an acceleration ramp.
  double junction_speed_mm_s = 8.0;
  /// One-segment junction lookahead (classic jerk): angle-scaled exit
  /// speeds let collinear chains cruise through segment boundaries.
  /// Disable to get strict per-segment ramping (useful for ablation).
  bool junction_lookahead = true;
  /// Axis travel lengths, mm (X, Y, Z); E is unbounded.
  std::array<double, 3> axis_length_mm = {250.0, 210.0, 210.0};

  // --- Step signal timing -------------------------------------------------
  /// STEP pulse high time (paper: minimum observed pulse width 1 us).
  sim::Tick step_pulse_width = sim::us(1);
  /// Minimum STEP low time between pulses.
  sim::Tick step_pulse_gap = sim::us(1);
  /// DIR setup time before the first STEP of a segment.
  sim::Tick dir_setup_time = sim::us(1);
  /// Lowest step rate the engine will run at (steps/s).
  double min_step_rate_sps = 120.0;

  // --- Homing -------------------------------------------------------------
  double homing_feed_mm_s = 40.0;   // first fast approach
  double homing_slow_mm_s = 4.0;    // re-bump approach
  double homing_bump_mm = 3.0;      // back-off distance between approaches
  /// Endstop debounce: a homing trigger is accepted only after this many
  /// consecutive high samples (the trigger edge counts as the first), so a
  /// bouncy or glitching switch cannot fake an instant home.  1 restores
  /// raw edge-triggered behaviour.
  std::uint32_t endstop_debounce_samples = 3;
  /// Interval between debounce confirmation samples.
  sim::Tick endstop_sample_interval = sim::us(100);

  // --- Extrusion ----------------------------------------------------------
  /// Below this hotend temperature, E movement is stripped from moves
  /// (Marlin's cold-extrusion prevention).
  double min_extrude_temp_c = 170.0;
  bool prevent_cold_extrusion = true;

  // --- Thermal ------------------------------------------------------------
  HeaterConfig hotend{
      .pid = {.kp = 0.10, .ki = 0.004, .kd = 0.40},
      .use_pid = true,
      .bang_hysteresis_c = 2.0,
      .max_temp_c = 275.0,
      .min_temp_c = 0.0,
      .protection = {},
  };
  HeaterConfig bed{
      .pid = {},
      .use_pid = false,
      .bang_hysteresis_c = 2.0,
      .max_temp_c = 125.0,
      .min_temp_c = 0.0,
      .protection = {.watch_period_s = 60.0,
                     .watch_increase_c = 2.0,
                     .protection_period_s = 90.0,
                     .hysteresis_c = 4.0},
  };
  /// Thermal control loop period (also the soft-PWM window).
  sim::Tick thermal_period = sim::ms(100);
  /// Temperature considered "reached" for M109/M190 within this band.
  double temp_reached_band_c = 2.0;

  // --- Fan ----------------------------------------------------------------
  /// Part-fan PWM carrier period (D9).
  sim::Tick fan_pwm_period = sim::ms(10);

  // --- Host / "time noise" -----------------------------------------------
  /// Per-segment random startup latency emulating planner/serial asynchrony
  /// ("time noise", paper section V-C).  Uniform in [0, this].  Calibrated
  /// so known-good reprint drift stays below the paper's 5% envelope (the
  /// paper measured < 5% on its testbed; see bench_drift).
  sim::Tick segment_jitter_max = sim::us(350);
  /// Seed for the firmware's jitter RNG (vary per print for drift studies).
  std::uint64_t jitter_seed = 1;
};

}  // namespace offramps::fw
