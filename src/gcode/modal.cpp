#include "gcode/modal.hpp"

#include <cmath>

namespace offramps::gcode {

double MoveInfo::travel_mm() const {
  return std::sqrt(delta[0] * delta[0] + delta[1] * delta[1] +
                   delta[2] * delta[2]);
}

std::optional<MoveInfo> ModalState::apply(const Command& cmd) {
  if (cmd.letter == 'G') {
    switch (cmd.code) {
      case 90:
        absolute_xyz_ = true;
        absolute_e_ = true;
        return std::nullopt;
      case 91:
        absolute_xyz_ = false;
        absolute_e_ = false;
        return std::nullopt;
      case 92: {
        // Set logical position without motion.
        static constexpr char kAxes[4] = {'X', 'Y', 'Z', 'E'};
        bool any = false;
        for (int i = 0; i < 4; ++i) {
          if (const auto v = cmd.get(kAxes[i])) {
            position_[static_cast<std::size_t>(i)] = *v;
            any = true;
          }
        }
        if (!any) position_ = {0.0, 0.0, 0.0, 0.0};  // bare G92 zeroes all
        return std::nullopt;
      }
      case 28: {
        // Homing: logical position of the named axes (or all) becomes 0.
        const bool all = !cmd.has('X') && !cmd.has('Y') && !cmd.has('Z');
        if (all || cmd.has('X')) position_[0] = 0.0;
        if (all || cmd.has('Y')) position_[1] = 0.0;
        if (all || cmd.has('Z')) position_[2] = 0.0;
        return std::nullopt;
      }
      case 0:
      case 1:
      case 2:   // arcs resolve modally like linear moves; travel_mm() is
      case 3: { // then the chord (a lower bound on the true arc length)
        MoveInfo mv;
        mv.from = position_;
        mv.target = position_;
        static constexpr char kAxes[4] = {'X', 'Y', 'Z', 'E'};
        for (int i = 0; i < 4; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          if (const auto v = cmd.get(kAxes[i])) {
            const bool absolute = (i == 3) ? absolute_e_ : absolute_xyz_;
            mv.target[idx] = absolute ? *v : position_[idx] + *v;
          }
        }
        if (const auto f = cmd.get('F')) feed_mm_min_ = *f;
        mv.feed_mm_min = feed_mm_min_;
        for (std::size_t i = 0; i < 4; ++i) {
          mv.delta[i] = mv.target[i] - mv.from[i];
        }
        const bool moves_xyz = mv.delta[0] != 0.0 || mv.delta[1] != 0.0 ||
                               mv.delta[2] != 0.0;
        if (mv.delta[3] < 0.0) {
          mv.kind = MoveKind::kRetraction;
        } else if (mv.delta[3] > 0.0) {
          mv.kind = moves_xyz ? MoveKind::kExtrusion : MoveKind::kEOnly;
        } else {
          mv.kind = MoveKind::kTravel;
        }
        position_ = mv.target;
        return mv;
      }
      default:
        return std::nullopt;
    }
  }
  if (cmd.letter == 'M') {
    switch (cmd.code) {
      case 82:
        absolute_e_ = true;
        return std::nullopt;
      case 83:
        absolute_e_ = false;
        return std::nullopt;
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace offramps::gcode
