// Modal g-code interpretation shared by the host-side tools.
//
// Tracks the interpreter state a Marlin-class firmware keeps between lines
// (absolute/relative positioning, current logical position, feedrate) and
// classifies motion commands.  Used by the statistics analyzer and by the
// Flaw3D transforms, which must reason about extrusion *deltas* even when a
// slicer emits absolute E values.
#pragma once

#include <array>
#include <optional>

#include "gcode/command.hpp"

namespace offramps::gcode {

/// Classification of a linear move after modal resolution.
enum class MoveKind {
  kTravel,      // motion without filament advance
  kExtrusion,   // motion with positive filament advance
  kRetraction,  // negative filament advance (with or without motion)
  kEOnly,       // positive filament advance without motion (prime/deprime)
};

/// Fully resolved linear move.
struct MoveInfo {
  std::array<double, 4> from{};   // x, y, z, e before the move (mm)
  std::array<double, 4> target{}; // x, y, z, e after the move (mm)
  std::array<double, 4> delta{};  // target - from
  double feed_mm_min = 0.0;
  MoveKind kind = MoveKind::kTravel;

  [[nodiscard]] double travel_mm() const;  // XYZ path length
};

/// Modal interpreter state.  Feed `apply()` each command in program order.
class ModalState {
 public:
  /// Applies one command.  For G0/G1 returns the resolved move; for every
  /// other command updates state (G90/G91/G92/M82/M83) and returns nullopt.
  std::optional<MoveInfo> apply(const Command& cmd);

  [[nodiscard]] bool absolute_xyz() const { return absolute_xyz_; }
  [[nodiscard]] bool absolute_e() const { return absolute_e_; }
  [[nodiscard]] const std::array<double, 4>& position() const {
    return position_;
  }
  [[nodiscard]] double feed_mm_min() const { return feed_mm_min_; }

 private:
  bool absolute_xyz_ = true;
  bool absolute_e_ = true;
  std::array<double, 4> position_{};  // x, y, z, e (mm)
  double feed_mm_min_ = 1500.0;
};

}  // namespace offramps::gcode
