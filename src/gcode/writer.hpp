// G-code serializer: turns a Command/Program back into slicer-style text.
// parse_program(write_program(p)) == p for every program this library
// produces (round-trip property, covered by tests).
#pragma once

#include <string>

#include "gcode/command.hpp"

namespace offramps::gcode {

/// Formats a number the way slicers do: up to 5 decimals, no trailing zeros.
std::string format_number(double v);

/// Serializes one command (no trailing newline).
std::string write_line(const Command& cmd);

/// Serializes a whole program, one command per line, trailing newline.
std::string write_program(const Program& program);

}  // namespace offramps::gcode
