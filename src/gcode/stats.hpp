// Host-side g-code program analysis (a tiny "g-code analyzer"): aggregate
// motion/extrusion statistics used to validate slicer output, to compute
// expected step totals for experiments, and by tests.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "gcode/command.hpp"
#include "gcode/modal.hpp"

namespace offramps::gcode {

/// Axis-aligned bounding box over the XY positions touched while extruding.
struct BoundingBox {
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  bool valid = false;

  void include(double x, double y);
  [[nodiscard]] double width() const { return valid ? max_x - min_x : 0.0; }
  [[nodiscard]] double depth() const { return valid ? max_y - min_y : 0.0; }
};

/// Aggregate statistics for one program.
struct Statistics {
  std::uint64_t command_count = 0;
  std::uint64_t move_count = 0;
  std::uint64_t extrusion_move_count = 0;
  std::uint64_t travel_move_count = 0;
  std::uint64_t retraction_count = 0;
  double extruded_mm = 0.0;       // total positive filament advance
  double retracted_mm = 0.0;      // total negative filament advance (abs)
  double extrusion_path_mm = 0.0; // XYZ distance while extruding
  double travel_path_mm = 0.0;    // XYZ distance while travelling
  double max_z = 0.0;
  std::vector<double> layer_z;    // distinct Z heights reached while extruding
  BoundingBox extrusion_bbox;
  double naive_time_s = 0.0;      // sum(path / feed), ignoring acceleration

  /// Net filament at end of program (extruded - retracted).
  [[nodiscard]] double net_e_mm() const { return extruded_mm - retracted_mm; }
};

/// Analyzes `program` from a fresh modal state.
Statistics analyze(const Program& program);

}  // namespace offramps::gcode
