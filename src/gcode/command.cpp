#include "gcode/command.hpp"

namespace offramps::gcode {

Command make_linear_move(std::optional<double> x, std::optional<double> y,
                         std::optional<double> z, std::optional<double> e,
                         std::optional<double> feedrate_mm_min, bool rapid) {
  Command c;
  c.letter = 'G';
  c.code = rapid ? 0 : 1;
  if (x) c.params.push_back({'X', *x});
  if (y) c.params.push_back({'Y', *y});
  if (z) c.params.push_back({'Z', *z});
  if (e) c.params.push_back({'E', *e});
  if (feedrate_mm_min) c.params.push_back({'F', *feedrate_mm_min});
  return c;
}

}  // namespace offramps::gcode
