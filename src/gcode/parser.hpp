// G-code parser.
//
// Accepts the dialect produced by common slicers (Cura, Slic3r/PrusaSlicer)
// and streamed by hosts like Repetier Host: optional "N<line>" numbers and
// "*<checksum>" trailers, ';' comments, '(...)' inline comments, and
// case-insensitive words.  Empty/comment-only lines parse to nullopt.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "gcode/command.hpp"

namespace offramps::gcode {

/// Longest accepted input line (Marlin's serial buffer bounds real
/// firmware the same way; a runaway unterminated line must not be
/// swallowed silently).
inline constexpr std::size_t kMaxLineLength = 256;

/// Largest accepted |value| for any numeric word.  Real programs top out
/// around axis lengths (hundreds of mm), feedrates (tens of thousands of
/// mm/min) and temperatures; anything beyond this is hostile or corrupt,
/// and letting it through would reach undefined llround/int-cast behavior
/// in the kinematics layer.
inline constexpr double kMaxParamMagnitude = 1e7;

/// Parses a single line.  Returns nullopt for blank, comment-only, or
/// line-number-only lines.  Throws offramps::Error on malformed input
/// (bad number, stray word, overlong line, or a malformed/mismatched
/// '*' checksum trailer).
std::optional<Command> parse_line(std::string_view line);

/// Parses a whole program, one command per non-empty line.
Program parse_program(std::string_view text);

/// Computes the RepRap checksum (XOR of bytes before '*') for a line body.
unsigned char reprap_checksum(std::string_view body);

}  // namespace offramps::gcode
