// Flaw3D Trojan emulation (paper section V-D, Table II).
//
// Flaw3D (Pearce et al., IEEE TMECH 2022) is a malicious AVR bootloader
// that rewrites g-code in flight between the host and Marlin.  The OFFRAMPS
// paper recreates its two Trojan families with a host-side g-code mutation
// script; this module is the C++ equivalent.  Both transforms preserve the
// program's structure and rewrite only extrusion amounts:
//
//  * Reduction  - every positive filament advance is scaled by a factor
//                 (Table II cases 1-4: 0.5, 0.85, 0.9, 0.98).
//  * Relocation - a fraction of each extrusion move's filament is withheld
//                 and, every N extrusion moves, deposited in place as a
//                 blob (Table II cases 5-8: N = 5, 10, 20, 100).  Total
//                 filament is conserved, only its placement/timing changes.
//
// The transforms handle absolute and relative E modes and G92 E resets.
#pragma once

#include <cstdint>

#include "gcode/command.hpp"

namespace offramps::gcode::flaw3d {

/// Outcome summary of a transform, for reporting and tests.
struct MutationReport {
  std::uint64_t moves_seen = 0;       // extrusion-relevant moves examined
  std::uint64_t moves_modified = 0;   // moves whose E word was rewritten
  std::uint64_t commands_inserted = 0;
  double e_in_mm = 0.0;               // total positive advance, original
  double e_out_mm = 0.0;              // total positive advance, mutated
};

/// Parameters for the reduction Trojan.
struct ReductionOptions {
  /// Multiplier applied to every positive filament advance: 0.5 halves the
  /// extruded material; 0.98 is the paper's stealthiest case (2% less).
  double factor = 0.5;
};

/// Parameters for the relocation Trojan.
struct RelocationOptions {
  /// Number of extrusion moves between relocations (Table II's value).
  std::uint32_t every_n_moves = 20;
  /// Fraction of each extrusion move's filament withheld for relocation.
  double take_fraction = 0.15;
  /// Feedrate of the inserted in-place extrusion, mm/min.
  double blob_feed_mm_min = 1800.0;
};

/// Applies the reduction Trojan; returns the mutated program.
Program apply_reduction(const Program& program, const ReductionOptions& opt,
                        MutationReport* report = nullptr);

/// Applies the relocation Trojan; returns the mutated program.
Program apply_relocation(const Program& program, const RelocationOptions& opt,
                         MutationReport* report = nullptr);

}  // namespace offramps::gcode::flaw3d
