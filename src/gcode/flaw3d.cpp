#include "gcode/flaw3d.hpp"

#include "gcode/modal.hpp"
#include "sim/error.hpp"

namespace offramps::gcode::flaw3d {
namespace {

/// Shared rewriting engine: walks the program with a modal interpreter on
/// the *original* stream while maintaining the mutated stream's E
/// coordinate, so absolute-E slicer output stays consistent after deltas
/// are changed.  `mutate_delta(kind, de)` returns the mutated advance for a
/// move; `after_move(out, n_extrusions)` may append extra commands.
class ERewriter {
 public:
  virtual ~ERewriter() = default;

  Program run(const Program& program, MutationReport& report) {
    Program out;
    out.reserve(program.size() + 16);
    for (const auto& cmd : program) {
      // Resolve the move against the original modal state first.
      const bool is_move = cmd.is('G', 0) || cmd.is('G', 1);
      const auto mv = modal_.apply(cmd);

      if (cmd.is('G', 92)) {
        // A G92 pins both streams' logical E to the same value, so
        // subsequent untouched absolute E words are valid again.
        out_e_ = modal_.position()[3];
        diverged_ = false;
        out.push_back(cmd);
        continue;
      }
      if (!is_move || !mv || mv->delta[3] == 0.0) {
        out.push_back(cmd);
        continue;
      }

      const double de = mv->delta[3];
      ++report.moves_seen;
      if (de > 0.0) report.e_in_mm += de;

      const double de_out = mutate_delta(mv->kind, de);
      if (de_out > 0.0) report.e_out_mm += de_out;

      Command mutated = cmd;
      out_e_ += de_out;
      if (de_out != de) {
        ++report.moves_modified;
        diverged_ = true;
      }
      // Rewrite the E word only when needed: when this move's advance
      // changed, or (in absolute mode) when an earlier change shifted the
      // accumulated E coordinate under every later word.
      if (de_out != de || (modal_.absolute_e() && diverged_)) {
        mutated.set('E', modal_.absolute_e() ? out_e_ : de_out);
      }
      out.push_back(std::move(mutated));

      if (mv->kind == MoveKind::kExtrusion) {
        ++extrusion_moves_;
        after_move(out, report);
      }
    }
    return out;
  }

 protected:
  virtual double mutate_delta(MoveKind kind, double de) = 0;
  virtual void after_move(Program& out, MutationReport& report) = 0;

  /// Appends an in-place extrusion of `amount` mm at `feed` mm/min.
  void emit_blob(Program& out, double amount, double feed,
                 MutationReport& report) {
    Command blob;
    blob.letter = 'G';
    blob.code = 1;
    out_e_ += amount;
    blob.params.push_back(
        {'E', modal_.absolute_e() ? out_e_ : amount});
    blob.params.push_back({'F', feed});
    out.push_back(std::move(blob));
    diverged_ = true;
    ++report.commands_inserted;
    report.e_out_mm += amount;
    // Restore the modal feedrate for subsequent moves that rely on it.
    if (modal_.feed_mm_min() != feed) {
      Command f;
      f.letter = 'G';
      f.code = 1;
      f.params.push_back({'F', modal_.feed_mm_min()});
      out.push_back(std::move(f));
      ++report.commands_inserted;
    }
  }

  [[nodiscard]] std::uint64_t extrusion_moves() const {
    return extrusion_moves_;
  }

 private:
  ModalState modal_;            // tracks the ORIGINAL stream
  double out_e_ = 0.0;          // logical E of the MUTATED stream
  bool diverged_ = false;       // mutated E coordinate differs from original
  std::uint64_t extrusion_moves_ = 0;
};

class ReductionRewriter final : public ERewriter {
 public:
  explicit ReductionRewriter(const ReductionOptions& opt) : opt_(opt) {}

 private:
  double mutate_delta(MoveKind kind, double de) override {
    // Only positive advances shrink; retractions pass through so travel
    // behaviour (and stringing) stays native, matching Flaw3D.
    if (de <= 0.0) return de;
    (void)kind;
    return de * opt_.factor;
  }
  void after_move(Program&, MutationReport&) override {}

  ReductionOptions opt_;
};

class RelocationRewriter final : public ERewriter {
 public:
  explicit RelocationRewriter(const RelocationOptions& opt) : opt_(opt) {}

 private:
  double mutate_delta(MoveKind kind, double de) override {
    if (kind != MoveKind::kExtrusion || de <= 0.0) return de;
    const double stolen = de * opt_.take_fraction;
    withheld_ += stolen;
    return de - stolen;
  }

  void after_move(Program& out, MutationReport& report) override {
    if (opt_.every_n_moves == 0) return;
    if (extrusion_moves() % opt_.every_n_moves == 0 && withheld_ > 0.0) {
      emit_blob(out, withheld_, opt_.blob_feed_mm_min, report);
      withheld_ = 0.0;
    }
  }

  RelocationOptions opt_;
  double withheld_ = 0.0;
};

}  // namespace

Program apply_reduction(const Program& program, const ReductionOptions& opt,
                        MutationReport* report) {
  if (opt.factor < 0.0 || opt.factor > 1.0) {
    throw Error("flaw3d::apply_reduction: factor must be within [0, 1]");
  }
  MutationReport local;
  ReductionRewriter rw(opt);
  Program out = rw.run(program, local);
  if (report != nullptr) *report = local;
  return out;
}

Program apply_relocation(const Program& program, const RelocationOptions& opt,
                         MutationReport* report) {
  if (opt.take_fraction <= 0.0 || opt.take_fraction >= 1.0) {
    throw Error(
        "flaw3d::apply_relocation: take_fraction must be within (0, 1)");
  }
  if (opt.every_n_moves == 0) {
    throw Error("flaw3d::apply_relocation: every_n_moves must be positive");
  }
  MutationReport local;
  RelocationRewriter rw(opt);
  Program out = rw.run(program, local);
  if (report != nullptr) *report = local;
  return out;
}

}  // namespace offramps::gcode::flaw3d
