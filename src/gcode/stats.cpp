#include "gcode/stats.hpp"

#include <algorithm>
#include <cmath>

namespace offramps::gcode {

void BoundingBox::include(double x, double y) {
  if (!valid) {
    min_x = max_x = x;
    min_y = max_y = y;
    valid = true;
    return;
  }
  min_x = std::min(min_x, x);
  max_x = std::max(max_x, x);
  min_y = std::min(min_y, y);
  max_y = std::max(max_y, y);
}

Statistics analyze(const Program& program) {
  Statistics s;
  ModalState modal;
  for (const auto& cmd : program) {
    ++s.command_count;
    const auto mv = modal.apply(cmd);
    if (!mv) continue;
    ++s.move_count;
    const double path = mv->travel_mm();
    const double de = mv->delta[3];
    if (mv->feed_mm_min > 0.0) {
      const double commanded =
          std::max(path, std::abs(de));  // E-only moves take |dE| / feed
      s.naive_time_s += commanded / (mv->feed_mm_min / 60.0);
    }
    s.max_z = std::max(s.max_z, mv->target[2]);
    switch (mv->kind) {
      case MoveKind::kExtrusion: {
        ++s.extrusion_move_count;
        s.extruded_mm += de;
        s.extrusion_path_mm += path;
        s.extrusion_bbox.include(mv->from[0], mv->from[1]);
        s.extrusion_bbox.include(mv->target[0], mv->target[1]);
        const double z = mv->target[2];
        if (s.layer_z.empty() || std::abs(s.layer_z.back() - z) > 1e-9) {
          if (std::find_if(s.layer_z.begin(), s.layer_z.end(),
                           [z](double lz) {
                             return std::abs(lz - z) < 1e-9;
                           }) == s.layer_z.end()) {
            s.layer_z.push_back(z);
          }
        }
        break;
      }
      case MoveKind::kEOnly:
        s.extruded_mm += de;
        break;
      case MoveKind::kRetraction:
        ++s.retraction_count;
        s.retracted_mm += -de;
        s.travel_path_mm += path;
        break;
      case MoveKind::kTravel:
        ++s.travel_move_count;
        s.travel_path_mm += path;
        break;
    }
  }
  std::sort(s.layer_z.begin(), s.layer_z.end());
  return s;
}

}  // namespace offramps::gcode
