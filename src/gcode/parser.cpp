#include "gcode/parser.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <string>

#include "sim/error.hpp"

namespace offramps::gcode {
namespace {

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }

/// Strips ';' comments (returning the comment text) and '(...)' inline
/// comments, plus a '*checksum' trailer if present (validating it).
std::string strip_comments(std::string_view line, std::string& comment_out) {
  std::string body;
  body.reserve(line.size());
  bool in_parens = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_parens) {
      if (c == ')') in_parens = false;
      continue;
    }
    if (c == '(') {
      in_parens = true;
      continue;
    }
    if (c == ';') {
      comment_out = std::string(line.substr(i + 1));
      // Trim leading spaces of the comment.
      while (!comment_out.empty() && is_space(comment_out.front())) {
        comment_out.erase(comment_out.begin());
      }
      break;
    }
    body.push_back(c);
  }
  if (in_parens) {
    throw Error("gcode: unterminated '(' comment in line: " +
                std::string(line));
  }
  return body;
}

/// Splits off and validates a "*<checksum>" trailer, in place.  The
/// trailer must be a bare decimal in [0, 255] (whitespace-trimmed): a
/// stray second '*', sign, or trailing junk is malformed, not silently
/// truncated.
void handle_checksum(std::string& body) {
  const std::size_t star = body.find('*');
  if (star == std::string::npos) return;
  std::string digits = body.substr(star + 1);
  body.erase(star);
  while (!digits.empty() && is_space(digits.back())) digits.pop_back();
  while (!digits.empty() && is_space(digits.front())) {
    digits.erase(digits.begin());
  }
  unsigned claimed = 0;
  const char* begin = digits.data();
  const char* end = begin + digits.size();
  const auto [ptr, ec] = std::from_chars(begin, end, claimed);
  if (digits.empty() || ec != std::errc{} || ptr != end || claimed > 255) {
    throw Error("gcode: malformed checksum trailer '*" + digits + "'");
  }
  const unsigned char actual = reprap_checksum(body);
  if (claimed != actual) {
    throw Error("gcode: checksum mismatch (claimed " +
                std::to_string(claimed) + ", actual " +
                std::to_string(actual) + ")");
  }
}

double parse_number(std::string_view text, std::string_view line) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end) {
    throw Error("gcode: bad numeric value '" + std::string(text) +
                "' in line: " + std::string(line));
  }
  // from_chars happily parses "inf"/"nan" and astronomical exponents; no
  // firmware quantity survives past a few meters or a few thousand deg C,
  // and non-finite or huge values would hit undefined llround/int-cast
  // behavior in the kinematics layer.  Reject them at the gate.
  if (!std::isfinite(v) || std::abs(v) > kMaxParamMagnitude) {
    throw Error("gcode: numeric value '" + std::string(text) +
                "' out of range in line: " + std::string(line));
  }
  return v;
}

}  // namespace

unsigned char reprap_checksum(std::string_view body) {
  unsigned char cs = 0;
  for (const char c : body) cs ^= static_cast<unsigned char>(c);
  return cs;
}

std::optional<Command> parse_line(std::string_view line) {
  if (line.size() > kMaxLineLength) {
    throw Error("gcode: line exceeds " + std::to_string(kMaxLineLength) +
                " characters (" + std::to_string(line.size()) + ")");
  }
  std::string comment;
  std::string body = strip_comments(line, comment);
  handle_checksum(body);

  Command cmd;
  cmd.comment = comment;

  std::size_t i = 0;
  const std::size_t n = body.size();
  bool have_op = false;
  bool skipped_line_number = false;

  while (i < n) {
    if (is_space(body[i])) {
      ++i;
      continue;
    }
    const char raw = body[i];
    if (std::isalpha(static_cast<unsigned char>(raw)) == 0) {
      throw Error("gcode: expected a word letter in line: " +
                  std::string(line));
    }
    const char letter =
        static_cast<char>(std::toupper(static_cast<unsigned char>(raw)));
    ++i;
    // Collect the (optional) numeric value.
    const std::size_t value_begin = i;
    while (i < n && !is_space(body[i]) &&
           std::isalpha(static_cast<unsigned char>(body[i])) == 0) {
      ++i;
    }
    const std::string_view value_text(body.data() + value_begin,
                                      i - value_begin);

    if (letter == 'N' && !have_op && !skipped_line_number) {
      skipped_line_number = true;  // host line number; not a parameter
      continue;
    }

    if (!have_op) {
      // Only G, M and T introduce commands; anything else leading a line
      // is a parameter without a command (malformed input).
      if (letter != 'G' && letter != 'M' && letter != 'T') {
        throw Error("gcode: line does not start with a G/M/T command: " +
                    std::string(line));
      }
      if (value_text.empty()) {
        throw Error("gcode: command word '" + std::string(1, letter) +
                    "' missing its number in line: " + std::string(line));
      }
      const double num = parse_number(value_text, line);
      cmd.letter = letter;
      cmd.code = static_cast<int>(num);
      have_op = true;
      continue;
    }

    Param p;
    p.letter = letter;
    if (!value_text.empty()) p.value = parse_number(value_text, line);
    cmd.params.push_back(p);
  }

  if (!have_op) {
    if (!comment.empty()) return std::nullopt;  // comment-only line
    // A bare host line number ("N123") carries no command: hosts emit
    // these when resending from an empty queue slot.
    if (skipped_line_number) return std::nullopt;
    // A line that was only whitespace.
    bool only_ws = true;
    for (const char c : body) {
      if (!is_space(c)) {
        only_ws = false;
        break;
      }
    }
    if (only_ws) return std::nullopt;
    throw Error("gcode: line has parameters but no command: " +
                std::string(line));
  }
  return cmd;
}

Program parse_program(std::string_view text) {
  Program out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(start, nl - start);
    if (auto cmd = parse_line(line)) out.push_back(std::move(*cmd));
    start = nl + 1;
  }
  return out;
}

}  // namespace offramps::gcode
