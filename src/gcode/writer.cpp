#include "gcode/writer.hpp"

#include <cmath>
#include <cstdio>

namespace offramps::gcode {

std::string format_number(double v) {
  // Slicer-style: fixed with up to 5 decimals, trailing zeros trimmed.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.5f", v);
  std::string s(buf);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  // (returning a literal here also sidesteps a GCC 12 -Wrestrict false
  // positive on the char* assignment under sanitizer inlining)
  if (s == "-0") return "0";
  return s;
}

std::string write_line(const Command& cmd) {
  std::string out;
  out.push_back(cmd.letter);
  out += std::to_string(cmd.code);
  for (const auto& p : cmd.params) {
    out.push_back(' ');
    out.push_back(p.letter);
    if (p.value.has_value()) out += format_number(*p.value);
  }
  if (!cmd.comment.empty()) {
    out += " ; ";
    out += cmd.comment;
  }
  return out;
}

std::string write_program(const Program& program) {
  std::string out;
  for (const auto& cmd : program) {
    out += write_line(cmd);
    out.push_back('\n');
  }
  return out;
}

}  // namespace offramps::gcode
