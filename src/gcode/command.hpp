// G-code command model.
//
// A parsed g-code line is a `Command`: a letter+number pair naming the
// operation (G1, M104, ...) plus a sequence of parameter words.  Parameter
// words may be valueless flags (e.g. the axis letters in "G28 X Y").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace offramps::gcode {

/// One parameter word, e.g. "X12.5" or the bare flag "X".
struct Param {
  char letter = '?';
  std::optional<double> value;

  friend bool operator==(const Param&, const Param&) = default;
};

/// One executable g-code command.
struct Command {
  char letter = '?';    // 'G', 'M', 'T', ...
  int code = -1;        // e.g. 1 for G1, 104 for M104
  std::vector<Param> params;
  std::string comment;  // trailing comment text, without the ';'

  /// True if this is the given command, e.g. is('G', 1).
  [[nodiscard]] bool is(char l, int c) const {
    return letter == l && code == c;
  }

  /// True when a parameter word with this letter is present (valued or not).
  [[nodiscard]] bool has(char l) const {
    for (const auto& p : params) {
      if (p.letter == l) return true;
    }
    return false;
  }

  /// Value of parameter `l`, if present with a value.
  [[nodiscard]] std::optional<double> get(char l) const {
    for (const auto& p : params) {
      if (p.letter == l && p.value.has_value()) return p.value;
    }
    return std::nullopt;
  }

  /// Value of parameter `l`, or `fallback` when absent/valueless.
  [[nodiscard]] double value_or(char l, double fallback) const {
    const auto v = get(l);
    return v.has_value() ? *v : fallback;
  }

  /// Sets (or adds) parameter `l` to `v`, preserving word order.
  void set(char l, double v) {
    for (auto& p : params) {
      if (p.letter == l) {
        p.value = v;
        return;
      }
    }
    params.push_back({l, v});
  }

  /// Removes every parameter word with letter `l`.
  void erase(char l) {
    std::erase_if(params, [l](const Param& p) { return p.letter == l; });
  }

  friend bool operator==(const Command&, const Command&) = default;
};

/// A whole g-code program in execution order.
using Program = std::vector<Command>;

/// Convenience builders used by the slicer-lite and by tests.
Command make_linear_move(std::optional<double> x, std::optional<double> y,
                         std::optional<double> z, std::optional<double> e,
                         std::optional<double> feedrate_mm_min,
                         bool rapid = false);

}  // namespace offramps::gcode
