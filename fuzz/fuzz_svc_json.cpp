// Fuzz target: the fleet-spec JSON reader.
//
// The fleet daemon parses operator-supplied spec files with this
// recursive-descent reader; depth bombs, bad escapes, truncated
// documents and trailing garbage must all be offramps::Error rejections
// (with the depth ceiling keeping the stack bounded), never UB.
#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/error.hpp"
#include "svc/json.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > 1 << 18) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const offramps::svc::json::Value value =
        offramps::svc::json::parse(text);
    // Walk the accessor surface the fleet spec loader uses.
    (void)value.find("rigs");
    (void)value.number_or("workers", 0.0);
    (void)value.bool_or("strict", false);
    (void)value.string_or("label", "");
  } catch (const offramps::Error&) {
    // Malformed document, rejected by contract.
  }
  return 0;
}
