// Fuzz target: the g-code parser plus the static analyzer behind it.
//
// The parser is the repo's largest untrusted-input surface (the lint CLI
// and the serial link both feed it attacker-controlled bytes), and the
// analyzer consumes whatever the parser admits - so the target pushes
// every successfully parsed program through a full analyze_program to
// catch UB the parser lets through (non-finite values, hostile arcs).
//
// offramps::Error is the documented rejection path and is swallowed;
// anything else (sanitizer report, other exception, crash) is a finding.
#include <cstddef>
#include <cstdint>
#include <string>

#include "analyze/analyzer.hpp"
#include "gcode/parser.hpp"
#include "sim/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Bound the per-input work: a fuzz input is at most a few KiB of
  // program, but an adversarial line count times arc expansion could
  // still stall one iteration.
  if (size > 1 << 16) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const offramps::gcode::Program program =
        offramps::gcode::parse_program(text);
    (void)offramps::analyze::analyze_program(program);
  } catch (const offramps::Error&) {
    // Malformed input, rejected by contract.
  }
  return 0;
}
