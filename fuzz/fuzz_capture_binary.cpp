// Fuzz target: Capture::from_binary, the persisted-capture reader.
//
// Fleet runs persist captures to disk and replay them later; the reader
// therefore consumes files an attacker (or bit rot) may have corrupted.
// Truncation, hostile length prefixes and bad magic must all land on the
// documented offramps::Error path, never on an out-of-bounds read or an
// allocation bomb.
#include <cstddef>
#include <cstdint>

#include "core/capture.hpp"
#include "sim/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > 1 << 20) return 0;
  try {
    const offramps::core::Capture capture =
        offramps::core::Capture::from_binary(data, size);
    // Exercise the accessors the fleet uses on a decoded capture.
    (void)capture.size();
    if (!capture.empty()) (void)capture.to_csv();
  } catch (const offramps::Error&) {
    // Corrupt input, rejected by contract.
  }
  return 0;
}
