// Standalone driver for the LLVMFuzzerTestOneInput targets.
//
// The harnesses use the libFuzzer entry-point ABI, but this repo must
// also fuzz where only GCC is installed (no libFuzzer runtime).  This
// driver fills that gap: linked against one target, it
//
//   * replays every corpus file/directory named on the command line
//     (the CI regression mode - a crash is an immediate nonzero exit),
//   * and with --time S additionally runs a deterministic mutation loop
//     for S seconds, seeded from the corpus: splitmix64-driven byte
//     flips, splices, truncations and insertions.  The PRNG seed is
//     fixed (override with --seed N), so a given (corpus, seed, time)
//     budget explores a reproducible prefix of the same input stream.
//
// Any input that makes the target crash is first written to
// "<progname>-last-input.bin" before execution, so the offending bytes
// survive an abort and can be minimized into tests/fuzz_corpus/.
//
// Under clang the same harness sources link against -fsanitize=fuzzer
// instead (see fuzz/CMakeLists.txt) and this file is not built.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iterator>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

using Input = std::vector<std::uint8_t>;

/// splitmix64: tiny, seedable, good enough to drive mutations.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }
};

Input read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  Input bytes((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return bytes;
}

void collect(const fs::path& path, std::vector<Input>& corpus) {
  if (fs::is_directory(path)) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(path)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
    // Directory iteration order is filesystem-dependent; sort for the
    // deterministic replay/mutation stream the driver promises.
    std::sort(files.begin(), files.end());
    for (const auto& f : files) corpus.push_back(read_file(f));
    return;
  }
  corpus.push_back(read_file(path));
}

std::string g_last_input_path;

void run_one(const Input& input) {
  // Persist before executing: if the target aborts, the bytes survive.
  if (!g_last_input_path.empty()) {
    std::ofstream out(g_last_input_path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(input.data()),
              static_cast<std::streamsize>(input.size()));
  }
  LLVMFuzzerTestOneInput(input.data(), input.size());
}

Input mutate(const Input& base, Rng& rng) {
  Input out = base;
  const std::uint64_t ops = 1 + rng.below(4);
  for (std::uint64_t op = 0; op < ops; ++op) {
    switch (rng.below(5)) {
      case 0:  // flip a byte
        if (!out.empty()) {
          out[rng.below(out.size())] ^=
              static_cast<std::uint8_t>(1U << rng.below(8));
        }
        break;
      case 1:  // overwrite with an interesting byte
        if (!out.empty()) {
          static constexpr std::uint8_t kInteresting[] = {
              0x00, 0xff, 0x7f, 0x80, '\n', ';', '*', '(', 'G', 'M',
              'N',  'E',  '-',  '.',  'e',  '9', '{', '[', '"', '\\'};
          out[rng.below(out.size())] =
              kInteresting[rng.below(sizeof(kInteresting))];
        }
        break;
      case 2:  // truncate
        if (!out.empty()) out.resize(rng.below(out.size()));
        break;
      case 3: {  // insert a random run
        const std::size_t pos = rng.below(out.size() + 1);
        const std::size_t len = 1 + rng.below(8);
        Input run(len);
        for (auto& b : run) b = static_cast<std::uint8_t>(rng.next());
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                   run.begin(), run.end());
        break;
      }
      default: {  // duplicate a slice (length-prefix confusion food)
        if (out.empty()) break;
        const std::size_t pos = rng.below(out.size());
        const std::size_t len = 1 + rng.below(out.size() - pos);
        Input slice(out.begin() + static_cast<std::ptrdiff_t>(pos),
                    out.begin() + static_cast<std::ptrdiff_t>(pos + len));
        const std::size_t at = rng.below(out.size() + 1);
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                   slice.begin(), slice.end());
        break;
      }
    }
  }
  if (out.size() > (1 << 16)) out.resize(1 << 16);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double time_budget_s = 0.0;
  std::uint64_t seed = 0x0ff7a3b5ULL;
  std::vector<fs::path> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--time" && i + 1 < argc) {
      time_budget_s = std::strtod(argv[++i], nullptr);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: %s [--time SECONDS] [--seed N] CORPUS...\n"
                   "replays corpus files/dirs; with --time also runs a\n"
                   "deterministic mutation loop seeded from them\n",
                   argv[0]);
      return 0;
    } else {
      paths.emplace_back(arg);
    }
  }

  g_last_input_path = std::string(argv[0]) + "-last-input.bin";

  std::vector<Input> corpus;
  for (const auto& p : paths) {
    if (!fs::exists(p)) {
      std::fprintf(stderr, "corpus path '%s' does not exist\n",
                   p.string().c_str());
      return 2;
    }
    collect(p, corpus);
  }
  if (corpus.empty()) corpus.push_back({});  // always have a seed

  for (const auto& input : corpus) run_one(input);
  std::fprintf(stderr, "replayed %zu corpus input(s)\n", corpus.size());

  std::uint64_t executed = 0;
  if (time_budget_s > 0.0) {
    Rng rng{seed};
    const std::clock_t start = std::clock();
    const double budget_clocks = time_budget_s * CLOCKS_PER_SEC;
    while (static_cast<double>(std::clock() - start) < budget_clocks) {
      const Input& base = corpus[rng.below(corpus.size())];
      run_one(mutate(base, rng));
      ++executed;
    }
    std::fprintf(stderr, "executed %llu mutated input(s) in %.1fs\n",
                 static_cast<unsigned long long>(executed), time_budget_s);
  }

  std::remove(g_last_input_path.c_str());
  return 0;
}
