// Fuzz target: svc::RefCache::decode_entry, the on-disk golden-reference
// record reader.
//
// Cache entries are written atomically, but the directory may be shared
// between machines, torn by crashes outside the temp+rename discipline
// (the cachetear chaos drill), or version-skewed by older builds.  The
// bounded reader must reject every malformed record with
// offramps::Error - the cache then deletes it and recomputes - and must
// never over-read, over-allocate, or accept trailing garbage.
#include <cstddef>
#include <cstdint>

#include "sim/error.hpp"
#include "svc/ref_cache.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > 1 << 20) return 0;
  // The key check runs against the digest a real lookup would use; an
  // input that forges it still has to survive the blob validation.
  const std::uint64_t key = offramps::svc::reference_digest(
      8.0, 3.0, offramps::host::SliceProfile{}, 42,
      offramps::svc::ChannelSet{});
  try {
    const offramps::svc::RefEntry entry =
        offramps::svc::RefCache::decode_entry(data, size, key);
    (void)entry.golden.size();
    (void)entry.golden_power.size();
    (void)entry.golden_acoustic.size();
    (void)entry.golden_vibration.size();
  } catch (const offramps::Error&) {
    // Malformed record, rejected by contract.
  }
  return 0;
}
