// Fuzz target: core::wire::FrameReader, the session-stream parser.
//
// The fleet daemon feeds this reader bytes straight off a Unix socket
// or stdin pipe, i.e. from arbitrary (possibly hostile) rig clients,
// and replay feeds it files from disk.  Bad magic, lying length
// prefixes, truncated frames, mid-frame garbage and concatenation
// boundaries must all land on the resync / failed-session paths - never
// on an out-of-bounds read, unbounded buffering, or an allocation bomb.
#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "core/session_wire.hpp"

namespace {

void touch(const offramps::core::wire::Frame& frame) {
  using offramps::core::wire::FrameType;
  switch (frame.type) {
    case FrameType::kHello:
      (void)frame.hello.name.size();
      (void)frame.hello.sabotage.size();
      (void)frame.hello.chaos.size();
      break;
    case FrameType::kTxn:
      (void)frame.txn;
      break;
    case FrameType::kPower:
      (void)(frame.power_t_s + frame.power_watts);
      break;
    case FrameType::kFinish:
      (void)frame.finish.size();
      break;
    case FrameType::kEnd:
      (void)frame.end.final_counts[0];
      break;
    case FrameType::kSlot:
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > 1 << 20) return 0;
  using offramps::core::wire::Frame;
  using offramps::core::wire::FrameReader;

  // Whole-buffer pass, following the concatenated-stream contract: a
  // short return at kEnd hands the leftover to a fresh reader.
  {
    std::size_t off = 0;
    for (int streams = 0; streams < 8 && off < size; ++streams) {
      FrameReader reader;
      const std::size_t used =
          reader.feed(data + off, size - off, touch);
      reader.close();
      (void)reader.error();
      (void)reader.resyncs();
      (void)reader.corrupt_txns();
      if (used == 0) break;
      off += used;
    }
  }

  // Incremental pass: the chunk size comes from the input itself so the
  // corpus explores frame-boundary splits; state must be identical to
  // the whole-buffer parse.
  {
    FrameReader reader;
    const std::size_t chunk = size == 0 ? 1 : (data[0] % 37) + 1;
    std::size_t off = 0;
    while (off < size) {
      const std::size_t n = std::min(chunk, size - off);
      const std::size_t used = reader.feed(data + off, n, touch);
      off += used;
      if (used < n) break;  // ended/failed: leftover is a later stream
    }
    reader.close();
    (void)reader.failed();
  }
  return 0;
}
