// host::ChaosInjector: the chaos grammar, the per-attempt activation
// window, and the capture-mangling faults the bounded binary reader has
// to reject.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/capture.hpp"
#include "core/session_wire.hpp"
#include "host/chaos.hpp"
#include "sim/error.hpp"

namespace {

using offramps::Error;
using offramps::core::Capture;
using offramps::core::Transaction;
using offramps::host::ChaosInjector;
using offramps::host::ChaosKind;
using offramps::host::ChaosSpec;
using offramps::host::parse_chaos;

Capture sample_capture(std::size_t n) {
  Capture cap;
  cap.label = "chaos-test";
  cap.print_completed = true;
  for (std::size_t i = 0; i < n; ++i) {
    Transaction t;
    t.index = static_cast<std::uint32_t>(i);
    t.counts = {static_cast<std::int32_t>(i * 3),
                static_cast<std::int32_t>(i * 5), 0,
                static_cast<std::int32_t>(i * 7)};
    t.time_ns = i * 100'000'000ull;
    cap.transactions.push_back(t);
  }
  cap.final_counts = {300, 500, 0, 700};
  return cap;
}

TEST(ChaosSpec, ParseAndRoundTrip) {
  EXPECT_EQ(parse_chaos("").kind, ChaosKind::kNone);
  EXPECT_EQ(parse_chaos("none").kind, ChaosKind::kNone);
  EXPECT_EQ(parse_chaos("clean").to_string(), "none");

  const ChaosSpec crash = parse_chaos("crash:2");
  EXPECT_EQ(crash.kind, ChaosKind::kCrash);
  EXPECT_EQ(crash.fires_for, 2u);
  EXPECT_EQ(crash.to_string(), "crash:2");

  // One-shot default for the transient kinds...
  EXPECT_EQ(parse_chaos("stall").fires_for, 1u);
  EXPECT_EQ(parse_chaos("corrupt").fires_for, 1u);
  EXPECT_EQ(parse_chaos("truncate").fires_for, 1u);
  // ...every-attempt default for the standing kinds.
  const ChaosSpec jam = parse_chaos("powerjam");
  EXPECT_EQ(jam.kind, ChaosKind::kPowerJam);
  EXPECT_EQ(jam.to_string(), "powerjam");
  ChaosInjector late(jam, 1000);
  EXPECT_TRUE(late.active());
  EXPECT_EQ(parse_chaos("ringwedge").to_string(), "ringwedge");
}

TEST(ChaosSpec, ParseRejectsMalformed) {
  EXPECT_THROW(parse_chaos("bogus"), Error);
  EXPECT_THROW(parse_chaos("crash:"), Error);
  EXPECT_THROW(parse_chaos("crash:0"), Error);
  EXPECT_THROW(parse_chaos("crash:2x"), Error);
  EXPECT_THROW(parse_chaos("stall:-1"), Error);
}

TEST(ChaosInjector, ActiveOnlyWithinFiresFor) {
  const ChaosSpec spec = parse_chaos("crash:2");
  EXPECT_TRUE(ChaosInjector(spec, 0).active());
  EXPECT_TRUE(ChaosInjector(spec, 1).active());
  EXPECT_FALSE(ChaosInjector(spec, 2).active()) << "retry 3 runs clean";
  EXPECT_FALSE(ChaosInjector(ChaosSpec{}, 0).active());
}

TEST(ChaosInjector, StallGateSuppressesAfterTrigger) {
  ChaosSpec spec = parse_chaos("stall");
  spec.after = 3;
  ChaosInjector injector(spec, 0);
  int passed = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.pass_transaction()) ++passed;
  }
  EXPECT_EQ(passed, 3);
  EXPECT_EQ(injector.suppressed(), 7u);

  // Inactive attempt: everything passes.
  ChaosInjector clean(spec, 1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(clean.pass_transaction());
  EXPECT_EQ(clean.suppressed(), 0u);
}

TEST(ChaosInjector, RingWedgeGate) {
  ChaosSpec spec = parse_chaos("ringwedge");
  spec.after = 4;
  const ChaosInjector injector(spec, 0);
  EXPECT_FALSE(injector.wedge_pump(0));
  EXPECT_FALSE(injector.wedge_pump(3));
  EXPECT_TRUE(injector.wedge_pump(4));
  EXPECT_TRUE(injector.wedge_pump(1000));
}

TEST(ChaosInjector, CorruptedCountPrefixIsRejectedBounded) {
  const Capture cap = sample_capture(10);
  std::vector<std::uint8_t> wire = cap.to_binary();
  const ChaosInjector injector(parse_chaos("corrupt"), 0);
  injector.mangle_capture(wire);
  // The mangled count prefix claims ~2^64 transactions; the bounded
  // reader must reject it before allocating, not OOM.
  EXPECT_THROW(Capture::from_binary(wire), Error);
}

TEST(ChaosInjector, TruncatedCaptureIsRejected) {
  const Capture cap = sample_capture(10);
  std::vector<std::uint8_t> wire = cap.to_binary();
  const ChaosInjector injector(parse_chaos("truncate"), 0);
  injector.mangle_capture(wire);
  EXPECT_EQ(wire.size(), cap.to_binary().size() / 2);
  EXPECT_THROW(Capture::from_binary(wire), Error);
}

// --- Session-layer drills (daemon/replay wire surfaces) -------------------

std::vector<std::uint8_t> sample_session(std::size_t txns) {
  offramps::core::wire::SessionRecorder rec;
  rec.hello({.rig_index = 0,
             .seed = 5,
             .cube_mm = 8.0,
             .height_mm = 3.0,
             .name = "chaos-sess",
             .sabotage = "clean",
             .chaos = "none"});
  for (std::size_t i = 0; i < txns; ++i) {
    Transaction t;
    t.index = static_cast<std::uint32_t>(i);
    t.counts = {static_cast<std::int32_t>(i), 0, 0, 0};
    t.time_ns = 1'000'000ull * (i + 1);
    rec.txn(t);
  }
  rec.end(offramps::core::wire::SessionMeta{});
  return rec.bytes();
}

TEST(ChaosSpec, ParseSessionDrillKinds) {
  EXPECT_EQ(parse_chaos("disconnect").kind, ChaosKind::kDisconnect);
  EXPECT_EQ(parse_chaos("framecorrupt").kind, ChaosKind::kFrameCorrupt);
  EXPECT_EQ(parse_chaos("cachetear").kind, ChaosKind::kCacheTear);
  // One-shot by default, like the other transient kinds, and the
  // to_string round trip the checkpoint depends on.
  EXPECT_EQ(parse_chaos("disconnect").fires_for, 1u);
  EXPECT_EQ(parse_chaos("disconnect").to_string(), "disconnect:1");
  EXPECT_EQ(parse_chaos("framecorrupt:2").to_string(), "framecorrupt:2");
  EXPECT_EQ(parse_chaos("cachetear").to_string(), "cachetear:1");
}

TEST(ChaosInjector, DisconnectCutsStreamAfterHeader) {
  std::vector<std::uint8_t> bytes = sample_session(6);
  const std::size_t full = bytes.size();
  ChaosInjector(parse_chaos("disconnect"), 0).mangle_session(bytes);
  EXPECT_EQ(bytes.size(), full / 2);
  EXPECT_GT(bytes.size(), std::size_t{8}) << "never cut inside the header";

  offramps::core::wire::FrameReader reader;
  reader.feed(bytes.data(), bytes.size(),
              [](const offramps::core::wire::Frame&) {});
  reader.close();
  EXPECT_TRUE(reader.failed()) << "a cut stream is a disconnect";
}

TEST(ChaosInjector, FrameCorruptFlipsOnlyTheTargetTransaction) {
  ChaosSpec spec = parse_chaos("framecorrupt");
  spec.after = 2;
  std::vector<std::uint8_t> bytes = sample_session(6);
  const std::size_t full = bytes.size();
  ChaosInjector(spec, 0).mangle_session(bytes);
  EXPECT_EQ(bytes.size(), full) << "outer framing must stay intact";

  offramps::core::wire::FrameReader reader;
  std::vector<std::uint32_t> indices;
  reader.feed(bytes.data(), bytes.size(),
              [&](const offramps::core::wire::Frame& f) {
                if (f.type == offramps::core::wire::FrameType::kTxn) {
                  indices.push_back(f.txn.index);
                }
              });
  EXPECT_TRUE(reader.ended());
  EXPECT_EQ(reader.corrupt_txns(), 1u);
  EXPECT_EQ(reader.resyncs(), 0u);
  EXPECT_EQ(indices, (std::vector<std::uint32_t>{0, 1, 3, 4, 5}))
      << "exactly the after-th transaction is dropped";
}

TEST(ChaosInjector, SessionDrillsIgnoreMalformedStreams) {
  // mangle_session walks real framing; a buffer that is not a session
  // must be left alone rather than scribbled on.
  std::vector<std::uint8_t> garbage(64, 0xAB);
  const std::vector<std::uint8_t> orig = garbage;
  ChaosInjector(parse_chaos("framecorrupt"), 0).mangle_session(garbage);
  EXPECT_EQ(garbage, orig);
}

TEST(ChaosInjector, InactiveSessionMangleIsIdentity) {
  std::vector<std::uint8_t> bytes = sample_session(4);
  const std::vector<std::uint8_t> orig = bytes;
  ChaosInjector(parse_chaos("disconnect"), 1).mangle_session(bytes);
  EXPECT_EQ(bytes, orig);
  ChaosInjector(parse_chaos("framecorrupt"), 1).mangle_session(bytes);
  EXPECT_EQ(bytes, orig);
}

TEST(ChaosInjector, SessionDrillsAreLiveAttemptNoops) {
  // Inside a live rig attempt the session kinds must not fire any of the
  // attempt-level hooks (they act on recorded artifacts only).
  for (const char* kind : {"disconnect", "framecorrupt", "cachetear"}) {
    ChaosInjector injector(parse_chaos(kind), 0);
    ASSERT_TRUE(injector.active()) << kind;
    EXPECT_TRUE(injector.pass_transaction()) << kind;
    EXPECT_FALSE(injector.wedge_pump(1000)) << kind;
    EXPECT_FALSE(injector.jam_power()) << kind;
    std::vector<std::uint8_t> wire = sample_capture(4).to_binary();
    const std::vector<std::uint8_t> orig = wire;
    injector.mangle_capture(wire);
    EXPECT_EQ(wire, orig) << kind;
  }
}

TEST(ChaosInjector, InactiveMangleIsIdentity) {
  const Capture cap = sample_capture(5);
  std::vector<std::uint8_t> wire = cap.to_binary();
  const std::vector<std::uint8_t> orig = wire;
  const ChaosInjector injector(parse_chaos("corrupt"), 3);  // past fires_for
  injector.mangle_capture(wire);
  EXPECT_EQ(wire, orig);
  const Capture back = Capture::from_binary(wire);
  EXPECT_EQ(back.size(), 5u);
}

}  // namespace
