// host::ChaosInjector: the chaos grammar, the per-attempt activation
// window, and the capture-mangling faults the bounded binary reader has
// to reject.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/capture.hpp"
#include "host/chaos.hpp"
#include "sim/error.hpp"

namespace {

using offramps::Error;
using offramps::core::Capture;
using offramps::core::Transaction;
using offramps::host::ChaosInjector;
using offramps::host::ChaosKind;
using offramps::host::ChaosSpec;
using offramps::host::parse_chaos;

Capture sample_capture(std::size_t n) {
  Capture cap;
  cap.label = "chaos-test";
  cap.print_completed = true;
  for (std::size_t i = 0; i < n; ++i) {
    Transaction t;
    t.index = static_cast<std::uint32_t>(i);
    t.counts = {static_cast<std::int32_t>(i * 3),
                static_cast<std::int32_t>(i * 5), 0,
                static_cast<std::int32_t>(i * 7)};
    t.time_ns = i * 100'000'000ull;
    cap.transactions.push_back(t);
  }
  cap.final_counts = {300, 500, 0, 700};
  return cap;
}

TEST(ChaosSpec, ParseAndRoundTrip) {
  EXPECT_EQ(parse_chaos("").kind, ChaosKind::kNone);
  EXPECT_EQ(parse_chaos("none").kind, ChaosKind::kNone);
  EXPECT_EQ(parse_chaos("clean").to_string(), "none");

  const ChaosSpec crash = parse_chaos("crash:2");
  EXPECT_EQ(crash.kind, ChaosKind::kCrash);
  EXPECT_EQ(crash.fires_for, 2u);
  EXPECT_EQ(crash.to_string(), "crash:2");

  // One-shot default for the transient kinds...
  EXPECT_EQ(parse_chaos("stall").fires_for, 1u);
  EXPECT_EQ(parse_chaos("corrupt").fires_for, 1u);
  EXPECT_EQ(parse_chaos("truncate").fires_for, 1u);
  // ...every-attempt default for the standing kinds.
  const ChaosSpec jam = parse_chaos("powerjam");
  EXPECT_EQ(jam.kind, ChaosKind::kPowerJam);
  EXPECT_EQ(jam.to_string(), "powerjam");
  ChaosInjector late(jam, 1000);
  EXPECT_TRUE(late.active());
  EXPECT_EQ(parse_chaos("ringwedge").to_string(), "ringwedge");
}

TEST(ChaosSpec, ParseRejectsMalformed) {
  EXPECT_THROW(parse_chaos("bogus"), Error);
  EXPECT_THROW(parse_chaos("crash:"), Error);
  EXPECT_THROW(parse_chaos("crash:0"), Error);
  EXPECT_THROW(parse_chaos("crash:2x"), Error);
  EXPECT_THROW(parse_chaos("stall:-1"), Error);
}

TEST(ChaosInjector, ActiveOnlyWithinFiresFor) {
  const ChaosSpec spec = parse_chaos("crash:2");
  EXPECT_TRUE(ChaosInjector(spec, 0).active());
  EXPECT_TRUE(ChaosInjector(spec, 1).active());
  EXPECT_FALSE(ChaosInjector(spec, 2).active()) << "retry 3 runs clean";
  EXPECT_FALSE(ChaosInjector(ChaosSpec{}, 0).active());
}

TEST(ChaosInjector, StallGateSuppressesAfterTrigger) {
  ChaosSpec spec = parse_chaos("stall");
  spec.after = 3;
  ChaosInjector injector(spec, 0);
  int passed = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.pass_transaction()) ++passed;
  }
  EXPECT_EQ(passed, 3);
  EXPECT_EQ(injector.suppressed(), 7u);

  // Inactive attempt: everything passes.
  ChaosInjector clean(spec, 1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(clean.pass_transaction());
  EXPECT_EQ(clean.suppressed(), 0u);
}

TEST(ChaosInjector, RingWedgeGate) {
  ChaosSpec spec = parse_chaos("ringwedge");
  spec.after = 4;
  const ChaosInjector injector(spec, 0);
  EXPECT_FALSE(injector.wedge_pump(0));
  EXPECT_FALSE(injector.wedge_pump(3));
  EXPECT_TRUE(injector.wedge_pump(4));
  EXPECT_TRUE(injector.wedge_pump(1000));
}

TEST(ChaosInjector, CorruptedCountPrefixIsRejectedBounded) {
  const Capture cap = sample_capture(10);
  std::vector<std::uint8_t> wire = cap.to_binary();
  const ChaosInjector injector(parse_chaos("corrupt"), 0);
  injector.mangle_capture(wire);
  // The mangled count prefix claims ~2^64 transactions; the bounded
  // reader must reject it before allocating, not OOM.
  EXPECT_THROW(Capture::from_binary(wire), Error);
}

TEST(ChaosInjector, TruncatedCaptureIsRejected) {
  const Capture cap = sample_capture(10);
  std::vector<std::uint8_t> wire = cap.to_binary();
  const ChaosInjector injector(parse_chaos("truncate"), 0);
  injector.mangle_capture(wire);
  EXPECT_EQ(wire.size(), cap.to_binary().size() / 2);
  EXPECT_THROW(Capture::from_binary(wire), Error);
}

TEST(ChaosInjector, InactiveMangleIsIdentity) {
  const Capture cap = sample_capture(5);
  std::vector<std::uint8_t> wire = cap.to_binary();
  const std::vector<std::uint8_t> orig = wire;
  const ChaosInjector injector(parse_chaos("corrupt"), 3);  // past fires_for
  injector.mangle_capture(wire);
  EXPECT_EQ(wire, orig);
  const Capture back = Capture::from_binary(wire);
  EXPECT_EQ(back.size(), 5u);
}

}  // namespace
